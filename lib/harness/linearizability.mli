(** A linearizability checker for register histories (Wing & Gong
    style search with memoization).

    The paper's core single-object claim (§3.1) is that "a Tango
    object with multiple views on different machines provides
    linearizable semantics for invocations of its mutators and
    accessors". This module checks that claim {e from observations}:
    record each operation's invocation and response times (virtual
    time in the simulator) plus its value, and ask whether some legal
    sequential register execution explains the history while
    respecting real-time order.

    Histories are unbounded in length (the done set is a byte-packed
    bitset, not a machine-word bitmask); the search is exponential in
    the worst case and bounded by [max_states] instead of by wall
    clock. *)

type op =
  | Read of int
  | Write of int
  | Cas of { expected : int; desired : int; ok : bool }
      (** compare-and-swap as observed by the caller: [ok] is the
          outcome the implementation reported. A legal linearization
          must place a successful CAS at a point where the register
          held [expected] (installing [desired]), and a failed one
          where it held anything else. *)

type event = {
  started : float;  (** invocation time *)
  finished : float;  (** response time; must be >= [started] *)
  op : op;
}

(** Raised when the search exceeds [max_states] memoized states: the
    history is too expensive to decide, which is a test-infrastructure
    signal, not a correctness verdict either way. *)
exception Work_limit

(** [check_register ?initial ?max_states history] returns [true] iff
    the history of a single register is linearizable. [initial]
    (default 0) is the register's starting value; [max_states]
    (default 2,000,000) bounds the memo table.
    @raise Invalid_argument on an event with [finished < started].
    @raise Work_limit when the state bound is hit. *)
val check_register : ?initial:int -> ?max_states:int -> event list -> bool
