(* Simulation fuzzer: explore randomized fault plans against randomized
   multi-client workloads, check the global invariants ({!Verifier})
   after every run, and shrink failing plans to minimal reproducers.

   A fuzz case is a pure function of (seed, config, plan): the engine,
   the fault controller, and every workload generator derive their
   randomness from [seed], and the plan is data ({!Sim.Fault}'s
   serializable actions). Replaying the same triple reproduces the same
   virtual-time trace byte for byte — which is what makes shrinking
   (re-running candidate sub-plans) and CI replay gates possible. *)

open Corfu

type config = {
  f_servers : int;  (* storage nodes at boot, chains of 2 *)
  f_clients : int;  (* appender + transactor pair per client *)
  f_appends : int;  (* raw appends per appender *)
  f_txs : int;  (* transactions per transactor *)
  f_events : int;  (* primary fault events (recovery partners extra) *)
  f_fault_at_us : float;  (* first fault no earlier than this *)
  f_fault_window_us : float;  (* faults land inside this window *)
  f_deadline_us : float;  (* workload must finish by then *)
  f_repair_margin_us : float;  (* make-whole runs this long after the last planned fault *)
  f_settle_us : float;  (* quiesce before the oracle phase *)
  f_horizon_us : float;  (* hard virtual-time ceiling for one run *)
  f_shrink_runs : int;  (* shrink budget, counted in re-runs *)
}

let default_config =
  {
    f_servers = 6;
    f_clients = 3;
    f_appends = 18;
    f_txs = 8;
    f_events = 6;
    f_fault_at_us = 15_000.;
    f_fault_window_us = 130_000.;
    f_deadline_us = 3_000_000.;
    f_repair_margin_us = 50_000.;
    f_settle_us = 400_000.;
    f_horizon_us = 10_000_000.;
    f_shrink_runs = 250;
  }

let workload_streams = [| 10; 11; 12 |]
let map_oid = 1
let set_oid = 2

(* ------------------------------------------------------------------ *)
(* Plan generation                                                    *)
(* ------------------------------------------------------------------ *)

(* Placeholder for generated/decoded [Custom] actions; {!run} rebinds
   every custom thunk against the live cluster before scheduling. *)
let unbound_thunk () = invalid_arg "Fuzz: custom action thunk was not rebound"

(* The generator is make-whole by construction — every crash gets a
   restart, every partition a heal, every degraded edge a clear, every
   failed SSD a repair — and storage-affecting faults are serialized
   into disjoint windows on distinct chains, so at least one replica of
   every acked entry survives every instant of the plan. A clean build
   must therefore produce {e zero} violations on any seed; a violation
   is a bug, not noise. Sequencer loss is exercised through
   [replace-sequencer] customs (the §5 reconfiguration), never by
   making the sequencer unreachable: sequencer RPCs are the one place
   clients wait without timeouts. *)
let gen_plan ~seed config =
  let rng = Sim.Rng.create (0x5EED0 + seed) in
  let chains = max 1 (config.f_servers / 2) in
  let chain_used = Array.make chains false in
  let free_chain () =
    let free =
      List.filter (fun i -> not chain_used.(i)) (List.init chains (fun i -> i))
    in
    match free with
    | [] -> None
    | l ->
        let c = List.nth l (Sim.Rng.int rng (List.length l)) in
        chain_used.(c) <- true;
        Some c
  in
  let member_of c = Printf.sprintf "storage-%d" ((2 * c) + Sim.Rng.int rng 2) in
  let partition_used = ref false in
  let scale_in_used = ref false in
  (* Storage-affecting faults get serialized slots: detection (~40ms),
     replacement, and the paired recovery all finish before the next
     slot opens, so no two chains are degraded at once. *)
  let storage_slot = ref 0 in
  let t_storage () =
    let s = !storage_slot in
    incr storage_slot;
    config.f_fault_at_us +. (float_of_int s *. 70_000.) +. Sim.Rng.float rng 10_000.
  in
  let t_any () = config.f_fault_at_us +. Sim.Rng.float rng config.f_fault_window_us in
  let pair_dt () = 12_000. +. Sim.Rng.float rng 28_000. in
  let events = ref [] in
  let push e = events := e :: !events in
  let push_replace_sequencer () = push (t_any (), Sim.Fault.Custom ("replace-sequencer", unbound_thunk)) in
  for _ = 1 to config.f_events do
    match Sim.Rng.int rng 8 with
    | 0 | 1 -> (
        (* storage-node crash + restart; the failure monitor replaces
           the dead member from the surviving replica *)
        match free_chain () with
        | Some c ->
            let h = member_of c in
            let t = t_storage () in
            push (t, Sim.Fault.Crash h);
            push (t +. pair_dt (), Sim.Fault.Restart h)
        | None -> push_replace_sequencer ())
    | 2 -> (
        (* isolate one storage node, then heal; only one partition per
           plan because components are global controller state *)
        match if !partition_used then None else free_chain () with
        | Some c ->
            partition_used := true;
            let h = member_of c in
            let t = t_storage () in
            push (t, Sim.Fault.Partition [ [ h ] ]);
            push (t +. pair_dt (), Sim.Fault.Heal)
        | None -> push_replace_sequencer ())
    | 3 -> (
        (* SSD failure -> monitor-driven node replacement *)
        match free_chain () with
        | Some c ->
            let h = member_of c in
            let t = t_storage () in
            push (t, Sim.Fault.Custom ("ssd-fail " ^ h, unbound_thunk));
            push (t +. pair_dt (), Sim.Fault.Custom ("ssd-repair " ^ h, unbound_thunk))
        | None -> push_replace_sequencer ())
    | 4 ->
        (* lossy, slow edge between one appender and one storage node;
           storage RPCs carry timeouts, so drops only cost retries *)
        let src = Printf.sprintf "fz-app-%d" (1 + Sim.Rng.int rng config.f_clients) in
        let dst = Printf.sprintf "storage-%d" (Sim.Rng.int rng config.f_servers) in
        let t = t_any () in
        push
          ( t,
            Sim.Fault.Degrade
              {
                d_src = src;
                d_dst = dst;
                d_drop = 0.05 +. Sim.Rng.float rng 0.25;
                d_delay_us = 100. +. Sim.Rng.float rng 300.;
                d_jitter_us = Sim.Rng.float rng 200.;
              } );
        push (t +. pair_dt (), Sim.Fault.Clear_edge (src, dst))
    | 5 | 6 -> push_replace_sequencer ()
    | _ ->
        (* online reshaping; +-2 servers keeps every chain at length 2.
           At most one scale-in so the tail can never shrink below one
           chain even when scale events race. *)
        if (not !scale_in_used) && Sim.Rng.bool rng 0.5 then begin
          scale_in_used := true;
          push (t_any (), Sim.Fault.Custom ("scale-in 2", unbound_thunk))
        end
        else push (t_any (), Sim.Fault.Custom ("scale-out 2", unbound_thunk))
  done;
  List.sort (fun (a, _) (b, _) -> Float.compare a b) !events

(* ------------------------------------------------------------------ *)
(* Rebinding custom actions against a live cluster                    *)
(* ------------------------------------------------------------------ *)

let find_node cluster name =
  Array.find_opt
    (fun n -> String.equal (Storage_node.name n) name)
    (Cluster.storage_nodes cluster)

let tail_members cluster =
  let proj = Auxiliary.latest (Cluster.auxiliary cluster) in
  Array.fold_left
    (fun acc chain -> acc + Array.length chain)
    0 (Projection.tail_segment proj).Projection.seg_sets

(* Thunks must not suspend ({!Sim.Fault.Custom}), so cluster
   reconfigurations run in spawned fibers — serialized against the
   failure monitor by the cluster's reconfiguration lock. *)
let custom_thunk cluster name () =
  match String.split_on_char ' ' name with
  | [ "replace-sequencer" ] ->
      Sim.Engine.spawn (fun () -> ignore (Cluster.replace_sequencer cluster))
  | [ "scale-out"; k ] ->
      let k = int_of_string k in
      Sim.Engine.spawn (fun () ->
          if (tail_members cluster + k) mod 2 = 0 then
            ignore (Cluster.scale_out cluster ~add_servers:k)
          else Sim.Trace.f "fuzz" "scale-out %d skipped: odd tail geometry" k)
  | [ "scale-in"; k ] ->
      let k = int_of_string k in
      Sim.Engine.spawn (fun () ->
          let members = tail_members cluster in
          if members - k >= 2 && (members - k) mod 2 = 0 then
            ignore (Cluster.scale_in cluster ~remove_servers:k)
          else Sim.Trace.f "fuzz" "scale-in %d skipped: tail has %d members" k members)
  | [ "ssd-fail"; node ] -> (
      match find_node cluster node with
      | Some n -> Sim.Resource.fail (Storage_node.ssd n)
      | None -> Sim.Trace.f "fuzz" "ssd-fail %s skipped: node not in cluster" node)
  | [ "ssd-repair"; node ] -> (
      match find_node cluster node with
      | Some n -> if Sim.Resource.failed (Storage_node.ssd n) then Sim.Resource.repair (Storage_node.ssd n)
      | None -> Sim.Trace.f "fuzz" "ssd-repair %s skipped: node not in cluster" node)
  | _ -> invalid_arg (Printf.sprintf "Fuzz: unknown custom fault action %S" name)

let rebind cluster action =
  match action with
  | Sim.Fault.Custom (name, _) -> Sim.Fault.Custom (name, custom_thunk cluster name)
  | other -> other

(* After the workload (or its deadline) the plan is inverted — restarts
   for crashes, heal for partitions, clears for degrades, repairs for
   SSD failures — so the oracle phase judges a whole system. Shrunk
   plans may have lost their recovery partners; this keeps "drop the
   heal" candidates from turning every oracle into a liveness stall. *)
let make_whole fault cluster plan =
  let seen = Hashtbl.create 8 in
  let once key f =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      f ()
    end
  in
  List.iter
    (fun (_, action) ->
      match action with
      | Sim.Fault.Crash h ->
          once ("restart " ^ h) (fun () -> Sim.Fault.apply fault (Sim.Fault.Restart h))
      | Sim.Fault.Partition _ -> once "heal" (fun () -> Sim.Fault.apply fault Sim.Fault.Heal)
      | Sim.Fault.Degrade { d_src; d_dst; _ } ->
          once
            (Printf.sprintf "clear %s>%s" d_src d_dst)
            (fun () -> Sim.Fault.apply fault (Sim.Fault.Clear_edge (d_src, d_dst)))
      | Sim.Fault.Custom (name, _) when String.length name > 9 && String.sub name 0 9 = "ssd-fail " ->
          let node = String.sub name 9 (String.length name - 9) in
          let repair = "ssd-repair " ^ node in
          once repair (fun () ->
              Sim.Fault.apply fault (Sim.Fault.Custom (repair, custom_thunk cluster repair)))
      | Sim.Fault.Restart _ | Sim.Fault.Heal | Sim.Fault.Clear_edge _ | Sim.Fault.Custom _ -> ())
    plan

(* ------------------------------------------------------------------ *)
(* One fuzz run                                                       *)
(* ------------------------------------------------------------------ *)

type outcome = {
  oc_violations : Verifier.violation list;
  oc_acked : int;  (* raw appends acked *)
  oc_committed : int;
  oc_aborted : int;
  oc_fault_events : int;  (* fault actions actually applied *)
  oc_spec_firings : Spec.firing list;  (* online spec-machine firings, oldest first *)
  oc_end_us : float;  (* virtual time when the oracle phase finished *)
  oc_metrics_json : string;  (* canonical dump; byte-identical on replay *)
  oc_spans_json : string option;  (* when capture_spans *)
  oc_flight_json : string option;  (* flight snapshots, when any fired *)
}

let run ?failpoint ?(capture_spans = false) ?(specs = []) ?spec_deadline_us ~seed config ~plan =
  Cluster.reset_failpoints ();
  (match failpoint with Some n -> Cluster.enable_failpoint n | None -> ());
  (* Arm the flight recorder so any oracle violation ships with its
     last-N-events context; restored to the caller's setting on exit. *)
  let flight_was = Sim.Flight.enabled () in
  Sim.Flight.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Cluster.reset_failpoints ();
      Sim.Flight.set_enabled flight_was)
  @@ fun () ->
  let violations = ref [] in
  let blame oracle fmt =
    Printf.ksprintf
      (fun detail ->
        violations := { Verifier.v_oracle = oracle; v_detail = detail } :: !violations)
      fmt
  in
  let acked = ref [] in
  let acked_streams = ref [] in
  let committed = ref 0 in
  let aborted = ref 0 in
  let probes = ref [] in
  let fault_events = ref 0 in
  let end_us = ref 0. in
  let metrics_json = ref "" in
  let oracle_violations = ref [] in
  let spec_plane = ref None in
  let main () =
    let cluster = Cluster.create ~servers:config.f_servers () in
    Cluster.start_failure_monitor cluster;
    let fault = Sim.Fault.create ~seed () in
    Sim.Net.install_fault (Cluster.net cluster) fault;
    Sim.Fault.plan fault (List.map (fun (at, a) -> (at, rebind cluster a)) plan);
    (* -------- online spec machines: a dedicated follower client
       discharges readability obligations by stream visibility (raw
       offset reads would miss broken backpointer chains) *)
    if specs <> [] then begin
      let pc = Cluster.new_client cluster ~name:"fz-spec-probe" in
      let followers =
        Array.to_list workload_streams |> List.map (fun sid -> (sid, Stream.attach pc sid))
      in
      let follow () =
        List.concat_map
          (fun (sid, s) ->
            ignore (Stream.sync s);
            let rec fetch acc =
              match Stream.readnext s with
              | Some (off, _) -> fetch ((sid, off) :: acc)
              | None -> List.rev acc
            in
            fetch [])
          followers
      in
      (* Second-chance probe for a past-due obligation: a from-scratch
         walk of the whole chain (fresh attach, same client cache). The
         incremental follower above can hold a stale junk verdict for a
         slot whose fill raced a partition-delayed write and lost to
         the rebuild; a fresh walk sees the repaired chain, while a
         genuinely broken chain (skip-rebuild-scan) stays invisible. *)
      let confirm ~stream ~offset =
        let s = Stream.attach pc stream in
        ignore (Stream.sync s);
        let rec scan () =
          match Stream.readnext s with
          | Some (off, _) -> off = offset || scan ()
          | None -> false
        in
        scan ()
      in
      spec_plane :=
        Some
          (Spec.arm ~specs ?commit_deadline_us:spec_deadline_us
             ?reconfig_deadline_us:spec_deadline_us
             ~streams:(Array.to_list workload_streams) ~follow ~confirm ())
    end;
    (* -------- workload: per client, one appender + one transactor *)
    let total_fibers = 2 * config.f_clients in
    let done_count = ref 0 in
    let runtimes = ref [] in
    for i = 1 to config.f_clients do
      let cl = Cluster.new_client cluster ~name:(Printf.sprintf "fz-app-%d" i) in
      Sim.Engine.spawn (fun () ->
          let wrng = Sim.Rng.create ((seed * 7919) + i) in
          for j = 1 to config.f_appends do
            let s = Sim.Rng.int wrng (Array.length workload_streams) in
            let streams =
              if Sim.Rng.bool wrng 0.2 then
                [
                  workload_streams.(s);
                  workload_streams.((s + 1) mod Array.length workload_streams);
                ]
              else [ workload_streams.(s) ]
            in
            let payload = Bytes.of_string (Printf.sprintf "c%d-a%d" i j) in
            let off = Client.append cl ~streams payload in
            acked := (off, payload) :: !acked;
            List.iter (fun sid -> acked_streams := (sid, off) :: !acked_streams) streams;
            Sim.Engine.sleep (200. +. Sim.Rng.float wrng 1_500.)
          done;
          incr done_count);
      let rt = Tango.Runtime.create (Cluster.new_client cluster ~name:(Printf.sprintf "fz-rt-%d" i)) in
      let m = Tango_objects.Tango_map.attach rt ~oid:map_oid in
      let st = Tango_objects.Tango_set.attach rt ~oid:set_oid in
      runtimes := (Printf.sprintf "fz-rt-%d" i, m, st) :: !runtimes;
      Sim.Engine.spawn (fun () ->
          let wrng = Sim.Rng.create ((seed * 104729) + i) in
          for j = 1 to config.f_txs do
            let tag = Printf.sprintf "t%d-%d" i j in
            Tango.Runtime.begin_tx rt;
            (* read-modify-write on a shared key: forced conflicts keep
               the abort path of the atomicity oracle exercised *)
            let v =
              match Tango_objects.Tango_map.get m "ctr" with
              | Some x -> ( match int_of_string_opt x with Some n -> n | None -> 0)
              | None -> 0
            in
            Tango_objects.Tango_map.put m "ctr" (string_of_int (v + 1));
            Tango_objects.Tango_map.put m tag "1";
            Tango_objects.Tango_set.add st tag;
            (match Tango.Runtime.end_tx rt with
            | Tango.Runtime.Committed ->
                incr committed;
                probes := (tag, true) :: !probes
            | Tango.Runtime.Aborted ->
                incr aborted;
                probes := (tag, false) :: !probes);
            Sim.Engine.sleep (500. +. Sim.Rng.float wrng 2_000.)
          done;
          incr done_count)
    done;
    (* -------- wait for the workload, bounded by the deadline.
       Liveness is judged against a {e whole} system: shortly after the
       last planned fault the harness repairs anything the plan left
       broken (shrinking routinely drops heals and restarts), and only
       a workload that still cannot finish by the deadline is a
       violation. Without the early repair, the deadline oracle would
       fire on any shrunk plan that leaves a projection member
       unreachable — a fundamental stall, not a bug — and shrinkers
       would converge on that instead of the original failure. *)
    let rec await until =
      if !done_count < total_fibers && Sim.Engine.now () < until then begin
        Sim.Engine.sleep 2_000.;
        await until
      end
    in
    let whole_at =
      let last = List.fold_left (fun acc (at, _) -> Float.max acc at) config.f_fault_at_us plan in
      Float.min (last +. config.f_repair_margin_us) config.f_deadline_us
    in
    await whole_at;
    make_whole fault cluster plan;
    await config.f_deadline_us;
    if !done_count < total_fibers then
      blame "liveness" "%d/%d workload fibers finished by the %.0fus deadline" !done_count
        total_fibers config.f_deadline_us;
    (* -------- let the repaired system settle *)
    Sim.Engine.sleep config.f_settle_us;
    (* -------- give every pending spec obligation its deadline: a
       wedge fires here at the latest, always before [oc_end_us] *)
    (match !spec_plane with Some sp -> Spec.drain sp | None -> ());
    (* -------- oracle phase: fresh observers *)
    let obs = Cluster.new_client cluster ~name:"fz-observer" in
    let tail = Client.check obs in
    let resolved = Array.make (max tail 0) None in
    if tail > 0 then begin
      (* resolve the whole prefix in parallel: unwritten slots each
         wait out the fill timeout, and paying it once instead of
         [tail] times keeps the oracle phase inside the horizon *)
      let remaining = ref tail in
      let all_done = Sim.Ivar.create () in
      for off = 0 to tail - 1 do
        Sim.Engine.spawn (fun () ->
            resolved.(off) <- Some (Client.read_resolved obs off);
            decr remaining;
            if !remaining = 0 then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done
    end;
    let payload_at off =
      if off < 0 || off >= tail then None
      else
        match resolved.(off) with
        | Some (Client.Data e) -> Some e.Types.payload
        | _ -> None
    in
    let resolve off =
      match resolved.(off) with
      | Some (Client.Data _) -> `Data
      | Some (Client.Junk | Client.Trimmed) -> `Junk
      | Some Client.Unwritten | None -> `Unresolved
    in
    let view name =
      let c = Cluster.new_client cluster ~name in
      Array.to_list workload_streams
      |> List.map (fun sid ->
             let s = Stream.attach c sid in
             ignore (Stream.sync s);
             let rec drain acc =
               match Stream.readnext s with
               | Some (off, _) -> drain (off :: acc)
               | None -> List.rev acc
             in
             (sid, drain []))
    in
    let views = [ ("fz-view-a", view "fz-view-a"); ("fz-view-b", view "fz-view-b") ] in
    let state_of m st =
      ignore (Tango_objects.Tango_map.get m "ctr");
      (* a linearizable get forces a full sync *)
      let bs = List.sort compare (Tango_objects.Tango_map.bindings m) in
      let es = Tango_objects.Tango_set.elements st in
      Printf.sprintf "map{%s}set{%s}"
        (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) bs))
        (String.concat ";" es)
    in
    let ort = Tango.Runtime.create (Cluster.new_client cluster ~name:"fz-rt-obs") in
    let om = Tango_objects.Tango_map.attach ort ~oid:map_oid in
    let os = Tango_objects.Tango_set.attach ort ~oid:set_oid in
    let states =
      ("fz-rt-obs", state_of om os)
      :: List.rev_map (fun (name, m, st) -> (name, state_of m st)) !runtimes
    in
    let tx_probes =
      List.rev_map
        (fun (tag, ok) ->
          {
            Verifier.t_tag = tag;
            t_committed = ok;
            t_in_map = Tango_objects.Tango_map.mem om tag;
            t_in_set = Tango_objects.Tango_set.mem os tag;
          })
        !probes
    in
    (* serializability of the shared counter: every committed
       transaction incremented it exactly once *)
    let ctr =
      match Tango_objects.Tango_map.get om "ctr" with
      | Some x -> ( match int_of_string_opt x with Some n -> n | None -> -1)
      | None -> 0
    in
    if ctr <> !committed then
      blame "serializability" "shared counter is %d after %d committed increments" ctr !committed;
    oracle_violations :=
      Verifier.durability ~acked:(List.rev !acked) ~read:payload_at
      @ Verifier.hole_freedom ~tail ~resolve
      @ Verifier.stream_order ~acked:(List.rev !acked_streams) ~views
      @ Verifier.convergence ~states
      @ Verifier.atomicity ~txs:tx_probes;
    fault_events := List.length (Sim.Fault.events fault);
    (* Freeze the flight rings while the virtual clock still runs, so
       the incident document carries the real violation time. *)
    if !oracle_violations <> [] || !violations <> [] then
      Sim.Flight.snapshot ~reason:"fuzz-oracle";
    end_us := Sim.Engine.now ();
    metrics_json := Sim.Metrics.to_json ()
  in
  let spans_json = ref None in
  let body () = Sim.Engine.run ~seed ~until:config.f_horizon_us main in
  (try
     if capture_spans then begin
       let (), spans = Sim.Span.capture body in
       spans_json := Some spans
     end
     else body ()
   with
  | Sim.Engine.Horizon_reached h ->
      blame "liveness" "virtual-time horizon %.0fus reached before the oracle phase finished" h
  | Sim.Engine.Deadlock -> blame "liveness" "simulation deadlocked"
  | e -> blame "exception" "%s" (Printexc.to_string e));
  let spec_firings = match !spec_plane with Some sp -> Spec.firings sp | None -> [] in
  let spec_violations = match !spec_plane with Some sp -> Spec.violations sp | None -> [] in
  (* Horizon overruns, deadlocks, and escaped exceptions unwind before
     the in-run snapshot; capture what the rings held at the abort. *)
  if
    (!violations <> [] || !oracle_violations <> [] || spec_violations <> [])
    && Sim.Flight.snapshot_count () = 0
  then Sim.Flight.snapshot ~reason:"fuzz-abort";
  let flight_json =
    if Sim.Flight.snapshot_count () > 0 then Some (Sim.Flight.dump_json ()) else None
  in
  {
    (* spec firings lead: they carry the mid-run timestamp and are the
       preferred shrink target when several oracles condemn one run *)
    oc_violations = spec_violations @ List.rev !violations @ !oracle_violations;
    oc_acked = List.length !acked;
    oc_committed = !committed;
    oc_aborted = !aborted;
    oc_fault_events = !fault_events;
    oc_spec_firings = spec_firings;
    oc_end_us = !end_us;
    oc_metrics_json = !metrics_json;
    oc_spans_json = !spans_json;
    oc_flight_json = flight_json;
  }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

type shrink_result = {
  sh_plan : (float * Sim.Fault.action) list;
  sh_runs : int;  (* re-runs spent *)
  sh_oracle : string;  (* the oracle the minimal plan still trips *)
}

let sort_plan p = List.sort (fun (a, _) (b, _) -> Float.compare a b) p

(* Greedy ddmin-style minimization: single-event removal to a fixpoint,
   then per-event time bisection toward the fault window's start, then
   partition-component narrowing. The predicate is "the {e same}
   oracle still fires" — a candidate that merely trips a different
   invariant is rejected, so the reproducer explains the original
   failure, not a new one. Budgeted in re-runs ([f_shrink_runs]). *)
let shrink ?failpoint ?(specs = []) ?spec_deadline_us ~seed config plan ~oracle =
  let runs = ref 0 in
  let fails p =
    !runs < config.f_shrink_runs
    && begin
         incr runs;
         let oc = run ?failpoint ~specs ?spec_deadline_us ~seed config ~plan:p in
         List.exists (fun v -> String.equal v.Verifier.v_oracle oracle) oc.oc_violations
       end
  in
  (* 1. drop events, restarting the scan after every success *)
  let rec drop_pass p =
    let n = List.length p in
    let rec try_idx i p =
      if i >= List.length p then p
      else
        let cand = List.filteri (fun j _ -> j <> i) p in
        if fails cand then try_idx i cand else try_idx (i + 1) p
    in
    let p' = try_idx 0 p in
    if List.length p' < n then drop_pass p' else p'
  in
  let p = drop_pass plan in
  (* 2. bisect each event's time toward the window start *)
  let floor_t = config.f_fault_at_us in
  let bisect p =
    List.fold_left
      (fun p i ->
        let rec go p steps =
          if steps = 0 then p
          else
            let t, a = List.nth p i in
            if t <= floor_t +. 1. then p
            else
              let cand =
                List.mapi (fun j e -> if j = i then (floor_t +. ((t -. floor_t) /. 2.), a) else e) p
              in
              if fails cand then go cand (steps - 1) else p
        in
        go p 3)
      p
      (List.init (List.length p) (fun i -> i))
  in
  let p = bisect p in
  (* 3. narrow partition components host by host *)
  let narrow_partition p =
    let rec at_idx i p =
      if i >= List.length p then p
      else
        match List.nth p i with
        | t, Sim.Fault.Partition comps when List.exists (fun c -> List.length c > 1) comps ->
            let rec drop_host p comps changed =
              let tried = ref false in
              let comps' =
                List.map
                  (fun c ->
                    if (not !tried) && List.length c > 1 then begin
                      tried := true;
                      List.tl c
                    end
                    else c)
                  comps
              in
              if not !tried then (p, comps, changed)
              else
                let cand =
                  List.mapi (fun j e -> if j = i then (t, Sim.Fault.Partition comps') else e) p
                in
                if fails cand then drop_host cand comps' true else (p, comps, changed)
            in
            let p, _, _ = drop_host p comps false in
            at_idx (i + 1) p
        | _ -> at_idx (i + 1) p
    in
    at_idx 0 p
  in
  let p = narrow_partition p in
  { sh_plan = sort_plan p; sh_runs = !runs; sh_oracle = oracle }

(* ------------------------------------------------------------------ *)
(* Replayable artifacts and run reports                               *)
(* ------------------------------------------------------------------ *)

let artifact_version = 2

(* Exact numerals, same contract as the plan encoder: a decoded
   artifact reruns the byte-identical scenario. *)
let num v =
  if Float.is_integer v && Float.abs v < 9.007199254740992e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let encode_config c =
  Sim.Jout.obj
    [
      ("servers", string_of_int c.f_servers);
      ("clients", string_of_int c.f_clients);
      ("appends", string_of_int c.f_appends);
      ("txs", string_of_int c.f_txs);
      ("events", string_of_int c.f_events);
      ("fault_at_us", num c.f_fault_at_us);
      ("fault_window_us", num c.f_fault_window_us);
      ("deadline_us", num c.f_deadline_us);
      ("repair_margin_us", num c.f_repair_margin_us);
      ("settle_us", num c.f_settle_us);
      ("horizon_us", num c.f_horizon_us);
      ("shrink_runs", string_of_int c.f_shrink_runs);
    ]

let decode_config v =
  let int k = Sim.Jin.to_int (Sim.Jin.member k v) in
  let flt k = Sim.Jin.to_float (Sim.Jin.member k v) in
  {
    f_servers = int "servers";
    f_clients = int "clients";
    f_appends = int "appends";
    f_txs = int "txs";
    f_events = int "events";
    f_fault_at_us = flt "fault_at_us";
    f_fault_window_us = flt "fault_window_us";
    f_deadline_us = flt "deadline_us";
    f_repair_margin_us = flt "repair_margin_us";
    f_settle_us = flt "settle_us";
    f_horizon_us = flt "horizon_us";
    f_shrink_runs = int "shrink_runs";
  }

let encode_artifact ~seed config plan =
  Sim.Jout.obj
    [
      ("version", string_of_int artifact_version);
      ("tool", Sim.Jout.str "tango-fuzz");
      ("seed", string_of_int seed);
      ("config", encode_config config);
      ("plan", Sim.Fault.encode_plan plan);
    ]

let decode_artifact s =
  let doc = Sim.Jin.parse s in
  let version = Sim.Jin.to_int (Sim.Jin.member "version" doc) in
  if version <> artifact_version then
    invalid_arg
      (Printf.sprintf "Fuzz.decode_artifact: artifact version %d, this build reads %d" version
         artifact_version);
  let seed = Sim.Jin.to_int (Sim.Jin.member "seed" doc) in
  let config = decode_config (Sim.Jin.member "config" doc) in
  let plan =
    Sim.Fault.decode_plan_value
      ~custom:(fun _name -> unbound_thunk)
      (Sim.Jin.member "plan" doc)
  in
  (seed, config, plan)

let report_json ~runs =
  let total = List.fold_left (fun acc (_, oc) -> acc + List.length oc.oc_violations) 0 runs in
  Sim.Jout.obj
    [
      ("schema_version", "1");
      ("tool", Sim.Jout.str "tango-fuzz");
      ("violations", string_of_int total);
      ( "runs",
        Sim.Jout.arr
          (List.map
             (fun (seed, oc) ->
               Sim.Jout.obj
                 [
                   ("seed", string_of_int seed);
                   ("violations", string_of_int (List.length oc.oc_violations));
                   ( "oracles",
                     Sim.Jout.arr
                       (List.map (fun v -> Sim.Jout.str v.Verifier.v_oracle) oc.oc_violations) );
                   ("acked_appends", string_of_int oc.oc_acked);
                   ("committed", string_of_int oc.oc_committed);
                   ("aborted", string_of_int oc.oc_aborted);
                   ("fault_events", string_of_int oc.oc_fault_events);
                   ("spec_firings", Sim.Jout.arr (List.map Spec.firing_json oc.oc_spec_firings));
                   ("end_us", Sim.Jout.flt oc.oc_end_us);
                 ])
             runs) );
    ]
