(* Online temporal spec machines (DESIGN.md §12).

   Each armed machine subscribes to the Sim.Announce instrumentation
   bus and evaluates one temporal property in virtual time, {e during}
   the run — a wedge fires the moment its deadline passes instead of
   surfacing as a mysterious non-convergence at campaign end.

   Liveness clock semantics: obligations are suspended while any
   repairable fault is outstanding; once the system is whole, an
   obligation is due [deadline] after max(its own start, the last
   repair). This matches the fuzzer's make-whole contract — liveness
   is only promised of a repaired system. *)

type spec = Commit_liveness | Read_committed | Reconfig_termination

let all = [ Commit_liveness; Read_committed; Reconfig_termination ]

let name = function
  | Commit_liveness -> "commit-liveness"
  | Read_committed -> "read-committed"
  | Reconfig_termination -> "reconfig-termination"

let of_name = function
  | "commit-liveness" -> Commit_liveness
  | "read-committed" -> Read_committed
  | "reconfig-termination" -> Reconfig_termination
  | s -> invalid_arg (Printf.sprintf "Spec.of_name: unknown spec %S" s)

type firing = { sp_spec : string; sp_time_us : float; sp_detail : string }

(* One acked append's readability obligation, keyed (stream, offset). *)
type obligation = {
  ob_stream : int;
  ob_offset : int;
  ob_acked_us : float;
  mutable ob_done : bool;
  mutable ob_fired : bool;
}

type reconfig = {
  rc_kind : string;
  rc_started_us : float;
  mutable rc_done : bool;
  mutable rc_fired : bool;
}

let firings_cap = 50 (* per spec; a wedge strands many obligations at once *)

type t = {
  on_liveness : bool;
  on_read_committed : bool;
  on_termination : bool;
  commit_deadline_us : float;
  reconfig_deadline_us : float;
  check_every_us : float;
  follow : unit -> (int * int) list;
  confirm : stream:int -> offset:int -> bool;
  tracked : (int, unit) Hashtbl.t;  (* streams the follower can discharge *)
  obligations : (int * int, obligation) Hashtbl.t;
  mutable ob_order : obligation list;  (* newest first *)
  decided : (string * int, unit) Hashtbl.t;  (* (client, pos) decision seen *)
  outstanding : (string, int) Hashtbl.t;  (* injected-and-unrepaired faults *)
  mutable last_repair_us : float;
  mutable reconfigs : reconfig list;  (* newest first *)
  mutable firings : firing list;  (* newest first *)
  mutable fired_counts : (string * int) list;
}

let fired_count t sname =
  match List.assoc_opt sname t.fired_counts with Some n -> n | None -> 0

let fire t spec ~time detail =
  let sname = name spec in
  let n = fired_count t sname in
  if n < firings_cap then begin
    t.fired_counts <- (sname, n + 1) :: List.remove_assoc sname t.fired_counts;
    t.firings <- { sp_spec = sname; sp_time_us = time; sp_detail = detail } :: t.firings;
    if Sim.Flight.enabled () then begin
      Sim.Flight.record ~host:"spec" Sim.Flight.Alert ~name:sname ~value:time;
      (* One snapshot per spec per run: the first firing captures the
         interesting window; later firings of the same machine are
         almost always the same wedge. *)
      if n = 0 then Sim.Flight.snapshot ~reason:("spec:" ^ sname)
    end
  end

let suspended t = Hashtbl.length t.outstanding > 0

(* ------------------------------------------------------------------ *)
(* Event handling (synchronous, at the emission point)                *)
(* ------------------------------------------------------------------ *)

let note_injected t key =
  let n = match Hashtbl.find_opt t.outstanding key with Some n -> n | None -> 0 in
  Hashtbl.replace t.outstanding key (n + 1)

let note_repaired t key =
  (match Hashtbl.find_opt t.outstanding key with
  | Some n when n > 1 -> Hashtbl.replace t.outstanding key (n - 1)
  | Some _ -> Hashtbl.remove t.outstanding key
  | None -> ());
  t.last_repair_us <- Sim.Engine.now ()

(* Custom fault-plan actions carry their classification in the name:
   ["ssd-fail h"] injects, ["ssd-repair h"] repairs; takeovers and
   scaling actions are not faults at all. *)
let classify_custom name =
  let prefixed p = String.length name > String.length p && String.sub name 0 (String.length p) = p in
  if prefixed "ssd-fail " then
    Some (`Injected ("ssd:" ^ String.sub name 9 (String.length name - 9)))
  else if prefixed "ssd-repair " then
    Some (`Repaired ("ssd:" ^ String.sub name 11 (String.length name - 11)))
  else None

let on_event t (ev : Sim.Announce.event) =
  match ev with
  | Sim.Announce.Append_acked { client = _; offset; streams } ->
      if t.on_liveness then
        List.iter
          (fun sid ->
            if Hashtbl.mem t.tracked sid && not (Hashtbl.mem t.obligations (sid, offset)) then begin
              let ob =
                {
                  ob_stream = sid;
                  ob_offset = offset;
                  ob_acked_us = Sim.Engine.now ();
                  ob_done = false;
                  ob_fired = false;
                }
              in
              Hashtbl.replace t.obligations (sid, offset) ob;
              t.ob_order <- ob :: t.ob_order
            end)
          streams
  | Sim.Announce.Commit_decided { client; pos; committed = _ } ->
      Hashtbl.replace t.decided (client, pos) ()
  | Sim.Announce.Commit_applied { client; pos } ->
      if t.on_read_committed && not (Hashtbl.mem t.decided (client, pos)) then begin
        (* Flag once per (client, pos): the same blind apply would
           otherwise fire on every re-application. *)
        Hashtbl.replace t.decided (client, pos) ();
        fire t Read_committed ~time:(Sim.Engine.now ())
          (Printf.sprintf "%s applied commit @%d with its decision still undecided" client pos)
      end
  | Sim.Announce.Reconfig_started { kind } ->
      if t.on_termination then
        t.reconfigs <-
          { rc_kind = kind; rc_started_us = Sim.Engine.now (); rc_done = false; rc_fired = false }
          :: t.reconfigs
  | Sim.Announce.Reconfig_installed { kind; epoch = _ } ->
      (* Reconfigurations are serialized per cluster: the oldest open
         operation of this kind is the one that finished. *)
      let rec close = function
        | [] -> ()
        | rc :: rest ->
            if (not rc.rc_done) && String.equal rc.rc_kind kind then
              if List.exists (fun o -> (not o.rc_done) && String.equal o.rc_kind kind) rest then
                close rest
              else rc.rc_done <- true
            else close rest
      in
      close t.reconfigs
  | Sim.Announce.Fault_injected { key } -> note_injected t key
  | Sim.Announce.Fault_repaired { key } -> note_repaired t key
  | Sim.Announce.Custom_fault { name } -> (
      match classify_custom name with
      | Some (`Injected key) -> note_injected t key
      | Some (`Repaired key) -> note_repaired t key
      | None -> ())
  | Sim.Announce.Offset_readable _ | Sim.Announce.Tx_begin _ | Sim.Announce.Tx_finish _ -> ()

(* ------------------------------------------------------------------ *)
(* Deadline evaluation (checker fiber / drain)                        *)
(* ------------------------------------------------------------------ *)

let discharge t =
  List.iter
    (fun (sid, off) ->
      match Hashtbl.find_opt t.obligations (sid, off) with
      | Some ob -> ob.ob_done <- true
      | None -> ())
    (t.follow ())

let check_deadlines t =
  if not (suspended t) then begin
    let now = Sim.Engine.now () in
    if t.on_liveness then
      List.iter
        (fun ob ->
          if (not ob.ob_done) && not ob.ob_fired then begin
            let due = Float.max ob.ob_acked_us t.last_repair_us +. t.commit_deadline_us in
            if now > due then
              (* The incremental follower can hold a stale verdict: a
                 hole it junk-classified during a fault can later lose
                 to the real write through rebuild. Readability is
                 promised to a fresh reader, so give the obligation one
                 from-scratch look before condemning the run. *)
              if t.confirm ~stream:ob.ob_stream ~offset:ob.ob_offset then ob.ob_done <- true
              else begin
              ob.ob_fired <- true;
              fire t Commit_liveness ~time:now
                (Printf.sprintf
                   "acked append @%d on stream %d still unreadable %.0fus past its deadline \
                    (acked %.0fus, last repair %.0fus, deadline %.0fus)"
                   ob.ob_offset ob.ob_stream (now -. due) ob.ob_acked_us t.last_repair_us
                   t.commit_deadline_us)
            end
          end)
        (List.rev t.ob_order);
    if t.on_termination then
      List.iter
        (fun rc ->
          if (not rc.rc_done) && not rc.rc_fired then begin
            let due = Float.max rc.rc_started_us t.last_repair_us +. t.reconfig_deadline_us in
            if now > due then begin
              rc.rc_fired <- true;
              fire t Reconfig_termination ~time:now
                (Printf.sprintf
                   "%s reconfiguration started at %.0fus installed no epoch within %.0fus"
                   rc.rc_kind rc.rc_started_us t.reconfig_deadline_us)
            end
          end)
        (List.rev t.reconfigs)
  end

let next_due t =
  if suspended t then None
  else begin
    let due = ref infinity in
    let consider start deadline = due := Float.min !due (Float.max start t.last_repair_us +. deadline) in
    if t.on_liveness then
      List.iter
        (fun ob -> if (not ob.ob_done) && not ob.ob_fired then consider ob.ob_acked_us t.commit_deadline_us)
        t.ob_order;
    if t.on_termination then
      List.iter
        (fun rc -> if (not rc.rc_done) && not rc.rc_fired then consider rc.rc_started_us t.reconfig_deadline_us)
        t.reconfigs;
    if Float.is_finite !due then Some !due else None
  end

let arm ?(specs = all) ?(commit_deadline_us = 400_000.) ?(reconfig_deadline_us = 400_000.)
    ?(check_every_us = 10_000.) ?(streams = []) ?(follow = fun () -> [])
    ?(confirm = fun ~stream:_ ~offset:_ -> false) () =
  let t =
    {
      on_liveness = List.mem Commit_liveness specs;
      on_read_committed = List.mem Read_committed specs;
      on_termination = List.mem Reconfig_termination specs;
      commit_deadline_us;
      reconfig_deadline_us;
      check_every_us;
      follow;
      confirm;
      tracked = Hashtbl.create 8;
      obligations = Hashtbl.create 256;
      ob_order = [];
      decided = Hashtbl.create 256;
      outstanding = Hashtbl.create 8;
      last_repair_us = 0.;
      reconfigs = [];
      firings = [];
      fired_counts = [];
    }
  in
  List.iter (fun sid -> Hashtbl.replace t.tracked sid ()) streams;
  Sim.Announce.subscribe (on_event t);
  (* The checker fiber never exits: the engine drops pending fibers
     once the main fiber returns, so an idle monitor costs one timer
     event per check interval and nothing after the run. *)
  Sim.Engine.spawn (fun () ->
      let rec loop () =
        Sim.Engine.sleep t.check_every_us;
        discharge t;
        check_deadlines t;
        loop ()
      in
      loop ());
  t

let drain t =
  discharge t;
  check_deadlines t;
  let rec loop () =
    match next_due t with
    | None -> ()
    | Some due ->
        let now = Sim.Engine.now () in
        if due >= now then Sim.Engine.sleep (due -. now +. 1.);
        discharge t;
        check_deadlines t;
        loop ()
  in
  loop ()

let firings t = List.rev t.firings

let violations t =
  List.rev_map
    (fun f ->
      {
        Verifier.v_oracle = "spec:" ^ f.sp_spec;
        v_detail = Printf.sprintf "t=%.0fus: %s" f.sp_time_us f.sp_detail;
      })
    t.firings

let firing_json f =
  Sim.Jout.obj
    [
      ("spec", Sim.Jout.str f.sp_spec);
      ("t_us", Sim.Jout.flt f.sp_time_us);
      ("detail", Sim.Jout.str f.sp_detail);
    ]
