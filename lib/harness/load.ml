type report = {
  throughput : float;
  goodput : float;
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p99_us : float;
  samples : int;
}

let pp_report ppf r =
  Fmt.pf ppf "%.0f ops/s (goodput %.0f), latency mean %.0f µs p50 %.0f µs p99 %.0f µs (%d samples)"
    r.throughput r.goodput r.latency_mean_us r.latency_p50_us r.latency_p99_us r.samples

type window = {
  mutable measuring : bool;
  latencies : Sim.Stats.Series.t;
  mutable completed : int;
  mutable succeeded : int;
}

let fresh_window () =
  { measuring = false; latencies = Sim.Stats.Series.create (); completed = 0; succeeded = 0 }

let record w ~started ok =
  if w.measuring then begin
    Sim.Stats.Series.add w.latencies (Sim.Engine.now () -. started);
    w.completed <- w.completed + 1;
    if ok then w.succeeded <- w.succeeded + 1
  end

let finish w ~measure_us =
  let seconds = measure_us /. 1e6 in
  let lat p = if Sim.Stats.Series.count w.latencies = 0 then 0. else Sim.Stats.Series.percentile w.latencies p in
  {
    throughput = float_of_int w.completed /. seconds;
    goodput = float_of_int w.succeeded /. seconds;
    latency_mean_us = Sim.Stats.Series.mean w.latencies;
    latency_p50_us = lat 50.;
    latency_p99_us = lat 99.;
    samples = w.completed;
  }

let run_window w ~warmup_us ~measure_us =
  Sim.Engine.sleep warmup_us;
  w.measuring <- true;
  Sim.Engine.sleep measure_us;
  w.measuring <- false;
  finish w ~measure_us

let closed_loop ?(warmup_us = 200_000.) ?(measure_us = 1_000_000.) ~fibers op =
  if fibers < 1 then invalid_arg "Load.closed_loop: need at least one fiber";
  let w = fresh_window () in
  for _ = 1 to fibers do
    Sim.Engine.spawn (fun () ->
        let rec loop () =
          let started = Sim.Engine.now () in
          let ok = op () in
          record w ~started ok;
          loop ()
        in
        loop ())
  done;
  run_window w ~warmup_us ~measure_us

let open_loop ?(warmup_us = 200_000.) ?(measure_us = 1_000_000.) ?(max_outstanding = 10_000)
    ~rate op =
  if rate <= 0. then invalid_arg "Load.open_loop: rate must be positive";
  let w = fresh_window () in
  let outstanding = ref 0 in
  let mean_gap = 1e6 /. rate in
  Sim.Engine.spawn (fun () ->
      let rng = Sim.Rng.split (Sim.Engine.rng ()) in
      let rec generate () =
        Sim.Engine.sleep (Sim.Rng.exponential rng ~mean:mean_gap);
        if !outstanding < max_outstanding then begin
          incr outstanding;
          Sim.Engine.spawn (fun () ->
              let started = Sim.Engine.now () in
              let ok = op () in
              decr outstanding;
              record w ~started ok)
        end;
        generate ()
      in
      generate ());
  run_window w ~warmup_us ~measure_us

module Population = struct
  type cfg = {
    clients : int;
    rate_per_client : float;
    link_us : float;
    service_us : float;
    stations : int;
    station_slots : int;
    max_outstanding : int;
    warmup_us : float;
    measure_us : float;
    drain_us : float;
    seed : int;
  }

  let default_cfg =
    {
      clients = 10_000;
      rate_per_client = 1.0;
      link_us = 200.;
      service_us = 50.;
      stations = 8;
      station_slots = 8;
      max_outstanding = 4;
      warmup_us = 100_000.;
      measure_us = 500_000.;
      drain_us = 10_000.;
      seed = 1;
    }

  (* One driver's view: a contiguous block of modeled clients. All
     fields are mutated only by the owning shard's events; shard 0
     reads them after the completion signal (whose cross-shard
     delivery provides the happens-before edge). *)
  type driver = {
    d_count : int;  (* clients in this block *)
    d_out : int array;  (* per-client in-flight ops *)
    d_rng : Sim.Rng.t;
    mutable d_issued : int;
    mutable d_dropped : int;
    mutable d_completed : int;
    mutable d_win_completed : int;  (* completions inside the window *)
    d_lat : Sim.Stats.Series.t;  (* window latencies; frozen after m_end *)
  }

  (* A modeled service station: [st_free.(i)] is the virtual time slot
     [i] frees up. Mutated only by its owning shard. *)
  type station = { st_free : float array; st_rng : Sim.Rng.t }

  type snapshot = { sn_issued : int; sn_dropped : int; sn_completed : int; sn_win : int }

  type result = {
    pop_report : report;
    pop_issued : int;
    pop_completed : int;
    pop_dropped : int;
    pop_inflight : int;  (* still unanswered at the drain deadline *)
  }

  type t = {
    p_cfg : cfg;
    p_shards : int;
    p_drivers : driver array;  (* one per shard *)
    p_stations : station array;
    p_snaps : snapshot array;  (* written by each shard at its deadline *)
    mutable p_arrived : int;  (* shard-0 state *)
    mutable p_waiter : unit Sim.Engine.resumer option;
  }

  let create ?(shards = 1) cfg =
    if shards < 1 then invalid_arg "Population.create: shards must be at least 1";
    if cfg.clients < shards then invalid_arg "Population.create: need at least one client per shard";
    if cfg.rate_per_client <= 0. then invalid_arg "Population.create: rate must be positive";
    if cfg.stations < 1 || cfg.station_slots < 1 then
      invalid_arg "Population.create: need at least one station and slot";
    if cfg.max_outstanding < 1 then
      invalid_arg "Population.create: max_outstanding must be at least 1";
    let block = cfg.clients / shards and extra = cfg.clients mod shards in
    {
      p_cfg = cfg;
      p_shards = shards;
      p_drivers =
        Array.init shards (fun k ->
            {
              d_count = (block + if k < extra then 1 else 0);
              d_out = Array.make (block + if k < extra then 1 else 0) 0;
              d_rng = Sim.Rng.create_stream cfg.seed ~stream:(101 + k);
              d_issued = 0;
              d_dropped = 0;
              d_completed = 0;
              d_win_completed = 0;
              d_lat = Sim.Stats.Series.create ();
            })
        (* driver streams decorrelated from station streams below *);
      p_stations =
        Array.init cfg.stations (fun i ->
            {
              st_free = Array.make cfg.station_slots 0.;
              st_rng = Sim.Rng.create_stream cfg.seed ~stream:(100_001 + i);
            });
      p_snaps = Array.make shards { sn_issued = 0; sn_dropped = 0; sn_completed = 0; sn_win = 0 };
      p_arrived = 0;
      p_waiter = None;
    }

  let station_shard p st = st mod p.p_shards

  (* Runs on the client's shard when the modeled response lands. *)
  let complete p ~shard ~client ~started =
    let d = p.p_drivers.(shard) in
    d.d_out.(client) <- d.d_out.(client) - 1;
    d.d_completed <- d.d_completed + 1;
    let now = Sim.Engine.now () in
    let m_start = p.p_cfg.warmup_us and m_end = p.p_cfg.warmup_us +. p.p_cfg.measure_us in
    if now >= m_start && now < m_end then begin
      d.d_win_completed <- d.d_win_completed + 1;
      Sim.Stats.Series.add d.d_lat (now -. started)
    end

  (* Runs on the station's shard: queue for the least-loaded slot, pay
     an exponential service time, send the response home. *)
  let station_arrive p ~st ~shard ~client ~started =
    let s = p.p_stations.(st) in
    let free = s.st_free in
    let best = ref 0 in
    for i = 1 to Array.length free - 1 do
      if free.(i) < free.(!best) then best := i
    done;
    let now = Sim.Engine.now () in
    let start = if free.(!best) > now then free.(!best) else now in
    let fin = start +. Sim.Rng.exponential s.st_rng ~mean:p.p_cfg.service_us in
    free.(!best) <- fin;
    Sim.Engine.post ~shard ~after:(fin -. now +. p.p_cfg.link_us) (fun () ->
        complete p ~shard ~client ~started)

  let signal_done p shard =
    let d = p.p_drivers.(shard) in
    p.p_snaps.(shard) <-
      {
        sn_issued = d.d_issued;
        sn_dropped = d.d_dropped;
        sn_completed = d.d_completed;
        sn_win = d.d_win_completed;
      };
    Sim.Engine.post ~shard:0 (fun () ->
        p.p_arrived <- p.p_arrived + 1;
        if p.p_arrived = p.p_shards then
          match p.p_waiter with Some resume -> resume () | None -> ())

  let shard_init p ~shard =
    if shard < 0 || shard >= p.p_shards then invalid_arg "Population.shard_init: no such shard";
    let cfg = p.p_cfg in
    let d = p.p_drivers.(shard) in
    let gen_end = cfg.warmup_us +. cfg.measure_us in
    let deadline = gen_end +. cfg.drain_us in
    (* One fiber drives the whole block: aggregate Poisson arrivals at
       block-size × per-client rate, a uniform client pick per arrival
       — statistically the superposition of per-client processes,
       without a continuation per client. *)
    let gap_mean = 1e6 /. (cfg.rate_per_client *. float_of_int d.d_count) in
    Sim.Engine.spawn (fun () ->
        let rec generate () =
          Sim.Engine.sleep (Sim.Rng.exponential d.d_rng ~mean:gap_mean);
          let now = Sim.Engine.now () in
          if now < gen_end then begin
            let client = Sim.Rng.int d.d_rng d.d_count in
            if d.d_out.(client) >= cfg.max_outstanding then d.d_dropped <- d.d_dropped + 1
            else begin
              d.d_out.(client) <- d.d_out.(client) + 1;
              d.d_issued <- d.d_issued + 1;
              let st = Sim.Rng.int d.d_rng cfg.stations in
              let started = now in
              Sim.Engine.post ~shard:(station_shard p st) ~after:cfg.link_us (fun () ->
                  station_arrive p ~st ~shard ~client ~started)
            end;
            generate ()
          end
        in
        generate ();
        let now = Sim.Engine.now () in
        if deadline > now then Sim.Engine.sleep (deadline -. now);
        signal_done p shard)

  let await p =
    (if p.p_arrived < p.p_shards then
       Sim.Engine.suspend (fun resume -> p.p_waiter <- Some resume));
    let issued = ref 0 and dropped = ref 0 and completed = ref 0 and win = ref 0 in
    Array.iter
      (fun s ->
        issued := !issued + s.sn_issued;
        dropped := !dropped + s.sn_dropped;
        completed := !completed + s.sn_completed;
        win := !win + s.sn_win)
      p.p_snaps;
    let merged = Sim.Stats.Series.create () in
    Array.iter (fun d -> Sim.Stats.Series.iter d.d_lat (Sim.Stats.Series.add merged)) p.p_drivers;
    let seconds = p.p_cfg.measure_us /. 1e6 in
    let lat pct =
      if Sim.Stats.Series.count merged = 0 then 0. else Sim.Stats.Series.percentile merged pct
    in
    {
      pop_report =
        {
          throughput = float_of_int !win /. seconds;
          goodput = float_of_int !win /. seconds;
          latency_mean_us = Sim.Stats.Series.mean merged;
          latency_p50_us = lat 50.;
          latency_p99_us = lat 99.;
          samples = !win;
        };
      pop_issued = !issued;
      pop_completed = !completed;
      pop_dropped = !dropped;
      pop_inflight = !issued - !completed;
    }
end

let measure_counter ?(warmup_us = 200_000.) ?(measure_us = 1_000_000.) get =
  Sim.Engine.sleep warmup_us;
  let before = get () in
  Sim.Engine.sleep measure_us;
  let after = get () in
  float_of_int (after - before) /. (measure_us /. 1e6)
