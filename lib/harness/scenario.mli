(** Config-driven scenario driver (DESIGN.md §12).

    A scenario names everything one fuzz case needs: seed, topology
    and workload mix ({!Fuzz.config}), an explicit fault plan, the
    {!Spec} machines to arm, and optionally a failpoint. Scenarios
    serialize to a versioned JSON document, so the interesting test
    matrix lives in files and CI steps, not in code — the [logConfig]
    pattern from the verified-distributed-log exemplar. *)

type t = {
  sc_name : string;
  sc_seed : int;
  sc_config : Fuzz.config;
  sc_plan : (float * Sim.Fault.action) list;
  sc_specs : Spec.spec list;
  sc_spec_deadline_us : float option;  (** overrides both spec deadlines *)
  sc_failpoint : string option;  (** {!Corfu.Cluster} failpoint, if any *)
}

(** Bumped on any incompatible change to the scenario JSON layout. *)
val version : int

val encode : t -> string

(** @raise Sim.Jin.Parse_error on malformed JSON.
    @raise Invalid_argument on an unknown version or spec name. *)
val decode : string -> t

(** [run sc] executes the scenario as one fuzz case ({!Fuzz.run}) with
    its specs armed. Determinism contract is {!Fuzz.run}'s: same
    scenario, byte-identical trace. *)
val run : t -> Fuzz.outcome

(** Built-in scenarios, including
    ["sequencer-takeover-under-partition"] — a sequencer replacement
    racing a storage-node partition, the repo's analog of the
    exemplar's producer takeover — and ["crash-restart-baseline"]. *)
val builtins : t list

val find : string -> t option
