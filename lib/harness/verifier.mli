(** Global invariant oracles for the simulation fuzzer (DESIGN.md §9).

    Each oracle is a {e pure} function from post-run observations to a
    list of violations; the fuzz harness ({!Fuzz}) collects the
    observations with a fresh observer client after the workload and
    every scheduled fault have settled. Purity keeps the oracles
    unit-testable on hand-built histories and lets the shrinker re-run
    them cheaply against candidate plans. *)

type violation = { v_oracle : string; v_detail : string }

val pp_violation : Format.formatter -> violation -> unit

(** [durability ~acked ~read]: every append acked to a client survives
    — [read off] (the observer's resolved read) returns exactly the
    acked payload. [read] returns [None] for junk/unreadable slots. *)
val durability : acked:(Corfu.Types.offset * bytes) list -> read:(Corfu.Types.offset -> bytes option) -> violation list

(** [hole_freedom ~tail ~resolve]: after settling, every offset below
    the observer's tail resolves to data or junk — the committed
    prefix has no stuck holes. *)
val hole_freedom :
  tail:Corfu.Types.offset -> resolve:(Corfu.Types.offset -> [ `Data | `Junk | `Unresolved ]) -> violation list

(** [stream_order ~acked ~views]: per-stream total order. [views] is
    each client's post-sync playback — [(client, [(stream, member
    offsets in playback order)])]. Checks that every view is strictly
    increasing, that all clients play identical sequences, and that
    every acked [(stream, offset)] appears in every view. *)
val stream_order :
  acked:(Corfu.Types.stream_id * Corfu.Types.offset) list ->
  views:(string * (Corfu.Types.stream_id * Corfu.Types.offset list) list) list ->
  violation list

(** [convergence ~states]: all clients' canonical object-state
    renderings agree after a full sync. *)
val convergence : states:(string * string) list -> violation list

(** One transaction's visibility probe: the unique marker it wrote to
    both objects, the outcome the client was told, and whether the
    marker is visible in each object after settling. *)
type tx_probe = {
  t_tag : string;
  t_committed : bool;
  t_in_map : bool;
  t_in_set : bool;
}

(** [atomicity ~txs]: committed transactions are fully visible, aborted
    ones fully invisible — no torn or leaking transactions. *)
val atomicity : txs:tx_probe list -> violation list
