(** Simulation fuzzer: randomized fault-plan exploration with global
    invariant oracles and automatic plan shrinking (DESIGN.md §9).

    A fuzz case is the triple (seed, {!config}, plan). Everything the
    case does — engine scheduling, fault randomness, workload
    randomness — derives from the seed, so {!run} on the same triple
    reproduces the same virtual-time trace byte for byte: metrics and
    span dumps from a replay compare equal with [cmp]. Failing triples
    serialize to a versioned JSON artifact ({!encode_artifact}) that
    [tangoctl fuzz replay] and [tangoctl fuzz shrink] consume.

    Generated plans are {e make-whole}: every fault carries a recovery
    partner, and storage faults are serialized onto disjoint chains, so
    a correct build produces zero violations on every seed. Any
    violation is a bug.

    {b Liveness semantics (repair-then-deadline).} Workload liveness
    is judged against a {e whole} system, in two steps: at
    [f_repair_margin_us] after the last planned fault event, {!run}
    re-applies every missing recovery partner (restarts for crashes,
    heal for partitions, edge clears, SSD repairs) — shrinking
    routinely drops them — and only a workload that {e still} cannot
    finish by [f_deadline_us] is a ["liveness"] violation. Without
    the repair step, any shrunk plan that leaves a projection member
    permanently unreachable would stall fundamentally, and the
    shrinker would converge on that stall instead of the original
    failure. The online spec machines ({!Spec}) use the same clock
    convention: their deadlines are suspended while a repairable
    fault is outstanding and restart from the last repair. *)

type config = {
  f_servers : int;  (** storage nodes at boot, arranged in chains of 2 *)
  f_clients : int;  (** each contributes one appender and one transactor *)
  f_appends : int;  (** raw appends per appender *)
  f_txs : int;  (** transactions per transactor *)
  f_events : int;  (** primary fault events (recovery partners are extra) *)
  f_fault_at_us : float;  (** first fault no earlier than this *)
  f_fault_window_us : float;  (** faults land inside this window *)
  f_deadline_us : float;  (** workload must finish by this virtual time *)
  f_repair_margin_us : float;
      (** make-whole repairs run this long after the last planned
          fault event (the repair-then-deadline rule above) *)
  f_settle_us : float;  (** quiesce time before the oracle phase *)
  f_horizon_us : float;  (** hard virtual-time ceiling for one run *)
  f_shrink_runs : int;  (** shrink budget, counted in re-runs *)
}

val default_config : config

(** [gen_plan ~seed config] draws a random make-whole fault plan:
    storage crash/restart, single-node partition/heal, appender→storage
    degrade/clear, SSD fail/repair, sequencer replacement, and
    scale-out/in customs. The sequencer, auxiliary, and client hosts
    are never crashed or partitioned (their RPCs wait without
    timeouts); at most one partition and one scale-in per plan. *)
val gen_plan : seed:int -> config -> (float * Sim.Fault.action) list

type outcome = {
  oc_violations : Verifier.violation list;
  oc_acked : int;  (** raw appends acked to workload clients *)
  oc_committed : int;
  oc_aborted : int;
  oc_fault_events : int;  (** fault actions actually applied *)
  oc_spec_firings : Spec.firing list;
      (** online spec-machine firings, oldest first; each carries the
          virtual timestamp at which the property broke mid-run *)
  oc_end_us : float;  (** virtual time when the oracle phase finished *)
  oc_metrics_json : string;  (** canonical; byte-identical on replay *)
  oc_spans_json : string option;  (** present when [capture_spans] *)
  oc_flight_json : string option;
      (** {!Sim.Flight.dump_json} when any snapshot fired — the run
          arms the flight recorder, and an oracle violation (or an
          abort with violations pending) triggers a capture *)
}

(** [run ?failpoint ?capture_spans ~seed config ~plan] executes one
    fuzz case: boot a cluster, start the failure monitor, schedule
    [plan] (rebinding [Custom] thunks against the live cluster), drive
    the randomized workload, make the system whole, settle, then judge
    every {!Verifier} oracle with fresh observer clients. [failpoint]
    enables a {!Corfu.Cluster} failpoint for the duration (sensitivity
    testing); failpoints are reset on exit even on exceptions. Engine
    deadlock or horizon overrun is reported as a ["liveness"]
    violation, an escaped exception as ["exception"].

    [specs] arms the named {!Spec} machines for the run: a dedicated
    follower client discharges readability obligations, the machines
    fire mid-run, and their firings are folded into [oc_violations]
    with oracle [spec:<name>] — first-class shrink targets.
    [spec_deadline_us] overrides both spec deadlines (default 400 ms
    virtual). Arming specs changes the event schedule, so traces are
    only comparable between runs armed with the same [specs]. *)
val run :
  ?failpoint:string ->
  ?capture_spans:bool ->
  ?specs:Spec.spec list ->
  ?spec_deadline_us:float ->
  seed:int ->
  config ->
  plan:(float * Sim.Fault.action) list ->
  outcome

type shrink_result = {
  sh_plan : (float * Sim.Fault.action) list;  (** the minimal reproducer *)
  sh_runs : int;  (** re-runs spent *)
  sh_oracle : string;  (** the oracle the minimal plan still trips *)
}

(** [shrink ?failpoint ~seed config plan ~oracle] minimizes [plan]
    while the named oracle keeps firing: greedy event removal to a
    fixpoint, per-event time bisection toward the window start, then
    partition-component narrowing. A candidate that trips only a
    {e different} oracle is rejected — the reproducer explains the
    original failure. Bounded by [config.f_shrink_runs] re-runs.
    [specs] re-arms the same spec machines on every candidate run, so
    [spec:<name>] oracles shrink like any other. *)
val shrink :
  ?failpoint:string ->
  ?specs:Spec.spec list ->
  ?spec_deadline_us:float ->
  seed:int ->
  config ->
  (float * Sim.Fault.action) list ->
  oracle:string ->
  shrink_result

(** Bumped on any incompatible change to the artifact JSON layout. *)
val artifact_version : int

val encode_config : config -> string
val decode_config : Sim.Jin.t -> config

(** [encode_artifact ~seed config plan] packages a fuzz case as a
    self-contained versioned JSON document. *)
val encode_artifact : seed:int -> config -> (float * Sim.Fault.action) list -> string

(** [decode_artifact s] reads an artifact back. Custom actions decode
    with placeholder thunks; {!run} rebinds them.
    @raise Sim.Jin.Parse_error on malformed JSON.
    @raise Invalid_argument on an unknown version. *)
val decode_artifact : string -> int * config * (float * Sim.Fault.action) list

(** [report_json ~runs] renders a machine-readable campaign report
    ([schema_version] 1): per-seed violation counts, oracle names,
    spec firings with virtual timestamps, and workload totals, plus
    the campaign-wide violation total. *)
val report_json : runs:(int * outcome) list -> string
