(* Config-driven scenario driver: a named, versioned, serializable
   bundle of everything one fuzz case needs — topology and workload
   mix (the Fuzz.config), an explicit fault plan, the spec machines to
   arm, and optionally a failpoint. The JSON form is the test-matrix
   currency: CI and operators exchange scenario files the way the P
   exemplar exchanges logConfig test machines. *)

type t = {
  sc_name : string;
  sc_seed : int;
  sc_config : Fuzz.config;
  sc_plan : (float * Sim.Fault.action) list;
  sc_specs : Spec.spec list;
  sc_spec_deadline_us : float option;
  sc_failpoint : string option;
}

let version = 1

(* Exact numerals, same contract as the plan encoder. *)
let num v =
  if Float.is_integer v && Float.abs v < 9.007199254740992e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let encode sc =
  Sim.Jout.obj
    (List.concat
       [
         [
           ("version", string_of_int version);
           ("tool", Sim.Jout.str "tango-scenario");
           ("name", Sim.Jout.str sc.sc_name);
           ("seed", string_of_int sc.sc_seed);
           ("config", Fuzz.encode_config sc.sc_config);
           ("specs", Sim.Jout.arr (List.map (fun s -> Sim.Jout.str (Spec.name s)) sc.sc_specs));
         ];
         (match sc.sc_spec_deadline_us with
         | Some d -> [ ("spec_deadline_us", num d) ]
         | None -> []);
         (match sc.sc_failpoint with
         | Some fp -> [ ("failpoint", Sim.Jout.str fp) ]
         | None -> []);
         [ ("plan", Sim.Fault.encode_plan sc.sc_plan) ];
       ])

(* Decoded customs get placeholder thunks; {!Fuzz.run} rebinds every
   custom action against the live cluster before scheduling. *)
let unbound name () =
  invalid_arg (Printf.sprintf "Scenario: custom action %S was not rebound" name)

let decode s =
  let doc = Sim.Jin.parse s in
  let v = Sim.Jin.to_int (Sim.Jin.member "version" doc) in
  if v <> version then
    invalid_arg
      (Printf.sprintf "Scenario.decode: scenario version %d, this build reads %d" v version);
  {
    sc_name = Sim.Jin.to_string (Sim.Jin.member "name" doc);
    sc_seed = Sim.Jin.to_int (Sim.Jin.member "seed" doc);
    sc_config = Fuzz.decode_config (Sim.Jin.member "config" doc);
    sc_plan =
      Sim.Fault.decode_plan_value
        ~custom:(fun name -> unbound name)
        (Sim.Jin.member "plan" doc);
    sc_specs =
      List.map
        (fun v -> Spec.of_name (Sim.Jin.to_string v))
        (Sim.Jin.to_list (Sim.Jin.member "specs" doc));
    sc_spec_deadline_us =
      (match Sim.Jin.member_opt "spec_deadline_us" doc with
      | Some v -> Some (Sim.Jin.to_float v)
      | None -> None);
    sc_failpoint =
      (match Sim.Jin.member_opt "failpoint" doc with
      | Some v -> Some (Sim.Jin.to_string v)
      | None -> None);
  }

let run sc =
  Fuzz.run ?failpoint:sc.sc_failpoint ~specs:sc.sc_specs
    ?spec_deadline_us:sc.sc_spec_deadline_us ~seed:sc.sc_seed sc.sc_config ~plan:sc.sc_plan

(* ------------------------------------------------------------------ *)
(* Built-in scenarios                                                 *)
(* ------------------------------------------------------------------ *)

let custom name = Sim.Fault.Custom (name, unbound name)

(* The repo's analog of the verified-log exemplar's producer takeover:
   one storage node is partitioned away, the sequencer is replaced
   {e while} the partition is up (the takeover's seal round must cope
   with an unreachable node), and the partition heals afterwards. A
   correct build sails through with every spec armed; the wedge-class
   regressions (lost rebuild scan, forgotten seal tail) fire
   commit-liveness mid-run. *)
let sequencer_takeover_under_partition =
  {
    sc_name = "sequencer-takeover-under-partition";
    sc_seed = 7;
    sc_config = { Fuzz.default_config with f_appends = 14; f_txs = 6 };
    sc_plan =
      [
        (25_000., Sim.Fault.Partition [ [ "storage-4" ] ]);
        (40_000., custom "replace-sequencer");
        (90_000., Sim.Fault.Heal);
      ];
    sc_specs = Spec.all;
    sc_spec_deadline_us = None;
    sc_failpoint = None;
  }

(* Minimal smoke: one crash/restart pair on a single chain, all specs
   armed. *)
let crash_restart_baseline =
  {
    sc_name = "crash-restart-baseline";
    sc_seed = 1;
    sc_config = { Fuzz.default_config with f_appends = 10; f_txs = 4 };
    sc_plan = [ (20_000., Sim.Fault.Crash "storage-2"); (55_000., Sim.Fault.Restart "storage-2") ];
    sc_specs = Spec.all;
    sc_spec_deadline_us = None;
    sc_failpoint = None;
  }

let builtins = [ sequencer_takeover_under_partition; crash_restart_baseline ]

let find name = List.find_opt (fun sc -> String.equal sc.sc_name name) builtins
