(** Fault-scenario measurement: attach a {!Sim.Fault} controller to a
    CORFU cluster, run a workload through a scheduled fault plan, and
    turn the controller's event log plus the cluster's recovery records
    into availability metrics.

    Determinism: everything here is a pure function of (world seed,
    fault seed, plan) — see the contract in {!Sim.Fault}. *)

(** One storage-node failure, correlated from crash to recovery. *)
type incident = {
  inc_epoch : Corfu.Types.epoch;  (** epoch installed by the recovery *)
  inc_dead : string;
  inc_spare : string;
  inc_crashed_us : float;  (** injected crash (detection time if none) *)
  inc_detected_us : float;  (** recovery seal began *)
  inc_recovered_us : float;  (** new projection accepted *)
  inc_unavailable_us : float;  (** recovered - crashed *)
  inc_rebuild_entries : int;
  inc_rebuild_bytes : int;
}

(** [install ?seed ?plan cluster] creates a fault controller, installs
    it on the cluster's network fabric, and schedules [plan] (absolute
    virtual-time actions). Call before spawning workload fibers. *)
val install :
  ?seed:int -> ?plan:(float * Sim.Fault.action) list -> Corfu.Cluster.t -> Sim.Fault.t

(** [incidents fault cluster] joins {!Sim.Fault.events} crash entries
    with {!Corfu.Cluster.recoveries} by host name, oldest first. *)
val incidents : Sim.Fault.t -> Corfu.Cluster.t -> incident list

val pp_incident : Format.formatter -> incident -> unit

(** {2 Completion recorder}

    Tracks the largest gap between consecutive operation completions
    across all workers — the client-observed stall during a failure,
    which bounds the availability hole even when every operation
    eventually succeeds. *)

type recorder

(** [recorder ?stall_threshold_us ()] starts tracking at the current
    virtual time. When [stall_threshold_us] is given and the flight
    recorder is enabled, a completion gap exceeding both the threshold
    and the previous maximum triggers a {!Sim.Flight.snapshot} with
    reason ["chaos-stall"] — at most one capture per new worst gap. *)
val recorder : ?stall_threshold_us:float -> unit -> recorder

(** Call on every completed operation (any worker). *)
val note : recorder -> unit

val max_gap_us : recorder -> float

(** Virtual time at which the largest gap started. *)
val max_gap_start_us : recorder -> float

val completions : recorder -> int
