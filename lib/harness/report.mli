(** Versioned, machine-readable run reports.

    A report aggregates one or more {e scenarios} — each a single
    [Engine.run] of a bench experiment — into one JSON document:

    {v
    { "schema_version": 2,
      "tool": "tango-bench",
      "scenarios": [
        { "name": "fig5", "seed": 42,
          "params": { "servers": "6", ... },
          "summary": { "appends_per_s": 12345.0, ... },
          "virtual_end_us": 400000.0,
          "perf": { "wall_s": 0.8, "gc_minor_words": 1.2e7,
                    "gc_major_words": 3.4e5 },
          "metrics": { "counters": [...], "gauges": [...],
                       "histograms": [...], "series": [...] } } ] }
    v}

    The embedded ["metrics"] object is {!Sim.Metrics.to_json} captured
    right after the scenario's run, so per-component histograms carry
    their percentile fields ([p50_us]/[p90_us]/[p99_us]) and resource
    time series ride along verbatim. ["perf"] (new in schema 2,
    optional) records the real-machine cost of producing the scenario:
    wall-clock seconds and GC word deltas, captured by {!with_perf} —
    the denominators of the hot-path regression gate.

    The collector is global and disabled by default so experiments can
    call {!add_scenario} unconditionally: without {!enable} (set when
    the bench driver sees [--json]) every call is a no-op. *)

(** Bumped on any incompatible change to the document layout.
    Version history: 1 = original; 2 = optional per-scenario ["perf"]
    object; 3 = optional per-scenario ["timeseries"] (windowed
    telemetry, {!Sim.Timeseries.to_json}) and ["alerts"] (SLO alert
    transitions, {!Sim.Slo.alerts_json}) sections. Readers accept all
    earlier versions (absent sections simply decode as absent). *)
val schema_version : int

(** Real-machine cost of one scenario run. *)
type perf = { wall_s : float; gc_minor_words : float; gc_major_words : float }

(** [with_perf f] runs [f] and measures it: wall-clock via
    [Unix.gettimeofday], allocation via [Gc.minor_words]/[major_words]
    deltas. The GC deltas are deterministic for a deterministic [f];
    only [wall_s] varies run to run. *)
val with_perf : (unit -> 'a) -> 'a * perf

val enable : unit -> unit
val enabled : unit -> bool

(** [add_scenario ~name ~seed ... ()] appends one scenario record.
    [metrics_json] must be a complete JSON object (normally
    [Sim.Metrics.to_json ()]); it is embedded unquoted, as are
    [timeseries_json] (a {!Sim.Timeseries.to_json} object) and
    [alerts_json] (a {!Sim.Slo.alerts_json} array) when given. No-op
    while the collector is disabled. *)
val add_scenario :
  name:string ->
  seed:int ->
  ?params:(string * string) list ->
  ?summary:(string * float) list ->
  ?perf:perf ->
  ?timeseries_json:string ->
  ?alerts_json:string ->
  virtual_end_us:float ->
  metrics_json:string ->
  unit ->
  unit

(** The whole report document. [tool] defaults to ["tango-bench"]. *)
val to_json : ?tool:string -> unit -> string

(** [write path] saves {!to_json} to [path] (trailing newline added). *)
val write : ?tool:string -> string -> unit

(** Drop all collected scenarios (the enabled flag is untouched). *)
val clear : unit -> unit

(** {2 Decoding}

    The read side covers what the regression tooling needs: scenario
    names, seeds, summaries, perf, and the presence/shape of the v3
    telemetry sections. Params and embedded metrics are skipped.
    Accepts schema versions 1 through 3. *)

type parsed_scenario = {
  ps_name : string;
  ps_seed : int;
  ps_summary : (string * float) list;
  ps_perf : perf option;  (** always [None] in version-1 documents *)
  ps_has_timeseries : bool;  (** a ["timeseries"] section is present (v3) *)
  ps_alerts : int option;
      (** number of alert transitions when an ["alerts"] section is
          present (v3); [None] otherwise *)
}

type parsed = { p_version : int; p_tool : string; p_scenarios : parsed_scenario list }

(** @raise Sim.Jin.Parse_error on malformed input or an unsupported
    schema version. *)
val parse : string -> parsed
