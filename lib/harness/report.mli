(** Versioned, machine-readable run reports.

    A report aggregates one or more {e scenarios} — each a single
    [Engine.run] of a bench experiment — into one JSON document:

    {v
    { "schema_version": 1,
      "tool": "tango-bench",
      "scenarios": [
        { "name": "fig5", "seed": 42,
          "params": { "servers": "6", ... },
          "summary": { "appends_per_s": 12345.0, ... },
          "virtual_end_us": 400000.0,
          "metrics": { "counters": [...], "gauges": [...],
                       "histograms": [...], "series": [...] } } ] }
    v}

    The embedded ["metrics"] object is {!Sim.Metrics.to_json} captured
    right after the scenario's run, so per-component histograms carry
    their percentile fields ([p50_us]/[p90_us]/[p99_us]) and resource
    time series ride along verbatim.

    The collector is global and disabled by default so experiments can
    call {!add_scenario} unconditionally: without {!enable} (set when
    the bench driver sees [--json]) every call is a no-op. *)

(** Bumped on any incompatible change to the document layout. *)
val schema_version : int

val enable : unit -> unit
val enabled : unit -> bool

(** [add_scenario ~name ~seed ... ()] appends one scenario record.
    [metrics_json] must be a complete JSON object (normally
    [Sim.Metrics.to_json ()]); it is embedded unquoted. No-op while
    the collector is disabled. *)
val add_scenario :
  name:string ->
  seed:int ->
  ?params:(string * string) list ->
  ?summary:(string * float) list ->
  virtual_end_us:float ->
  metrics_json:string ->
  unit ->
  unit

(** The whole report document. [tool] defaults to ["tango-bench"]. *)
val to_json : ?tool:string -> unit -> string

(** [write path] saves {!to_json} to [path] (trailing newline added). *)
val write : ?tool:string -> string -> unit

(** Drop all collected scenarios (the enabled flag is untouched). *)
val clear : unit -> unit
