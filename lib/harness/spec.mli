(** Online temporal spec machines for the fuzzer (DESIGN.md §12).

    Post-hoc safety oracles ({!Verifier}) can prove a settled run
    wrong, but they cannot see a run that never settles, or a reader
    that briefly observed an undecided transaction. Spec machines
    subscribe to the {!Sim.Announce} instrumentation bus and evaluate
    temporal properties {e while the run executes}, firing with the
    virtual timestamp of the violation:

    - {b CommitDurability/Liveness} ([commit-liveness]): every acked
      append becomes stream-readable within a deadline. The clock is
      suspended while any repairable fault is outstanding and restarts
      from the last repair — liveness is only promised of a whole
      system (the fuzzer's make-whole contract, {!Fuzz}).
    - {b ReadCommitted} ([read-committed]): no runtime playback ever
      applies a transaction's writes while that runtime's commit/abort
      decision is still unrecorded (the §3c decision-then-apply
      discipline). Purely event-driven; no deadline.
    - {b ReconfigTermination} ([reconfig-termination]): every
      seal/scale/replace that starts installs a new projection epoch
      within a deadline (same fault-suspension rule as liveness).

    Determinism: machines run inside the simulation — the checker is
    an ordinary fiber, so arming a machine changes the event schedule,
    but identically for identical (seed, config, specs). Firings
    trigger {!Sim.Flight} snapshots (reason [spec:<name>], first
    firing per machine) and convert to {!Verifier.violation}s with
    oracle [spec:<name>], which makes them first-class shrink targets
    for {!Fuzz.shrink}. *)

type spec = Commit_liveness | Read_committed | Reconfig_termination

val all : spec list

val name : spec -> string
(** Kebab-case wire name: ["commit-liveness"], ["read-committed"],
    ["reconfig-termination"]. *)

val of_name : string -> spec
(** @raise Invalid_argument on an unknown name. *)

type firing = { sp_spec : string; sp_time_us : float; sp_detail : string }

type t

val arm :
  ?specs:spec list ->
  ?commit_deadline_us:float ->
  ?reconfig_deadline_us:float ->
  ?check_every_us:float ->
  ?streams:int list ->
  ?follow:(unit -> (int * int) list) ->
  ?confirm:(stream:int -> offset:int -> bool) ->
  unit ->
  t
(** Arm the machines for the current engine run. [specs] defaults to
    {!all}; deadlines default to 400 ms virtual, checked every
    [check_every_us] (default 10 ms). [streams] names the stream ids
    whose acked appends carry a readability obligation, and [follow]
    is the harness-provided probe: called from the checker fiber, it
    returns the [(stream, offset)] members that became visible to a
    dedicated follower client since the last call — stream visibility,
    not raw offset reads, is what the log promises (a broken
    backpointer chain leaves an offset readable but unreachable).
    [confirm] is the second-chance probe consulted just before a
    commit-liveness firing: an incremental follower can hold a stale
    junk verdict for a slot that a concurrent fill briefly timed out
    on and a rebuild later repaired, so the obligation is condemned
    only if a from-scratch look (typically a fresh stream attach)
    also misses it. Default: no second chance.
    Must be called from inside {!Sim.Engine.run}. *)

val drain : t -> unit
(** Let every outstanding obligation resolve or fire before the run
    ends: re-probe, then sleep to the furthest pending deadline. A
    clean settled run returns without advancing time; a wedged one
    advances at most one deadline and fires. Call after the workload
    settles, before reading {!violations}. *)

val firings : t -> firing list
(** All firings so far, oldest first (capped per spec). *)

val violations : t -> Verifier.violation list
(** {!firings} as verifier violations, oracle [spec:<name>], the
    virtual timestamp embedded in the detail. *)

val firing_json : firing -> string
