type op = Read of int | Write of int | Cas of { expected : int; desired : int; ok : bool }

type event = { started : float; finished : float; op : op }

exception Work_limit

(* Depth-first search over linearization orders: an operation may be
   linearized next only if no other pending operation finished before
   it started (that operation would really-precede it). Memoize on
   (done set, register value): two search states with the same
   remaining operations and the same current value are equivalent.

   The done set is a byte-packed bitset, so histories are no longer
   capped at the word size — the fuzzer's multi-client workloads
   produce histories in the hundreds of operations. The search is
   still exponential in the worst case; [max_states] bounds the number
   of distinct memoized states and raises {!Work_limit} beyond it, so
   a pathological history reports "too hard" instead of hanging the
   test suite. *)
let check_register ?(initial = 0) ?(max_states = 2_000_000) history =
  let events = Array.of_list history in
  let n = Array.length events in
  Array.iter
    (fun e ->
      if e.finished < e.started then
        invalid_arg "Linearizability.check_register: finished < started")
    events;
  if n = 0 then true
  else begin
    let nbytes = (n + 7) / 8 in
    let done_set = Bytes.make nbytes '\000' in
    let mem i = Char.code (Bytes.get done_set (i lsr 3)) land (1 lsl (i land 7)) <> 0 in
    let set i =
      Bytes.set done_set (i lsr 3)
        (Char.chr (Char.code (Bytes.get done_set (i lsr 3)) lor (1 lsl (i land 7))))
    in
    let clear i =
      Bytes.set done_set (i lsr 3)
        (Char.chr (Char.code (Bytes.get done_set (i lsr 3)) land lnot (1 lsl (i land 7))))
    in
    let remaining = ref n in
    let failed = Hashtbl.create 1024 in
    (* really-precedes: e1 responded before e2 was invoked *)
    let precedes i j = events.(i).finished < events.(j).started in
    let rec search value =
      if !remaining = 0 then true
      else
        let key = (Bytes.to_string done_set, value) in
        if Hashtbl.mem failed key then false
        else begin
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < n do
            let candidate = !i in
            incr i;
            if not (mem candidate) then begin
              (* minimal among pending ops w.r.t. real-time order? *)
              let minimal = ref true in
              for j = 0 to n - 1 do
                if (not (mem j)) && j <> candidate && precedes j candidate then minimal := false
              done;
              if !minimal then begin
                let take value' =
                  set candidate;
                  decr remaining;
                  let r = search value' in
                  clear candidate;
                  incr remaining;
                  if r then ok := true
                in
                match events.(candidate).op with
                | Write w -> take w
                | Read r -> if r = value then take value
                | Cas { expected; desired; ok = succeeded } ->
                    (* a successful CAS saw [expected] and installed
                       [desired]; a failed one saw anything else and
                       left the register alone *)
                    if succeeded then begin
                      if value = expected then take desired
                    end
                    else if value <> expected then take value
              end
            end
          done;
          if not !ok then begin
            if Hashtbl.length failed >= max_states then raise Work_limit;
            Hashtbl.replace failed key ()
          end;
          !ok
        end
    in
    search initial
  end
