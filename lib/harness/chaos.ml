type incident = {
  inc_epoch : Corfu.Types.epoch;
  inc_dead : string;
  inc_spare : string;
  inc_crashed_us : float;
  inc_detected_us : float;
  inc_recovered_us : float;
  inc_unavailable_us : float;
  inc_rebuild_entries : int;
  inc_rebuild_bytes : int;
}

let install ?seed ?(plan = []) cluster =
  let f = Sim.Fault.create ?seed () in
  Sim.Net.install_fault (Corfu.Cluster.net cluster) f;
  if plan <> [] then Sim.Fault.plan f plan;
  f

(* A recovery's incident starts at the crash that caused it: the latest
   crash of the dead host at or before the recovery's seal. A monitor
   replacement of a host that never crashed (false positive, or an SSD
   failure injected outside the controller) starts at detection. *)
let incidents fault cluster =
  let evs = Sim.Fault.events fault in
  let crash_before name t0 =
    let lbl = "crash " ^ name in
    List.fold_left
      (fun acc e ->
        if e.Sim.Fault.ev_label = lbl && e.ev_time <= t0 then Some e.ev_time else acc)
      None evs
  in
  Corfu.Cluster.recoveries cluster
  |> List.map (fun (r : Corfu.Cluster.recovery) ->
         let crashed =
           match crash_before r.rec_dead r.rec_started_us with
           | Some t -> t
           | None -> r.rec_started_us
         in
         {
           inc_epoch = r.rec_epoch;
           inc_dead = r.rec_dead;
           inc_spare = r.rec_spare;
           inc_crashed_us = crashed;
           inc_detected_us = r.rec_started_us;
           inc_recovered_us = r.rec_installed_us;
           inc_unavailable_us = r.rec_installed_us -. crashed;
           inc_rebuild_entries = r.rec_copied_entries;
           inc_rebuild_bytes = r.rec_copied_bytes;
         })

let pp_incident ppf i =
  Format.fprintf ppf
    "%s -> %s (epoch %d): crash %.0fus, detected +%.0fus, recovered +%.0fus \
     (window %.1fms), rebuilt %d entries / %d bytes"
    i.inc_dead i.inc_spare i.inc_epoch i.inc_crashed_us
    (i.inc_detected_us -. i.inc_crashed_us)
    (i.inc_recovered_us -. i.inc_crashed_us)
    (i.inc_unavailable_us /. 1_000.)
    i.inc_rebuild_entries i.inc_rebuild_bytes

type recorder = {
  mutable last_us : float;
  mutable max_gap_us : float;
  mutable gap_at_us : float;
  mutable completions : int;
  stall_threshold_us : float;  (* infinity = no flight trigger *)
}

let recorder ?(stall_threshold_us = infinity) () =
  {
    last_us = Sim.Engine.now ();
    max_gap_us = 0.;
    gap_at_us = 0.;
    completions = 0;
    stall_threshold_us;
  }

let note r =
  let now = Sim.Engine.now () in
  let gap = now -. r.last_us in
  if gap > r.max_gap_us then begin
    (* Snapshot only on a new worst gap past the threshold, so a long
       outage produces one flight capture, not one per completion. *)
    if gap > r.stall_threshold_us && Sim.Flight.enabled () then begin
      Sim.Flight.record ~host:"chaos" Sim.Flight.Fault ~name:"stall" ~value:gap;
      Sim.Flight.snapshot ~reason:"chaos-stall"
    end;
    r.max_gap_us <- gap;
    r.gap_at_us <- r.last_us
  end;
  r.last_us <- now;
  r.completions <- r.completions + 1

let max_gap_us r = r.max_gap_us
let max_gap_start_us r = r.gap_at_us
let completions r = r.completions
