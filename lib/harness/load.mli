(** Load generation and measurement for the evaluation harness.

    Mirrors the paper's methodology (§6): closed loops with a window
    of outstanding operations per client for the latency/throughput
    curves, and open loops with a target rate for the
    fixed-write-load experiments. Warmup is excluded from
    measurement. *)

type report = {
  throughput : float;  (** completed ops per second *)
  goodput : float;  (** successful (committed) ops per second *)
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p99_us : float;
  samples : int;
}

val pp_report : Format.formatter -> report -> unit

(** [closed_loop ~fibers op] spawns [fibers] fibers repeatedly
    invoking [op] (its [bool] result marks goodput) and measures for
    [measure_us] (default 1 s) after [warmup_us] (default 200 ms).
    Call from the simulation's main fiber. *)
val closed_loop :
  ?warmup_us:float -> ?measure_us:float -> fibers:int -> (unit -> bool) -> report

(** [open_loop ~rate op] fires [op] at [rate] per second (Poisson
    arrivals), each in its own fiber, capping in-flight ops at
    [max_outstanding] (default 10_000; excess arrivals are dropped and
    not counted). *)
val open_loop :
  ?warmup_us:float ->
  ?measure_us:float ->
  ?max_outstanding:int ->
  rate:float ->
  (unit -> bool) ->
  report

(** Aggregate client-population model: open-loop load at 10⁴–10⁶
    modeled clients without a fiber per client. One driver fiber per
    engine shard produces the block's {e superposed} Poisson arrival
    process (block-size × per-client rate) and tracks per-client
    in-flight counts in plain int arrays; requests visit modeled
    service stations (per-slot free-time arrays, exponential service)
    and return a link delay later. Memory and event cost scale with
    the arrival rate, not the client count.

    Under {!Sim.Engine.run_sharded}, stations are placed round-robin
    across shards and all client↔station traffic crosses via
    {!Sim.Engine.post} at [link_us] — so the engine's lookahead must
    be at most [link_us]. The whole model is deterministic: drivers
    and stations draw from decorrelated {!Sim.Rng.create_stream}
    streams of [cfg.seed].

    Usage (shard 0's driver starts from the main fiber; other shards
    via [~init]):
    {[
      let pop = Load.Population.create ~shards cfg in
      Sim.Engine.run_sharded ~shards ~lookahead:cfg.link_us
        ~init:(fun ~shard -> Load.Population.shard_init pop ~shard)
        (fun () ->
          Load.Population.shard_init pop ~shard:0;
          Load.Population.await pop)
    ]}
    The same code runs unchanged (and byte-identically) under plain
    {!Sim.Engine.run} with [shards = 1]. *)
module Population : sig
  type cfg = {
    clients : int;  (** total modeled clients across all shards *)
    rate_per_client : float;  (** open-loop ops/s per client *)
    link_us : float;  (** one-way client↔station delay, µs *)
    service_us : float;  (** mean exponential service time, µs *)
    stations : int;  (** modeled service stations *)
    station_slots : int;  (** parallel slots per station *)
    max_outstanding : int;  (** per-client in-flight cap; excess arrivals drop *)
    warmup_us : float;  (** window start (absolute; population starts at t=0) *)
    measure_us : float;  (** window length *)
    drain_us : float;  (** grace after the window before snapshotting *)
    seed : int;  (** RNG seed for drivers and stations *)
  }

  (** Override with [{ default_cfg with ... }]. *)
  val default_cfg : cfg

  type t

  type result = {
    pop_report : report;  (** windowed completions only *)
    pop_issued : int;  (** requests actually sent (drops excluded) *)
    pop_completed : int;  (** responses received by the drain deadline *)
    pop_dropped : int;  (** arrivals rejected by [max_outstanding] *)
    pop_inflight : int;  (** [issued - completed] at the deadline *)
  }

  (** [create ?shards cfg] preallocates every per-shard and per-station
      structure — call it {e before} [Engine.run]/[run_sharded] so no
      shard races the setup. [shards] (default 1) must match the run.
      @raise Invalid_argument on a non-positive rate, fewer clients
      than shards, or empty stations/slots. *)
  val create : ?shards:int -> cfg -> t

  (** [shard_init t ~shard] spawns shard [shard]'s driver fiber. Call
      once per shard: from the main fiber for shard 0, from
      [run_sharded]'s [~init] for the rest. *)
  val shard_init : t -> shard:int -> unit

  (** [await t] blocks the calling fiber (main, shard 0) until every
      shard has hit its drain deadline, then merges the per-shard
      windows into one result. *)
  val await : t -> result
end

(** [measure_counter ~warmup_us ~measure_us get] samples a
    monotonically increasing counter over the window and returns its
    rate per second — for throughput that is counted inside the
    system (e.g. records applied). *)
val measure_counter : ?warmup_us:float -> ?measure_us:float -> (unit -> int) -> float
