(* Global invariant oracles for the simulation fuzzer. Every oracle is
   a pure function over observations the fuzz harness collects after
   the run settles — no simulation state in here, so each oracle is
   unit-testable with hand-built histories and reusable outside the
   fuzzer (e.g. in integration tests). *)

type violation = { v_oracle : string; v_detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.v_oracle v.v_detail

let violation v_oracle fmt = Printf.ksprintf (fun v_detail -> { v_oracle; v_detail }) fmt

(* Cap enumerations inside a detail string: a shrunk reproducer wants
   the first few witnesses, not ten thousand offsets. *)
let sample ?(limit = 5) pp xs =
  let n = List.length xs in
  let shown = List.filteri (fun i _ -> i < limit) xs in
  let body = String.concat ", " (List.map pp shown) in
  if n > limit then Printf.sprintf "%s, ... (%d total)" body n else body

(* ------------------------------------------------------------------ *)
(* Acked-append durability                                            *)
(* ------------------------------------------------------------------ *)

let durability ~acked ~read =
  let lost =
    List.filter_map
      (fun (off, payload) ->
        match read off with
        | Some stored when Bytes.equal stored payload -> None
        | Some _ -> Some (off, "read back different data")
        | None -> Some (off, "resolved as junk or unreadable"))
      acked
  in
  match lost with
  | [] -> []
  | _ ->
      [
        violation "durability" "acked appends lost: %s"
          (sample (fun (off, why) -> Printf.sprintf "offset %d (%s)" off why) lost);
      ]

(* ------------------------------------------------------------------ *)
(* Committed-prefix hole-freedom                                      *)
(* ------------------------------------------------------------------ *)

let hole_freedom ~tail ~resolve =
  let unresolved = ref [] in
  for off = tail - 1 downto 0 do
    match resolve off with
    | `Data | `Junk -> ()
    | `Unresolved -> unresolved := off :: !unresolved
  done;
  match !unresolved with
  | [] -> []
  | offs ->
      [
        violation "hole-freedom" "offsets below tail %d still unresolved after settling: %s" tail
          (sample string_of_int offs);
      ]

(* ------------------------------------------------------------------ *)
(* Per-stream total order                                             *)
(* ------------------------------------------------------------------ *)

(* [views]: per client, per stream, the member offsets in playback
   order after a full sync. [acked]: (stream, offset) pairs whose
   append was acked to some client. Three clauses:
   - each view is strictly increasing (playback follows log order);
   - all clients see the {e same} sequence for a stream;
   - every acked member is present in every view of its stream. *)
let stream_order ~acked ~views =
  let out = ref [] in
  let push v = out := v :: !out in
  List.iter
    (fun (client, streams) ->
      List.iter
        (fun (sid, offsets) ->
          let rec ascending = function
            | a :: (b :: _ as rest) -> if a < b then ascending rest else Some (a, b)
            | _ -> None
          in
          match ascending offsets with
          | Some (a, b) ->
              push
                (violation "stream-order" "client %s stream %d plays offset %d after %d" client
                   sid b a)
          | None -> ())
        streams)
    views;
  (* Cross-client agreement: pick the first client's view of each
     stream as the reference. *)
  (match views with
  | [] -> ()
  | (ref_client, ref_streams) :: rest ->
      List.iter
        (fun (sid, ref_offsets) ->
          List.iter
            (fun (client, streams) ->
              match List.assoc_opt sid streams with
              | None -> ()
              | Some offsets ->
                  if offsets <> ref_offsets then
                    push
                      (violation "stream-order"
                         "clients %s and %s disagree on stream %d: [%s] vs [%s]" ref_client
                         client sid
                         (sample string_of_int ref_offsets)
                         (sample string_of_int offsets)))
            rest)
        ref_streams);
  List.iter
    (fun (sid, off) ->
      List.iter
        (fun (client, streams) ->
          match List.assoc_opt sid streams with
          | None ->
              push
                (violation "stream-order" "client %s never discovered stream %d (acked offset %d)"
                   client sid off)
          | Some offsets ->
              if not (List.mem off offsets) then
                push
                  (violation "stream-order"
                     "acked offset %d on stream %d missing from client %s's playback" off sid
                     client))
        views)
    acked;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Cross-client object-state convergence                              *)
(* ------------------------------------------------------------------ *)

(* [states]: per client, a canonical (order-independent) rendering of
   every object's state after a full sync. All clients must agree. *)
let convergence ~states =
  match states with
  | [] | [ _ ] -> []
  | (ref_client, ref_state) :: rest ->
      List.filter_map
        (fun (client, state) ->
          if String.equal state ref_state then None
          else
            Some
              (violation "convergence" "clients %s and %s diverge: %S vs %S" ref_client client
                 ref_state state))
        rest

(* ------------------------------------------------------------------ *)
(* Transaction atomicity                                              *)
(* ------------------------------------------------------------------ *)

type tx_probe = {
  t_tag : string;  (** unique marker the transaction wrote to every object *)
  t_committed : bool;  (** what [end_tx] reported to the client *)
  t_in_map : bool;  (** marker visible in the map after settling *)
  t_in_set : bool;  (** marker visible in the set after settling *)
}

(* A committed transaction's writes are all visible; an aborted one's
   are all invisible — no torn transactions, matching §3's
   serializability contract. *)
let atomicity ~txs =
  List.filter_map
    (fun p ->
      match (p.t_committed, p.t_in_map, p.t_in_set) with
      | true, true, true | false, false, false -> None
      | true, m, s ->
          Some
            (violation "atomicity" "committed tx %s torn: map=%b set=%b" p.t_tag m s)
      | false, m, s ->
          Some
            (violation "atomicity" "aborted tx %s leaked writes: map=%b set=%b" p.t_tag m s))
    txs
