module Jout = Sim.Jout
module Jin = Sim.Jin

let schema_version = 3

type perf = { wall_s : float; gc_minor_words : float; gc_major_words : float }

type scenario = {
  sc_name : string;
  sc_seed : int;
  sc_params : (string * string) list;
  sc_summary : (string * float) list;
  sc_virtual_end_us : float;
  sc_metrics_json : string;
  sc_perf : perf option;
  sc_timeseries_json : string option;  (* v3: Sim.Timeseries.to_json *)
  sc_alerts_json : string option;  (* v3: Sim.Slo.alerts_json *)
}

let on = ref false
let scenarios : scenario list ref = ref []  (* newest first *)

let enable () = on := true
let enabled () = !on
let clear () = scenarios := []

let add_scenario ~name ~seed ?(params = []) ?(summary = []) ?perf ?timeseries_json ?alerts_json
    ~virtual_end_us ~metrics_json () =
  if !on then
    scenarios :=
      {
        sc_name = name;
        sc_seed = seed;
        sc_params = params;
        sc_summary = summary;
        sc_virtual_end_us = virtual_end_us;
        sc_metrics_json = metrics_json;
        sc_perf = perf;
        sc_timeseries_json = timeseries_json;
        sc_alerts_json = alerts_json;
      }
      :: !scenarios

let with_perf f =
  let w0 = Gc.minor_words () and j0 = (Gc.quick_stat ()).Gc.major_words in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () and j1 = (Gc.quick_stat ()).Gc.major_words in
  (r, { wall_s = t1 -. t0; gc_minor_words = w1 -. w0; gc_major_words = j1 -. j0 })

let perf_json p =
  Jout.obj
    [
      ("wall_s", Jout.flt p.wall_s);
      ("gc_minor_words", Jout.flt p.gc_minor_words);
      ("gc_major_words", Jout.flt p.gc_major_words);
    ]

let scenario_json sc =
  Jout.obj
    (List.concat
       [
         [
           ("name", Jout.str sc.sc_name);
           ("seed", string_of_int sc.sc_seed);
           ("params", Jout.obj (List.map (fun (k, v) -> (k, Jout.str v)) sc.sc_params));
           ("summary", Jout.obj (List.map (fun (k, v) -> (k, Jout.flt v)) sc.sc_summary));
           ("virtual_end_us", Jout.flt sc.sc_virtual_end_us);
         ];
         (match sc.sc_perf with None -> [] | Some p -> [ ("perf", perf_json p) ]);
         [ ("metrics", sc.sc_metrics_json) ];
         (match sc.sc_timeseries_json with None -> [] | Some j -> [ ("timeseries", j) ]);
         (match sc.sc_alerts_json with None -> [] | Some j -> [ ("alerts", j) ]);
       ])

let to_json ?(tool = "tango-bench") () =
  Jout.obj
    [
      ("schema_version", string_of_int schema_version);
      ("tool", Jout.str tool);
      ("scenarios", Jout.arr (List.rev_map scenario_json !scenarios));
    ]

let write ?tool path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ?tool ());
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

type parsed_scenario = {
  ps_name : string;
  ps_seed : int;
  ps_summary : (string * float) list;
  ps_perf : perf option;
  ps_has_timeseries : bool;
  ps_alerts : int option;  (* number of alert transitions, when present *)
}

type parsed = { p_version : int; p_tool : string; p_scenarios : parsed_scenario list }

let parse s =
  let doc = Jin.parse s in
  let p_version = Jin.to_int (Jin.member "schema_version" doc) in
  if p_version < 1 || p_version > schema_version then
    raise (Jin.Parse_error (Printf.sprintf "Report.parse: unsupported schema_version %d" p_version));
  let p_tool = Jin.to_string (Jin.member "tool" doc) in
  let parse_perf v =
    {
      wall_s = Jin.to_float (Jin.member "wall_s" v);
      gc_minor_words = Jin.to_float (Jin.member "gc_minor_words" v);
      gc_major_words = Jin.to_float (Jin.member "gc_major_words" v);
    }
  in
  let parse_scenario v =
    {
      ps_name = Jin.to_string (Jin.member "name" v);
      ps_seed = Jin.to_int (Jin.member "seed" v);
      ps_summary =
        (match Jin.member "summary" v with
        | Jin.Obj kvs -> List.map (fun (k, n) -> (k, Jin.to_float n)) kvs
        | _ -> raise (Jin.Parse_error "Report.parse: summary must be an object"));
      (* v1 documents carry no "perf" member; v2 may omit it too. *)
      ps_perf = Option.map parse_perf (Jin.member_opt "perf" v);
      (* v3 additions; absent from v1/v2 documents. *)
      ps_has_timeseries = Option.is_some (Jin.member_opt "timeseries" v);
      ps_alerts =
        Option.map (fun a -> List.length (Jin.to_list a)) (Jin.member_opt "alerts" v);
    }
  in
  {
    p_version;
    p_tool;
    p_scenarios = List.map parse_scenario (Jin.to_list (Jin.member "scenarios" doc));
  }
