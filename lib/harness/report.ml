module Jout = Sim.Jout

let schema_version = 1

type scenario = {
  sc_name : string;
  sc_seed : int;
  sc_params : (string * string) list;
  sc_summary : (string * float) list;
  sc_virtual_end_us : float;
  sc_metrics_json : string;
}

let on = ref false
let scenarios : scenario list ref = ref []  (* newest first *)

let enable () = on := true
let enabled () = !on
let clear () = scenarios := []

let add_scenario ~name ~seed ?(params = []) ?(summary = []) ~virtual_end_us ~metrics_json () =
  if !on then
    scenarios :=
      {
        sc_name = name;
        sc_seed = seed;
        sc_params = params;
        sc_summary = summary;
        sc_virtual_end_us = virtual_end_us;
        sc_metrics_json = metrics_json;
      }
      :: !scenarios

let scenario_json sc =
  Jout.obj
    [
      ("name", Jout.str sc.sc_name);
      ("seed", string_of_int sc.sc_seed);
      ("params", Jout.obj (List.map (fun (k, v) -> (k, Jout.str v)) sc.sc_params));
      ("summary", Jout.obj (List.map (fun (k, v) -> (k, Jout.flt v)) sc.sc_summary));
      ("virtual_end_us", Jout.flt sc.sc_virtual_end_us);
      ("metrics", sc.sc_metrics_json);
    ]

let to_json ?(tool = "tango-bench") () =
  Jout.obj
    [
      ("schema_version", string_of_int schema_version);
      ("tool", Jout.str tool);
      ("scenarios", Jout.arr (List.rev_map scenario_json !scenarios));
    ]

let write ?tool path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json ?tool ());
      output_char oc '\n')
