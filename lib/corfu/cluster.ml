type recovery = {
  rec_epoch : Types.epoch;
  rec_dead : string;
  rec_spare : string;
  rec_started_us : float;
  rec_installed_us : float;
  rec_copied_entries : int;
  rec_copied_bytes : int;
}

type scale_kind = Scale_out | Scale_in | Segments_retired

type scale_event = {
  sc_epoch : Types.epoch;
  sc_kind : scale_kind;
  sc_boundary : Types.offset;
  sc_servers_before : int;
  sc_servers_after : int;
  sc_segments : int;
  sc_released : string list;
  sc_started_us : float;
  sc_installed_us : float;
}

type t = {
  cluster_net : Sim.Net.t;
  p : Sim.Params.t;
  mutable nodes : Storage_node.t array;
  aux : Auxiliary.t;
  reconfig_host : Sim.Net.host;
  nshards : int;  (* advisory host -> engine-shard placement *)
  mutable sequencer_count : int;
  mutable rebuild_scan : int;
  mutable spare_count : int;
  mutable storage_count : int;  (* names the next provisioned storage-N *)
  mutable recoveries : recovery list;  (* newest first *)
  mutable scale_events : scale_event list;  (* newest first *)
  mutable reconfig_busy : bool;  (* cooperative reconfiguration mutex *)
}

type failpoints = {
  mutable fp_skip_rebuild_scan : bool;
  mutable fp_forget_seal_tail : bool;
  mutable fp_skip_storage_seal : bool;
  mutable fp_blind_commit_apply : bool;
  mutable fp_stall_reconfig : bool;
}

let failpoints =
  {
    fp_skip_rebuild_scan = false;
    fp_forget_seal_tail = false;
    fp_skip_storage_seal = false;
    fp_blind_commit_apply = false;
    fp_stall_reconfig = false;
  }

let reset_failpoints () =
  failpoints.fp_skip_rebuild_scan <- false;
  failpoints.fp_forget_seal_tail <- false;
  failpoints.fp_skip_storage_seal <- false;
  failpoints.fp_blind_commit_apply <- false;
  failpoints.fp_stall_reconfig <- false

let enable_failpoint = function
  | "skip-rebuild-scan" -> failpoints.fp_skip_rebuild_scan <- true
  | "forget-seal-tail" -> failpoints.fp_forget_seal_tail <- true
  | "skip-storage-seal" -> failpoints.fp_skip_storage_seal <- true
  | "blind-commit-apply" -> failpoints.fp_blind_commit_apply <- true
  | "stall-reconfig" -> failpoints.fp_stall_reconfig <- true
  | name -> invalid_arg (Printf.sprintf "Cluster.enable_failpoint: unknown failpoint %S" name)

(* Reconfiguration milestones for the temporal spec plane
   (ReconfigTermination): a started/installed pair brackets every
   epoch change. Guarded, so runs without monitors pay one branch. *)
let announce_started kind =
  if Sim.Announce.active () then Sim.Announce.emit (Sim.Announce.Reconfig_started { kind })

let announce_installed kind epoch =
  if Sim.Announce.active () then
    Sim.Announce.emit (Sim.Announce.Reconfig_installed { kind; epoch })

(* Reconfiguration operations are serialized per cluster: the failure
   monitor, scheduled fault-plan actions, and explicit operator calls
   may all reach for the auxiliary concurrently, and two interleaved
   epoch bumps would each propose projections derived from the same
   predecessor — the Conflict the auxiliary exists to reject. Waiters
   queue cooperatively and re-read the projection once they hold the
   lock, so a queued replacement observes its predecessor's result. *)
let with_reconfig t f =
  while t.reconfig_busy do
    Sim.Engine.sleep t.p.retry_sleep_us
  done;
  t.reconfig_busy <- true;
  Fun.protect ~finally:(fun () -> t.reconfig_busy <- false) f

(* Group [nodes] into replica chains: uniform [chain_length] by
   default, or explicit per-chain lengths via [chains] — which is how
   a segment accepts any server count. *)
let chains_of ~context ?(chain_length = 2) ?chains nodes =
  let count = Array.length nodes in
  if count <= 0 then invalid_arg (context ^ ": the segment needs at least one server");
  match chains with
  | Some lengths ->
      List.iter
        (fun l -> if l < 1 then invalid_arg (context ^ ": chain lengths must be at least 1"))
        lengths;
      let total = List.fold_left ( + ) 0 lengths in
      if total <> count then
        invalid_arg
          (Printf.sprintf "%s: chain lengths sum to %d but the segment has %d servers" context
             total count);
      let at = ref 0 in
      Array.of_list
        (List.map
           (fun l ->
             let chain = Array.sub nodes !at l in
             at := !at + l;
             chain)
           lengths)
  | None ->
      if chain_length < 1 then invalid_arg (context ^ ": chain length must be at least 1");
      if count mod chain_length <> 0 then
        invalid_arg
          (Printf.sprintf
             "%s: cannot split %d servers into chains of length %d — pass ~chains with explicit \
              per-chain lengths for uneven geometry"
             context count chain_length);
      Array.init (count / chain_length)
        (fun set -> Array.init chain_length (fun i -> nodes.((set * chain_length) + i)))

let create ?(params = Sim.Params.default) ?(chain_length = 2) ?chains ?(shards = 1) ~servers () =
  if shards < 1 then invalid_arg "Cluster.create: shards must be at least 1";
  let cluster_net =
    Sim.Net.create ~latency:params.net_latency_us ~bandwidth:params.nic_bandwidth
      ~jitter:params.net_jitter ()
  in
  let nodes =
    Array.init servers (fun i ->
        Storage_node.create ~net:cluster_net ~name:(Printf.sprintf "storage-%d" i) ~params ())
  in
  let replica_sets = chains_of ~context:"Cluster.create" ~chain_length ?chains nodes in
  let sequencer = Sequencer.create ~net:cluster_net ~name:"sequencer-0" ~params () in
  let initial = Projection.flat ~epoch:0 ~replica_sets ~sequencer in
  let aux = Auxiliary.create ~net:cluster_net ~initial in
  let reconfig_host = Sim.Net.add_host cluster_net "reconfig-agent" in
  let t =
    {
      cluster_net;
      p = params;
      nodes;
      aux;
      reconfig_host;
      nshards = shards;
      sequencer_count = 1;
      rebuild_scan = 0;
      spare_count = 0;
      storage_count = servers;
      recoveries = [];
      scale_events = [];
      reconfig_busy = false;
    }
  in
  (* Global log-tail watermark; follows the live sequencer across
     failovers via the latest projection. *)
  Sim.Timeseries.probe ~host:"log" "tail" (fun () ->
      float_of_int (Sequencer.current_tail (Auxiliary.latest t.aux).Projection.sequencer));
  t

let params t = t.p
let net t = t.cluster_net
let shards t = t.nshards

(* Advisory placement: storage node [i] maps to shard [i mod shards];
   every other host (sequencer, auxiliary, reconfig agent, clients)
   stays on shard 0, where the corfu control and data planes — and the
   process-global telemetry registries they feed — always execute. The
   map steers co-location of modeled load (population stations) and
   the cluster-info report; it does not move RPC execution off
   shard 0. *)
let shard_of_host t name =
  if t.nshards = 1 then 0
  else
    match String.index_opt name '-' with
    | Some i when String.sub name 0 i = "storage" -> (
        match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
        | Some n when n >= 0 -> n mod t.nshards
        | Some _ | None -> 0)
    | Some _ | None -> 0
let auxiliary t = t.aux
let storage_nodes t = t.nodes
let sequencer t = (Auxiliary.latest t.aux).Projection.sequencer

let new_client t ~name =
  let host = Sim.Net.add_host t.cluster_net name in
  Client.create ~host ~aux:t.aux ~params:t.p

let client_on t host = Client.create ~host ~aux:t.aux ~params:t.p

(* Raw read used during reconfiguration, bypassing the client library
   (which would chase the not-yet-installed projection). Always reads
   the chain HEAD, and retries it until it answers: the stale-grant
   probe in {!Client} is sound only if everything visible at the head
   was seen by the rebuild scan, so falling back to another replica
   (which may lag a half-completed chain write) is not an option. A
   transiently unreachable head — crashed pending restart, or cut off
   by a partition — just stalls the scan until it comes back; a head
   that is gone for good needs a membership change, which is the
   failure monitor's job, not the scan's. Found by the simulation
   fuzzer: the old untimed RPC left a whole reconfiguration wedged
   (lock held, epoch never published) when the scan hit a partitioned
   head, because a dropped request blocks its caller forever. *)
let raw_read t proj ~epoch off =
  let set = Projection.replica_set proj off in
  let loff = Projection.local_offset proj off in
  let head = set.(0) in
  let rec go () =
    match
      Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.entry_bytes
        ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
        (Storage_node.read_service head)
        { Storage_node.repoch = epoch; roffset = loff }
    with
    | Ok outcome -> outcome
    | Error _ ->
        Sim.Engine.sleep t.p.retry_sleep_us;
        go ()
  in
  go ()

let last_rebuild_scan t = t.rebuild_scan

(* Raw chain write used by the checkpoint scribe (the snapshot's offset
   comes pre-reserved from the sequencer dump, so the normal append
   path does not apply). *)
let raw_write t proj ~epoch off entry =
  let set = Projection.replica_set proj off in
  let loff = Projection.local_offset proj off in
  let req = { Storage_node.wepoch = epoch; woffset = loff; wcell = Types.Data entry } in
  Array.for_all
    (fun node ->
      match
        Sim.Net.call ~req_bytes:t.p.entry_bytes ~resp_bytes:t.p.rpc_bytes ~from:t.reconfig_host
          (Storage_node.write_service node) req
      with
      | Types.Write_ok | Types.Already_written _ -> true
      | Types.Sealed_at _ | Types.Out_of_space -> false)
    set

let start_checkpoint_scribe t ~interval_us =
  Sim.Engine.spawn (fun () ->
      let rec tick () =
        Sim.Engine.sleep interval_us;
        let proj = Auxiliary.latest t.aux in
        let epoch = proj.Projection.epoch in
        (match
           Sim.Net.call ~from:t.reconfig_host
             (Sequencer.dump_service proj.Projection.sequencer)
             epoch
         with
        | None -> () (* sealed: a reconfiguration is in flight *)
        | Some { Sequencer.dump_offset; dump_state_ptrs; dump_streams } ->
            let snapshot =
              { Seq_checkpoint.snap_tail = dump_offset; snap_streams = dump_streams }
            in
            let headers =
              Stream_header.encode_block ~k:t.p.backpointer_k ~current:dump_offset
                [ { Stream_header.stream = Seq_checkpoint.stream_id; backptrs = dump_state_ptrs } ]
            in
            let entry = { Types.headers; payload = Seq_checkpoint.encode snapshot } in
            ignore (raw_write t proj ~epoch dump_offset entry));
        tick ()
      in
      tick ())

(* Seal every distinct storage node of [proj] at [epoch], collecting
   each reachable node's local tail by name. Sealing {e every}
   segment's nodes — not just the tail's — is what makes stale clients
   safe across a segment-map change: a client still on the old epoch
   that maps a new-segment offset through the old geometry hits a
   sealed node, refreshes, and retries under the new map. [dead] gets
   a short-deadline attempt: if the monitor was wrong and it still
   answers, sealing it prevents stale-epoch clients from completing
   chains through it.

   Every node that {e stays} in the projection must actually seal
   before the reconfiguration proceeds — an unreachable survivor is
   retried until it answers. Skipping it (the old behaviour, now the
   [skip-storage-seal] failpoint's territory) leaves a member frozen at
   the old epoch: once it heals, stale-epoch clients can complete
   chain writes through it {e after} the rebuild scan, landing entries
   the new sequencer has never heard of. Found by the simulation
   fuzzer as a durability/liveness hazard under partition-during-
   reconfiguration. *)
let seal_storage ?dead t proj ~epoch =
  let tails = Hashtbl.create 32 in
  List.iter
    (fun node ->
      Sim.Metrics.incr (Sim.Metrics.counter "cluster.seals");
      let is_dead = match dead with Some d -> node == d | None -> false in
      (* Failpoint (fuzzer sensitivity, DESIGN.md §9): collect the tail
         without sealing, leaving stale-epoch clients able to keep
         writing through the old view. *)
      let service =
        if failpoints.fp_skip_storage_seal then fun n ->
          Sim.Net.call_r ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
            (Storage_node.tail_service n) ()
        else fun n ->
          Sim.Net.call_r ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
            (Storage_node.seal_service n) epoch
      in
      if is_dead then begin
        match
          Sim.Net.call_r ~timeout_us:10_000. ~from:t.reconfig_host
            (Storage_node.seal_service node) epoch
        with
        | Ok tail -> Hashtbl.replace tails (Storage_node.name node) tail
        | Error _ -> ()
      end
      else
        let rec go () =
          match service node with
          | Ok tail -> Hashtbl.replace tails (Storage_node.name node) tail
          | Error _ ->
              Sim.Engine.sleep t.p.retry_sleep_us;
              go ()
        in
        go ())
    (Projection.servers proj);
  tails

let replace_sequencer t =
  with_reconfig t
  @@ fun () ->
  Sim.Span.with_span ~host:"reconfig-agent" "recovery.sequencer"
  @@ fun () ->
  Sim.Metrics.incr (Sim.Metrics.counter "cluster.seq_replacements");
  announce_started "sequencer";
  (* Failpoint: wedge the takeover right after it starts — the epoch
     never installs, so ReconfigTermination's deadline fires. *)
  if failpoints.fp_stall_reconfig then Sim.Engine.sleep 60_000_000.;
  let old_proj = Auxiliary.latest t.aux in
  let epoch = old_proj.Projection.epoch + 1 in
  (* 1. Seal the old sequencer so no stale backpointers escape. Its
     answer is the grant frontier: every offset below it was handed
     out under the old epoch, including grants whose chain writes are
     still in flight (and therefore invisible to the storage tails
     collected next). *)
  let seal_tail =
    Sim.Net.call ~from:t.reconfig_host (Sequencer.seal_service old_proj.Projection.sequencer) epoch
  in
  (* 2. Seal every storage node, collecting local tails; the tail
     segment's chain heads carry the highest local tails. *)
  let tails = seal_storage t old_proj ~epoch in
  let tail_seg = Projection.tail_segment old_proj in
  let locals =
    Array.map
      (fun chain ->
        match Hashtbl.find_opt tails (Storage_node.name chain.(0)) with
        | Some tl -> tl
        | None -> -1)
      tail_seg.Projection.seg_sets
  in
  let storage_tail = Projection.global_tail_from_locals old_proj locals in
  (* The new sequencer must start past {e both} frontiers. Starting at
     the storage tail alone re-grants every offset of an unexhausted
     range grant (granted, not yet written) — two clients then hold
     the same offset and one of them loses the write-once race on
     every entry. Found by the simulation fuzzer; the grant holder's
     unwritten slots simply resolve as holes and get filled. *)
  let tail =
    if failpoints.fp_forget_seal_tail then storage_tail else max storage_tail seal_tail
  in
  (* 3. Rebuild per-stream backpointer state by scanning backward,
     stopping at the most recent sequencer checkpoint if one exists
     (§5's proposed optimization, via the scribe) — or at the retired
     boundary, below which everything was prefix-trimmed anyway. *)
  let floor = (Projection.segment old_proj 0).Projection.seg_base in
  let k = t.p.backpointer_k in
  let streams : (Types.stream_id, Types.offset list) Hashtbl.t = Hashtbl.create 64 in
  let scanned = ref 0 in
  let note_headers off (e : Types.entry) =
    List.iter
      (fun (h : Stream_header.t) ->
        let prev = match Hashtbl.find_opt streams h.stream with Some l -> l | None -> [] in
        if List.length prev < k then Hashtbl.replace streams h.stream (prev @ [ off ]))
      (Stream_header.decode_block ~k ~current:off e.Types.headers)
  in
  let rec scan off =
    if off >= floor then begin
      incr scanned;
      match raw_read t old_proj ~epoch off with
      | Types.Read_data e ->
          if Seq_checkpoint.is_snapshot ~k ~current:off e then begin
            let snapshot = Seq_checkpoint.decode e.Types.payload in
            List.iter
              (fun (sid, offs) -> Hashtbl.replace streams sid offs)
              (Seq_checkpoint.merge ~above:streams snapshot ~k)
          end
          else begin
            note_headers off e;
            scan (off - 1)
          end
      | Types.Read_unwritten | Types.Read_junk | Types.Read_trimmed | Types.Read_sealed _ ->
          scan (off - 1)
    end
  in
  (* Failpoint (fuzzer sensitivity, DESIGN.md §9): lose the rebuild —
     the new sequencer comes up with the right tail but no backpointer
     state, so entries appended after the handoff chain to nothing and
     earlier stream history becomes unreachable to fresh readers. *)
  if not failpoints.fp_skip_rebuild_scan then scan (tail - 1);
  t.rebuild_scan <- !scanned;
  Sim.Metrics.add (Sim.Metrics.counter "cluster.rebuild_scanned") !scanned;
  Sim.Trace.f "reconfig" "epoch %d: tail %d rebuilt after scanning %d entries" epoch tail
    !scanned;
  (* 4. Fresh sequencer seeded with the reconstructed state. *)
  let name = Printf.sprintf "sequencer-%d" t.sequencer_count in
  t.sequencer_count <- t.sequencer_count + 1;
  let initial_streams = Hashtbl.fold (fun sid offs acc -> (sid, offs) :: acc) streams [] in
  let sequencer =
    Sequencer.create ~net:t.cluster_net ~name ~params:t.p ~initial_tail:tail ~initial_streams ()
  in
  (* 5. Install the new view: the same segment map under the new
     sequencer. A single reconfiguration agent runs at a time in the
     simulation, so a conflict is a bug. *)
  let proj = Projection.v ~epoch ~segments:old_proj.Projection.segments ~sequencer in
  (match
     Sim.Net.call ~from:t.reconfig_host (Auxiliary.propose_service t.aux) proj
   with
  | Auxiliary.Installed -> ()
  | Auxiliary.Conflict _ -> failwith "Cluster.replace_sequencer: concurrent reconfiguration");
  announce_installed "sequencer" epoch;
  epoch

(* ------------------------------------------------------------------ *)
(* Storage-node replacement (§2.2 reconfiguration)                    *)
(* ------------------------------------------------------------------ *)

let recoveries t = List.rev t.recoveries

let replace_storage_node ?(copy_window = 16) t ~dead =
  with_reconfig t
  @@ fun () ->
  (* Re-read under the lock: a queued replacement must see its
     predecessor's projection, and the node it came to bury may
     already be gone. *)
  let old_proj = Auxiliary.latest t.aux in
  let epoch = old_proj.Projection.epoch + 1 in
  (* The dead member may serve chains in several segments (scale-out
     reuses the old tail's nodes); collect every (segment, set) slot. *)
  let slots =
    let found = ref [] in
    Array.iteri
      (fun si seg ->
        Array.iteri
          (fun s chain -> if Array.exists (fun node -> node == dead) chain then
              found := (si, s) :: !found)
          seg.Projection.seg_sets)
      old_proj.Projection.segments;
    List.rev !found
  in
  if slots = [] then begin
    (* Already replaced by a concurrent recovery (the monitor and a
       scheduled fault-plan action can race to the same corpse): the
       cluster is in the state the caller wanted. *)
    Sim.Trace.f ~host:(Storage_node.name dead) "reconfig"
      "already out of the projection: replacement is a no-op";
    old_proj.Projection.epoch
  end
  else
  Sim.Span.with_span ~host:"reconfig-agent"
    ~args:(if Sim.Span.enabled () then [ ("dead", Storage_node.name dead) ] else [])
    "recovery"
  @@ fun () ->
  let started = Sim.Engine.now () in
  announce_started "storage";
  Sim.Trace.f ~host:(Storage_node.name dead) "reconfig"
    "replacing a member of %d segment chain(s) at epoch %d" (List.length slots) epoch;
  (* 1. Seal the sequencer at the new epoch. It stays in the next
     projection — storage replacement does not lose allocation state —
     so this only forces every client through a projection refresh,
     closing the old epoch before the membership changes. *)
  Sim.Span.with_span "recovery.seal" (fun () ->
      ignore
        (Sim.Net.call ~from:t.reconfig_host
           (Sequencer.seal_service old_proj.Projection.sequencer)
           epoch
          : Types.offset));
  (* 2. Seal every storage node, collecting each survivor's local
     tail. *)
  let tails = Sim.Span.with_span "recovery.seal" (fun () -> seal_storage ~dead t old_proj ~epoch) in
  (* 3. Bring up the spare, pre-sealed at the new epoch. *)
  let spare_name = Printf.sprintf "storage-spare-%d" t.spare_count in
  t.spare_count <- t.spare_count + 1;
  let spare = Storage_node.create ~net:t.cluster_net ~name:spare_name ~params:t.p () in
  ignore (Sim.Net.call ~from:t.reconfig_host (Storage_node.seal_service spare) epoch : Types.offset);
  (* 4. Copy the surviving prefix onto the spare, per segment the dead
     member served, [copy_window] local offsets in flight so the
     rebuild is bounded by SSD bandwidth, not round trips. The
     head-most survivor of each chain is authoritative: anything
     acknowledged to a client reached it before the seal. Data present
     only on the dead node (a torn append's head when the head died) is
     unrecoverable, exactly like a replica loss on the real system —
     the slot reads as unwritten and gets hole-filled. *)
  let copied_entries = ref 0 in
  let copied_bytes = ref 0 in
  let copy_range ~src ~lo ~hi =
    let copy_one loff =
      match
        Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.entry_bytes
          ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host (Storage_node.read_service src)
          { Storage_node.repoch = epoch; roffset = loff }
      with
      | Error _ | Ok (Types.Read_sealed _) ->
          () (* survivor unreachable: the next monitor round handles it *)
      | Ok Types.Read_unwritten -> ()
      | Ok Types.Read_trimmed ->
          ignore
            (Sim.Net.call_r ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
               (Storage_node.trim_service spare)
               { Storage_node.repoch = epoch; roffset = loff }
              : (unit, Sim.Net.rpc_error) result)
      | Ok (Types.Read_data e) -> (
          match
            Sim.Net.call_r ~req_bytes:t.p.entry_bytes ~resp_bytes:t.p.rpc_bytes
              ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
              (Storage_node.write_service spare)
              { Storage_node.wepoch = epoch; woffset = loff; wcell = Types.Data e }
          with
          | Ok Types.Write_ok ->
              incr copied_entries;
              copied_bytes := !copied_bytes + t.p.entry_bytes
          | Ok _ | Error _ -> ())
      | Ok Types.Read_junk -> (
          match
            Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes
              ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
              (Storage_node.write_service spare)
              { Storage_node.wepoch = epoch; woffset = loff; wcell = Types.Junk }
          with
          | Ok Types.Write_ok ->
              incr copied_entries;
              copied_bytes := !copied_bytes + t.p.rpc_bytes
          | Ok _ | Error _ -> ())
    in
    if hi >= lo then begin
      let workers = min copy_window (hi - lo + 1) in
      let remaining = ref workers in
      let all_done = Sim.Ivar.create () in
      let span_parent = Sim.Span.current () in
      for w = 0 to workers - 1 do
        Sim.Engine.spawn (fun () ->
            Sim.Span.with_parent span_parent @@ fun () ->
            let loff = ref (lo + w) in
            while !loff <= hi do
              copy_one !loff;
              loff := !loff + workers
            done;
            decr remaining;
            if !remaining = 0 then Sim.Ivar.fill all_done ())
      done;
      Sim.Ivar.read all_done
    end
  in
  Sim.Span.with_span "recovery.copy" (fun () ->
      List.iter
        (fun (si, s) ->
          let seg = Projection.segment old_proj si in
          let chain = seg.Projection.seg_sets.(s) in
          let survivor =
            let rec first i =
              if i >= Array.length chain then None
              else if chain.(i) != dead && Hashtbl.mem tails (Storage_node.name chain.(i)) then
                Some chain.(i)
              else first (i + 1)
            in
            first 0
          in
          match survivor with
          | None ->
              Sim.Trace.f "reconfig" "set %d of segment %d has no surviving replica: spare holds no prefix"
                s si
          | Some src ->
              let src_tail =
                match Hashtbl.find_opt tails (Storage_node.name src) with
                | Some tl -> tl
                | None -> -1
              in
              let lo = seg.Projection.seg_local_base in
              let hi =
                match seg.Projection.seg_limit with
                | None -> src_tail
                | Some limit ->
                    min src_tail
                      (lo + Projection.seg_cells_below seg ~set:s ~rel:(limit - seg.Projection.seg_base) - 1)
              in
              copy_range ~src ~lo ~hi)
        slots);
  Sim.Metrics.add (Sim.Metrics.counter "cluster.copied_entries") !copied_entries;
  (* 5. Substitute the spare into every chain slot the dead member
     held and install the new view. A single reconfiguration agent
     runs at a time, so a conflict is a bug. *)
  (let slot = ref (-1) in
   Array.iteri (fun j n -> if n == dead then slot := j) t.nodes;
   if !slot >= 0 then t.nodes.(!slot) <- spare);
  let segments =
    Array.map
      (fun seg ->
        {
          seg with
          Projection.seg_sets =
            Array.map
              (Array.map (fun node -> if node == dead then spare else node))
              seg.Projection.seg_sets;
        })
      old_proj.Projection.segments
  in
  let proj = Projection.v ~epoch ~segments ~sequencer:old_proj.Projection.sequencer in
  Sim.Span.with_span "recovery.install" (fun () ->
      match Sim.Net.call ~from:t.reconfig_host (Auxiliary.propose_service t.aux) proj with
      | Auxiliary.Installed -> ()
      | Auxiliary.Conflict _ ->
          failwith "Cluster.replace_storage_node: concurrent reconfiguration");
  Sim.Metrics.incr (Sim.Metrics.counter "cluster.recoveries");
  let installed = Sim.Engine.now () in
  t.recoveries <-
    {
      rec_epoch = epoch;
      rec_dead = Storage_node.name dead;
      rec_spare = spare_name;
      rec_started_us = started;
      rec_installed_us = installed;
      rec_copied_entries = !copied_entries;
      rec_copied_bytes = !copied_bytes;
    }
    :: t.recoveries;
  Sim.Trace.f ~host:spare_name "reconfig"
    "epoch %d installed: %s -> %s, copied %d cells (%d bytes) in %.0f us" epoch
    (Storage_node.name dead) spare_name !copied_entries !copied_bytes (installed -. started);
  announce_installed "storage" epoch;
  epoch

(* ------------------------------------------------------------------ *)
(* Online scale-out / scale-in (segment-map reconfiguration)          *)
(* ------------------------------------------------------------------ *)

let scale_events t = List.rev t.scale_events

(* Distinct members of the tail segment, in set order. *)
let tail_members proj =
  let seg = Projection.tail_segment proj in
  let seen = ref [] in
  Array.iter
    (Array.iter (fun node -> if not (List.memq node !seen) then seen := node :: !seen))
    seg.Projection.seg_sets;
  Array.of_list (List.rev !seen)

(* First local offset past every segment's local range, with the tail
   segment's extent fixed by the seal point. *)
let next_local_base segments ~seal_tail =
  Array.fold_left
    (fun acc seg ->
      let span =
        match seg.Projection.seg_limit with
        | Some limit -> limit - seg.Projection.seg_base
        | None -> max 0 (seal_tail - seg.Projection.seg_base)
      in
      max acc (seg.Projection.seg_local_base + Projection.seg_local_span seg ~span))
    0 segments

(* The shared §2.2 core of scale_out/scale_in: seal the sequencer at
   the new epoch — its tail is the boundary — seal every storage node
   of every segment, bound the old tail segment at the boundary (drop
   it if nothing was ever appended there), open a new unbounded tail
   segment over [new_sets], and propose. No data moves: old offsets
   keep resolving through the segment that wrote them. *)
let reseal_with_tail t ~kind ~started new_sets_of =
  let kind_name = match kind with Scale_in -> "scale-in" | _ -> "scale-out" in
  announce_started kind_name;
  let old_proj = Auxiliary.latest t.aux in
  let epoch = old_proj.Projection.epoch + 1 in
  let servers_before = Projection.num_servers old_proj in
  let boundary =
    Sim.Span.with_span "scale.seal" (fun () ->
        let boundary =
          Sim.Net.call ~from:t.reconfig_host
            (Sequencer.seal_service old_proj.Projection.sequencer)
            epoch
        in
        ignore (seal_storage t old_proj ~epoch : (string, Types.offset) Hashtbl.t);
        boundary)
  in
  let new_sets = new_sets_of ~epoch in
  let old_segments = old_proj.Projection.segments in
  let last = Array.length old_segments - 1 in
  let kept =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun i seg ->
              if i < last then [ seg ]
              else if boundary > seg.Projection.seg_base then
                (* Bound the old tail at the seal point. *)
                [ { seg with Projection.seg_limit = Some boundary } ]
              else [ (* never appended into: drop the empty segment *) ])
            old_segments))
  in
  let tail_seg =
    {
      Projection.seg_base = boundary;
      seg_limit = None;
      seg_local_base = next_local_base old_segments ~seal_tail:boundary;
      seg_sets = new_sets;
    }
  in
  let segments = Array.of_list (kept @ [ tail_seg ]) in
  let proj = Projection.v ~epoch ~segments ~sequencer:old_proj.Projection.sequencer in
  Sim.Span.with_span "scale.install" (fun () ->
      match Sim.Net.call ~from:t.reconfig_host (Auxiliary.propose_service t.aux) proj with
      | Auxiliary.Installed -> ()
      | Auxiliary.Conflict _ -> failwith "Cluster.scale: concurrent reconfiguration");
  t.nodes <- Array.of_list (Projection.servers proj);
  let installed = Sim.Engine.now () in
  let event =
    {
      sc_epoch = epoch;
      sc_kind = kind;
      sc_boundary = boundary;
      sc_servers_before = servers_before;
      sc_servers_after = Projection.num_servers proj;
      sc_segments = Projection.num_segments proj;
      sc_released = [];
      sc_started_us = started;
      sc_installed_us = installed;
    }
  in
  t.scale_events <- event :: t.scale_events;
  Sim.Trace.f "reconfig" "epoch %d: tail segment sealed at %d, %d -> %d servers, %d segments"
    epoch boundary servers_before event.sc_servers_after event.sc_segments;
  announce_installed kind_name epoch;
  epoch

let scale_out ?chain_length ?chains t ~add_servers =
  if add_servers < 1 then invalid_arg "Cluster.scale_out: add_servers must be at least 1";
  with_reconfig t
  @@ fun () ->
  Sim.Span.with_span ~host:"reconfig-agent"
    ~args:(if Sim.Span.enabled () then [ ("add", string_of_int add_servers) ] else [])
    "scale.out"
  @@ fun () ->
  Sim.Metrics.incr (Sim.Metrics.counter "cluster.scale_outs");
  let started = Sim.Engine.now () in
  let old_proj = Auxiliary.latest t.aux in
  let chain_length =
    match chain_length with
    | Some c -> c
    | None -> Array.length (Projection.tail_segment old_proj).Projection.seg_sets.(0)
  in
  reseal_with_tail t ~kind:Scale_out ~started (fun ~epoch ->
      (* Provision the new nodes pre-sealed at the new epoch, then
         stripe the new tail segment over the enlarged set: the old
         tail's nodes plus the fresh ones. *)
      let fresh =
        Array.init add_servers (fun _ ->
            let name = Printf.sprintf "storage-%d" t.storage_count in
            t.storage_count <- t.storage_count + 1;
            let node = Storage_node.create ~net:t.cluster_net ~name ~params:t.p () in
            ignore
              (Sim.Net.call ~from:t.reconfig_host (Storage_node.seal_service node) epoch
                : Types.offset);
            node)
      in
      let members = Array.append (tail_members old_proj) fresh in
      chains_of ~context:"Cluster.scale_out" ~chain_length ?chains members)

let scale_in ?chain_length ?chains t ~remove_servers =
  with_reconfig t
  @@ fun () ->
  Sim.Span.with_span ~host:"reconfig-agent"
    ~args:(if Sim.Span.enabled () then [ ("remove", string_of_int remove_servers) ] else [])
    "scale.in"
  @@ fun () ->
  Sim.Metrics.incr (Sim.Metrics.counter "cluster.scale_ins");
  let started = Sim.Engine.now () in
  let old_proj = Auxiliary.latest t.aux in
  let members = tail_members old_proj in
  if remove_servers < 1 || remove_servers >= Array.length members then
    invalid_arg "Cluster.scale_in: must remove at least one server and keep at least one";
  let keep = Array.sub members 0 (Array.length members - remove_servers) in
  let chain_length =
    match chain_length with
    | Some c -> c
    | None ->
        min (Array.length keep)
          (Array.length (Projection.tail_segment old_proj).Projection.seg_sets.(0))
  in
  (* The removed nodes stay in the cluster as long as a bounded
     segment still maps onto them; {!retire_trimmed_segments} releases
     them once their data is prefix-trimmed away. *)
  reseal_with_tail t ~kind:Scale_in ~started (fun ~epoch:_ ->
      chains_of ~context:"Cluster.scale_in" ~chain_length ?chains keep)

(* A bounded segment is disposable once every node of every chain has
   prefix-trimmed past the segment's local range. *)
let segment_fully_trimmed seg =
  match seg.Projection.seg_limit with
  | None -> false
  | Some limit ->
      let rel = limit - seg.Projection.seg_base in
      let ok = ref true in
      Array.iteri
        (fun s chain ->
          let watermark =
            seg.Projection.seg_local_base + Projection.seg_cells_below seg ~set:s ~rel
          in
          Array.iter
            (fun node -> if Storage_node.trimmed_below node < watermark then ok := false)
            chain)
        seg.Projection.seg_sets;
      !ok

let retire_trimmed_segments t =
  with_reconfig t
  @@ fun () ->
  let old_proj = Auxiliary.latest t.aux in
  let segments = old_proj.Projection.segments in
  (* Only a prefix of the map can retire: segments tile the offset
     space, so dropping one from the middle would tear a hole. *)
  let retire = ref 0 in
  while
    !retire < Array.length segments - 1 && segment_fully_trimmed segments.(!retire)
  do
    incr retire
  done;
  if !retire = 0 then None
  else begin
    Sim.Span.with_span ~host:"reconfig-agent" "scale.retire"
    @@ fun () ->
    announce_started "retire";
    let started = Sim.Engine.now () in
    let epoch = old_proj.Projection.epoch + 1 in
    let servers_before = Projection.num_servers old_proj in
    let kept = Array.sub segments !retire (Array.length segments - !retire) in
    (* No seal needed: the mapping of every live offset is unchanged,
       and a stale client touching a retired offset gets Trimmed from
       the old nodes — the same answer the new map gives. *)
    let proj = Projection.v ~epoch ~segments:kept ~sequencer:old_proj.Projection.sequencer in
    (match Sim.Net.call ~from:t.reconfig_host (Auxiliary.propose_service t.aux) proj with
    | Auxiliary.Installed -> ()
    | Auxiliary.Conflict _ ->
        failwith "Cluster.retire_trimmed_segments: concurrent reconfiguration");
    let survivors = Projection.servers proj in
    let released =
      List.filter_map
        (fun node ->
          if List.memq node survivors then None else Some (Storage_node.name node))
        (Projection.servers old_proj)
    in
    t.nodes <- Array.of_list survivors;
    let installed = Sim.Engine.now () in
    let event =
      {
        sc_epoch = epoch;
        sc_kind = Segments_retired;
        sc_boundary = kept.(0).Projection.seg_base;
        sc_servers_before = servers_before;
        sc_servers_after = Projection.num_servers proj;
        sc_segments = Projection.num_segments proj;
        sc_released = released;
        sc_started_us = started;
        sc_installed_us = installed;
      }
    in
    t.scale_events <- event :: t.scale_events;
    Sim.Metrics.incr (Sim.Metrics.counter "cluster.segment_retirements");
    Sim.Trace.f "reconfig" "epoch %d: retired %d segment(s) below %d, released [%s]" epoch
      !retire event.sc_boundary (String.concat "; " released);
    announce_installed "retire" epoch;
    Some epoch
  end

(* ------------------------------------------------------------------ *)
(* Failure monitor                                                    *)
(* ------------------------------------------------------------------ *)

let start_failure_monitor ?(probe_interval_us = 20_000.) ?(probe_timeout_us = 10_000.) t =
  Sim.Engine.spawn (fun () ->
      let probe epoch node =
        Sim.Metrics.incr (Sim.Metrics.counter "cluster.probes");
        match
          Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.entry_bytes
            ~timeout_us:probe_timeout_us ~from:t.reconfig_host (Storage_node.read_service node)
            { Storage_node.repoch = epoch; roffset = 0 }
        with
        | Ok _ -> true (* any answer, even a sealed error, proves liveness *)
        | Error _ ->
            Sim.Metrics.incr (Sim.Metrics.counter "cluster.probe_failures");
            false
      in
      let rec loop () =
        Sim.Engine.sleep probe_interval_us;
        let proj = Auxiliary.latest t.aux in
        let epoch = proj.Projection.epoch in
        (* Scan the current membership across every segment; a second
           probe confirms before declaring death, so one unlucky
           timeout cannot trigger a reconfiguration. After a
           replacement the projection is stale, so stop this round and
           rescan. *)
        let rec scan = function
          | [] -> ()
          | node :: rest ->
              if probe epoch node || probe epoch node then scan rest
              else begin
                Sim.Trace.f ~host:(Storage_node.name node) "monitor" "no response to two probes: declared dead";
                ignore (replace_storage_node t ~dead:node : Types.epoch)
              end
        in
        scan (Projection.servers proj);
        loop ()
      in
      loop ())
