type recovery = {
  rec_epoch : Types.epoch;
  rec_dead : string;
  rec_spare : string;
  rec_started_us : float;
  rec_installed_us : float;
  rec_copied_entries : int;
  rec_copied_bytes : int;
}

type t = {
  cluster_net : Sim.Net.t;
  p : Sim.Params.t;
  nodes : Storage_node.t array;
  aux : Auxiliary.t;
  reconfig_host : Sim.Net.host;
  mutable sequencer_count : int;
  mutable rebuild_scan : int;
  mutable spare_count : int;
  mutable recoveries : recovery list;  (* newest first *)
}

let make_projection ~epoch ~chain_length nodes sequencer =
  let nsets = Array.length nodes / chain_length in
  let replica_sets =
    Array.init nsets (fun set -> Array.init chain_length (fun i -> nodes.((set * chain_length) + i)))
  in
  Projection.v ~epoch ~replica_sets ~sequencer

let create ?(params = Sim.Params.default) ?(chain_length = 2) ~servers () =
  if servers <= 0 || servers mod chain_length <> 0 then
    invalid_arg "Cluster.create: servers must be a positive multiple of the chain length";
  let cluster_net =
    Sim.Net.create ~latency:params.net_latency_us ~bandwidth:params.nic_bandwidth
      ~jitter:params.net_jitter ()
  in
  let nodes =
    Array.init servers (fun i ->
        Storage_node.create ~net:cluster_net ~name:(Printf.sprintf "storage-%d" i) ~params ())
  in
  let sequencer = Sequencer.create ~net:cluster_net ~name:"sequencer-0" ~params () in
  let initial = make_projection ~epoch:0 ~chain_length nodes sequencer in
  let aux = Auxiliary.create ~net:cluster_net ~initial in
  let reconfig_host = Sim.Net.add_host cluster_net "reconfig-agent" in
  {
    cluster_net;
    p = params;
    nodes;
    aux;
    reconfig_host;
    sequencer_count = 1;
    rebuild_scan = 0;
    spare_count = 0;
    recoveries = [];
  }

let params t = t.p
let net t = t.cluster_net
let auxiliary t = t.aux
let storage_nodes t = t.nodes
let sequencer t = (Auxiliary.latest t.aux).Projection.sequencer

let new_client t ~name =
  let host = Sim.Net.add_host t.cluster_net name in
  Client.create ~host ~aux:t.aux ~params:t.p

let client_on t host = Client.create ~host ~aux:t.aux ~params:t.p

(* Raw read used during reconfiguration, bypassing the client library
   (which would chase the not-yet-installed projection). *)
let raw_read t proj ~epoch off =
  let set = Projection.replica_set proj off in
  let loff = Projection.local_offset proj off in
  let head = set.(0) in
  Sim.Net.call ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.entry_bytes ~from:t.reconfig_host
    (Storage_node.read_service head)
    { Storage_node.repoch = epoch; roffset = loff }

let last_rebuild_scan t = t.rebuild_scan

(* Raw chain write used by the checkpoint scribe (the snapshot's offset
   comes pre-reserved from the sequencer dump, so the normal append
   path does not apply). *)
let raw_write t proj ~epoch off entry =
  let set = Projection.replica_set proj off in
  let loff = Projection.local_offset proj off in
  let req = { Storage_node.wepoch = epoch; woffset = loff; wcell = Types.Data entry } in
  Array.for_all
    (fun node ->
      match
        Sim.Net.call ~req_bytes:t.p.entry_bytes ~resp_bytes:t.p.rpc_bytes ~from:t.reconfig_host
          (Storage_node.write_service node) req
      with
      | Types.Write_ok | Types.Already_written _ -> true
      | Types.Sealed_at _ | Types.Out_of_space -> false)
    set

let start_checkpoint_scribe t ~interval_us =
  Sim.Engine.spawn (fun () ->
      let rec tick () =
        Sim.Engine.sleep interval_us;
        let proj = Auxiliary.latest t.aux in
        let epoch = proj.Projection.epoch in
        (match
           Sim.Net.call ~from:t.reconfig_host
             (Sequencer.dump_service proj.Projection.sequencer)
             epoch
         with
        | None -> () (* sealed: a reconfiguration is in flight *)
        | Some { Sequencer.dump_offset; dump_state_ptrs; dump_streams } ->
            let snapshot =
              { Seq_checkpoint.snap_tail = dump_offset; snap_streams = dump_streams }
            in
            let headers =
              Stream_header.encode_block ~k:t.p.backpointer_k ~current:dump_offset
                [ { Stream_header.stream = Seq_checkpoint.stream_id; backptrs = dump_state_ptrs } ]
            in
            let entry = { Types.headers; payload = Seq_checkpoint.encode snapshot } in
            ignore (raw_write t proj ~epoch dump_offset entry));
        tick ()
      in
      tick ())

let replace_sequencer t =
  Sim.Span.with_span ~host:"reconfig-agent" "recovery.sequencer"
  @@ fun () ->
  Sim.Metrics.incr (Sim.Metrics.counter "cluster.seq_replacements");
  let old_proj = Auxiliary.latest t.aux in
  let epoch = old_proj.Projection.epoch + 1 in
  (* 1. Seal the old sequencer so no stale backpointers escape. *)
  Sim.Net.call ~from:t.reconfig_host (Sequencer.seal_service old_proj.Projection.sequencer) epoch;
  (* 2. Seal storage nodes, collecting local tails. *)
  let nsets = Projection.num_sets old_proj in
  let locals =
    Array.init nsets (fun set ->
        let chain = old_proj.Projection.replica_sets.(set) in
        let tails =
          Array.map
            (fun node ->
              Sim.Net.call ~from:t.reconfig_host (Storage_node.seal_service node) epoch)
            chain
        in
        (* The head holds the chain's highest local tail. *)
        tails.(0))
  in
  let tail = Projection.global_tail_from_locals old_proj locals in
  (* 3. Rebuild per-stream backpointer state by scanning backward,
     stopping at the most recent sequencer checkpoint if one exists
     (§5's proposed optimization, via the scribe). *)
  let k = t.p.backpointer_k in
  let streams : (Types.stream_id, Types.offset list) Hashtbl.t = Hashtbl.create 64 in
  let scanned = ref 0 in
  let note_headers off (e : Types.entry) =
    List.iter
      (fun (h : Stream_header.t) ->
        let prev = match Hashtbl.find_opt streams h.stream with Some l -> l | None -> [] in
        if List.length prev < k then Hashtbl.replace streams h.stream (prev @ [ off ]))
      (Stream_header.decode_block ~k ~current:off e.Types.headers)
  in
  let rec scan off =
    if off >= 0 then begin
      incr scanned;
      match raw_read t old_proj ~epoch off with
      | Types.Read_data e ->
          if Seq_checkpoint.is_snapshot ~k ~current:off e then begin
            let snapshot = Seq_checkpoint.decode e.Types.payload in
            List.iter
              (fun (sid, offs) -> Hashtbl.replace streams sid offs)
              (Seq_checkpoint.merge ~above:streams snapshot ~k)
          end
          else begin
            note_headers off e;
            scan (off - 1)
          end
      | Types.Read_unwritten | Types.Read_junk | Types.Read_trimmed | Types.Read_sealed _ ->
          scan (off - 1)
    end
  in
  scan (tail - 1);
  t.rebuild_scan <- !scanned;
  Sim.Metrics.add (Sim.Metrics.counter "cluster.rebuild_scanned") !scanned;
  Sim.Trace.f "reconfig" "epoch %d: tail %d rebuilt after scanning %d entries" epoch tail
    !scanned;
  (* 4. Fresh sequencer seeded with the reconstructed state. *)
  let name = Printf.sprintf "sequencer-%d" t.sequencer_count in
  t.sequencer_count <- t.sequencer_count + 1;
  let initial_streams = Hashtbl.fold (fun sid offs acc -> (sid, offs) :: acc) streams [] in
  let sequencer =
    Sequencer.create ~net:t.cluster_net ~name ~params:t.p ~initial_tail:tail ~initial_streams ()
  in
  (* 5. Install the new view. A single reconfiguration agent runs at a
     time in the simulation, so a conflict is a bug. *)
  let chain_length = Array.length old_proj.Projection.replica_sets.(0) in
  let proj = make_projection ~epoch ~chain_length t.nodes sequencer in
  (match
     Sim.Net.call ~from:t.reconfig_host (Auxiliary.propose_service t.aux) proj
   with
  | Auxiliary.Installed -> ()
  | Auxiliary.Conflict _ -> failwith "Cluster.replace_sequencer: concurrent reconfiguration");
  epoch

(* ------------------------------------------------------------------ *)
(* Storage-node replacement (§2.2 reconfiguration)                    *)
(* ------------------------------------------------------------------ *)

let recoveries t = List.rev t.recoveries

let replace_storage_node ?(copy_window = 16) t ~dead =
  Sim.Span.with_span ~host:"reconfig-agent"
    ~args:[ ("dead", Storage_node.name dead) ]
    "recovery"
  @@ fun () ->
  let started = Sim.Engine.now () in
  let old_proj = Auxiliary.latest t.aux in
  let epoch = old_proj.Projection.epoch + 1 in
  (* Locate the dead member's chain slot. *)
  let set_idx, pos =
    let found = ref None in
    Array.iteri
      (fun s chain ->
        Array.iteri (fun i node -> if node == dead then found := Some (s, i)) chain)
      old_proj.Projection.replica_sets;
    match !found with
    | Some loc -> loc
    | None -> invalid_arg "Cluster.replace_storage_node: node not in the current projection"
  in
  Sim.Trace.f ~host:(Storage_node.name dead) "reconfig" "replacing chain member %d of set %d at epoch %d"
    pos set_idx epoch;
  (* 1. Seal the sequencer at the new epoch. It stays in the next
     projection — storage replacement does not lose allocation state —
     so this only forces every client through a projection refresh,
     closing the old epoch before the membership changes. *)
  Sim.Span.with_span "recovery.seal" (fun () ->
      Sim.Net.call ~from:t.reconfig_host
        (Sequencer.seal_service old_proj.Projection.sequencer)
        epoch);
  (* 2. Seal every storage node, collecting each survivor's local
     tail. The dead node gets a short-deadline attempt: if the monitor
     was wrong and it still answers, sealing it prevents stale-epoch
     clients from completing chains through it. *)
  let tails = Hashtbl.create 16 in
  Sim.Span.with_span "recovery.seal" (fun () ->
      Array.iter
        (fun chain ->
          Array.iter
            (fun node ->
              Sim.Metrics.incr (Sim.Metrics.counter "cluster.seals");
              let timeout_us = if node == dead then 10_000. else t.p.rpc_timeout_us in
              match
                Sim.Net.call_r ~timeout_us ~from:t.reconfig_host
                  (Storage_node.seal_service node) epoch
              with
              | Ok tail -> Hashtbl.replace tails (Storage_node.name node) tail
              | Error _ -> ())
            chain)
        old_proj.Projection.replica_sets);
  (* 3. Bring up the spare, pre-sealed at the new epoch. *)
  let spare_name = Printf.sprintf "storage-spare-%d" t.spare_count in
  t.spare_count <- t.spare_count + 1;
  let spare = Storage_node.create ~net:t.cluster_net ~name:spare_name ~params:t.p () in
  ignore (Sim.Net.call ~from:t.reconfig_host (Storage_node.seal_service spare) epoch : Types.offset);
  (* 4. Copy the surviving prefix onto the spare, [copy_window] local
     offsets in flight so the rebuild is bounded by SSD bandwidth, not
     round trips. The head-most survivor is authoritative: anything
     acknowledged to a client reached it before the seal. Data present
     only on the dead node (a torn append's head when the head died) is
     unrecoverable, exactly like a replica loss on the real system —
     the slot reads as unwritten and gets hole-filled. *)
  let survivor =
    let chain = old_proj.Projection.replica_sets.(set_idx) in
    let rec first i =
      if i >= Array.length chain then None
      else if chain.(i) != dead && Hashtbl.mem tails (Storage_node.name chain.(i)) then
        Some chain.(i)
      else first (i + 1)
    in
    first 0
  in
  let copied_entries = ref 0 in
  let copied_bytes = ref 0 in
  Sim.Span.with_span "recovery.copy" (fun () ->
  match survivor with
  | None -> Sim.Trace.f "reconfig" "set %d has no surviving replica: spare starts empty" set_idx
  | Some src ->
      let src_tail =
        match Hashtbl.find_opt tails (Storage_node.name src) with Some tl -> tl | None -> -1
      in
      let copy_one loff =
        match
          Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.entry_bytes
            ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host (Storage_node.read_service src)
            { Storage_node.repoch = epoch; roffset = loff }
        with
        | Error _ | Ok (Types.Read_sealed _) ->
            () (* survivor unreachable: the next monitor round handles it *)
        | Ok Types.Read_unwritten -> ()
        | Ok (Types.Read_trimmed) ->
            ignore
              (Sim.Net.call_r ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
                 (Storage_node.trim_service spare)
                 { Storage_node.repoch = epoch; roffset = loff }
                : (unit, Sim.Net.rpc_error) result)
        | Ok (Types.Read_data e) -> (
            match
              Sim.Net.call_r ~req_bytes:t.p.entry_bytes ~resp_bytes:t.p.rpc_bytes
                ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
                (Storage_node.write_service spare)
                { Storage_node.wepoch = epoch; woffset = loff; wcell = Types.Data e }
            with
            | Ok Types.Write_ok ->
                incr copied_entries;
                copied_bytes := !copied_bytes + t.p.entry_bytes
            | Ok _ | Error _ -> ())
        | Ok Types.Read_junk -> (
            match
              Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes
                ~timeout_us:t.p.rpc_timeout_us ~from:t.reconfig_host
                (Storage_node.write_service spare)
                { Storage_node.wepoch = epoch; woffset = loff; wcell = Types.Junk }
            with
            | Ok Types.Write_ok ->
                incr copied_entries;
                copied_bytes := !copied_bytes + t.p.rpc_bytes
            | Ok _ | Error _ -> ())
      in
      if src_tail >= 0 then begin
        let workers = min copy_window (src_tail + 1) in
        let remaining = ref workers in
        let all_done = Sim.Ivar.create () in
        let span_parent = Sim.Span.current () in
        for w = 0 to workers - 1 do
          Sim.Engine.spawn (fun () ->
              Sim.Span.with_parent span_parent @@ fun () ->
              let loff = ref w in
              while !loff <= src_tail do
                copy_one !loff;
                loff := !loff + workers
              done;
              decr remaining;
              if !remaining = 0 then Sim.Ivar.fill all_done ())
        done;
        Sim.Ivar.read all_done
      end);
  Sim.Metrics.add (Sim.Metrics.counter "cluster.copied_entries") !copied_entries;
  (* 5. Substitute the spare into the membership and install the new
     view. A single reconfiguration agent runs at a time, so a
     conflict is a bug. *)
  (let slot = ref (-1) in
   Array.iteri (fun j n -> if n == dead then slot := j) t.nodes;
   if !slot < 0 then invalid_arg "Cluster.replace_storage_node: node not in the cluster";
   t.nodes.(!slot) <- spare);
  let chain_length = Array.length old_proj.Projection.replica_sets.(0) in
  let proj = make_projection ~epoch ~chain_length t.nodes old_proj.Projection.sequencer in
  Sim.Span.with_span "recovery.install" (fun () ->
      match Sim.Net.call ~from:t.reconfig_host (Auxiliary.propose_service t.aux) proj with
      | Auxiliary.Installed -> ()
      | Auxiliary.Conflict _ ->
          failwith "Cluster.replace_storage_node: concurrent reconfiguration");
  Sim.Metrics.incr (Sim.Metrics.counter "cluster.recoveries");
  let installed = Sim.Engine.now () in
  t.recoveries <-
    {
      rec_epoch = epoch;
      rec_dead = Storage_node.name dead;
      rec_spare = spare_name;
      rec_started_us = started;
      rec_installed_us = installed;
      rec_copied_entries = !copied_entries;
      rec_copied_bytes = !copied_bytes;
    }
    :: t.recoveries;
  Sim.Trace.f ~host:spare_name "reconfig"
    "epoch %d installed: %s -> %s, copied %d cells (%d bytes) in %.0f us" epoch
    (Storage_node.name dead) spare_name !copied_entries !copied_bytes (installed -. started);
  epoch

(* ------------------------------------------------------------------ *)
(* Failure monitor                                                    *)
(* ------------------------------------------------------------------ *)

let start_failure_monitor ?(probe_interval_us = 20_000.) ?(probe_timeout_us = 10_000.) t =
  Sim.Engine.spawn (fun () ->
      let probe epoch node =
        Sim.Metrics.incr (Sim.Metrics.counter "cluster.probes");
        match
          Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.entry_bytes
            ~timeout_us:probe_timeout_us ~from:t.reconfig_host (Storage_node.read_service node)
            { Storage_node.repoch = epoch; roffset = 0 }
        with
        | Ok _ -> true (* any answer, even a sealed error, proves liveness *)
        | Error _ ->
            Sim.Metrics.incr (Sim.Metrics.counter "cluster.probe_failures");
            false
      in
      let rec loop () =
        Sim.Engine.sleep probe_interval_us;
        let proj = Auxiliary.latest t.aux in
        let epoch = proj.Projection.epoch in
        (* Scan the current membership; a second probe confirms before
           declaring death, so one unlucky timeout cannot trigger a
           reconfiguration. After a replacement the projection is
           stale, so stop this round and rescan. *)
        let members =
          List.concat_map Array.to_list (Array.to_list proj.Projection.replica_sets)
        in
        let rec scan = function
          | [] -> ()
          | node :: rest ->
              if probe epoch node || probe epoch node then scan rest
              else begin
                Sim.Trace.f ~host:(Storage_node.name node) "monitor" "no response to two probes: declared dead";
                ignore (replace_storage_node t ~dead:node : Types.epoch)
              end
        in
        scan members;
        loop ()
      in
      loop ())
