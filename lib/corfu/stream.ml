type t = {
  cl : Client.t;
  sid : Types.stream_id;
  mutable offsets : int array;  (* ascending member offsets *)
  mutable len : int;
  mutable cursor : int;
  mutable horizon : Types.offset;  (* membership complete below this *)
  mutable sync_read_count : int;
  mutable trim_gap : bool;  (* reclaimed history was skipped *)
  mutable prefetch_window : int;  (* adapts between params bounds *)
  mutable hit_run : int;  (* consecutive cache hits since last miss *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let attach cl sid =
  {
    cl;
    sid;
    offsets = Array.make 64 0;
    len = 0;
    cursor = 0;
    horizon = 0;
    sync_read_count = 0;
    trim_gap = false;
    prefetch_window = (Client.params cl).Sim.Params.prefetch_min;
    hit_run = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let id t = t.sid
let client t = t.cl
let append t payload = Client.append t.cl ~streams:[ t.sid ] payload
let pending t = t.len - t.cursor
let discovered t = t.len
let sync_reads t = t.sync_read_count
let prefetch_window t = t.prefetch_window
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let has_trim_gap t = t.trim_gap
let clear_trim_gap t = t.trim_gap <- false

let known_max t = if t.len > 0 then t.offsets.(t.len - 1) else -1

let push_members t members =
  (* [members] is the set of newly discovered offsets, any order. *)
  let arr = Array.of_list members in
  Array.sort Int.compare arr;
  let n = Array.length arr in
  if n > 0 then begin
    if t.len + n > Array.length t.offsets then begin
      let bigger = Array.make (max (2 * Array.length t.offsets) (t.len + n)) 0 in
      Array.blit t.offsets 0 bigger 0 t.len;
      t.offsets <- bigger
    end;
    Array.blit arr 0 t.offsets t.len n;
    t.len <- t.len + n
  end

(* The prefetch window adapts to the observed cache miss rate: a miss
   means the fixed lookahead was not deep enough to hide the log's
   read latency, so the window doubles (up to [prefetch_max]); a long
   run of hits — 4 windows' worth — means the cache is absorbing the
   read stream comfortably, so it halves back toward
   [prefetch_min]. *)
let note_hit t =
  t.cache_hits <- t.cache_hits + 1;
  t.hit_run <- t.hit_run + 1;
  let floor = (Client.params t.cl).Sim.Params.prefetch_min in
  if t.hit_run >= 4 * t.prefetch_window && t.prefetch_window > floor then begin
    t.prefetch_window <- max floor (t.prefetch_window / 2);
    t.hit_run <- 0
  end

let note_miss t =
  t.cache_misses <- t.cache_misses + 1;
  t.hit_run <- 0;
  let cap = (Client.params t.cl).Sim.Params.prefetch_max in
  if t.prefetch_window < cap then t.prefetch_window <- min cap (2 * t.prefetch_window)

(* Fetch the entry at [off] through the client-wide cache, resolving
   holes (blocking with backoff, then filling). *)
let resolve t off =
  match Client.cached t.cl off with
  | Some e ->
      note_hit t;
      Client.Data e
  | None ->
      note_miss t;
      t.sync_read_count <- t.sync_read_count + 1;
      Client.read_shared t.cl off

(* Playback pipelining: before blocking on the entry at index [idx],
   launch fetches for the next window of member offsets so log reads
   overlap instead of paying one round trip each. *)
let prefetch_from t idx =
  let stop = min t.len (idx + t.prefetch_window) in
  for i = idx to stop - 1 do
    Client.prefetch t.cl t.offsets.(i)
  done

let header_for t off entry =
  let k = (Client.params t.cl).Sim.Params.backpointer_k in
  Stream_header.find (Stream_header.decode_block ~k ~current:off entry.Types.headers) t.sid

(* Backward walk from the sequencer's last-K pointers down to what we
   already know. Strides K entries per read in the common case; junk
   degrades to a linear backward scan (§5, Failure Handling). *)
let sync_with_inner t ~tail ~ptrs =
    let floor = known_max t in
    let visited = Hashtbl.create 64 in
    let members = ref [] in
    let junk = ref [] in
    let note off =
      if off > floor && not (Hashtbl.mem visited off) then begin
        Hashtbl.replace visited off ();
        members := off :: !members;
        true
      end
      else false
    in
    let rec walk ptrs =
      (* [ptrs]: member candidates, most recent first. Register all of
         them, then read only the oldest to continue the chain. *)
      let fresh = List.filter note ptrs in
      match List.rev fresh with
      | [] -> ()
      | oldest :: _ -> follow oldest
    and follow off =
      match resolve t off with
      | Client.Data e -> (
          match header_for t off e with
          | Some h -> walk h.Stream_header.backptrs
          | None ->
              (* An offset the sequencer issued for this stream whose
                 winning entry carries no header for it: the slot was
                 lost to a competing append and re-used; treat like
                 junk and rescan. *)
              junk := off :: !junk;
              scan_backward (off - 1))
      | Client.Junk ->
          junk := off :: !junk;
          scan_backward (off - 1)
      | Client.Trimmed ->
          (* History below here is reclaimed; a checkpoint must cover
             it before the view is complete. *)
          t.trim_gap <- true;
          junk := off :: !junk
      | Client.Unwritten -> assert false (* read_resolved never returns it *)
    and scan_backward off =
      if off > floor then
        match resolve t off with
        | Client.Data e -> (
            match header_for t off e with
            | Some h ->
                if note off then walk h.Stream_header.backptrs
                (* if already known, the chain has reconnected *)
            | None -> scan_backward (off - 1))
        | Client.Junk | Client.Unwritten -> scan_backward (off - 1)
        | Client.Trimmed -> t.trim_gap <- true
    in
    walk ptrs;
    (* Filled holes were registered optimistically; drop them. *)
    let junk_set = Hashtbl.create 8 in
    List.iter (fun o -> Hashtbl.replace junk_set o ()) !junk;
    let fresh = List.filter (fun o -> not (Hashtbl.mem junk_set o)) !members in
    push_members t fresh;
    (* Start fetching the newly discovered entries right away so the
       upcoming playback finds them in the cache. *)
    List.iter (Client.prefetch t.cl) fresh;
    t.horizon <- tail

(* Tracing-disabled syncs must not build the span args (stream/tail
   stringification) or a body closure. *)
let sync_with t ~tail ~ptrs =
  if tail > t.horizon then begin
    if Sim.Span.enabled () then
      Sim.Span.with_span
        ~host:(Sim.Net.host_name (Client.host t.cl))
        ~args:[ ("stream", string_of_int t.sid); ("tail", string_of_int tail) ]
        "backpointer.walk"
        (fun () -> sync_with_inner t ~tail ~ptrs)
    else sync_with_inner t ~tail ~ptrs
  end

let do_sync t =
  let tail, stream_tails = Client.peek_streams t.cl [ t.sid ] in
  (match stream_tails with
  | [ (_, ptrs) ] -> sync_with t ~tail ~ptrs
  | _ -> assert false);
  tail

let sync t = do_sync t

let sync_until t target = if target > t.horizon then ignore (do_sync t)

let rec readnext t =
  if t.cursor >= t.len then None
  else begin
    let off = t.offsets.(t.cursor) in
    prefetch_from t t.cursor;
    match resolve t off with
    | Client.Data e ->
        t.cursor <- t.cursor + 1;
        Some (off, e)
    | Client.Junk ->
        t.cursor <- t.cursor + 1;
        readnext t
    | Client.Trimmed ->
        t.trim_gap <- true;
        t.cursor <- t.cursor + 1;
        readnext t
    | Client.Unwritten -> assert false
  end

let rec peek_next_offset t =
  if t.cursor >= t.len then None
  else begin
    let off = t.offsets.(t.cursor) in
    prefetch_from t t.cursor;
    match resolve t off with
    | Client.Data _ -> Some off
    | Client.Junk ->
        t.cursor <- t.cursor + 1;
        peek_next_offset t
    | Client.Trimmed ->
        t.trim_gap <- true;
        t.cursor <- t.cursor + 1;
        peek_next_offset t
    | Client.Unwritten -> assert false
  end
