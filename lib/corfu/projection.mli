(** Projections: epoch-numbered membership views of the log, as a
    {e segmented layout map}.

    A projection is an ordered list of {e segments}, each owning a
    half-open range of global offsets [\[base, limit)] with its own
    replica-set array and stripe width; the last segment is the live
    tail and is unbounded. Within a segment, offset [o] lives at local
    offset [local_base + (o - base) / nsets] on set
    [(o - base) mod nsets] — the §2.2 deterministic function, rebased
    to the segment. A single-segment map at base 0 is exactly the
    original flat CORFU projection.

    Segments are how the log changes shape without copying data:
    reconfiguration seals the tail segment at the current sequencer
    tail and opens a new one over a different node set
    ({!Cluster.scale_out} / [scale_in]); old offsets keep resolving
    through the segment that wrote them. A fully prefix-trimmed
    segment is retired from the map — offsets below the first live
    segment resolve to {!Retired}.

    Per-segment local bases are monotone and non-overlapping: a node
    serving chains in several segments (the common case after a
    scale-out, which reuses the old tail's nodes) never has one local
    cell claimed by two global offsets.

    Unlike the original CORFU, the projection includes the sequencer
    as a first-class member (paper §5, Failure Handling), because
    conflicting backpointer state from two live sequencers would
    corrupt streams. *)

type segment = {
  seg_base : Types.offset;  (** first global offset, inclusive *)
  seg_limit : Types.offset option;  (** exclusive; [None] only on the live tail *)
  seg_local_base : Types.offset;  (** first local offset this segment uses on its nodes *)
  seg_sets : Storage_node.t array array;  (** [seg_sets.(i)] is chain i, head first *)
}

type t = {
  epoch : Types.epoch;
  segments : segment array;  (** ascending [seg_base], contiguous; last is the tail *)
  sequencer : Sequencer.t;
}

(** Where a global offset falls in the map. *)
type location = Retired | In_segment of int

(** [v ~epoch ~segments ~sequencer] validates shape: at least one
    segment; every set non-empty (chains of {e differing} lengths in
    one segment are allowed — explicit geometry); segments contiguous
    and non-empty with only the last unbounded; local ranges
    non-overlapping. *)
val v : epoch:Types.epoch -> segments:segment array -> sequencer:Sequencer.t -> t

(** [flat ~epoch ~replica_sets ~sequencer] is the classic one-segment
    map over all of [\[0, ∞)]. *)
val flat :
  epoch:Types.epoch -> replica_sets:Storage_node.t array array -> sequencer:Sequencer.t -> t

val num_segments : t -> int
val segment : t -> int -> segment
val tail_segment : t -> segment

(** Stripe width of the live tail segment (what appends stripe over). *)
val num_sets : t -> int

(** Distinct storage nodes across every segment, in segment/set order.
    Node identity is physical equality. *)
val servers : t -> Storage_node.t list

val num_servers : t -> int

(** [locate t off] finds the segment owning [off], or {!Retired} when
    [off] lies below the first live segment (its data was prefix-
    trimmed away and the segment dropped from the map). *)
val locate : t -> Types.offset -> location

(** [resolve t off] is the full map — (segment index, set index, local
    offset) — or [None] for retired offsets. *)
val resolve : t -> Types.offset -> (int * int * Types.offset) option

(** [replica_set t off] is the chain storing global offset [off].
    @raise Invalid_argument on retired offsets. *)
val replica_set : t -> Types.offset -> Storage_node.t array

(** [local_offset t off] is [off]'s address within its chain.
    @raise Invalid_argument on retired offsets. *)
val local_offset : t -> Types.offset -> Types.offset

(** [global_offset t ~seg ~set ~local] inverts the mapping within
    segment index [seg]. *)
val global_offset : t -> seg:int -> set:int -> local:Types.offset -> Types.offset

(** [seg_cells_below seg ~set ~rel] is how many of [set]'s cells have
    a relative offset below [rel] — the per-set local span of a prefix
    of the segment (prefix-trim watermarks, recovery copy ranges). *)
val seg_cells_below : segment -> set:int -> rel:int -> int

(** [seg_local_span seg ~span] is the number of local offsets the
    segment occupies on its widest set, given its global extent
    [span]: the stride the next segment's local base must clear. *)
val seg_local_span : segment -> span:int -> int

(** [global_tail_from_locals t locals] inverts the mapping over the
    {e tail segment}'s per-set local tails (the slow check, §2.2): the
    global tail is one past the highest written global offset.
    [locals.(i)] is the local tail of tail-segment set [i]; values
    below the segment's local base (including -1 for an empty node)
    mean "nothing written in this segment". *)
val global_tail_from_locals : t -> Types.offset array -> Types.offset

(** {2 Wire layout}

    The projection by name — what the auxiliary would gossip on a real
    deployment, and what [tangoctl projection] prints. *)

type layout_segment = {
  l_base : Types.offset;
  l_limit : Types.offset option;
  l_local_base : Types.offset;
  l_sets : string array array;
}

type layout = {
  l_epoch : Types.epoch;
  l_sequencer : string;
  l_segments : layout_segment list;
}

val layout : t -> layout

(** Versioned binary encoding of {!layout} (built on {!Wire}). *)
val encode_layout : t -> bytes

(** @raise Invalid_argument on a truncated or unknown-version payload. *)
val decode_layout : bytes -> layout

val pp_layout : Format.formatter -> layout -> unit
