(** The CORFU sequencer: a networked counter handing out log offsets,
    extended for streams (paper §2.2, §5).

    Besides the 64-bit tail, the streaming sequencer keeps the last K
    offsets it has issued for every stream id, and returns them with
    each increment so the client can build the entry's backpointer
    headers without any extra round trips. The sequencer is soft
    state: it can be rebuilt from the storage nodes (see
    {!Reconfig.replace_sequencer}), and it is sealed — made to refuse
    requests — when a new view replaces it, since two live sequencers
    could hand out conflicting backpointers (§5, Failure Handling). *)

type t

type increment_request = {
  iepoch : Types.epoch;
  istreams : Types.stream_id list;
  icount : int;
      (** offsets to allocate in one RPC (a {e range grant}); every
          issued offset is recorded on every requested stream *)
}

type peek_request = { pepoch : Types.epoch; pstreams : Types.stream_id list }

type allocation = {
  base : Types.offset;  (** first allocated offset (or current tail for peeks) *)
  stream_tails : (Types.stream_id * Types.offset list) list;
      (** per requested stream: last K issued offsets, most recent
          first, {e excluding} the allocation itself *)
}

type response = Seq_ok of allocation | Seq_sealed of Types.epoch

(** The counter core, split from the networked shell so the grant path
    can be exercised (and benchmarked) without a simulation running.
    Per-stream last-K state lives in fixed int rings: issuing an
    offset is two array stores and an index bump, and offset lists
    materialise only at the response boundary. *)
module Core : sig
  type t

  (** [create ~k ()] with [initial_streams] offset lists given
      newest-first (at most [k] are retained). *)
  val create :
    k:int ->
    ?initial_tail:Types.offset ->
    ?initial_streams:(Types.stream_id * Types.offset list) list ->
    unit ->
    t

  val tail : t -> Types.offset

  (** Last-K issued offsets for a stream, most recent first. *)
  val last_k : t -> Types.stream_id -> Types.offset list

  (** Record one issued offset on one stream: the grant inner loop.
      O(1) and allocation-free once the stream's ring exists. *)
  val note_issue : t -> Types.stream_id -> Types.offset -> unit

  (** [grant t ~streams ~count] allocates [count] consecutive offsets,
      records each on every requested stream, and returns the
      pre-grant tails (the allocation excludes itself). *)
  val grant : t -> streams:Types.stream_id list -> count:int -> allocation

  (** Tail and last-K state without allocating offsets. *)
  val peek : t -> streams:Types.stream_id list -> allocation

  (** Every known stream with its last-K offsets (unspecified order). *)
  val all_streams : t -> (Types.stream_id * Types.offset list) list

  val nstreams : t -> int
end

(** [create ~net ~name ~params ()] registers the sequencer on a fresh
    host. [initial_tail] and [initial_streams] seed the counter state
    when a replacement sequencer is built from a log scan. *)
val create :
  net:Sim.Net.t ->
  name:string ->
  params:Sim.Params.t ->
  ?initial_tail:Types.offset ->
  ?initial_streams:(Types.stream_id * Types.offset list) list ->
  unit ->
  t

val name : t -> string
val host : t -> Sim.Net.host

(** Allocates [icount] consecutive offsets and returns backpointer
    state for the requested streams. One RPC costs one sequencer
    service time regardless of [icount] — that is the batching win
    measured in the Fig. 2 ablation. *)
val increment_service : t -> (increment_request, response) Sim.Net.service

(** Returns the current tail and per-stream last-K offsets without
    allocating: the fast check, and how clients find the last entry of
    a stream on startup (§5). *)
val peek_service : t -> (peek_request, response) Sim.Net.service

(** [seal epoch]: refuse every request carrying a lower epoch. Returns
    the tail at the seal point — every offset below it was granted
    under the old epoch, nothing at or above it ever will be — which
    is the boundary a reconfiguration seals the tail segment at
    ({!Cluster.scale_out}). *)
val seal_service : t -> (Types.epoch, Types.offset) Sim.Net.service

(** A consistent dump of the sequencer's soft state, taken while
    {e reserving} the next offset for the snapshot entry itself — so
    [dump_streams] is exact for every offset below [dump_offset]. Used
    by the checkpoint scribe (see {!Seq_checkpoint}). *)
type dump = {
  dump_offset : Types.offset;
  dump_state_ptrs : Types.offset list;
      (** last-K offsets of the reserved checkpoint stream, for the
          snapshot entry's own header *)
  dump_streams : (Types.stream_id * Types.offset list) list;
}

(** Returns [None] when sealed. *)
val dump_service : t -> (Types.epoch, dump option) Sim.Net.service

(** {2 Introspection} *)

val current_tail : t -> Types.offset
val sealed_epoch : t -> Types.epoch

(** Approximate resident state in bytes: 8 bytes × K per stream
    (paper: 32 MB for 1M streams at K = 4). *)
val state_bytes : t -> int
