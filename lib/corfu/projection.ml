type segment = {
  seg_base : Types.offset;
  seg_limit : Types.offset option;
  seg_local_base : Types.offset;
  seg_sets : Storage_node.t array array;
}

type t = {
  epoch : Types.epoch;
  segments : segment array;
  sequencer : Sequencer.t;
}

type location = Retired | In_segment of int

let seg_nsets seg = Array.length seg.seg_sets

(* How many of [set]'s cells have a relative offset below [rel]: the
   cells are the r < rel with r mod nsets = set. *)
let seg_cells_below seg ~set ~rel =
  if rel <= set then 0 else (rel - set + seg_nsets seg - 1) / seg_nsets seg

(* The number of local offsets the segment occupies on its set-0 nodes
   — the widest set — which is the stride the next segment's local
   base must clear. [span] is the segment's global extent. *)
let seg_local_span seg ~span = seg_cells_below seg ~set:0 ~rel:span

let v ~epoch ~segments ~sequencer =
  let nsegs = Array.length segments in
  if nsegs = 0 then invalid_arg "Projection: need at least one segment";
  Array.iteri
    (fun i seg ->
      if seg.seg_base < 0 then invalid_arg "Projection: negative segment base";
      if seg.seg_local_base < 0 then invalid_arg "Projection: negative segment local base";
      if seg_nsets seg = 0 then invalid_arg "Projection: segment needs at least one replica set";
      Array.iter
        (fun set -> if Array.length set = 0 then invalid_arg "Projection: empty replica set")
        seg.seg_sets;
      (match seg.seg_limit with
      | Some limit ->
          if i = nsegs - 1 then invalid_arg "Projection: the tail segment must be unbounded";
          if limit <= seg.seg_base then invalid_arg "Projection: empty segment range";
          if segments.(i + 1).seg_base <> limit then
            invalid_arg "Projection: segments must tile the offset space contiguously"
      | None -> if i < nsegs - 1 then invalid_arg "Projection: only the tail segment is unbounded");
      (* Local ranges of successive segments must not overlap, so a
         node serving several segments never sees two global offsets
         mapped onto one local cell. *)
      if i > 0 then begin
        let prev = segments.(i - 1) in
        let span = Option.get prev.seg_limit - prev.seg_base in
        if seg.seg_local_base < prev.seg_local_base + seg_local_span prev ~span then
          invalid_arg "Projection: overlapping segment local ranges"
      end)
    segments;
  { epoch; segments; sequencer }

let flat ~epoch ~replica_sets ~sequencer =
  v ~epoch
    ~segments:[| { seg_base = 0; seg_limit = None; seg_local_base = 0; seg_sets = replica_sets } |]
    ~sequencer

let num_segments t = Array.length t.segments
let segment t i = t.segments.(i)
let tail_segment t = t.segments.(num_segments t - 1)

(* The stripe width of the live tail segment: what appends stripe
   over right now. Historical segments keep their own widths. *)
let num_sets t = seg_nsets (tail_segment t)

let locate t off =
  if off < t.segments.(0).seg_base then Retired
  else begin
    (* Last segment whose base is at or below [off]; the maps are tiny
       (one segment per reconfiguration epoch still alive), but keep
       the search logarithmic anyway. *)
    let lo = ref 0 and hi = ref (num_segments t - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.segments.(mid).seg_base <= off then lo := mid else hi := mid - 1
    done;
    In_segment !lo
  end

let find_segment t off =
  match locate t off with
  | In_segment i -> t.segments.(i)
  | Retired -> invalid_arg "Projection: offset below the first live segment"

(* [resolve t off] is the full map: (segment index, set index, local
   offset), or [None] when [off] lies below every live segment. *)
let resolve t off =
  match locate t off with
  | Retired -> None
  | In_segment i ->
      let seg = t.segments.(i) in
      let r = off - seg.seg_base in
      let n = seg_nsets seg in
      Some (i, r mod n, seg.seg_local_base + (r / n))

let replica_set t off =
  let seg = find_segment t off in
  seg.seg_sets.((off - seg.seg_base) mod seg_nsets seg)

let local_offset t off =
  let seg = find_segment t off in
  seg.seg_local_base + ((off - seg.seg_base) / seg_nsets seg)

let global_offset t ~seg ~set ~local =
  let s = t.segments.(seg) in
  s.seg_base + ((local - s.seg_local_base) * seg_nsets s) + set

(* Every distinct storage node across every segment, in segment/set
   order. Scale-out reuses the old tail's nodes in the new tail
   segment, so the same node commonly appears in several segments;
   physical equality is the node identity throughout the simulator. *)
let servers t =
  let seen = ref [] in
  Array.iter
    (fun seg ->
      Array.iter
        (Array.iter (fun node -> if not (List.memq node !seen) then seen := node :: !seen))
        seg.seg_sets)
    t.segments;
  List.rev !seen

let num_servers t = List.length (servers t)

let global_tail_from_locals t locals =
  let seg = tail_segment t in
  let n = seg_nsets seg in
  if Array.length locals <> n then
    invalid_arg "Projection.global_tail_from_locals: arity mismatch";
  let highest = ref (seg.seg_base - 1) in
  Array.iteri
    (fun set local ->
      (* A local tail below the segment's local base belongs to an
         earlier segment this node also serves: no writes here yet. *)
      if local >= seg.seg_local_base then begin
        let g = seg.seg_base + ((local - seg.seg_local_base) * n) + set in
        if g > !highest then highest := g
      end)
    locals;
  !highest + 1

(* ------------------------------------------------------------------ *)
(* Wire layout: the projection by name                                 *)
(* ------------------------------------------------------------------ *)

type layout_segment = {
  l_base : Types.offset;
  l_limit : Types.offset option;
  l_local_base : Types.offset;
  l_sets : string array array;
}

type layout = {
  l_epoch : Types.epoch;
  l_sequencer : string;
  l_segments : layout_segment list;
}

let layout t =
  {
    l_epoch = t.epoch;
    l_sequencer = Sequencer.name t.sequencer;
    l_segments =
      Array.to_list
        (Array.map
           (fun seg ->
             {
               l_base = seg.seg_base;
               l_limit = seg.seg_limit;
               l_local_base = seg.seg_local_base;
               l_sets = Array.map (Array.map Storage_node.name) seg.seg_sets;
             })
           t.segments);
  }

let layout_version = 1

let encode_layout t =
  let l = layout t in
  Wire.to_bytes (fun b ->
      Wire.put_u8 b layout_version;
      Wire.put_u64 b l.l_epoch;
      Wire.put_string b l.l_sequencer;
      Wire.put_u32 b (List.length l.l_segments);
      List.iter
        (fun seg ->
          Wire.put_u64 b seg.l_base;
          (match seg.l_limit with
          | None -> Wire.put_u8 b 0
          | Some limit ->
              Wire.put_u8 b 1;
              Wire.put_u64 b limit);
          Wire.put_u64 b seg.l_local_base;
          Wire.put_u32 b (Array.length seg.l_sets);
          Array.iter
            (fun set ->
              Wire.put_u32 b (Array.length set);
              Array.iter (Wire.put_string b) set)
            seg.l_sets)
        l.l_segments)

let decode_layout buf =
  let c = Wire.reader buf in
  (match Wire.get_u8 c with
  | 1 -> ()
  | v -> invalid_arg (Printf.sprintf "Projection.decode_layout: unknown version %d" v));
  let l_epoch = Wire.get_u64 c in
  let l_sequencer = Wire.get_string c in
  let nsegs = Wire.get_u32 c in
  let l_segments =
    List.init nsegs (fun _ ->
        let l_base = Wire.get_u64 c in
        let l_limit = match Wire.get_u8 c with 0 -> None | _ -> Some (Wire.get_u64 c) in
        let l_local_base = Wire.get_u64 c in
        let nsets = Wire.get_u32 c in
        let l_sets =
          Array.init nsets (fun _ ->
              let width = Wire.get_u32 c in
              Array.init width (fun _ -> Wire.get_string c))
        in
        { l_base; l_limit; l_local_base; l_sets })
  in
  { l_epoch; l_sequencer; l_segments }

let pp_layout ppf l =
  Fmt.pf ppf "epoch %d, %d segment%s, sequencer %s@." l.l_epoch (List.length l.l_segments)
    (if List.length l.l_segments = 1 then "" else "s")
    l.l_sequencer;
  List.iteri
    (fun i seg ->
      (match seg.l_limit with
      | Some limit ->
          Fmt.pf ppf "  segment %d: offsets [%d, %d), local base %d@." i seg.l_base limit
            seg.l_local_base
      | None ->
          Fmt.pf ppf "  segment %d: offsets [%d, ...), local base %d (live tail)@." i seg.l_base
            seg.l_local_base);
      Array.iteri
        (fun s set ->
          Fmt.pf ppf "    chain %d: %s@." s (String.concat " -> " (Array.to_list set)))
        seg.l_sets)
    l.l_segments
