(** Streams over the shared log (paper §4, §5).

    A stream is a client-side iterator over the subsequence of log
    entries tagged with one stream id. The metadata is a linked list
    of offsets rebuilt lazily from the backpointers embedded in stream
    headers: {!sync} asks the sequencer for the last K offsets of the
    stream, then strides {e backward} through the log — one read per K
    entries — until it reconnects with what it already knows. Junk
    (filled holes) breaks the chain; per the paper, the reader then
    scans backward entry-by-entry until it finds a valid entry of the
    stream.

    [readnext] never goes to the network for membership — only
    {!sync} does — and fetches entry bodies through the client's
    shared cache, so an entry on many streams is read once. *)

type t

(** [attach client id] starts following stream [id]. No I/O happens
    until the first {!sync}. *)
val attach : Client.t -> Types.stream_id -> t

val id : t -> Types.stream_id
val client : t -> Client.t

(** [append t payload] appends one entry to this stream only;
    convenience over {!Client.append}. *)
val append : t -> bytes -> Types.offset

(** [sync t] brings the membership list up to date with the
    sequencer's current tail and returns that tail. The application
    must call it before relying on [readnext] for linearizable
    semantics (§5), and may call it periodically to amortize the
    cost. *)
val sync : t -> Types.offset

(** [sync_until t horizon] like {!sync} but only guarantees
    completeness for offsets below [horizon]; used when a consumer
    needs to reach a known commit point rather than the live tail. *)
val sync_until : t -> Types.offset -> unit

(** [sync_with t ~tail ~ptrs] performs the backward walk of {!sync}
    using peek data the caller already fetched ([ptrs] is the
    sequencer's last-K list for this stream at the time [tail] was the
    global tail). Lets a runtime hosting many streams refresh them all
    with a single sequencer round trip. *)
val sync_with : t -> tail:Types.offset -> ptrs:Types.offset list -> unit

(** [readnext t] returns the next (offset, entry) of the stream below
    the last synced horizon, or [None] when the iterator has consumed
    everything discovered so far. Junk entries are skipped. *)
val readnext : t -> (Types.offset * Types.entry) option

(** [peek_next_offset t] is the offset [readnext] would deliver. *)
val peek_next_offset : t -> Types.offset option

(** Number of known entries not yet delivered. *)
val pending : t -> int

(** Total entries discovered for this stream since attach. *)
val discovered : t -> int

(** Cumulative random reads issued by sync walks (for the backpointer
    ablation: ≈ N/K plus junk-scan penalties). *)
val sync_reads : t -> int

(** Current playback prefetch depth. Starts at
    {!Sim.Params.t.prefetch_min}, doubles on a cache miss up to
    [prefetch_max], and halves back after a long run of hits. *)
val prefetch_window : t -> int

(** Entry lookups served from the client cache. *)
val cache_hits : t -> int

(** Entry lookups that went to the log. *)
val cache_misses : t -> int

(** [has_trim_gap t]: the stream skipped reclaimed (trimmed) history,
    so the consumer's view is incomplete until a checkpoint covering
    the gap is applied. {!clear_trim_gap} acknowledges the repair. *)
val has_trim_gap : t -> bool

val clear_trim_gap : t -> unit
