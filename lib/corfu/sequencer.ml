type increment_request = { iepoch : Types.epoch; istreams : Types.stream_id list; icount : int }
type peek_request = { pepoch : Types.epoch; pstreams : Types.stream_id list }

type allocation = {
  base : Types.offset;
  stream_tails : (Types.stream_id * Types.offset list) list;
}

type response = Seq_ok of allocation | Seq_sealed of Types.epoch

type dump = {
  dump_offset : Types.offset;
  dump_state_ptrs : Types.offset list;
  dump_streams : (Types.stream_id * Types.offset list) list;
}

type t = {
  seq_name : string;
  seq_host : Sim.Net.host;
  counter_cpu : Sim.Resource.t;  (* the single hot loop handing out offsets *)
  k : int;
  mutable tail : Types.offset;
  mutable epoch : Types.epoch;
  streams : (Types.stream_id, Types.offset list) Hashtbl.t;
  incr_c : Sim.Metrics.counter;
  granted_c : Sim.Metrics.counter;
  peeks_c : Sim.Metrics.counter;
  seals_c : Sim.Metrics.counter;
  incr_svc : (increment_request, response) Sim.Net.service;
  peek_svc : (peek_request, response) Sim.Net.service;
  seal_svc : (Types.epoch, Types.offset) Sim.Net.service;
  dump_svc : (Types.epoch, dump option) Sim.Net.service;
}

let last_k t sid = match Hashtbl.find_opt t.streams sid with Some l -> l | None -> []

let truncate k l =
  let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
  take k l

let record_issue t sid off = Hashtbl.replace t.streams sid (truncate t.k (off :: last_k t sid))

let handle_increment t { iepoch; istreams; icount } =
  if iepoch < t.epoch then Seq_sealed t.epoch
  else begin
    Sim.Metrics.incr t.incr_c;
    Sim.Metrics.add t.granted_c (max 1 icount);
    let base = t.tail in
    let count = max 1 icount in
    let stream_tails = List.map (fun sid -> (sid, last_k t sid)) istreams in
    t.tail <- t.tail + count;
    (* A range grant allocates [base .. base+count-1] on every
       requested stream; record them all so later backpointer state
       stays exact (the grantee writes each entry's header chaining
       through the earlier offsets of the same grant). *)
    List.iter
      (fun sid ->
        for i = 0 to count - 1 do
          record_issue t sid (base + i)
        done)
      istreams;
    Seq_ok { base; stream_tails }
  end

let handle_dump t epoch =
  if epoch < t.epoch then None
  else begin
    let dump_offset = t.tail in
    let dump_state_ptrs = last_k t Seq_checkpoint.stream_id in
    let dump_streams = Hashtbl.fold (fun sid offs acc -> (sid, offs) :: acc) t.streams [] in
    t.tail <- t.tail + 1;
    record_issue t Seq_checkpoint.stream_id dump_offset;
    Some { dump_offset; dump_state_ptrs; dump_streams }
  end

let handle_peek t { pepoch; pstreams } =
  if pepoch < t.epoch then Seq_sealed t.epoch
  else begin
    Sim.Metrics.incr t.peeks_c;
    Seq_ok { base = t.tail; stream_tails = List.map (fun sid -> (sid, last_k t sid)) pstreams }
  end

let create ~net ~name ~(params : Sim.Params.t) ?(initial_tail = 0) ?(initial_streams = []) () =
  let seq_host = Sim.Net.add_host ~cores:32 net name in
  let counter_cpu = Sim.Resource.create ~name:(name ^ ".counter") ~capacity:1 () in
  Sim.Metrics.track_resource counter_cpu;
  let service_us = params.sequencer_service_us in
  let rec t =
    lazy
      {
        seq_name = name;
        seq_host;
        counter_cpu;
        k = params.backpointer_k;
        tail = initial_tail;
        epoch = 0;
        streams =
          (let h = Hashtbl.create 256 in
           List.iter (fun (sid, offs) -> Hashtbl.replace h sid offs) initial_streams;
           h);
        incr_c = Sim.Metrics.counter ~host:name "seq.increments";
        granted_c = Sim.Metrics.counter ~host:name "seq.granted_offsets";
        peeks_c = Sim.Metrics.counter ~host:name "seq.peeks";
        seals_c = Sim.Metrics.counter ~host:name "seq.seals";
        incr_svc =
          Sim.Net.service seq_host ~name:"increment" (fun r ->
              Sim.Resource.use counter_cpu service_us;
              handle_increment (Lazy.force t) r);
        peek_svc =
          Sim.Net.service seq_host ~name:"peek" (fun r ->
              Sim.Resource.use counter_cpu service_us;
              handle_peek (Lazy.force t) r);
        seal_svc =
          Sim.Net.service seq_host ~name:"seal" (fun e ->
              let t = Lazy.force t in
              Sim.Metrics.incr t.seals_c;
              if e > t.epoch then t.epoch <- e;
              (* The tail at the seal point: every offset below it has
                 been granted, nothing at or above it ever will be
                 under the old epoch — the boundary a reconfiguration
                 closes the current tail segment at. *)
              t.tail);
        dump_svc =
          Sim.Net.service seq_host ~name:"dump" (fun e ->
              Sim.Resource.use counter_cpu service_us;
              handle_dump (Lazy.force t) e);
      }
  in
  Lazy.force t

let name t = t.seq_name
let host t = t.seq_host
let increment_service t = t.incr_svc
let peek_service t = t.peek_svc
let seal_service t = t.seal_svc
let dump_service t = t.dump_svc
let current_tail t = t.tail
let sealed_epoch t = t.epoch
let state_bytes t = Hashtbl.length t.streams * 8 * t.k
