type increment_request = { iepoch : Types.epoch; istreams : Types.stream_id list; icount : int }
type peek_request = { pepoch : Types.epoch; pstreams : Types.stream_id list }

type allocation = {
  base : Types.offset;
  stream_tails : (Types.stream_id * Types.offset list) list;
}

(* The counter core: tail plus per-stream last-K offsets in fixed int
   rings. Issuing an offset is two array stores and an index bump — no
   list cells, no Hashtbl.replace churn. Offset lists materialise only
   at the response boundary (the RPC reply owns its data). *)
module Core = struct
  type ring = { r_buf : int array; mutable r_len : int; mutable r_newest : int }

  type t = {
    core_k : int;
    mutable core_tail : Types.offset;
    core_streams : (Types.stream_id, ring) Hashtbl.t;
  }

  let fill_ring k offs =
    let r = { r_buf = Array.make k 0; r_len = 0; r_newest = 0 } in
    (* [offs] arrives newest-first, the order the ring stores. *)
    List.iteri
      (fun i off ->
        if i < k then begin
          r.r_buf.(i) <- off;
          r.r_len <- r.r_len + 1
        end)
      offs;
    r

  let create ~k ?(initial_tail = 0) ?(initial_streams = []) () =
    let core_streams = Hashtbl.create 256 in
    List.iter (fun (sid, offs) -> Hashtbl.replace core_streams sid (fill_ring k offs)) initial_streams;
    { core_k = k; core_tail = initial_tail; core_streams }

  let tail t = t.core_tail

  let ring_of t sid =
    match Hashtbl.find_opt t.core_streams sid with
    | Some r -> r
    | None ->
        let r = { r_buf = Array.make t.core_k 0; r_len = 0; r_newest = 0 } in
        Hashtbl.add t.core_streams sid r;
        r

  (* O(1), allocation-free once the stream's ring exists. *)
  let note_issue t sid off =
    let r = ring_of t sid in
    let k = t.core_k in
    r.r_newest <- (r.r_newest + k - 1) mod k;
    r.r_buf.(r.r_newest) <- off;
    if r.r_len < k then r.r_len <- r.r_len + 1

  (* Materialise a ring newest-first; a plain counted loop (no
     [List.init] closure) keeps the response build down to the list
     cells themselves. *)
  let ring_list r k =
    let rec build i acc = if i < 0 then acc else build (i - 1) (r.r_buf.((r.r_newest + i) mod k) :: acc) in
    build (r.r_len - 1) []

  let last_k t sid =
    match Hashtbl.find_opt t.core_streams sid with
    | None -> []
    | Some r -> ring_list r t.core_k

  (* Top-level recursions instead of closures: a grant's only
     allocations are the response lists it hands to the caller. *)
  let rec tails_of t = function
    | [] -> []
    | sid :: rest -> (sid, last_k t sid) :: tails_of t rest

  let rec issue_all t base count = function
    | [] -> ()
    | sid :: rest ->
        for i = 0 to count - 1 do
          note_issue t sid (base + i)
        done;
        issue_all t base count rest

  (* A range grant allocates [base .. base+count-1] on every requested
     stream; record them all so later backpointer state stays exact
     (the grantee writes each entry's header chaining through the
     earlier offsets of the same grant). [stream_tails] snapshots the
     pre-grant rings — the response excludes the allocation itself. *)
  let grant t ~streams ~count =
    let base = t.core_tail in
    let stream_tails = tails_of t streams in
    t.core_tail <- base + count;
    issue_all t base count streams;
    { base; stream_tails }

  let peek t ~streams = { base = t.core_tail; stream_tails = tails_of t streams }

  let all_streams t = Hashtbl.fold (fun sid _ acc -> (sid, last_k t sid) :: acc) t.core_streams []
  let nstreams t = Hashtbl.length t.core_streams
end

type response = Seq_ok of allocation | Seq_sealed of Types.epoch

type dump = {
  dump_offset : Types.offset;
  dump_state_ptrs : Types.offset list;
  dump_streams : (Types.stream_id * Types.offset list) list;
}

type t = {
  seq_name : string;
  seq_host : Sim.Net.host;
  counter_cpu : Sim.Resource.t;  (* the single hot loop handing out offsets *)
  core : Core.t;
  mutable epoch : Types.epoch;
  incr_c : Sim.Metrics.counter;
  granted_c : Sim.Metrics.counter;
  peeks_c : Sim.Metrics.counter;
  seals_c : Sim.Metrics.counter;
  incr_svc : (increment_request, response) Sim.Net.service;
  peek_svc : (peek_request, response) Sim.Net.service;
  seal_svc : (Types.epoch, Types.offset) Sim.Net.service;
  dump_svc : (Types.epoch, dump option) Sim.Net.service;
}

let handle_increment t { iepoch; istreams; icount } =
  if iepoch < t.epoch then Seq_sealed t.epoch
  else begin
    Sim.Metrics.incr t.incr_c;
    Sim.Metrics.add t.granted_c (max 1 icount);
    Seq_ok (Core.grant t.core ~streams:istreams ~count:(max 1 icount))
  end

let handle_dump t epoch =
  if epoch < t.epoch then None
  else begin
    let dump_streams = Core.all_streams t.core in
    (* Reserving the snapshot entry is a 1-offset grant on the
       checkpoint stream; the grant's pre-issue tails are exactly the
       state pointers the snapshot's own header chains through. *)
    let a = Core.grant t.core ~streams:[ Seq_checkpoint.stream_id ] ~count:1 in
    Some
      {
        dump_offset = a.base;
        dump_state_ptrs = List.assoc Seq_checkpoint.stream_id a.stream_tails;
        dump_streams;
      }
  end

let handle_peek t { pepoch; pstreams } =
  if pepoch < t.epoch then Seq_sealed t.epoch
  else begin
    Sim.Metrics.incr t.peeks_c;
    Seq_ok (Core.peek t.core ~streams:pstreams)
  end

let create ~net ~name ~(params : Sim.Params.t) ?(initial_tail = 0) ?(initial_streams = []) () =
  let seq_host = Sim.Net.add_host ~cores:32 net name in
  let counter_cpu = Sim.Resource.create ~name:(name ^ ".counter") ~capacity:1 () in
  Sim.Metrics.track_resource counter_cpu;
  (* Grant-backlog watermark: fibers queued on the counter CPU are
     grant requests the sequencer has admitted but not yet served. *)
  Sim.Timeseries.probe ~host:name "seq.grant_backlog" (fun () ->
      float_of_int (Sim.Resource.queue_length counter_cpu));
  let service_us = params.sequencer_service_us in
  let rec t =
    lazy
      {
        seq_name = name;
        seq_host;
        counter_cpu;
        core = Core.create ~k:params.backpointer_k ~initial_tail ~initial_streams ();
        epoch = 0;
        incr_c = Sim.Metrics.counter ~host:name "seq.increments";
        granted_c = Sim.Metrics.counter ~host:name "seq.granted_offsets";
        peeks_c = Sim.Metrics.counter ~host:name "seq.peeks";
        seals_c = Sim.Metrics.counter ~host:name "seq.seals";
        incr_svc =
          Sim.Net.service seq_host ~name:"increment" (fun r ->
              Sim.Resource.use counter_cpu service_us;
              handle_increment (Lazy.force t) r);
        peek_svc =
          Sim.Net.service seq_host ~name:"peek" (fun r ->
              Sim.Resource.use counter_cpu service_us;
              handle_peek (Lazy.force t) r);
        seal_svc =
          Sim.Net.service seq_host ~name:"seal" (fun e ->
              let t = Lazy.force t in
              Sim.Metrics.incr t.seals_c;
              if e > t.epoch then t.epoch <- e;
              (* The tail at the seal point: every offset below it has
                 been granted, nothing at or above it ever will be
                 under the old epoch — the boundary a reconfiguration
                 closes the current tail segment at. *)
              Core.tail t.core);
        dump_svc =
          Sim.Net.service seq_host ~name:"dump" (fun e ->
              Sim.Resource.use counter_cpu service_us;
              handle_dump (Lazy.force t) e);
      }
  in
  Lazy.force t

let name t = t.seq_name
let host t = t.seq_host
let increment_service t = t.incr_svc
let peek_service t = t.peek_svc
let seal_service t = t.seal_svc
let dump_service t = t.dump_svc
let current_tail t = Core.tail t.core
let sealed_epoch t = t.epoch
let state_bytes t = Core.nstreams t.core * 8 * t.core.Core.core_k
