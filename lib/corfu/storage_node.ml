type write_request = { wepoch : Types.epoch; woffset : Types.offset; wcell : Types.cell }
type read_request = { repoch : Types.epoch; roffset : Types.offset }

type t = {
  node_name : string;
  node_host : Sim.Net.host;
  ssd : Sim.Resource.t;
  cells : (Types.offset, Types.cell) Hashtbl.t;
  capacity_entries : int;
  write_us : float;
  read_us : float;
  mutable epoch : Types.epoch;
  mutable local_tail : Types.offset;  (* highest written local offset, -1 if none *)
  mutable trim_watermark : Types.offset;  (* everything below is reclaimed *)
  mutable writes_seen : int;
  writes_c : Sim.Metrics.counter;
  reads_c : Sim.Metrics.counter;
  seals_c : Sim.Metrics.counter;
  write_svc : (write_request, Types.write_result) Sim.Net.service;
  read_svc : (read_request, Types.read_result) Sim.Net.service;
  trim_svc : (read_request, unit) Sim.Net.service;
  prefix_trim_svc : (read_request, unit) Sim.Net.service;
  seal_svc : (Types.epoch, Types.offset) Sim.Net.service;
  tail_svc : (unit, Types.offset) Sim.Net.service;
}

let lookup t off =
  if off < t.trim_watermark then Types.Trimmed
  else match Hashtbl.find_opt t.cells off with Some c -> c | None -> Types.Unwritten

let handle_write t { wepoch; woffset; wcell } =
  if wepoch < t.epoch then Types.Sealed_at t.epoch
  else if woffset >= t.capacity_entries then Types.Out_of_space
  else begin
    Sim.Metrics.incr t.writes_c;
    Sim.Resource.use t.ssd t.write_us;
    match (lookup t woffset, wcell) with
    | Types.Unwritten, (Types.Data _ | Types.Junk) ->
        Hashtbl.replace t.cells woffset wcell;
        if woffset > t.local_tail then t.local_tail <- woffset;
        t.writes_seen <- t.writes_seen + 1;
        Types.Write_ok
    | Types.Junk, Types.Junk -> Types.Write_ok (* idempotent fill *)
    | (Types.Data _ | Types.Junk | Types.Trimmed), _ ->
        Types.Already_written (lookup t woffset)
    | Types.Unwritten, (Types.Unwritten | Types.Trimmed) ->
        invalid_arg "Storage_node: cannot write an unwritten/trimmed cell"
  end

let handle_read t { repoch; roffset } =
  if repoch < t.epoch then Types.Read_sealed t.epoch
  else begin
    Sim.Metrics.incr t.reads_c;
    Sim.Resource.use t.ssd t.read_us;
    match lookup t roffset with
    | Types.Data e -> Types.Read_data e
    | Types.Unwritten -> Types.Read_unwritten
    | Types.Junk -> Types.Read_junk
    | Types.Trimmed -> Types.Read_trimmed
  end

let handle_trim t { roffset; _ } =
  Sim.Resource.use t.ssd 2.;
  Hashtbl.replace t.cells roffset Types.Trimmed

let handle_prefix_trim t { roffset; _ } =
  Sim.Resource.use t.ssd 2.;
  if roffset > t.trim_watermark then begin
    t.trim_watermark <- roffset;
    Hashtbl.filter_map_inplace (fun off c -> if off < roffset then None else Some c) t.cells
  end

let handle_seal t epoch =
  Sim.Metrics.incr t.seals_c;
  if epoch > t.epoch then t.epoch <- epoch;
  t.local_tail

let create ~net ~name ~(params : Sim.Params.t) ?(capacity_entries = max_int) () =
  let node_host = Sim.Net.add_host net name in
  let ssd = Sim.Resource.create ~name:(name ^ ".ssd") ~capacity:params.storage_capacity () in
  Sim.Metrics.track_resource ssd;
  let rec t =
    lazy
      {
        node_name = name;
        node_host;
        ssd;
        cells = Hashtbl.create 4096;
        capacity_entries;
        write_us = params.storage_write_us;
        read_us = params.storage_read_us;
        epoch = 0;
        local_tail = -1;
        trim_watermark = 0;
        writes_seen = 0;
        writes_c = Sim.Metrics.counter ~host:name "ssd.writes";
        reads_c = Sim.Metrics.counter ~host:name "ssd.reads";
        seals_c = Sim.Metrics.counter ~host:name "node.seals";
        write_svc = Sim.Net.service node_host ~name:"write" (fun r -> handle_write (Lazy.force t) r);
        read_svc = Sim.Net.service node_host ~name:"read" (fun r -> handle_read (Lazy.force t) r);
        trim_svc = Sim.Net.service node_host ~name:"trim" (fun r -> handle_trim (Lazy.force t) r);
        prefix_trim_svc =
          Sim.Net.service node_host ~name:"prefix-trim" (fun r -> handle_prefix_trim (Lazy.force t) r);
        seal_svc = Sim.Net.service node_host ~name:"seal" (fun e -> handle_seal (Lazy.force t) e);
        tail_svc = Sim.Net.service node_host ~name:"tail" (fun () -> (Lazy.force t).local_tail);
      }
  in
  Lazy.force t

let name t = t.node_name
let host t = t.node_host
let ssd t = t.ssd
let write_service t = t.write_svc
let read_service t = t.read_svc
let trim_service t = t.trim_svc
let prefix_trim_service t = t.prefix_trim_svc
let seal_service t = t.seal_svc
let tail_service t = t.tail_svc
let sealed_epoch t = t.epoch
let written_count t = t.writes_seen
let trimmed_below t = t.trim_watermark
