(** The one binary codec for every wire format in the tree: big-endian
    fixed-width integers, length-prefixed strings/bytes, a tagged
    option, over a reusable arena {!writer} and a bounds-checked,
    reusable cursor (reading).

    {!Projection.encode_layout}, {!Tango.Record} and
    {!Tango_objects.Codec} all build their formats from these
    primitives; the primitives themselves are not a stable on-disk
    contract — the formats defined on top of them are.

    {2 Ownership discipline}

    A {!writer} is an arena: its backing [bytes] is reused across
    encodes, so the encoded image is only valid until the next
    {!reset}. Take ownership with {!contents}, which copies — that copy
    is the single allocation of a steady-state encode. Likewise a
    {!cursor} borrows the [bytes] it reads: fixed-width getters never
    allocate, while {!get_bytes}/{!get_string} copy out and so own
    their result. Integers are composed on the native [int]
    byte-by-byte; no boxed [Int32]/[Int64] on the hot path. *)

type writer

(** [writer ?size ()] preallocates an arena of [size] (default 256)
    bytes; it grows by doubling when an encode overflows it. *)
val writer : ?size:int -> unit -> writer

(** [reset w] rewinds the cursor to 0, invalidating any image not yet
    copied out with {!contents}. The backing arena is retained. *)
val reset : writer -> unit

(** Bytes written since the last {!reset}. *)
val pos : writer -> int

(** [contents w] copies the written region out of the arena — the
    ownership boundary of an encode. *)
val contents : writer -> bytes

(** [to_bytes build] runs [build] against a shared module-level arena
    and returns a copy of its contents. Safe because encodes never
    yield to the scheduler; a nested call (an encode within an encode)
    transparently falls back to a fresh arena. *)
val to_bytes : (writer -> unit) -> bytes

val put_u8 : writer -> int -> unit
val put_bool : writer -> bool -> unit

(** Low 32 bits, big-endian. Reads back via {!get_u32} as a
    non-negative int in [\[0, 2{^32})]. *)
val put_u32 : writer -> int -> unit

(** Low 63 bits (the native [int]), big-endian in an 8-byte slot;
    round-trips exactly for values in [\[0, 2{^62})], the only range
    the formats use. *)
val put_u64 : writer -> int -> unit

(** [patch_u32 w ~at v] overwrites 4 bytes at position [at] inside the
    already-written region — for length prefixes backpatched after the
    body is encoded. Raises [Invalid_argument] outside the region. *)
val patch_u32 : writer -> at:int -> int -> unit

(** Length-prefixed (u32) byte string. *)
val put_bytes : writer -> bytes -> unit

(** Length-prefixed (u32) string. *)
val put_string : writer -> string -> unit

(** One tag byte (0 = absent, 1 = present) then {!put_string}. *)
val put_opt_string : writer -> string option -> unit

type cursor

(** [reader b] starts a cursor at offset 0. Every getter raises
    [Invalid_argument] on out-of-bounds access instead of reading
    garbage. *)
val reader : bytes -> cursor

(** [reset_reader c b] re-aims an existing cursor at [b], offset 0 —
    the allocation-free way to decode a stream of frames. *)
val reset_reader : cursor -> bytes -> unit

val get_u8 : cursor -> int
val get_bool : cursor -> bool
val get_u32 : cursor -> int
val get_u64 : cursor -> int
val get_bytes : cursor -> bytes
val get_string : cursor -> string

(** Raises [Invalid_argument] on a tag byte other than 0 or 1. *)
val get_opt_string : cursor -> string option

(** Current cursor position (bytes consumed so far). *)
val at : cursor -> int

(** Bytes left to read. *)
val remaining : cursor -> int
