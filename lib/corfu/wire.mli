(** The one binary codec for every wire format in the tree: big-endian
    fixed-width integers, length-prefixed strings/bytes, a tagged
    option, over [Buffer] (writing) and a bounds-checked cursor
    (reading).

    {!Projection.encode_layout}, {!Tango.Record} and
    {!Tango_objects.Codec} all build their formats from these
    primitives; the primitives themselves are not a stable on-disk
    contract — the formats defined on top of them are. *)

(** [to_bytes build] runs [build] against a fresh buffer and returns
    its contents. *)
val to_bytes : (Buffer.t -> unit) -> bytes

val put_u8 : Buffer.t -> int -> unit
val put_bool : Buffer.t -> bool -> unit
val put_u32 : Buffer.t -> int -> unit
val put_u64 : Buffer.t -> int -> unit

(** Length-prefixed (u32) byte string. *)
val put_bytes : Buffer.t -> bytes -> unit

(** Length-prefixed (u32) string. *)
val put_string : Buffer.t -> string -> unit

(** One tag byte (0 = absent, 1 = present) then {!put_string}. *)
val put_opt_string : Buffer.t -> string option -> unit

type cursor

(** [reader b] starts a cursor at offset 0. Every getter raises
    [Invalid_argument] on out-of-bounds access instead of reading
    garbage. *)
val reader : bytes -> cursor

val get_u8 : cursor -> int
val get_bool : cursor -> bool
val get_u32 : cursor -> int
val get_u64 : cursor -> int
val get_bytes : cursor -> bytes
val get_string : cursor -> string

(** Raises [Invalid_argument] on a tag byte other than 0 or 1. *)
val get_opt_string : cursor -> string option

(** Current cursor position (bytes consumed so far). *)
val at : cursor -> int

(** Bytes left to read. *)
val remaining : cursor -> int
