(* Arena-based writer: a growable [bytes] with an explicit cursor.
   Integers are composed byte-by-byte on the native [int] so the hot
   encode path never touches boxed [Int32]/[Int64]. The byte layout is
   unchanged from the Buffer-based codec (big-endian, values < 2^62). *)

type writer = { mutable wb : bytes; mutable wpos : int }

let writer ?(size = 256) () = { wb = Bytes.create (max 16 size); wpos = 0 }
let reset w = w.wpos <- 0
let pos w = w.wpos

let grow w extra =
  let cap = ref (2 * Bytes.length w.wb) in
  while w.wpos + extra > !cap do
    cap := 2 * !cap
  done;
  let bigger = Bytes.create !cap in
  Bytes.blit w.wb 0 bigger 0 w.wpos;
  w.wb <- bigger

let ensure w extra = if w.wpos + extra > Bytes.length w.wb then grow w extra

let put_u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.wb w.wpos (Char.unsafe_chr (v land 0xFF));
  w.wpos <- w.wpos + 1

let put_bool w v = put_u8 w (if v then 1 else 0)

let set32 b p v =
  Bytes.unsafe_set b p (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Bytes.unsafe_set b (p + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (p + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (p + 3) (Char.unsafe_chr (v land 0xFF))

let put_u32 w v =
  ensure w 4;
  set32 w.wb w.wpos v;
  w.wpos <- w.wpos + 4

let put_u64 w v =
  ensure w 8;
  let b = w.wb and p = w.wpos in
  Bytes.unsafe_set b p (Char.unsafe_chr ((v lsr 56) land 0xFF));
  Bytes.unsafe_set b (p + 1) (Char.unsafe_chr ((v lsr 48) land 0xFF));
  Bytes.unsafe_set b (p + 2) (Char.unsafe_chr ((v lsr 40) land 0xFF));
  Bytes.unsafe_set b (p + 3) (Char.unsafe_chr ((v lsr 32) land 0xFF));
  Bytes.unsafe_set b (p + 4) (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Bytes.unsafe_set b (p + 5) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set b (p + 6) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set b (p + 7) (Char.unsafe_chr (v land 0xFF));
  w.wpos <- p + 8

let patch_u32 w ~at v =
  if at < 0 || at + 4 > w.wpos then invalid_arg "Wire.patch_u32: position outside written region";
  set32 w.wb at v

let put_bytes w s =
  let n = Bytes.length s in
  ensure w (4 + n);
  set32 w.wb w.wpos n;
  Bytes.blit s 0 w.wb (w.wpos + 4) n;
  w.wpos <- w.wpos + 4 + n

let put_string w s =
  let n = String.length s in
  ensure w (4 + n);
  set32 w.wb w.wpos n;
  Bytes.blit_string s 0 w.wb (w.wpos + 4) n;
  w.wpos <- w.wpos + 4 + n

let put_opt_string w = function
  | None -> put_u8 w 0
  | Some s ->
      put_u8 w 1;
      put_string w s

let contents w = Bytes.sub w.wb 0 w.wpos

(* Shared arena for [to_bytes]: encodes never yield to the scheduler,
   so a single module-level writer serves every non-nested call. A
   nested [to_bytes] (an encode called from inside an encode) falls
   back to a fresh writer rather than corrupting the arena. *)
let shared = writer ~size:512 ()
let shared_busy = ref false

let to_bytes build =
  if !shared_busy then begin
    let w = writer () in
    build w;
    contents w
  end
  else begin
    shared_busy := true;
    Fun.protect ~finally:(fun () -> shared_busy := false) @@ fun () ->
    reset shared;
    build shared;
    contents shared
  end

type cursor = { mutable buf : bytes; mutable at : int }

let reader buf = { buf; at = 0 }

let reset_reader c buf =
  c.buf <- buf;
  c.at <- 0

let need c n =
  if n < 0 || c.at + n > Bytes.length c.buf then invalid_arg "Wire.decode: truncated payload"

let get_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.at in
  c.at <- c.at + 1;
  v

let get_bool c = get_u8 c = 1

let get_u32 c =
  need c 4;
  let b = c.buf and p = c.at in
  let v =
    (Char.code (Bytes.unsafe_get b p) lsl 24)
    lor (Char.code (Bytes.unsafe_get b (p + 1)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (p + 2)) lsl 8)
    lor Char.code (Bytes.unsafe_get b (p + 3))
  in
  c.at <- p + 4;
  v

let get_u64 c =
  need c 8;
  let b = c.buf and p = c.at in
  let hi =
    (Char.code (Bytes.unsafe_get b p) lsl 56)
    lor (Char.code (Bytes.unsafe_get b (p + 1)) lsl 48)
    lor (Char.code (Bytes.unsafe_get b (p + 2)) lsl 40)
    lor (Char.code (Bytes.unsafe_get b (p + 3)) lsl 32)
  in
  let lo =
    (Char.code (Bytes.unsafe_get b (p + 4)) lsl 24)
    lor (Char.code (Bytes.unsafe_get b (p + 5)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (p + 6)) lsl 8)
    lor Char.code (Bytes.unsafe_get b (p + 7))
  in
  c.at <- p + 8;
  hi lor lo

let get_bytes c =
  let n = get_u32 c in
  need c n;
  let v = Bytes.sub c.buf c.at n in
  c.at <- c.at + n;
  v

let get_string c =
  let n = get_u32 c in
  need c n;
  let v = Bytes.sub_string c.buf c.at n in
  c.at <- c.at + n;
  v

let get_opt_string c =
  match get_u8 c with
  | 0 -> None
  | 1 -> Some (get_string c)
  | tag -> invalid_arg (Printf.sprintf "Wire.decode: bad option tag %d" tag)

let at c = c.at
let remaining c = Bytes.length c.buf - c.at
