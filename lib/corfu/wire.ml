let to_bytes build =
  let b = Buffer.create 64 in
  build b;
  Buffer.to_bytes b

let put_u8 = Buffer.add_uint8
let put_bool b v = put_u8 b (if v then 1 else 0)
let put_u32 b v = Buffer.add_int32_be b (Int32.of_int v)
let put_u64 b v = Buffer.add_int64_be b (Int64.of_int v)

let put_bytes b s =
  put_u32 b (Bytes.length s);
  Buffer.add_bytes b s

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_opt_string b = function
  | None -> put_u8 b 0
  | Some s ->
      put_u8 b 1;
      put_string b s

type cursor = { buf : bytes; mutable at : int }

let reader buf = { buf; at = 0 }

let need c n =
  if n < 0 || c.at + n > Bytes.length c.buf then invalid_arg "Wire.decode: truncated payload"

let get_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.at in
  c.at <- c.at + 1;
  v

let get_bool c = get_u8 c = 1

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.at) in
  c.at <- c.at + 4;
  v

let get_u64 c =
  need c 8;
  let v = Int64.to_int (Bytes.get_int64_be c.buf c.at) in
  c.at <- c.at + 8;
  v

let get_bytes c =
  let n = get_u32 c in
  need c n;
  let v = Bytes.sub c.buf c.at n in
  c.at <- c.at + n;
  v

let get_string c =
  let n = get_u32 c in
  need c n;
  let v = Bytes.sub_string c.buf c.at n in
  c.at <- c.at + n;
  v

let get_opt_string c =
  match get_u8 c with
  | 0 -> None
  | 1 -> Some (get_string c)
  | tag -> invalid_arg (Printf.sprintf "Wire.decode: bad option tag %d" tag)

let at c = c.at
let remaining c = Bytes.length c.buf - c.at
