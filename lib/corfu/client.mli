(** The CORFU client library: append / read / check / trim / fill over
    the clustered log (paper §2.2), with client-driven chain
    replication and epoch handling.

    Each client caches a projection; any RPC answered with a sealed
    error refreshes the cache from the auxiliary and retries. Appends
    obtain an offset from the sequencer, then write the replica chain
    head-to-tail, so a torn append leaves a prefix of the chain
    written and is repaired by the first {!fill} (which completes data
    it finds at the head instead of junking it). *)

type t

(** What a resolved log position holds. [Completed] distinguishes a
    fill that found and repaired a torn append. *)
type read_outcome = Data of Types.entry | Junk | Trimmed | Unwritten

(** Result of a {!fill}: [Filled] patched the hole with junk;
    [Fill_completed e] found a torn append's data at the chain head and
    wrote it onto at least one replica that was missing it;
    [Fill_lost e] found the data already on every reachable replica —
    the filler lost the race against the writer and changed nothing. *)
type fill_outcome = Filled | Fill_completed of Types.entry | Fill_lost of Types.entry

val create : host:Sim.Net.host -> aux:Auxiliary.t -> params:Sim.Params.t -> t

val host : t -> Sim.Net.host
val params : t -> Sim.Params.t

(** Current cached projection (refreshed on sealed errors). *)
val projection : t -> Projection.t

(** Force a refresh from the auxiliary. *)
val refresh : t -> unit

(** [append t ~streams payload] acquires the next offset, encodes
    stream headers from the sequencer's backpointer state, writes the
    chain, and returns the offset. Appending to multiple streams is
    the multiappend of §4: one physical entry on several streams.
    Retries transparently on seal; a lost write-once race (our offset
    got filled) also retries with a fresh offset. *)
val append : t -> streams:Types.stream_id list -> bytes -> Types.offset

(** {2 Range grants}

    One sequencer RPC can reserve a {e range} of consecutive offsets
    (§6.1's append window): the client then drives the chain writes
    for the granted offsets concurrently, so offset [n+1] reaches the
    chain head while [n] is still propagating down-chain. The
    sequencer records every granted offset on every requested stream,
    and {!write_granted} builds each entry's headers by chaining
    through the grant's earlier offsets — streams stay exactly
    walkable. *)

type grant = {
  mutable g_base : Types.offset;  (** first granted offset *)
  mutable g_count : int;  (** grant size *)
  mutable g_streams : Types.stream_id list;
  mutable g_tails : (Types.stream_id * Types.offset list) list;
      (** per-stream last-K as of the grant, excluding the grant *)
  mutable g_seq : Sequencer.t;
      (** the issuing sequencer. A sequencer replacement voids the
          grant's unwritten offsets: the rebuilt backpointer state only
          knows offsets whose chain head was written before the seal,
          so {!write_granted} completes those (torn writes) and moves
          any other payload to a fresh offset — the abandoned slots
          resolve as junk through readers' hole-filling. *)
}

(** [reserve t ~streams ~count] reserves [count] consecutive offsets
    on [streams] in one sequencer RPC. Retries transparently on seal.
    Raises [Invalid_argument] when [count < 1]. *)
val reserve : t -> streams:Types.stream_id list -> count:int -> grant

(** A zeroed grant record for pooling: {!reserve_into} refills it. *)
val blank_grant : t -> grant

(** [reserve_into t g ~streams ~count] is {!reserve} writing its result
    into [g] instead of allocating — the batcher's drain loop keeps a
    small pool of grant records and refills one per drain cycle. [g]
    must have no {!write_granted} calls in flight. *)
val reserve_into : t -> grant -> streams:Types.stream_id list -> count:int -> unit

(** [write_granted t g ~index payload] writes [payload] at granted
    offset [g.g_base + index] with exact backpointer headers. Returns
    the offset the payload actually landed at: normally the granted
    one, but if the granted slot was hole-filled before the write
    reached the head (client stalled past the fill timeout), or the
    grant was voided by a sequencer replacement (see {!grant}), the
    payload is re-appended at a fresh offset. Safe to call
    concurrently for distinct indices of one grant. *)
val write_granted : t -> grant -> index:int -> bytes -> Types.offset

(** [append_range t ~streams payloads] reserves one grant covering all
    [payloads] and writes them with overlapping chain writes. Returns
    the landed offsets in payload order. *)
val append_range : t -> streams:Types.stream_id list -> bytes list -> Types.offset list

(** [append_probing t ~streams payload] appends {e without the
    sequencer} (§2.2: "the system can run without a sequencer, at much
    reduced throughput, by having clients probe for the location of
    the tail"): the slow check locates the tail, the write-once
    property arbitrates races (losers probe upward). Backpointers come
    from this client's own append history, so streams written by a
    single client remain exactly walkable; entries whose headers have
    shorter chains are found by the stream layer's backward scan.
    Keeps the log correct while a failed sequencer is being
    replaced. *)
val append_probing : t -> streams:Types.stream_id list -> bytes -> Types.offset

(** [read t off] reads from a uniformly random replica of the set and
    falls back to the chain tail when that replica has not seen the
    write yet. Never blocks on unwritten offsets — callers own the
    retry/fill policy. *)
val read : t -> Types.offset -> read_outcome

(** [read_resolved t off] blocks until [off] is resolved: retries
    unwritten offsets with backoff and, after the configured fill
    timeout, patches the hole (paper: 100 ms default, §3.2). Returns
    [Data] or [Junk] (or [Trimmed]). *)
val read_resolved : t -> Types.offset -> read_outcome

(** [read_shared t off] is {!read_resolved} with request coalescing
    and caching: concurrent callers for the same offset share one
    fetch, and [Data] results land in the entry cache. This is the
    playback fetch path — streams prefetch through it so log reads
    pipeline instead of paying one round trip per entry. *)
val read_shared : t -> Types.offset -> read_outcome

(** [prefetch t off] starts a background {!read_shared} for [off] if
    neither cached nor already in flight. *)
val prefetch : t -> Types.offset -> unit

(** [check t] is the fast check: one sequencer round trip, returns the
    tail (exclusive upper bound of allocated offsets). *)
val check : t -> Types.offset

(** [check_slow t] queries every storage node for its local tail and
    inverts the mapping (§2.2). Works without a sequencer. *)
val check_slow : t -> Types.offset

(** [fill t off] patches a hole with junk through the chain; finding
    data at the head completes the torn append instead. *)
val fill : t -> Types.offset -> fill_outcome

(** [trim t off] marks one offset reclaimable on every replica. *)
val trim : t -> Types.offset -> unit

(** [prefix_trim t off] reclaims every global offset below [off]. *)
val prefix_trim : t -> Types.offset -> unit

(** [peek_streams t sids] returns the global tail and, per stream, the
    last K offsets the sequencer issued for it (most recent first). *)
val peek_streams : t -> Types.stream_id list -> Types.offset * (Types.stream_id * Types.offset list) list

(** {2 Entry cache}

    The streaming layer fetches each entry once and caches it (§4.1);
    the cache lives here so multiple streams on one client share it. *)

(** Storage RPCs that timed out or found a dead node since creation —
    the client-visible failure count during fault scenarios. Retries
    are transparent, so this is observability, not an error report. *)
val rpc_failures : t -> int

val cached : t -> Types.offset -> Types.entry option
val cache_put : t -> Types.offset -> Types.entry -> unit
val cache_drop_below : t -> Types.offset -> unit
val cache_size : t -> int
