(** A CORFU storage node: a flash unit exposing a 64-bit write-once
    address space (paper §2.2).

    Each node owns the {e local} offsets of one replica set; the
    client library maps global offsets onto (replica set, local
    offset) pairs. The node enforces write-once semantics, epoch
    sealing, and explicit trims; every data operation occupies the
    node's simulated SSD for the calibrated service time. *)

type t

(** Requests carry the client's epoch; nodes sealed at a higher epoch
    reject them, forcing the client to refresh its projection. *)
type write_request = { wepoch : Types.epoch; woffset : Types.offset; wcell : Types.cell }

type read_request = { repoch : Types.epoch; roffset : Types.offset }

(** [create ~net ~name ~params ()] builds the node and registers its
    RPC services on a fresh host. [capacity_entries] bounds the local
    address space (default: effectively unbounded). *)
val create : net:Sim.Net.t -> name:string -> params:Sim.Params.t -> ?capacity_entries:int -> unit -> t

val name : t -> string
val host : t -> Sim.Net.host

(** The node's simulated flash device. Exposed so fault plans can fail
    it ({!Sim.Resource.fail} via a {!Sim.Fault.Custom} action): reads
    and writes then raise into their RPCs, which the failure monitor
    sees as a dead member. *)
val ssd : t -> Sim.Resource.t

(** {2 RPC endpoints} — fields, so clients embed them in projections. *)

(** Write-once write of data or junk at a local offset. Writing junk
    implements [fill]; a fill that loses to data returns
    [Already_written (Data _)] so the filler can repair the chain. *)
val write_service : t -> (write_request, Types.write_result) Sim.Net.service

val read_service : t -> (read_request, Types.read_result) Sim.Net.service

(** Marks a single local offset reclaimable. *)
val trim_service : t -> (read_request, unit) Sim.Net.service

(** Reclaims every local offset strictly below the argument. *)
val prefix_trim_service : t -> (read_request, unit) Sim.Net.service

(** [seal epoch] refuses all operations tagged with a lower epoch from
    now on and returns the node's local tail — the highest written
    local offset, or -1. Used by reconfiguration and the slow check. *)
val seal_service : t -> (Types.epoch, Types.offset) Sim.Net.service

(** Local tail query (no seal); the slow tail check reads these. *)
val tail_service : t -> (unit, Types.offset) Sim.Net.service

(** {2 Introspection (tests, GC accounting)} *)

val sealed_epoch : t -> Types.epoch
val written_count : t -> int
val trimmed_below : t -> Types.offset
