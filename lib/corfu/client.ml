type read_outcome = Data of Types.entry | Junk | Trimmed | Unwritten
type fill_outcome = Filled | Fill_completed of Types.entry | Fill_lost of Types.entry

type t = {
  client_host : Sim.Net.host;
  aux : Auxiliary.t;
  p : Sim.Params.t;
  mutable proj : Projection.t;
  rng : Sim.Rng.t;
  cache : (Types.offset, Types.entry) Hashtbl.t;
  inflight : (Types.offset, read_ivar) Hashtbl.t;
  probe_tails : (Types.stream_id, Types.offset list) Hashtbl.t;
      (* this client's own per-stream append history, used to build
         backpointers when appending without the sequencer *)
  mutable cache_floor : Types.offset;
  mutable cache_high : Types.offset;  (* highest cached offset *)
  rpc_failures : Sim.Metrics.counter;
      (* storage RPCs that timed out or hit a dead node; the
         availability reports read this as "failed ops" *)
  retries : Sim.Metrics.counter;
  fills_c : Sim.Metrics.counter;
  cache_hits_c : Sim.Metrics.counter;
  cache_misses_c : Sim.Metrics.counter;
  append_h : Sim.Metrics.histogram;
  grant_h : Sim.Metrics.histogram;
  chain_h : Sim.Metrics.histogram;
  read_h : Sim.Metrics.histogram;
}

and read_ivar = read_outcome Sim.Ivar.t

(* The entry cache exists so playback touches the network once per
   entry; consumed entries are rarely revisited (log-indexed views
   re-read from storage on a miss). Cap residency and shed the oldest
   half when the cap is hit. *)
let max_cached_entries = 16_384

let cache_insert t off entry =
  if off >= t.cache_floor then begin
    Hashtbl.replace t.cache off entry;
    if off > t.cache_high then t.cache_high <- off;
    if Hashtbl.length t.cache > max_cached_entries then begin
      let keep_from = t.cache_high - (max_cached_entries / 2) in
      Hashtbl.filter_map_inplace
        (fun o e -> if o < keep_from then None else Some e)
        t.cache
    end
  end

let create ~host ~aux ~params =
  let hname = Sim.Net.host_name host in
  {
    client_host = host;
    aux;
    p = params;
    proj = Auxiliary.latest aux;
    rng = Sim.Rng.split (Sim.Engine.rng ());
    cache = Hashtbl.create 4096;
    inflight = Hashtbl.create 64;
    probe_tails = Hashtbl.create 16;
    cache_floor = 0;
    cache_high = -1;
    rpc_failures = Sim.Metrics.counter ~host:hname "client.rpc_failures";
    retries = Sim.Metrics.counter ~host:hname "client.retries";
    fills_c = Sim.Metrics.counter ~host:hname "client.fills";
    cache_hits_c = Sim.Metrics.counter ~host:hname "client.cache_hits";
    cache_misses_c = Sim.Metrics.counter ~host:hname "client.cache_misses";
    append_h = Sim.Metrics.histogram ~host:hname "append.e2e_us";
    grant_h = Sim.Metrics.histogram ~host:hname "sequencer.grant_us";
    chain_h = Sim.Metrics.histogram ~host:hname "chain.write_us";
    read_h = Sim.Metrics.histogram ~host:hname "read.fetch_us";
  }

let host t = t.client_host
let params t = t.p
let projection t = t.proj
let hname t = Sim.Net.host_name t.client_host
let rpc_failures t = Sim.Metrics.counter_value t.rpc_failures

let note_failure t = Sim.Metrics.incr t.rpc_failures
let note_retry t = Sim.Metrics.incr t.retries

let refresh t =
  t.proj <- Sim.Net.call ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes ~from:t.client_host
      (Auxiliary.latest_service t.aux) ();
  Sim.Trace.f ~host:(Sim.Net.host_name t.client_host) "corfu" "adopted projection epoch %d"
    t.proj.Projection.epoch

(* ------------------------------------------------------------------ *)
(* Chain replication, client-driven                                   *)
(* ------------------------------------------------------------------ *)

type chain_write = Chain_ok | Chain_lost of Types.cell | Chain_sealed | Chain_down

(* Write [cell] through the chain for global offset [off], head first.
   A mid-chain write-once conflict is benign: it means a concurrent
   filler saw our data at the head and is completing the very same
   write down the chain (or another filler raced us with junk).

   Finding our {e own} entry already stored — recognized by physical
   equality, which survives fills and rebuild copies because the
   simulator never serializes entries — is equally benign at any
   position, including the head: it means an earlier attempt of this
   very write got through (e.g. the response was lost, or a
   reconfiguration copied it) and we must keep completing the chain
   rather than declare the slot lost and append a duplicate. *)
let write_chain_inner t off cell =
  Sim.Metrics.time t.chain_h
  @@ fun () ->
  if Projection.locate t.proj off = Projection.Retired then
    (* The offset's segment was retired from the map: its data was
       prefix-trimmed away, so the slot is permanently lost to us. *)
    Chain_lost Types.Trimmed
  else
  let set = Projection.replica_set t.proj off in
  let loff = Projection.local_offset t.proj off in
  let req = { Storage_node.wepoch = t.proj.Projection.epoch; woffset = loff; wcell = cell } in
  let rec go i =
    if i >= Array.length set then Chain_ok
    else
      let resp =
        Sim.Net.call_r ~req_bytes:t.p.entry_bytes ~resp_bytes:t.p.rpc_bytes
          ~timeout_us:t.p.rpc_timeout_us ~from:t.client_host
          (Storage_node.write_service set.(i))
          req
      in
      match resp with
      | Error _ ->
          note_failure t;
          Chain_down
      | Ok Types.Write_ok -> go (i + 1)
      | Ok (Types.Already_written winner) -> (
          match (winner, cell) with
          | Types.Data stored, Types.Data mine when stored == mine -> go (i + 1)
          | _ -> if i = 0 then Chain_lost winner else go (i + 1))
      | Ok (Types.Sealed_at _) -> Chain_sealed
      | Ok Types.Out_of_space -> failwith "CORFU: log capacity exhausted"
  in
  go 0

(* Tracing-disabled writes must not build the span args (offset
   stringification) or a body closure. *)
let write_chain t off cell =
  if Sim.Span.enabled () then
    Sim.Span.with_span ~host:(hname t)
      ~args:[ ("offset", string_of_int off) ]
      "chain.write"
      (fun () -> write_chain_inner t off cell)
  else write_chain_inner t off cell

(* Back off, learn the current projection, and grow the next backoff:
   the shared shape of every ride-through-reconfiguration retry. *)
let down_retry t backoff =
  note_retry t;
  Sim.Engine.sleep backoff;
  refresh t;
  Float.min (backoff *. 2.) t.p.retry_backoff_max_us

(* One replica read under the current projection; shared by the read
   path below and the stale-grant probe. *)
let read_replica t node off =
  let loff = Projection.local_offset t.proj off in
  Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.entry_bytes
    ~timeout_us:t.p.rpc_timeout_us ~from:t.client_host
    (Storage_node.read_service node)
    { Storage_node.repoch = t.proj.Projection.epoch; roffset = loff }

(* A chain write whose projection gained a {e new sequencer} mid-flight
   needs a verdict on its granted offset. The replacement rebuilt the
   backpointer state by scanning chain heads after every storage node
   was sealed, so head-visibility at the handoff is exactly
   scan-visibility:

   - our entry at the head (physical equality, as in {!write_chain}):
     the scan recorded the offset's stream membership, so completing
     the chain under the new projection is correct — and required,
     since readers may already be chaining through it;
   - anything else (unwritten, junk, a foreign winner, trimmed): the
     grant died with the old sequencer. The offset is unknown to the
     rebuilt state, so writing it now would land an entry no stream
     sync could ever discover; the payload must move to a fresh offset
     and the abandoned slot resolves as junk through readers' fills. *)
let probe_stale_grant t off entry =
  let rec go backoff =
    if Projection.locate t.proj off = Projection.Retired then `Abandon
    else
      let set = Projection.replica_set t.proj off in
      match read_replica t set.(0) off with
      | Error _ ->
          note_failure t;
          go (down_retry t backoff)
      | Ok (Types.Read_sealed _) -> go (down_retry t backoff)
      | Ok (Types.Read_data e) when e == entry -> `Complete
      | Ok (Types.Read_data _ | Types.Read_junk | Types.Read_trimmed | Types.Read_unwritten) ->
          `Abandon
  in
  go t.p.retry_sleep_us

(* The sequencer round trip, wrapped in its span and latency
   histogram; shared by single appends, range grants, and checks. *)
let seq_grant t f =
  Sim.Span.with_span ~host:(hname t) "sequencer.grant" @@ fun () -> Sim.Metrics.time t.grant_h f

let commit_marker t ~streams ~off f =
  Sim.Span.with_span ~host:(hname t) "commit" @@ fun () ->
  f ();
  if Sim.Announce.active () then
    Sim.Announce.emit (Sim.Announce.Append_acked { client = hname t; offset = off; streams })

(* Remember our own appends per stream so probing appends (below) can
   chain onto them if the sequencer disappears. *)
let note_own_append t ~streams off =
  List.iter
    (fun sid ->
      let prev = match Hashtbl.find_opt t.probe_tails sid with Some l -> l | None -> [] in
      let rec take n = function x :: r when n > 0 -> x :: take (n - 1) r | _ -> [] in
      Hashtbl.replace t.probe_tails sid (take t.p.backpointer_k (off :: prev)))
    streams

let rec append_inner t ~streams payload =
  let resp =
    seq_grant t (fun () ->
        Sim.Net.call ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes ~from:t.client_host
          (Sequencer.increment_service t.proj.Projection.sequencer)
          { Sequencer.iepoch = t.proj.Projection.epoch; istreams = streams; icount = 1 })
  in
  match resp with
  | Sequencer.Seq_sealed _ ->
      note_retry t;
      refresh t;
      append_inner t ~streams payload
  | Sequencer.Seq_ok { base = off; stream_tails } ->
      let headers =
        Stream_header.encode_block ~k:t.p.backpointer_k ~current:off
          (List.map
             (fun (sid, ptrs) -> { Stream_header.stream = sid; backptrs = ptrs })
             stream_tails)
      in
      let entry = { Types.headers; payload } in
      append_at t ~seq:t.proj.Projection.sequencer ~streams ~payload off entry

(* Drive one entry's chain write to a decision. A sealed or unreachable
   chain retries the {e same} offset under the refreshed projection —
   as long as the sequencer that granted it ([seq]) is still the
   projection's sequencer, the allocation is preserved and the offset
   is still ours. Once a handoff replaced the sequencer, the grant's
   fate is decided by {!probe_stale_grant}: complete a torn write the
   rebuild scan saw, abandon an unwritten slot for a fresh offset.
   Only a genuine loss of the slot (someone filled it) moves the
   payload to a fresh offset; retrying with a fresh offset on seal, as
   we used to, could commit the entry twice. *)
and append_at t ~seq ~streams ~payload off entry =
  let rec attempt ~seq backoff =
    if t.proj.Projection.sequencer != seq then
      match probe_stale_grant t off entry with
      | `Complete -> attempt ~seq:t.proj.Projection.sequencer backoff
      | `Abandon ->
          note_retry t;
          append_inner t ~streams payload
    else
      match write_chain t off (Types.Data entry) with
      | Chain_ok ->
          commit_marker t ~streams ~off (fun () ->
              (* Our own playback will want this entry next; save the
                 round trip. *)
              cache_insert t off entry;
              note_own_append t ~streams off);
          off
      | Chain_lost _ ->
          (* Our offset was filled before we reached the head (we were
             slow past the hole timeout). Grab a fresh offset. *)
          append_inner t ~streams payload
      | Chain_sealed ->
          note_retry t;
          refresh t;
          attempt ~seq backoff
      | Chain_down ->
          let backoff = down_retry t backoff in
          attempt ~seq backoff
  in
  attempt ~seq t.p.retry_sleep_us

(* The public append: one root span covering the whole operation —
   sequencer.grant, chain.write attempts, and the commit marker appear
   as its children — plus the end-to-end latency observation. *)
let append t ~streams payload =
  if Sim.Span.enabled () then
    Sim.Span.with_span ~host:(hname t)
      ~args:[ ("streams", String.concat "," (List.map string_of_int streams)) ]
      "append"
      (fun () -> Sim.Metrics.time t.append_h @@ fun () -> append_inner t ~streams payload)
  else Sim.Metrics.time t.append_h @@ fun () -> append_inner t ~streams payload

(* ------------------------------------------------------------------ *)
(* Range grants: windowed appends                                     *)
(* ------------------------------------------------------------------ *)

type grant = {
  mutable g_base : Types.offset;
  mutable g_count : int;
  mutable g_streams : Types.stream_id list;
  mutable g_tails : (Types.stream_id * Types.offset list) list;
      (* per-stream last-K as of the grant, i.e. excluding the grant *)
  mutable g_seq : Sequencer.t;
      (* the issuing sequencer: a later projection carrying a different
         one voids the unwritten remainder of the grant *)
}

let blank_grant t =
  {
    g_base = 0;
    g_count = 0;
    g_streams = [];
    g_tails = [];
    g_seq = t.proj.Projection.sequencer;
  }

(* Fields are mutable so pooling callers (the batcher's drain loop) can
   refill one grant record per cycle instead of allocating one; the
   grant must not be refilled while writes against it are in flight. *)
let rec reserve_into t g ~streams ~count =
  if count < 1 then invalid_arg "Client.reserve: count must be >= 1";
  let resp =
    seq_grant t (fun () ->
        Sim.Net.call ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes ~from:t.client_host
          (Sequencer.increment_service t.proj.Projection.sequencer)
          { Sequencer.iepoch = t.proj.Projection.epoch; istreams = streams; icount = count })
  in
  match resp with
  | Sequencer.Seq_sealed _ ->
      note_retry t;
      refresh t;
      reserve_into t g ~streams ~count
  | Sequencer.Seq_ok { base; stream_tails } ->
      g.g_base <- base;
      g.g_count <- count;
      g.g_streams <- streams;
      g.g_tails <- stream_tails;
      g.g_seq <- t.proj.Projection.sequencer

let reserve t ~streams ~count =
  let g = blank_grant t in
  reserve_into t g ~streams ~count;
  g

(* Backpointers for offset [g_base + index]: the grant's earlier
   offsets (all on every granted stream, newest first) followed by the
   per-stream tails from before the grant, truncated to K. Keeps every
   stream's chain exactly walkable even though the grant's entries are
   written concurrently. *)
let grant_headers t g ~index off =
  let k = t.p.backpointer_k in
  let rec take n = function x :: rest when n > 0 -> x :: take (n - 1) rest | _ -> [] in
  let earlier = List.init index (fun j -> off - 1 - j) in
  Stream_header.encode_block ~k ~current:off
    (List.map
       (fun sid ->
         let prior = match List.assoc_opt sid g.g_tails with Some l -> l | None -> [] in
         { Stream_header.stream = sid; backptrs = take k (earlier @ prior) })
       g.g_streams)

let write_granted_inner t g ~index payload =
  let off = g.g_base + index in
  Sim.Metrics.time t.append_h
  @@ fun () ->
  let entry = { Types.headers = grant_headers t g ~index off; payload } in
  let rec attempt ~seq backoff =
    if t.proj.Projection.sequencer != seq then
      (* The grant's sequencer was replaced mid-write; see
         {!probe_stale_grant} for why the head replica decides. *)
      match probe_stale_grant t off entry with
      | `Complete -> attempt ~seq:t.proj.Projection.sequencer backoff
      | `Abandon ->
          note_retry t;
          append_inner t ~streams:g.g_streams payload
    else
      match write_chain t off (Types.Data entry) with
      | Chain_ok ->
          commit_marker t ~streams:g.g_streams ~off (fun () ->
              cache_insert t off entry;
              note_own_append t ~streams:g.g_streams off);
          off
      | Chain_lost _ ->
          (* The granted offset was filled (we blew the hole timeout).
             The junked slot breaks nothing: stream readers treat offsets
             the sequencer issued but that carry no header as junk and
             scan backward. Land the payload at a fresh offset. *)
          append_inner t ~streams:g.g_streams payload
      | Chain_sealed ->
          note_retry t;
          refresh t;
          attempt ~seq backoff
      | Chain_down ->
          let backoff = down_retry t backoff in
          attempt ~seq backoff
  in
  attempt ~seq:g.g_seq t.p.retry_sleep_us

let write_granted t g ~index payload =
  if index < 0 || index >= g.g_count then invalid_arg "Client.write_granted: index out of range";
  if Sim.Span.enabled () then
    Sim.Span.with_span ~host:(hname t)
      ~args:[ ("granted", "true"); ("offset", string_of_int (g.g_base + index)) ]
      "append"
      (fun () -> write_granted_inner t g ~index payload)
  else write_granted_inner t g ~index payload

let append_range t ~streams payloads =
  match payloads with
  | [] -> []
  | _ ->
      let n = List.length payloads in
      let g = reserve t ~streams ~count:n in
      let results = Array.make n (-1) in
      let remaining = ref n in
      let all_done = Sim.Ivar.create () in
      (* Overlapped chain writes: offset n+1 hits the chain head while
         n is still propagating down-chain. *)
      let span_parent = Sim.Span.current () in
      List.iteri
        (fun i payload ->
          Sim.Engine.spawn (fun () ->
              Sim.Span.with_parent span_parent (fun () ->
                  results.(i) <- write_granted t g ~index:i payload);
              decr remaining;
              if !remaining = 0 then Sim.Ivar.fill all_done ()))
        payloads;
      Sim.Ivar.read all_done;
      Array.to_list results

(* ------------------------------------------------------------------ *)
(* Reads                                                              *)
(* ------------------------------------------------------------------ *)

let rec read t off =
  if Projection.locate t.proj off = Projection.Retired then Trimmed
  else
  let set = Projection.replica_set t.proj off in
  let n = Array.length set in
  let start = Sim.Rng.int t.rng n in
  (* Walk the replicas starting from a random one; a dead replica is
     skipped, and only when every member is unreachable do we wait for
     reconfiguration to produce a live chain. *)
  let rec try_replica step =
    if step >= n then begin
      Sim.Engine.sleep t.p.retry_sleep_us;
      refresh t;
      read t off
    end
    else
      let i = (start + step) mod n in
      match read_replica t set.(i) off with
      | Error _ ->
          note_failure t;
          try_replica (step + 1)
      | Ok (Types.Read_data e) -> Data e
      | Ok Types.Read_junk -> Junk
      | Ok Types.Read_trimmed -> Trimmed
      | Ok (Types.Read_sealed _) ->
          refresh t;
          read t off
      | Ok Types.Read_unwritten -> (
          (* The replica may simply not have seen the write yet; the
             chain tail is authoritative for committed entries. *)
          if i = n - 1 then Unwritten
          else
            match read_replica t set.(n - 1) off with
            | Error _ ->
                (* Tail unreachable: report unwritten and let the
                   caller's poll/fill policy sort it out after the
                   chain is repaired. *)
                note_failure t;
                Unwritten
            | Ok (Types.Read_data e) -> Data e
            | Ok Types.Read_junk -> Junk
            | Ok Types.Read_trimmed -> Trimmed
            | Ok Types.Read_unwritten -> Unwritten
            | Ok (Types.Read_sealed _) ->
                refresh t;
                read t off)
  in
  try_replica 0

(* ------------------------------------------------------------------ *)
(* Checks                                                             *)
(* ------------------------------------------------------------------ *)

let rec peek_streams t sids =
  Sim.Span.with_span ~host:(hname t) "check_tail"
  @@ fun () ->
  let resp =
    Sim.Net.call ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes ~from:t.client_host
      (Sequencer.peek_service t.proj.Projection.sequencer)
      { Sequencer.pepoch = t.proj.Projection.epoch; pstreams = sids }
  in
  match resp with
  | Sequencer.Seq_sealed _ ->
      note_retry t;
      refresh t;
      peek_streams t sids
  | Sequencer.Seq_ok { base; stream_tails } -> (base, stream_tails)

let check t = fst (peek_streams t [])

let check_slow t =
  let proj = t.proj in
  (* Only the live tail segment can grow, so only its chains need
     probing; bounded segments end below the tail by construction. *)
  let tail_seg = Projection.tail_segment proj in
  let nsets = Array.length tail_seg.Projection.seg_sets in
  let locals =
    Array.init nsets (fun set ->
        (* The head is written first, so it carries the highest local
           tail of the chain; a dead member falls back to the next one
           (whose tail is a lower bound — safe, the probing append's
           write-once race absorbs an under-estimate). *)
        let chain = tail_seg.Projection.seg_sets.(set) in
        let rec probe i =
          if i >= Array.length chain then -1
          else
            match
              Sim.Net.call_r ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes
                ~timeout_us:t.p.rpc_timeout_us ~from:t.client_host
                (Storage_node.tail_service chain.(i)) ()
            with
            | Ok tail -> tail
            | Error _ ->
                note_failure t;
                probe (i + 1)
        in
        probe 0)
  in
  Projection.global_tail_from_locals proj locals

(* Sequencer-less append (§2.2): find the tail with the slow check and
   claim offsets by writing; the write-once property makes exactly one
   winner per offset, so losers probe upward. Backpointers are built
   from this client's own append history — poorer chains than the
   sequencer's, which the stream layer's backward scan compensates. *)
let append_probing t ~streams payload =
  let probe_history sid =
    match Hashtbl.find_opt t.probe_tails sid with Some l -> l | None -> []
  in
  let record_probe off = note_own_append t ~streams off in
  let rec attempt guess =
    let headers =
      Stream_header.encode_block ~k:t.p.backpointer_k ~current:guess
        (List.map
           (fun sid ->
             { Stream_header.stream = sid; backptrs = List.filter (fun o -> o < guess) (probe_history sid) })
           streams)
    in
    let entry = { Types.headers; payload } in
    match write_chain t guess (Types.Data entry) with
    | Chain_ok ->
        commit_marker t ~streams ~off:guess (fun () ->
            cache_insert t guess entry;
            record_probe guess);
        guess
    | Chain_lost _ -> attempt (guess + 1)
    | Chain_sealed ->
        note_retry t;
        refresh t;
        attempt guess
    | Chain_down ->
        note_retry t;
        Sim.Engine.sleep t.p.retry_sleep_us;
        refresh t;
        attempt guess
  in
  attempt (check_slow t)

(* ------------------------------------------------------------------ *)
(* Fill and trim                                                      *)
(* ------------------------------------------------------------------ *)

let fill_inner t off =
  let rec attempt backoff =
    if Projection.locate t.proj off = Projection.Retired then
      (* Retired: the hole was prefix-trimmed out of existence along
         with its whole segment — nothing left to patch. *)
      Filled
    else
    let set = Projection.replica_set t.proj off in
    let loff = Projection.local_offset t.proj off in
    let wr cell i =
      Sim.Net.call_r ~req_bytes:t.p.entry_bytes ~resp_bytes:t.p.rpc_bytes
        ~timeout_us:t.p.rpc_timeout_us ~from:t.client_host
        (Storage_node.write_service set.(i))
        { Storage_node.wepoch = t.proj.Projection.epoch; woffset = loff; wcell = cell }
    in
    (* Returns (hit a seal, replicas this fill actually wrote). An
       unreachable mid-chain replica is skipped: the next fill (or the
       recovery copy) completes it. *)
    let write_rest cell i0 =
      let rec go i sealed repaired =
        if i >= Array.length set then (sealed, repaired)
        else
          match wr cell i with
          | Error _ ->
              note_failure t;
              go (i + 1) sealed repaired
          | Ok Types.Write_ok -> go (i + 1) sealed (repaired + 1)
          | Ok (Types.Already_written _) -> go (i + 1) sealed repaired
          | Ok (Types.Sealed_at _) -> go (i + 1) true repaired
          | Ok Types.Out_of_space -> failwith "CORFU: log capacity exhausted"
      in
      go i0 false 0
    in
    match wr Types.Junk 0 with
    | Error _ ->
        note_failure t;
        let backoff = down_retry t backoff in
        attempt backoff
    | Ok head_resp -> (
        Sim.Trace.f ~host:(Sim.Net.host_name t.client_host) "corfu" "filling hole at %d" off;
        match head_resp with
        | Types.Write_ok | Types.Already_written Types.Junk ->
            let sealed, _ = write_rest Types.Junk 1 in
            if sealed then begin
              refresh t;
              attempt backoff
            end
            else Filled
        | Types.Already_written (Types.Data e) ->
            (* Data at the head: either a torn append to complete down
               the chain, or a fully replicated write we merely lost
               the race against. *)
            let sealed, repaired = write_rest (Types.Data e) 1 in
            if sealed then begin
              refresh t;
              attempt backoff
            end
            else if repaired > 0 then Fill_completed e
            else Fill_lost e
        | Types.Already_written (Types.Trimmed | Types.Unwritten) -> Filled
        | Types.Sealed_at _ ->
            refresh t;
            attempt backoff
        | Types.Out_of_space -> failwith "CORFU: log capacity exhausted")
  in
  attempt t.p.retry_sleep_us

let fill t off =
  Sim.Metrics.incr t.fills_c;
  if Sim.Span.enabled () then
    Sim.Span.with_span ~host:(hname t)
      ~args:[ ("offset", string_of_int off) ]
      "fill"
      (fun () -> fill_inner t off)
  else fill_inner t off

(* Resolve an offset that the sequencer has already allocated: poll
   with backoff while a writer may be in flight, then patch the hole. *)
let read_resolved t off =
  let deadline = Sim.Engine.now () +. t.p.fill_timeout_us in
  let rec poll backoff =
    match read t off with
    | Data _ as r ->
        if Sim.Announce.active () then
          Sim.Announce.emit (Sim.Announce.Offset_readable { client = hname t; offset = off });
        r
    | (Junk | Trimmed) as r -> r
    | Unwritten ->
        if Sim.Engine.now () >= deadline then begin
          match fill t off with
          | Filled -> Junk
          | Fill_completed e | Fill_lost e -> Data e
        end
        else begin
          Sim.Engine.sleep backoff;
          poll (Float.min (backoff *. 2.) 1_000.)
        end
  in
  poll 100.

(* Coalesced fetch: one outstanding read per offset, shared by all
   waiters; Data results are cached for the streaming layer. *)
let read_shared t off =
  match Hashtbl.find_opt t.cache off with
  | Some e ->
      Sim.Metrics.incr t.cache_hits_c;
      Data e
  | None -> (
      match Hashtbl.find_opt t.inflight off with
      | Some iv -> Sim.Ivar.read iv
      | None ->
          Sim.Metrics.incr t.cache_misses_c;
          let iv = Sim.Ivar.create () in
          Hashtbl.replace t.inflight off iv;
          let outcome = Sim.Metrics.time t.read_h (fun () -> read_resolved t off) in
          (match outcome with
          | Data e -> cache_insert t off e
          | Junk | Trimmed | Unwritten -> ());
          Hashtbl.remove t.inflight off;
          Sim.Ivar.fill iv outcome;
          outcome)

let prefetch t off =
  if not (Hashtbl.mem t.cache off) && not (Hashtbl.mem t.inflight off) then begin
    let span_parent = Sim.Span.current () in
    Sim.Engine.spawn (fun () ->
        Sim.Span.with_parent span_parent (fun () -> ignore (read_shared t off)))
  end

let trim t off =
  if Projection.locate t.proj off = Projection.Retired then ()
  else
  let set = Projection.replica_set t.proj off in
  let loff = Projection.local_offset t.proj off in
  Array.iter
    (fun node ->
      Sim.Net.call ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes ~from:t.client_host
        (Storage_node.trim_service node)
        { Storage_node.repoch = t.proj.Projection.epoch; roffset = loff })
    set

let cache_drop_below_impl t off =
  if off > t.cache_floor then begin
    t.cache_floor <- off;
    Hashtbl.filter_map_inplace (fun o e -> if o < off then None else Some e) t.cache
  end

let prefix_trim t off =
  let proj = t.proj in
  (* Each segment overlapping [0, off) gets its own per-set watermark:
     local offsets holding cells whose global offset is below [off].
     Retired segments need nothing — their nodes already trimmed past
     their whole range (that is what retired them). *)
  for si = 0 to Projection.num_segments proj - 1 do
    let seg = Projection.segment proj si in
    let hi =
      match seg.Projection.seg_limit with
      | Some limit -> min off limit
      | None -> off
    in
    let rel = hi - seg.Projection.seg_base in
    if rel > 0 then
      Array.iteri
        (fun set chain ->
          let cells = Projection.seg_cells_below seg ~set ~rel in
          if cells > 0 then begin
            let watermark = seg.Projection.seg_local_base + cells in
            Array.iter
              (fun node ->
                Sim.Net.call ~req_bytes:t.p.rpc_bytes ~resp_bytes:t.p.rpc_bytes
                  ~from:t.client_host
                  (Storage_node.prefix_trim_service node)
                  { Storage_node.repoch = proj.Projection.epoch; roffset = watermark })
              chain
          end)
        seg.Projection.seg_sets
  done;
  cache_drop_below_impl t off

(* ------------------------------------------------------------------ *)
(* Entry cache                                                        *)
(* ------------------------------------------------------------------ *)

let cached t off = Hashtbl.find_opt t.cache off

let cache_put t off e = cache_insert t off e

let cache_drop_below t off = cache_drop_below_impl t off

let cache_size t = Hashtbl.length t.cache
