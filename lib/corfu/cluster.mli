(** Deployment helper: builds a complete CORFU instance inside the
    simulation — storage nodes grouped into replica chains, a
    sequencer, the auxiliary — and hands out clients.

    The default geometry follows the paper's testbed: chains of
    length 2 ("9×2 configuration", §6), so [servers] must be a
    multiple of the chain length. *)

type t

(** [create ?params ?chain_length ~servers ()] brings up the log.
    @raise Invalid_argument if [servers] is not a positive multiple of
    [chain_length] (default 2). *)
val create : ?params:Sim.Params.t -> ?chain_length:int -> servers:int -> unit -> t

val params : t -> Sim.Params.t
val net : t -> Sim.Net.t
val auxiliary : t -> Auxiliary.t
val storage_nodes : t -> Storage_node.t array
val sequencer : t -> Sequencer.t

(** [new_client t ~name] registers a fresh application-server host and
    returns a log client bound to it. *)
val new_client : t -> name:string -> Client.t

(** [client_on t host] binds a log client to an existing host (so an
    application server and its log client share NIC and CPU). *)
val client_on : t -> Sim.Net.host -> Client.t

(** [replace_sequencer t] runs the §5 reconfiguration: seal the old
    sequencer and every storage node at the next epoch, rebuild the
    tail and per-stream backpointer state by scanning the log
    backward — stopping early at the most recent sequencer checkpoint
    when the scribe is running — and install a fresh sequencer in a
    new projection. Returns the new epoch. Clients discover the change
    through sealed errors and retry transparently. *)
val replace_sequencer : t -> Types.epoch

(** [start_checkpoint_scribe t ~interval_us] runs the §5 optimization:
    a background task that periodically snapshots the sequencer's
    backpointer state into the log on a reserved stream
    ({!Seq_checkpoint}), bounding the rebuild scan to roughly the
    append volume of one interval. *)
val start_checkpoint_scribe : t -> interval_us:float -> unit

(** Entries read by the most recent {!replace_sequencer} rebuild. *)
val last_rebuild_scan : t -> int

(** {2 Storage-node failure recovery (§2.2)} *)

(** [replace_storage_node t ~dead] swaps a failed chain member for a
    freshly provisioned spare: seal the sequencer and every storage
    node at the next epoch (the sequencer survives — allocation state
    is not lost), copy the head-most surviving replica's prefix onto
    the spare ([copy_window] cells in flight, default 16), substitute
    the spare into the dead member's chain slot, and install the new
    projection. Clients ride through on sealed errors and retry their
    in-flight offsets under the new view. Returns the new epoch.

    Data that reached {e only} the dead node (the head of a torn
    append) is unrecoverable and resolves as a hole, matching the
    real system's failure model.
    @raise Invalid_argument if [dead] is not in the current
    projection. *)
val replace_storage_node : ?copy_window:int -> t -> dead:Storage_node.t -> Types.epoch

(** One completed storage-node recovery, for availability reports. *)
type recovery = {
  rec_epoch : Types.epoch;
  rec_dead : string;
  rec_spare : string;
  rec_started_us : float;  (** seal began *)
  rec_installed_us : float;  (** new projection accepted *)
  rec_copied_entries : int;  (** cells copied onto the spare *)
  rec_copied_bytes : int;  (** rebuild volume *)
}

(** Completed recoveries, oldest first. *)
val recoveries : t -> recovery list

(** [start_failure_monitor t] spawns the detector fiber: every
    [probe_interval_us] (default 20 ms) it probes each chain member of
    the current projection with a [probe_timeout_us]-bounded read
    (default 10 ms); a member failing two consecutive probes is
    declared dead and replaced via {!replace_storage_node}. A sealed
    answer counts as alive, so the monitor never fires on
    reconfiguration itself. *)
val start_failure_monitor : ?probe_interval_us:float -> ?probe_timeout_us:float -> t -> unit
