(** Deployment helper: builds a complete CORFU instance inside the
    simulation — storage nodes grouped into replica chains, a
    sequencer, the auxiliary — and hands out clients.

    The default geometry follows the paper's testbed: chains of
    length 2 ("9×2 configuration", §6). Any server count works when
    the per-chain lengths are given explicitly with [~chains]. *)

type t

(** [create ?params ?chain_length ?chains ?shards ~servers ()] brings
    up the log with a single-segment (flat) projection. By default the
    servers split into uniform chains of [chain_length] (default 2);
    [~chains] gives explicit per-chain lengths instead, so any server
    count — including uneven chains — forms a valid segment.

    [shards] (default 1) records the engine shard count this cluster
    is deployed under; see {!shard_of_host} for the placement map.
    @raise Invalid_argument when the geometry does not cover exactly
    [servers] nodes; the message names the offending segment. *)
val create :
  ?params:Sim.Params.t ->
  ?chain_length:int ->
  ?chains:int list ->
  ?shards:int ->
  servers:int ->
  unit ->
  t

val params : t -> Sim.Params.t
val net : t -> Sim.Net.t

(** Engine shard count this cluster was created for (1 = unsharded). *)
val shards : t -> int

(** [shard_of_host t name] is the advisory host → engine-shard
    placement: storage node [i] maps to shard [i mod shards]; every
    other host (sequencer, auxiliary, reconfig agent, clients) maps to
    shard 0, where the corfu control/data planes — and the
    process-global telemetry registries they feed — always execute.
    The map steers co-location of modeled load (population stations)
    and the [cluster-info] report; it does not move RPC execution off
    shard 0. *)
val shard_of_host : t -> string -> int
val auxiliary : t -> Auxiliary.t

(** Every storage node currently in the projection (all segments). *)
val storage_nodes : t -> Storage_node.t array

val sequencer : t -> Sequencer.t

(** [new_client t ~name] registers a fresh application-server host and
    returns a log client bound to it. *)
val new_client : t -> name:string -> Client.t

(** [client_on t host] binds a log client to an existing host (so an
    application server and its log client share NIC and CPU). *)
val client_on : t -> Sim.Net.host -> Client.t

(** [replace_sequencer t] runs the §5 reconfiguration: seal the old
    sequencer and every storage node at the next epoch, rebuild the
    tail and per-stream backpointer state by scanning the log
    backward — stopping early at the most recent sequencer checkpoint
    when the scribe is running, or at the retired boundary — and
    install a fresh sequencer in a new projection. Returns the new
    epoch. Clients discover the change through sealed errors and retry
    transparently. *)
val replace_sequencer : t -> Types.epoch

(** [start_checkpoint_scribe t ~interval_us] runs the §5 optimization:
    a background task that periodically snapshots the sequencer's
    backpointer state into the log on a reserved stream
    ({!Seq_checkpoint}), bounding the rebuild scan to roughly the
    append volume of one interval. *)
val start_checkpoint_scribe : t -> interval_us:float -> unit

(** Entries read by the most recent {!replace_sequencer} rebuild. *)
val last_rebuild_scan : t -> int

(** {2 Storage-node failure recovery (§2.2)} *)

(** [replace_storage_node t ~dead] swaps a failed chain member for a
    freshly provisioned spare: seal the sequencer and every storage
    node at the next epoch (the sequencer survives — allocation state
    is not lost), copy the head-most surviving replica's prefix onto
    the spare ([copy_window] cells in flight, default 16) for {e every}
    segment the dead member served, substitute the spare into each of
    the dead member's chain slots, and install the new projection.
    Clients ride through on sealed errors and retry their in-flight
    offsets under the new view. Returns the new epoch.

    Data that reached {e only} the dead node (the head of a torn
    append) is unrecoverable and resolves as a hole, matching the
    real system's failure model.

    If [dead] is no longer in the projection when the operation runs —
    a concurrent recovery (the failure monitor racing a scheduled
    fault action) already replaced it — the call is a no-op and
    returns the current epoch. *)
val replace_storage_node : ?copy_window:int -> t -> dead:Storage_node.t -> Types.epoch

(** One completed storage-node recovery, for availability reports. *)
type recovery = {
  rec_epoch : Types.epoch;
  rec_dead : string;
  rec_spare : string;
  rec_started_us : float;  (** seal began *)
  rec_installed_us : float;  (** new projection accepted *)
  rec_copied_entries : int;  (** cells copied onto the spare *)
  rec_copied_bytes : int;  (** rebuild volume *)
}

(** Completed recoveries, oldest first. *)
val recoveries : t -> recovery list

(** {2 Online scale-out / scale-in (§2.2 segment reconfiguration)}

    The log changes shape {e without copying any data}: the sequencer
    is sealed at the next epoch and its tail at the seal point becomes
    the boundary; every storage node is sealed (so stale clients
    cannot map a new-segment offset through the old geometry); the old
    tail segment is bounded at the boundary and a new unbounded tail
    segment opens over the new node set. Old offsets keep resolving
    through the segment that wrote them. *)

(** [scale_out t ~add_servers] provisions [add_servers] fresh storage
    nodes (pre-sealed at the new epoch) and opens a new tail segment
    striped over the old tail's nodes {e plus} the fresh ones —
    [chain_length] (default: the old tail's head-chain length) or
    explicit [~chains] set the new geometry. Returns the new epoch. *)
val scale_out : ?chain_length:int -> ?chains:int list -> t -> add_servers:int -> Types.epoch

(** [scale_in t ~remove_servers] opens a new tail segment over all but
    the last [remove_servers] of the old tail's members. The removed
    nodes keep serving the bounded segments that map onto them until
    {!retire_trimmed_segments} releases them.
    @raise Invalid_argument unless [0 < remove_servers <] the old
    tail's member count. *)
val scale_in : ?chain_length:int -> ?chains:int list -> t -> remove_servers:int -> Types.epoch

(** [retire_trimmed_segments t] drops every fully prefix-trimmed
    segment from the front of the map (contiguity allows only a prefix
    to go) and releases nodes no remaining segment maps onto. No
    sealing: live offsets keep their mapping, and a stale client
    touching a retired offset reads [Trimmed] from the old nodes — the
    same answer the new map gives. Returns the new epoch, or [None]
    when the first segment is not yet fully trimmed. *)
val retire_trimmed_segments : t -> Types.epoch option

type scale_kind = Scale_out | Scale_in | Segments_retired

(** One completed segment-map reconfiguration. *)
type scale_event = {
  sc_epoch : Types.epoch;
  sc_kind : scale_kind;
  sc_boundary : Types.offset;
      (** seal point: first offset of the new tail segment (for
          [Segments_retired], the new first live offset) *)
  sc_servers_before : int;
  sc_servers_after : int;
  sc_segments : int;  (** segments in the installed map *)
  sc_released : string list;  (** nodes dropped from the cluster *)
  sc_started_us : float;
  sc_installed_us : float;
}

(** Completed scale events, oldest first. *)
val scale_events : t -> scale_event list

(** {2 Reconfiguration serialization and failpoints}

    All reconfiguration operations ({!replace_sequencer},
    {!replace_storage_node}, {!scale_out}, {!scale_in},
    {!retire_trimmed_segments}) serialize on a per-cluster cooperative
    lock: concurrent callers — the failure monitor racing a scheduled
    fault-plan action, say — queue and re-read the projection once
    they hold it, so the auxiliary never sees two proposals derived
    from the same predecessor. *)

(** Deliberate protocol breakers for the simulation fuzzer's
    sensitivity check (DESIGN.md §9): each flag disables one step the
    correctness argument depends on, and the fuzzer's oracles must
    catch the consequences — proving they are live, not vacuous.
    Process-global; {!reset_failpoints} between runs. *)
type failpoints = {
  mutable fp_skip_rebuild_scan : bool;
      (** {!replace_sequencer} skips the backward scan: the new
          sequencer has the right tail but empty backpointer state *)
  mutable fp_forget_seal_tail : bool;
      (** {!replace_sequencer} derives the new tail from storage
          tails only, re-granting in-flight range grants (the
          pre-hardening bug, kept as a regression failpoint) *)
  mutable fp_skip_storage_seal : bool;
      (** reconfigurations collect tails without sealing, leaving
          stale-epoch clients able to write through the old view *)
  mutable fp_blind_commit_apply : bool;
      (** runtime playback applies commit writes without waiting for
          (or recording) the commit/abort decision — the isolation
          leak the ReadCommitted spec machine exists to catch *)
  mutable fp_stall_reconfig : bool;
      (** {!replace_sequencer} wedges right after starting: the seal
          happens but no new epoch ever installs, so the
          ReconfigTermination spec machine's deadline fires *)
}

val failpoints : failpoints
val reset_failpoints : unit -> unit

(** [enable_failpoint name] sets one flag by its kebab-case name
    (["skip-rebuild-scan"], ["forget-seal-tail"],
    ["skip-storage-seal"], ["blind-commit-apply"],
    ["stall-reconfig"]) — the [tangoctl fuzz --failpoint] hook.
    @raise Invalid_argument on an unknown name. *)
val enable_failpoint : string -> unit

(** [start_failure_monitor t] spawns the detector fiber: every
    [probe_interval_us] (default 20 ms) it probes each storage node of
    the current projection (every segment) with a
    [probe_timeout_us]-bounded read (default 10 ms); a member failing
    two consecutive probes is declared dead and replaced via
    {!replace_storage_node}. A sealed answer counts as alive, so the
    monitor never fires on reconfiguration itself. *)
val start_failure_monitor : ?probe_interval_us:float -> ?probe_timeout_us:float -> t -> unit
