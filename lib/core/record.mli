(** Tango records: what the runtime stores inside log entries.

    One log entry carries a small batch of records (the paper runs
    with 4 commit records per 4KB entry, §6). Records reference
    objects by OID and optionally name a {e key} — the opaque
    fine-grained versioning handle of §3.2 — so unrelated parts of a
    big structure don't conflict.

    A {e position} identifies a record globally: the entry's log
    offset times the slot capacity plus the record's slot. Positions
    are totally ordered and serve as object/key versions and as
    transaction identities (a decision record names the commit record
    it resolves by position). *)

(** {1 Positions} *)

(** Records per entry upper bound (fits any sane batch size). *)
val slots_per_entry : int

val pos : offset:Corfu.Types.offset -> slot:int -> int
val pos_offset : int -> Corfu.Types.offset
val pos_slot : int -> int

(** {1 Records} *)

type update = {
  u_oid : int;
  u_key : string option;  (** fine-grained versioning key, if any *)
  u_data : bytes;  (** opaque buffer produced by the object's mutator *)
}

type commit = {
  c_reads : (int * string option * int) list;  (** (oid, key, version read) *)
  c_writes : update list;
  c_needs_decision : bool;
      (** some client may host a written object without hosting the
          whole read set; the generator must follow up with a
          decision record (§4.1 case C) *)
}

type t =
  | Update of update  (** a plain, non-transactional mutation *)
  | Commit of commit  (** speculative transaction commit *)
  | Decision of { d_target : int; d_committed : bool }
      (** resolves the commit record at position [d_target] *)
  | Partial of { p_target : int; p_verdicts : (int * bool) list }
      (** collaborative conflict resolution (the future work of §4.1
          case D): a client hosting {e some} of a commit record's read
          set publishes its local per-object verdicts — "object [oid]
          is (un)changed since the recorded version, as of the commit
          position". When published verdicts cover the whole read set,
          any participant combines them into a final {!Decision}. *)
  | Checkpoint of { k_oid : int; k_base : int; k_data : bytes }
      (** rolled-up state of one object as of version [k_base] (§3.1,
          History). Replayers whose view version is already at or past
          [k_base] skip it: the record lands later in the log than the
          state it captures. *)

(** {1 Wire format} *)

(** [encode_payload records] packs at most {!slots_per_entry} records
    into an entry payload. Runs through a reusable module-level arena;
    the returned [bytes] is an owned copy. *)
val encode_payload : t list -> bytes

(** [encode_payload_array records ~len] is {!encode_payload} over the
    first [len] elements of [records] — the allocation-lean form the
    batcher drain loop uses (one copy out of the arena, no
    intermediate list or per-record buffer). *)
val encode_payload_array : t array -> len:int -> bytes

(** [decode_payload b] inverts {!encode_payload}.
    @raise Invalid_argument on malformed input. *)
val decode_payload : bytes -> t list

(** Streams a record must be appended to: the streams of every
    object it writes. *)
val streams_of : t -> Corfu.Types.stream_id list

val pp : Format.formatter -> t -> unit
