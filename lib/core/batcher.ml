(* A pooled grant record plus the number of drain-fiber writes still
   holding it; back to the pool at zero. *)
type grant_slot = { gr_grant : Corfu.Client.grant; mutable gr_refs : int }

type t = {
  client : Corfu.Client.t;
  batch_size : int;
  linger_us : float;
  append_window : int;
  window : Sim.Resource.t;  (* bounds entries in flight *)
  core : int Sim.Ivar.t Batch_core.t;  (* cell data = the waiter's position ivar *)
  mutable generation : int;  (* bumped on every seal; guards linger timers *)
  mutable drainer_busy : bool;
  mutable grant_pool : grant_slot list;
  mutable entries : int;
  mutable records : int;
  mutable inflight : int;
  mutable inflight_peak : int;
  mutable grants : int;
  mutable granted_entries : int;
  grants_c : Sim.Metrics.counter;
  records_c : Sim.Metrics.counter;
  entries_c : Sim.Metrics.counter;
  depth_g : Sim.Metrics.gauge;  (* sealed-batch queue depth *)
  (* Seal-time ring, FIFO-parallel to the sealed-batch queue: one
     timestamp per seal, popped per drained batch. The head is the
     oldest sealed batch still queued; its age is the sealed-queue-age
     watermark. *)
  mutable seal_ts : float array;
  mutable seal_head : int;
  mutable seal_len : int;
}

let seal_push t now =
  let cap = Array.length t.seal_ts in
  if t.seal_len = cap then begin
    let bigger = Array.make (2 * cap) 0. in
    for i = 0 to t.seal_len - 1 do
      bigger.(i) <- t.seal_ts.((t.seal_head + i) mod cap)
    done;
    t.seal_ts <- bigger;
    t.seal_head <- 0
  end;
  t.seal_ts.((t.seal_head + t.seal_len) mod Array.length t.seal_ts) <- now;
  t.seal_len <- t.seal_len + 1

let seal_pop t =
  if t.seal_len > 0 then begin
    t.seal_head <- (t.seal_head + 1) mod Array.length t.seal_ts;
    t.seal_len <- t.seal_len - 1
  end

let sealed_age_us t =
  if t.seal_len = 0 then 0. else Sim.Engine.now () -. t.seal_ts.(t.seal_head)

let create ~client ~batch_size ?(linger_us = 30.) ?append_window () =
  if batch_size < 1 || batch_size > Record.slots_per_entry then
    invalid_arg "Batcher.create: bad batch size";
  let append_window =
    match append_window with
    | Some w -> w
    | None -> (Corfu.Client.params client).Sim.Params.append_window
  in
  if append_window < 1 then invalid_arg "Batcher.create: bad append window";
  let hname = Sim.Net.host_name (Corfu.Client.host client) in
  let window =
    Sim.Resource.create ~name:(hname ^ ".append-window") ~capacity:append_window ()
  in
  Sim.Metrics.track_resource window;
  let t =
  {
    client;
    batch_size;
    linger_us;
    append_window;
    window;
    core = Batch_core.create ~cap:batch_size ~dummy:(Sim.Ivar.create ());
    generation = 0;
    drainer_busy = false;
    grant_pool = [];
    entries = 0;
    records = 0;
    inflight = 0;
    inflight_peak = 0;
    grants = 0;
    granted_entries = 0;
    grants_c = Sim.Metrics.counter ~host:hname "batcher.grants";
    records_c = Sim.Metrics.counter ~host:hname "batcher.records";
    entries_c = Sim.Metrics.counter ~host:hname "batcher.entries";
    depth_g = Sim.Metrics.gauge ~host:hname "batcher.sealed_depth";
    seal_ts = Array.make 64 0.;
    seal_head = 0;
    seal_len = 0;
  }
  in
  Sim.Timeseries.probe ~host:hname "batcher.sealed_age_us" (fun () -> sealed_age_us t);
  t

let grant_take t =
  match t.grant_pool with
  | [] -> { gr_grant = Corfu.Client.blank_grant t.client; gr_refs = 0 }
  | g :: rest ->
      t.grant_pool <- rest;
      g

let grant_put t g = t.grant_pool <- g :: t.grant_pool

(* The drainer is the only fiber talking to the sequencer, so landed
   offsets are monotone in seal order: positions handed to waiters are
   consistent with log order. Chain writes for the grant overlap —
   each entry gets its own fiber, gated by the window resource. The
   loop reuses one grant record per group ({!Client.reserve_into});
   the grant recycles only after its last write fiber drops its
   reference, so concurrent [write_granted]s never see a refill. *)
let rec drain t =
  if Batch_core.queued t.core = 0 then t.drainer_busy <- false
  else begin
    let count = Batch_core.group t.core ~max_run:t.append_window in
    let streams = Batch_core.front_streams t.core in
    let gs = grant_take t in
    Corfu.Client.reserve_into t.client gs.gr_grant ~streams ~count;
    gs.gr_refs <- count;
    t.grants <- t.grants + 1;
    t.granted_entries <- t.granted_entries + count;
    Sim.Metrics.incr t.grants_c;
    let span_parent = Sim.Span.current () in
    for index = 0 to count - 1 do
      let batch = Batch_core.pop t.core in
      seal_pop t;
      Sim.Resource.acquire t.window;
      t.inflight <- t.inflight + 1;
      if t.inflight > t.inflight_peak then t.inflight_peak <- t.inflight;
      Sim.Engine.spawn (fun () ->
          Sim.Span.with_parent span_parent @@ fun () ->
          let payload = Batch_core.encode t.core batch in
          let off = Corfu.Client.write_granted t.client gs.gr_grant ~index payload in
          t.entries <- t.entries + 1;
          Sim.Metrics.incr t.entries_c;
          for slot = 0 to Batch_core.length batch - 1 do
            Sim.Ivar.fill (Batch_core.data batch slot) (Record.pos ~offset:off ~slot)
          done;
          Batch_core.recycle t.core batch;
          gs.gr_refs <- gs.gr_refs - 1;
          if gs.gr_refs = 0 then grant_put t gs;
          t.inflight <- t.inflight - 1;
          Sim.Resource.release t.window)
    done;
    Sim.Metrics.set_gauge t.depth_g (float_of_int (Batch_core.queued t.core));
    drain t
  end

let kick t =
  if not t.drainer_busy then begin
    t.drainer_busy <- true;
    Sim.Engine.spawn (fun () -> drain t)
  end

let flush t =
  if Batch_core.forming_len t.core > 0 then begin
    t.generation <- t.generation + 1;
    Batch_core.seal t.core;
    seal_push t (Sim.Engine.now ());
    Sim.Metrics.set_gauge t.depth_g (float_of_int (Batch_core.queued t.core));
    kick t
  end

let submit t ~streams record =
  if streams = [] then invalid_arg "Batcher.submit: no target streams";
  let pos_iv = Sim.Ivar.create () in
  let was_empty = Batch_core.forming_len t.core = 0 in
  let full = Batch_core.submit t.core record streams pos_iv in
  t.records <- t.records + 1;
  Sim.Metrics.incr t.records_c;
  if full then flush t
  else if was_empty then begin
    (* First record of a fresh batch arms the linger timer. *)
    let generation = t.generation in
    Sim.Engine.spawn (fun () ->
        Sim.Engine.sleep t.linger_us;
        if t.generation = generation then flush t)
  end;
  Sim.Ivar.read pos_iv

let entries_appended t = t.entries
let records_submitted t = t.records
let inflight t = t.inflight
let inflight_peak t = t.inflight_peak
let grants t = t.grants
let granted_entries t = t.granted_entries
