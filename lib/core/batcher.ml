type waiting = {
  w_record : Record.t;
  w_streams : Corfu.Types.stream_id list;
  w_pos : int Sim.Ivar.t;
}

type sealed_batch = {
  b_waiters : waiting list;  (* oldest first; one slot each *)
  b_streams : Corfu.Types.stream_id list;  (* sorted, deduped *)
}

type t = {
  client : Corfu.Client.t;
  batch_size : int;
  linger_us : float;
  append_window : int;
  window : Sim.Resource.t;  (* bounds entries in flight *)
  mutable forming : waiting list;  (* newest first *)
  mutable generation : int;  (* bumped on every seal; guards linger timers *)
  sealed : sealed_batch Queue.t;
  mutable drainer_busy : bool;
  mutable entries : int;
  mutable records : int;
  mutable inflight : int;
  mutable inflight_peak : int;
  mutable grants : int;
  mutable granted_entries : int;
  grants_c : Sim.Metrics.counter;
  records_c : Sim.Metrics.counter;
  entries_c : Sim.Metrics.counter;
  depth_g : Sim.Metrics.gauge;  (* sealed-batch queue depth *)
}

let create ~client ~batch_size ?(linger_us = 30.) ?append_window () =
  if batch_size < 1 || batch_size > Record.slots_per_entry then
    invalid_arg "Batcher.create: bad batch size";
  let append_window =
    match append_window with
    | Some w -> w
    | None -> (Corfu.Client.params client).Sim.Params.append_window
  in
  if append_window < 1 then invalid_arg "Batcher.create: bad append window";
  let hname = Sim.Net.host_name (Corfu.Client.host client) in
  let window =
    Sim.Resource.create ~name:(hname ^ ".append-window") ~capacity:append_window ()
  in
  Sim.Metrics.track_resource window;
  {
    client;
    batch_size;
    linger_us;
    append_window;
    window;
    forming = [];
    generation = 0;
    sealed = Queue.create ();
    drainer_busy = false;
    entries = 0;
    records = 0;
    inflight = 0;
    inflight_peak = 0;
    grants = 0;
    granted_entries = 0;
    grants_c = Sim.Metrics.counter ~host:hname "batcher.grants";
    records_c = Sim.Metrics.counter ~host:hname "batcher.records";
    entries_c = Sim.Metrics.counter ~host:hname "batcher.entries";
    depth_g = Sim.Metrics.gauge ~host:hname "batcher.sealed_depth";
  }

(* Pop the longest run of sealed batches sharing one stream set, up to
   the append window. One grant covers the whole run, so every offset
   the sequencer records for those streams is actually written by
   us. *)
let pop_group t =
  let first = Queue.pop t.sealed in
  let rec grab acc n =
    if n >= t.append_window then List.rev acc
    else
      match Queue.peek_opt t.sealed with
      | Some b when b.b_streams = first.b_streams -> grab (Queue.pop t.sealed :: acc) (n + 1)
      | _ -> List.rev acc
  in
  (first.b_streams, grab [ first ] 1)

(* The drainer is the only fiber talking to the sequencer, so landed
   offsets are monotone in seal order: positions handed to waiters are
   consistent with log order. Chain writes for the grant overlap —
   each entry gets its own fiber, gated by the window resource. *)
let rec drain t =
  if Queue.is_empty t.sealed then t.drainer_busy <- false
  else begin
    let streams, group = pop_group t in
    Sim.Metrics.set_gauge t.depth_g (float_of_int (Queue.length t.sealed));
    let grant = Corfu.Client.reserve t.client ~streams ~count:(List.length group) in
    t.grants <- t.grants + 1;
    t.granted_entries <- t.granted_entries + List.length group;
    Sim.Metrics.incr t.grants_c;
    let span_parent = Sim.Span.current () in
    List.iteri
      (fun index batch ->
        Sim.Resource.acquire t.window;
        t.inflight <- t.inflight + 1;
        if t.inflight > t.inflight_peak then t.inflight_peak <- t.inflight;
        Sim.Engine.spawn (fun () ->
            Sim.Span.with_parent span_parent @@ fun () ->
            let payload =
              Record.encode_payload (List.map (fun w -> w.w_record) batch.b_waiters)
            in
            let off = Corfu.Client.write_granted t.client grant ~index payload in
            t.entries <- t.entries + 1;
            Sim.Metrics.incr t.entries_c;
            List.iteri
              (fun slot w -> Sim.Ivar.fill w.w_pos (Record.pos ~offset:off ~slot))
              batch.b_waiters;
            t.inflight <- t.inflight - 1;
            Sim.Resource.release t.window))
      group;
    drain t
  end

let kick t =
  if not t.drainer_busy then begin
    t.drainer_busy <- true;
    Sim.Engine.spawn (fun () -> drain t)
  end

let flush t =
  match t.forming with
  | [] -> ()
  | batch ->
      t.forming <- [];
      t.generation <- t.generation + 1;
      let batch = List.rev batch in
      let streams =
        List.sort_uniq Int.compare (List.concat_map (fun w -> w.w_streams) batch)
      in
      Queue.push { b_waiters = batch; b_streams = streams } t.sealed;
      Sim.Metrics.set_gauge t.depth_g (float_of_int (Queue.length t.sealed));
      kick t

let submit t ~streams record =
  if streams = [] then invalid_arg "Batcher.submit: no target streams";
  let w = { w_record = record; w_streams = streams; w_pos = Sim.Ivar.create () } in
  let was_empty = t.forming = [] in
  t.forming <- w :: t.forming;
  t.records <- t.records + 1;
  Sim.Metrics.incr t.records_c;
  if List.length t.forming >= t.batch_size then flush t
  else if was_empty then begin
    (* First record of a fresh batch arms the linger timer. *)
    let generation = t.generation in
    Sim.Engine.spawn (fun () ->
        Sim.Engine.sleep t.linger_us;
        if t.generation = generation then flush t)
  end;
  Sim.Ivar.read w.w_pos

let entries_appended t = t.entries
let records_submitted t = t.records
let inflight t = t.inflight
let inflight_peak t = t.inflight_peak
let grants t = t.grants
let granted_entries t = t.granted_entries
