(* The batcher's bookkeeping core, split from the I/O shell
   ({!Batcher}) so the drain-loop data path can be exercised and
   benchmarked without a simulation running.

   Everything is pooled: a submission writes three fields of a
   preallocated cell, sealing swaps the forming cell array into a
   recycled batch record, the sealed queue is a ring, and the
   sorted-deduped stream set lives in a per-batch int array computed
   through a shared scratch buffer. Steady state allocates nothing per
   record except what the caller hands in ([data]) and the payload
   copy at the encode boundary. *)

type 'a cell = {
  mutable c_rec : Record.t;
  mutable c_streams : Corfu.Types.stream_id list;
  mutable c_data : 'a;
}

type 'a batch = {
  mutable b_cells : 'a cell array;
  mutable b_len : int;
  mutable b_streams : int array;  (* sorted, deduped prefix *)
  mutable b_nstreams : int;
}

type 'a t = {
  cap : int;  (* records per batch *)
  dummy : 'a;
  mutable forming : 'a cell array;  (* always [cap] cells *)
  mutable forming_len : int;
  mutable ring : 'a batch array;  (* sealed queue; power-of-two capacity *)
  mutable rhead : int;
  mutable rlen : int;
  mutable pool : 'a batch array;  (* recycled batches, stack *)
  mutable plen : int;
  mutable scratch : int array;  (* stream-set staging *)
  rec_scratch : Record.t array;  (* encode staging, [cap] slots *)
  empty : 'a batch;  (* sentinel for vacant ring/pool slots *)
}

(* Inert placeholder for vacated record slots: decisions carry no
   payload and never reach the log through this module's scratch. *)
let dummy_record = Record.Decision { d_target = 0; d_committed = false }

let create ~cap ~dummy =
  if cap < 1 || cap > Record.slots_per_entry then invalid_arg "Batch_core.create: bad capacity";
  let empty = { b_cells = [||]; b_len = 0; b_streams = [||]; b_nstreams = 0 } in
  {
    cap;
    dummy;
    forming = Array.init cap (fun _ -> { c_rec = dummy_record; c_streams = []; c_data = dummy });
    forming_len = 0;
    ring = Array.make 8 empty;
    rhead = 0;
    rlen = 0;
    pool = Array.make 8 empty;
    plen = 0;
    scratch = Array.make 16 0;
    rec_scratch = Array.make cap dummy_record;
    empty;
  }

let forming_len t = t.forming_len
let queued t = t.rlen
let capacity t = t.cap
let length b = b.b_len
let data b i = b.b_cells.(i).c_data

(* [true] when the forming batch just became full and must be sealed. *)
let submit t record streams data =
  if t.forming_len >= t.cap then invalid_arg "Batch_core.submit: forming batch full";
  let c = Array.unsafe_get t.forming t.forming_len in
  c.c_rec <- record;
  c.c_streams <- streams;
  c.c_data <- data;
  t.forming_len <- t.forming_len + 1;
  t.forming_len = t.cap

let grow_scratch t =
  let bigger = Array.make (2 * Array.length t.scratch) 0 in
  Array.blit t.scratch 0 bigger 0 (Array.length t.scratch);
  t.scratch <- bigger

(* Gather every cell's streams into scratch, insertion-sort (stream
   sets are tiny), dedupe in place, and store the result in the
   batch's own array. *)
let compute_streams t b =
  let n = ref 0 in
  for i = 0 to b.b_len - 1 do
    let rec go = function
      | [] -> ()
      | s :: rest ->
          if !n = Array.length t.scratch then grow_scratch t;
          t.scratch.(!n) <- s;
          incr n;
          go rest
    in
    go b.b_cells.(i).c_streams
  done;
  let sc = t.scratch in
  for i = 1 to !n - 1 do
    let v = sc.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && sc.(!j) > v do
      sc.(!j + 1) <- sc.(!j);
      decr j
    done;
    sc.(!j + 1) <- v
  done;
  let m = ref 0 in
  for i = 0 to !n - 1 do
    if !m = 0 || sc.(i) <> sc.(!m - 1) then begin
      sc.(!m) <- sc.(i);
      incr m
    end
  done;
  if Array.length b.b_streams < !m then b.b_streams <- Array.make (max 8 !m) 0;
  Array.blit sc 0 b.b_streams 0 !m;
  b.b_nstreams <- !m

let ring_push t b =
  if t.rlen = Array.length t.ring then begin
    let old = t.ring in
    let n = Array.length old in
    let bigger = Array.make (2 * n) t.empty in
    for i = 0 to t.rlen - 1 do
      bigger.(i) <- old.((t.rhead + i) land (n - 1))
    done;
    t.ring <- bigger;
    t.rhead <- 0
  end;
  t.ring.((t.rhead + t.rlen) land (Array.length t.ring - 1)) <- b;
  t.rlen <- t.rlen + 1

let fresh_batch t =
  {
    b_cells = Array.init t.cap (fun _ -> { c_rec = dummy_record; c_streams = []; c_data = t.dummy });
    b_len = 0;
    b_streams = Array.make 8 0;
    b_nstreams = 0;
  }

(* Seal by swapping the forming cell array into a recycled batch — the
   cells (and the records/data they reference) move without copying,
   and the batch's cleared cells become the next forming array. *)
let seal t =
  if t.forming_len > 0 then begin
    let b =
      if t.plen > 0 then begin
        t.plen <- t.plen - 1;
        let b = t.pool.(t.plen) in
        t.pool.(t.plen) <- t.empty;
        b
      end
      else fresh_batch t
    in
    let cells = b.b_cells in
    b.b_cells <- t.forming;
    t.forming <- cells;
    b.b_len <- t.forming_len;
    t.forming_len <- 0;
    compute_streams t b;
    ring_push t b
  end

let streams_equal a b =
  a.b_nstreams = b.b_nstreams
  &&
  let rec eq i = i >= a.b_nstreams || (a.b_streams.(i) = b.b_streams.(i) && eq (i + 1)) in
  eq 0

(* Length of the leading run of sealed batches sharing the front
   batch's stream set, capped at [max_run] — the group one range grant
   covers. Requires a non-empty queue. *)
let group t ~max_run =
  if t.rlen = 0 then invalid_arg "Batch_core.group: empty queue";
  let mask = Array.length t.ring - 1 in
  let first = t.ring.(t.rhead land mask) in
  let rec go n =
    if n >= max_run || n >= t.rlen then n
    else if streams_equal first t.ring.((t.rhead + n) land mask) then go (n + 1)
    else n
  in
  go 1

(* The front batch's stream set as a list — the RPC boundary owns it. *)
let front_streams t =
  if t.rlen = 0 then invalid_arg "Batch_core.front_streams: empty queue";
  let b = t.ring.(t.rhead land (Array.length t.ring - 1)) in
  List.init b.b_nstreams (fun i -> b.b_streams.(i))

let pop t =
  if t.rlen = 0 then invalid_arg "Batch_core.pop: empty queue";
  let mask = Array.length t.ring - 1 in
  let b = t.ring.(t.rhead land mask) in
  t.ring.(t.rhead land mask) <- t.empty;
  t.rhead <- (t.rhead + 1) land mask;
  t.rlen <- t.rlen - 1;
  b

(* Stage the records into the shared scratch and encode in one pass.
   Atomic (no scheduler yields), so the shared scratch and the Record
   arena are safe even with concurrent drain fibers. *)
let encode t b =
  for i = 0 to b.b_len - 1 do
    t.rec_scratch.(i) <- b.b_cells.(i).c_rec
  done;
  let payload = Record.encode_payload_array t.rec_scratch ~len:b.b_len in
  for i = 0 to b.b_len - 1 do
    t.rec_scratch.(i) <- dummy_record
  done;
  payload

let recycle t b =
  for i = 0 to b.b_len - 1 do
    let c = b.b_cells.(i) in
    c.c_rec <- dummy_record;
    c.c_streams <- [];
    c.c_data <- t.dummy
  done;
  b.b_len <- 0;
  b.b_nstreams <- 0;
  if t.plen = Array.length t.pool then begin
    let bigger = Array.make (2 * t.plen) t.empty in
    Array.blit t.pool 0 bigger 0 t.plen;
    t.pool <- bigger
  end;
  t.pool.(t.plen) <- b;
  t.plen <- t.plen + 1
