(** The Tango runtime (paper §3, §4): in-memory views replicated over
    the shared log.

    Objects register an [apply] upcall; mutators funnel opaque update
    records through {!update_helper}, accessors call {!query_helper}
    to synchronize the view with the log before reading local state.
    The runtime multiplexes all of a client's objects over one CORFU
    client, one entry batcher, and one playback engine.

    {2 Playback model}

    Each hosted object has its own stream, but the runtime consumes
    hosted streams {e merged in global log order}: an entry is applied
    only after every hosted entry at a lower offset. This gives every
    client the same prefix semantics as the single-log design of §3.2
    and makes transaction conflict decisions deterministic — when a
    commit record at position [P] is evaluated, every hosted view is
    exactly at [P].

    {2 Transactions}

    {!begin_tx}/{!end_tx} bracket optimistic transactions (§3.2).
    Within a transaction, accessors record (object, key, version)
    reads and mutators buffer writes; [end_tx] appends a single commit
    record to the streams of all written objects (a multiappend, §4.1)
    and plays the log to the commit position to decide. Read-only
    transactions decide without appending; write-only transactions
    append without playing. A transaction may write objects the client
    does not host (remote writes); it may only {e read} hosted objects
    (§4.1 case D). When some consumer may host a written object
    without the read set, the runtime follows the commit record with a
    decision record so that consumer can learn the outcome without
    remote state (§4.1 case C).

    A consumer that encounters a commit record it cannot decide parks
    the affected objects: subsequent records for them are buffered and
    applied only once a decision record arrives. If none arrives
    within the decision timeout (generator crash), the consumer
    reconstructs the outcome deterministically from the log (§4.1,
    Failure Handling). *)

type t

(** Callbacks a Tango object provides at registration. *)
type callbacks = {
  apply : pos:int -> key:string option -> bytes -> unit;
      (** the only place view state may change; [pos] is the record's
          global position, usable as a log index *)
  checkpoint : (unit -> bytes) option;  (** serialize current state *)
  load_checkpoint : (bytes -> unit) option;  (** replace state wholesale *)
}

(** Transaction verdict. *)
type tx_status = Committed | Aborted

exception No_transaction
exception Nested_transaction

(** [create ?batch_size ?linger_us ?decision_timeout_us client] builds
    a runtime over a CORFU client. [batch_size] defaults to the
    params' [commit_batch]. *)
val create :
  ?batch_size:int -> ?linger_us:float -> ?decision_timeout_us:float -> Corfu.Client.t -> t

val client : t -> Corfu.Client.t

(** [register t ~oid ?needs_decision cb] hosts a view. Stream id =
    OID. [needs_decision] marks objects that remote-write transactions
    may target on clients lacking the read set (§4.1's static
    marking); transactions writing such objects, or writing objects
    this client does not host, get decision records. *)
val register : t -> oid:int -> ?needs_decision:bool -> callbacks -> unit

(** [register_extra_view t ~oid cb] attaches a {e second} in-memory
    representation to an already-hosted object: both views share the
    stream, versions, and transactions, and every record is applied to
    both (§3.1: "objects with different in-memory data structures can
    share the same data on the log" — e.g. a namespace kept both as a
    name-ordered map and as a directory tree). Checkpoints remain the
    primary view's job; the extra view's [checkpoint] is ignored but
    its [load_checkpoint] participates in repair. *)
val register_extra_view : t -> oid:int -> callbacks -> unit

val is_hosted : t -> int -> bool
val hosted_oids : t -> int list

(** {2 The object-facing API of §3.1} *)

(** [update_helper t ~oid ?key data] appends an update record (or
    buffers it inside the current transaction). Blocks until durable
    outside transactions. *)
val update_helper : t -> oid:int -> ?key:string -> bytes -> unit

(** [query_helper t ~oid ?key ()] inside a transaction: records a read
    of (oid, key) at its current version — no log traffic. Outside:
    plays the log to the current tail so the local view is
    linearizable. [upto] (global offset bound, exclusive) limits
    playback for historical views (§3.1, History).
    @raise Invalid_argument inside a transaction if [oid] is not
    hosted (remote reads, §4.1 case D). *)
val query_helper : t -> oid:int -> ?key:string -> ?upto:Corfu.Types.offset -> unit -> unit

(** {2 Remote reads and collaborative resolution (§4.1 case D —
    implemented: the paper's future work)}

    A transaction may read an object this client does not host by
    asking a {e peer} that does: the peer answers from its current
    view (value + version) over one RPC, and the read joins the
    transaction's read set like any other. Validation is then
    {e collaborative}: the commit record travels on the read streams
    too, every read-set host publishes a partial-decision record with
    its local verdict as of the commit position, and the verdicts'
    conjunction — combined by any participant — is the final decision.
    Each verdict is deterministic, so all combiners agree. *)

type remote_read_request = { rr_oid : int; rr_key : string option }

type remote_read_response = (bytes option * int) option

(** [expose_read t ~oid serve] lets peers read this hosted object:
    [serve key] returns the object's answer (object-defined bytes). *)
val expose_read : t -> oid:int -> (string option -> bytes option) -> unit

(** This runtime's peer-read endpoint (lazily registered). *)
val remote_read_service : t -> (remote_read_request, remote_read_response) Sim.Net.service

(** [connect_peer t ~oid svc] routes {!query_remote} calls for [oid]
    through a peer's {!remote_read_service}. *)
val connect_peer :
  t -> oid:int -> (remote_read_request, remote_read_response) Sim.Net.service -> unit

(** [query_remote t ~oid ?key ()] performs a remote read inside the
    current transaction and returns the peer's answer.
    @raise Invalid_argument outside a transaction, without a connected
    peer, or if the peer does not serve the object. *)
val query_remote : t -> oid:int -> ?key:string -> unit -> bytes option

(** [fetch t ?oid pos] reads back the opaque buffer of the update
    record at [pos] — views holding positions instead of values use
    this as their random-access path into log-structured storage
    (§3.1, Durability). When [pos] names a commit record, [oid]
    selects which of its writes to return.
    @raise Not_found if [pos] holds no matching update. *)
val fetch : t -> ?oid:int -> int -> bytes

(** {2 Transactions} *)

(** [begin_tx t] opens a transaction context for the calling fiber,
    first refreshing the local snapshot to the current tail (reads
    inside the transaction are then purely local). *)
val begin_tx : t -> unit

(** [end_tx ?stale t]: see the module preamble. [stale] makes a
    read-only transaction decide against the current local snapshot
    without checking the log tail (§3.2, Read-only transactions). *)
val end_tx : ?stale:bool -> t -> tx_status

(** [abort_tx t] discards the current context without appending. *)
val abort_tx : t -> unit

val in_tx : t -> bool

(** {2 Checkpoints and GC (§3.1 History, §3.2 Naming)} *)

(** Result of {!checkpoint}: where the record landed, and the highest
    position whose effects the snapshot is guaranteed to contain.
    History may only be forgotten below [ckpt_base + 1] — records
    between the base and the record position are {e not} in the
    snapshot (concurrent writers may have appended them). *)
type checkpoint_info = { ckpt_pos : int; ckpt_base : int }

(** [checkpoint t ~oid] appends a checkpoint record holding the
    object's rolled-up state.
    @raise Invalid_argument if the object has no checkpoint callback. *)
val checkpoint : t -> oid:int -> checkpoint_info

(** [trim_below t off] reclaims the log below global offset [off] and
    prunes runtime bookkeeping. The Directory computes the safe bound
    across objects; don't call this with live data above checkpoints. *)
val trim_below : t -> Corfu.Types.offset -> unit

(** {2 Introspection} *)

(** Current version (position of last applied modification) of an
    object or key; -1 if never modified. *)
val version_of : t -> oid:int -> ?key:string -> unit -> int

val applied_records : t -> int
val commits : t -> int
val aborts : t -> int

(** Counters for the append pipeline and playback cache. *)
type append_stats = {
  as_entries : int;  (** log entries appended *)
  as_records : int;  (** records submitted ([as_records / as_entries] is the batching ratio) *)
  as_inflight : int;  (** entries in flight right now *)
  as_inflight_peak : int;  (** high-water mark of concurrent chain writes *)
  as_grants : int;  (** sequencer range grants taken *)
  as_granted_entries : int;
      (** entries allocated through grants; [/ as_grants] is the mean
          grant occupancy *)
  as_cache_hits : int;  (** playback lookups served from the entry cache *)
  as_cache_misses : int;  (** playback lookups that went to the log *)
}

val append_stats : t -> append_stats
