(** The batcher's bookkeeping core — forming batch, sealed queue,
    stream-set grouping, payload encode — split from the I/O shell
    ({!Batcher}) so the drain-loop data path runs (and benchmarks)
    without a simulation.

    Everything is pooled: cells, batch records, the sealed ring, the
    per-batch stream-set arrays. Steady state allocates nothing per
    record beyond the caller's ['a] completion data and the one
    payload copy at the {!encode} boundary. A batch handed out by
    {!pop} stays owned by the caller until {!recycle} returns its
    cells to the pool; the ['a t] it came from must outlive it. *)

type 'a cell

(** A sealed batch: up to [cap] records plus their sorted, deduped
    stream set. *)
type 'a batch

type 'a t

(** [create ~cap ~dummy] builds a core sealing batches of at most
    [cap] records (1 ≤ [cap] ≤ {!Record.slots_per_entry});
    [dummy] fills vacated ['a] slots so recycled cells don't retain
    caller data. *)
val create : cap:int -> dummy:'a -> 'a t

(** Records in the forming (unsealed) batch. *)
val forming_len : 'a t -> int

(** Sealed batches waiting to drain. *)
val queued : 'a t -> int

val capacity : 'a t -> int

(** [submit t record streams data] appends to the forming batch;
    [true] means the batch just became full and the caller must
    {!seal}. Raises [Invalid_argument] if already full. *)
val submit : 'a t -> Record.t -> Corfu.Types.stream_id list -> 'a -> bool

(** Seal the forming batch (no-op when empty): computes its stream
    set and queues it, recycling pooled batch records. *)
val seal : 'a t -> unit

(** Length of the leading run of sealed batches sharing the front
    batch's stream set, capped at [max_run] — what one range grant
    covers. Raises [Invalid_argument] on an empty queue. *)
val group : 'a t -> max_run:int -> int

(** The front batch's stream set, sorted — materialised as a list for
    the grant RPC (the boundary owns its data). *)
val front_streams : 'a t -> Corfu.Types.stream_id list

(** Dequeue the front batch. Raises [Invalid_argument] when empty. *)
val pop : 'a t -> 'a batch

val length : 'a batch -> int

(** Completion data of slot [i] (0-based submission order). *)
val data : 'a batch -> int -> 'a

(** Encode the batch's records into an owned entry payload via the
    shared staging scratch (atomic: no scheduler yields inside). *)
val encode : 'a t -> 'a batch -> bytes

(** Return a drained batch's cells to the pool, clearing record and
    data slots. The batch must not be touched afterwards. *)
val recycle : 'a t -> 'a batch -> unit
