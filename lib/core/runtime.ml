type callbacks = {
  apply : pos:int -> key:string option -> bytes -> unit;
  checkpoint : (unit -> bytes) option;
  load_checkpoint : (bytes -> unit) option;
}

type tx_status = Committed | Aborted

exception No_transaction
exception Nested_transaction

(* Buffered work for an object frozen behind an undecided commit.
   [Commit_point] marks the position of a commit record involving the
   object: applying past it requires the commit's outcome; its writes
   for this object (if any) are applied when the outcome is commit. *)
type pending_action =
  | Apply_update of Record.update
  | Commit_point of { cpos : int; writes : Record.update list }
  | Apply_checkpoint of { base : int; data : bytes }

type hosted = {
  oid : int;
  cb : callbacks;
  stream : Corfu.Stream.t;
  marked_needs_decision : bool;
  mutable blocked_on : int option;
  mutable gap_pending : bool;
      (* the stream skipped trimmed history and no checkpoint has
         repaired the view yet: buffer records, because the checkpoint
         record (which lies ahead in the log) will replace the state
         as of its base and would otherwise swallow them *)
  mutable serve_read : (string option -> bytes option) option;
      (* answers peer clients' remote reads from this view (§4.1 D) *)
  mutable extra_views : callbacks list;
      (* additional in-memory representations sharing this stream *)
  waiting : (int * pending_action) Queue.t;
}

type txctx = {
  mutable tx_reads : (int * string option * int) list;  (* newest first *)
  mutable tx_writes : Record.update list;  (* newest first *)
  mutable tx_remote_reads : bool;  (* some read came from a peer view *)
  tx_t0 : float;  (* virtual time at begin_tx *)
}

type remote_read_request = { rr_oid : int; rr_key : string option }

(* [None]: the peer does not host/serve the object. Otherwise the
   serving callback's answer plus the peer view's version. *)
type remote_read_response = (bytes option * int) option

type t = {
  cl : Corfu.Client.t;
  batcher : Batcher.t;
  dispatch : Sim.Resource.t;
  play_lock : Sim.Resource.t;
  objects : (int, hosted) Hashtbl.t;
  last_any : (int, int) Hashtbl.t;
  last_key : (int * string, int) Hashtbl.t;
  last_whole : (int, int) Hashtbl.t;
  processed : (int, unit) Hashtbl.t;
  decided : (int, bool) Hashtbl.t;
  undecided : (int, Record.commit) Hashtbl.t;
  own_commits : (int, Record.commit) Hashtbl.t;
      (* commit records this runtime generated: needed to combine
         partial verdicts for fully-remote transactions *)
  partials : (int, (int, bool) Hashtbl.t) Hashtbl.t;  (* cpos -> oid -> verdict *)
  partials_emitted : (int * int, unit) Hashtbl.t;  (* (cpos, oid) *)
  remote_peers : (int, (remote_read_request, remote_read_response) Sim.Net.service) Hashtbl.t;
  mutable rr_service : (remote_read_request, remote_read_response) Sim.Net.service option;
  txs : (int, txctx) Hashtbl.t;
  decision_timeout_us : float;
  apply_record_us : float;
  dispatch_us : float;
  retry_sleep_us : float;
  retry_backoff_max_us : float;
  mutable stats_applied : int;
  mutable stats_commits : int;
  mutable stats_aborts : int;
  (* Lag watermarks: the highest global tail learned from the
     sequencer, the exclusive offset playback has consumed to, and the
     trim horizon — their gaps are the playback-lag and trim-lag
     timeseries probes. *)
  mutable known_tail : int;
  mutable played_upto : int;
  mutable trimmed_below : int;
  applied_c : Sim.Metrics.counter;
  commits_c : Sim.Metrics.counter;
  aborts_c : Sim.Metrics.counter;
  conflicts_c : Sim.Metrics.counter;
  apply_h : Sim.Metrics.histogram;  (* one playback sweep *)
  tx_h : Sim.Metrics.histogram;  (* begin_tx .. end_tx *)
}

let create ?batch_size ?linger_us ?(decision_timeout_us = 50_000.) cl =
  let p = Corfu.Client.params cl in
  let batch_size = Option.value batch_size ~default:p.Sim.Params.commit_batch in
  let host_name = Sim.Net.host_name (Corfu.Client.host cl) in
  let t =
  {
    cl;
    batcher = Batcher.create ~client:cl ~batch_size ?linger_us ();
    dispatch = Sim.Resource.create ~name:(host_name ^ ".tango-dispatch") ~capacity:1 ();
    play_lock = Sim.Resource.create ~name:(host_name ^ ".tango-playback") ~capacity:1 ();
    objects = Hashtbl.create 16;
    last_any = Hashtbl.create 64;
    last_key = Hashtbl.create 256;
    last_whole = Hashtbl.create 64;
    processed = Hashtbl.create 4096;
    decided = Hashtbl.create 256;
    undecided = Hashtbl.create 16;
    own_commits = Hashtbl.create 16;
    partials = Hashtbl.create 16;
    partials_emitted = Hashtbl.create 16;
    remote_peers = Hashtbl.create 8;
    rr_service = None;
    txs = Hashtbl.create 8;
    decision_timeout_us;
    apply_record_us = p.Sim.Params.apply_record_us;
    dispatch_us = p.Sim.Params.client_dispatch_us;
    retry_sleep_us = p.Sim.Params.retry_sleep_us;
    retry_backoff_max_us = p.Sim.Params.retry_backoff_max_us;
    stats_applied = 0;
    stats_commits = 0;
    stats_aborts = 0;
    known_tail = 0;
    played_upto = 0;
    trimmed_below = 0;
    applied_c = Sim.Metrics.counter ~host:host_name "runtime.applied";
    commits_c = Sim.Metrics.counter ~host:host_name "runtime.commits";
    aborts_c = Sim.Metrics.counter ~host:host_name "runtime.aborts";
    conflicts_c = Sim.Metrics.counter ~host:host_name "runtime.version_conflicts";
    apply_h = Sim.Metrics.histogram ~host:host_name "playback.apply_us";
    tx_h = Sim.Metrics.histogram ~host:host_name "tx.duration_us";
  }
  in
  Sim.Timeseries.probe ~host:host_name "lag.playback" (fun () ->
      float_of_int (Stdlib.max 0 (t.known_tail - t.played_upto)));
  Sim.Timeseries.probe ~host:host_name "lag.trim" (fun () ->
      float_of_int (Stdlib.max 0 (t.known_tail - t.trimmed_below)));
  t

let client t = t.cl

let register t ~oid ?(needs_decision = false) cb =
  if Hashtbl.mem t.objects oid then invalid_arg "Runtime.register: OID already hosted";
  Hashtbl.replace t.objects oid
    {
      oid;
      cb;
      stream = Corfu.Stream.attach t.cl oid;
      marked_needs_decision = needs_decision;
      blocked_on = None;
      gap_pending = false;
      serve_read = None;
      extra_views = [];
      waiting = Queue.create ();
    }

let register_extra_view t ~oid cb =
  match Hashtbl.find_opt t.objects oid with
  | Some ho -> ho.extra_views <- cb :: ho.extra_views
  | None -> invalid_arg "Runtime.register_extra_view: object not hosted"

let is_hosted t oid = Hashtbl.mem t.objects oid
let hosted_oids t =
  Hashtbl.fold (fun oid _ acc -> oid :: acc) t.objects [] |> List.sort Int.compare
let hosted_list t = Hashtbl.fold (fun _ ho acc -> ho :: acc) t.objects []

(* ------------------------------------------------------------------ *)
(* Versions                                                           *)
(* ------------------------------------------------------------------ *)

let find_version tbl key = match Hashtbl.find_opt tbl key with Some v -> v | None -> -1

let version_of t ~oid ?key () =
  match key with
  | None -> find_version t.last_any oid
  | Some k -> max (find_version t.last_key (oid, k)) (find_version t.last_whole oid)

let bump_version t oid key pos =
  Hashtbl.replace t.last_any oid pos;
  match key with
  | None -> Hashtbl.replace t.last_whole oid pos
  | Some k -> Hashtbl.replace t.last_key (oid, k) pos

(* ------------------------------------------------------------------ *)
(* Applying records                                                   *)
(* ------------------------------------------------------------------ *)

(* CPU accounting happens per *record* (see [charge_apply]); a commit
   record applying three writes costs one apply slot, matching the
   paper's per-record playback cost model. *)
let apply_now t ho pos (u : Record.update) =
  ho.cb.apply ~pos ~key:u.u_key u.u_data;
  List.iter (fun (cb : callbacks) -> cb.apply ~pos ~key:u.u_key u.u_data) ho.extra_views;
  bump_version t ho.oid u.u_key pos;
  t.stats_applied <- t.stats_applied + 1;
  Sim.Metrics.incr t.applied_c

let charge_apply t = Sim.Engine.sleep t.apply_record_us

(* Note a trim gap reported by the stream. Only checkpointable objects
   go into buffering mode — an object without [load_checkpoint] cannot
   be repaired, so its records keep applying best-effort. *)
let refresh_gap ho =
  if Corfu.Stream.has_trim_gap ho.stream then begin
    Corfu.Stream.clear_trim_gap ho.stream;
    if ho.cb.load_checkpoint <> None then ho.gap_pending <- true
  end

(* Drop buffered actions the snapshot already contains. *)
let purge_below ho base =
  let keep = Queue.create () in
  Queue.iter (fun ((pos, _) as item) -> if pos > base then Queue.add item keep) ho.waiting;
  Queue.clear ho.waiting;
  Queue.transfer keep ho.waiting

(* A checkpoint record lands later in the log than the state it
   captures. Load it when (a) the view has not reached its base
   version, or (b) the view is gapped (trimmed history was skipped),
   in which case the snapshot is the repair: records buffered since
   the gap that the snapshot covers (pos <= base) are discarded, the
   rest replay after it. Otherwise skip it — the view is ahead. *)
let load_checkpoint_now t ho ~base data =
  match ho.cb.load_checkpoint with
  | Some load ->
      if ho.gap_pending || find_version t.last_any ho.oid < base then begin
        load data;
        List.iter
          (fun (cb : callbacks) ->
            match cb.load_checkpoint with Some f -> f data | None -> ())
          ho.extra_views;
        ho.gap_pending <- false;
        purge_below ho base;
        if base >= 0 && find_version t.last_any ho.oid < base then
          bump_version t ho.oid None base
      end
  | None -> ()

let hosts_all_reads t (c : Record.commit) =
  List.for_all (fun (oid, _, _) -> Hashtbl.mem t.objects oid) c.c_reads

let involved_hosted t (c : Record.commit) =
  let oids =
    List.map (fun (oid, _, _) -> oid) c.c_reads
    @ List.map (fun (u : Record.update) -> u.u_oid) c.c_writes
  in
  List.sort_uniq Int.compare oids |> List.filter_map (Hashtbl.find_opt t.objects)

(* Spec-plane milestones (Sim.Announce): decision recorded, commit
   writes applied, transaction boundaries. Every emission is guarded,
   so runs without subscribed monitors pay one branch and allocate
   nothing. *)
let announce_host t = Sim.Net.host_name (Corfu.Client.host t.cl)

let announce_decided t pos committed =
  if Sim.Announce.active () then
    Sim.Announce.emit (Sim.Announce.Commit_decided { client = announce_host t; pos; committed })

let announce_applied t pos =
  if Sim.Announce.active () then
    Sim.Announce.emit (Sim.Announce.Commit_applied { client = announce_host t; pos })

(* Forward reference: [eager_outcome] needs the resolution machinery's
   types but is more readable next to [handle_commit]. *)
let eager_outcome_ref : (t -> int -> Record.commit -> bool option) ref =
  ref (fun _ _ _ -> None)

(* Mutually recursive resolution machinery: resolving a decision
   drains frozen queues, which can surface the next commit point,
   which may now be decidable. *)
let rec resolve t target committed =
  if not (Hashtbl.mem t.decided target) then begin
    Sim.Trace.f "tango" "%s resolves commit @%d -> %s"
      (Sim.Net.host_name (Corfu.Client.host t.cl))
      target
      (if committed then "commit" else "abort");
    Hashtbl.replace t.decided target committed;
    announce_decided t target committed;
    match Hashtbl.find_opt t.undecided target with
    | None -> ()
    | Some c ->
        Hashtbl.remove t.undecided target;
        List.iter
          (fun ho ->
            if ho.blocked_on = Some target then begin
              ho.blocked_on <- None;
              drain t ho
            end)
          (involved_hosted t c)
  end

and drain t ho =
  if ho.blocked_on = None && (not ho.gap_pending) && not (Queue.is_empty ho.waiting) then begin
    let pos, action = Queue.peek ho.waiting in
    match action with
    | Apply_update u ->
        (* CPU was charged when the record was processed; draining the
           buffer is free. *)
        ignore (Queue.pop ho.waiting);
        apply_now t ho pos u;
        drain t ho
    | Apply_checkpoint { base; data } ->
        ignore (Queue.pop ho.waiting);
        load_checkpoint_now t ho ~base data;
        drain t ho
    | Commit_point { cpos; writes } -> (
        match Hashtbl.find_opt t.decided cpos with
        | Some committed ->
            ignore (Queue.pop ho.waiting);
            if committed then begin
              announce_applied t cpos;
              List.iter
                (fun (u : Record.update) -> if u.Record.u_oid = ho.oid then apply_now t ho cpos u)
                writes
            end;
            drain t ho
        | None ->
            (* Frozen again at the next undecided commit. *)
            ho.blocked_on <- Some cpos;
            emit_partials t cpos;
            try_decide t cpos)
  end

(* A parked commit becomes decidable once draining uncovers enough of
   the frozen queues: the conflict check runs against applied versions
   plus the (known) queued records below the commit position, so it is
   identical to the one the generator ran. [eager_outcome] is defined
   below; it only returns [None] while an undecided commit still masks
   a read key. *)
and try_decide t cpos =
  match Hashtbl.find_opt t.undecided cpos with
  | None -> ()
  | Some c -> (
      match !eager_outcome_ref t cpos c with
      | Some committed -> resolve t cpos committed
      | None -> ())

(* Freeze all hosted involved objects at [cpos] and queue the commit
   point; every object is exactly at [cpos] when this is called. *)
and park_commit t cpos (c : Record.commit) ~involved =
  Sim.Trace.f "tango" "%s parks commit @%d (reads %d, writes %d)"
    (Sim.Net.host_name (Corfu.Client.host t.cl))
    cpos (List.length c.c_reads) (List.length c.c_writes);
  Hashtbl.replace t.undecided cpos c;
  List.iter
    (fun ho ->
      Queue.add (cpos, Commit_point { cpos; writes = c.c_writes }) ho.waiting;
      if ho.blocked_on = None then begin
        ho.blocked_on <- Some cpos;
        try_decide t cpos
      end)
    involved;
  emit_partials t cpos;
  spawn_decision_watchdog t cpos c

(* --- Collaborative conflict resolution (§4.1 D, the paper's future
   work): hosts of read-set objects publish per-object verdicts as
   partial-decision records; once published verdicts cover the read
   set, any participant combines them into the final decision. --- *)

(* Streams that carry a transaction's coordination records. *)
and involved_streams (c : Record.commit) =
  List.sort_uniq Int.compare
    (List.map (fun (oid, _, _) -> oid) c.c_reads
    @ List.map (fun (u : Record.update) -> u.u_oid) c.c_writes)

(* Publish this client's verdicts for the read-set objects it hosts
   that are frozen exactly at [cpos] (their versions are then as of
   the commit position, so each verdict is deterministic). *)
and emit_partials t cpos =
  match Hashtbl.find_opt t.undecided cpos with
  | None -> ()
  | Some c ->
      let read_oids =
        List.sort_uniq Int.compare (List.map (fun (oid, _, _) -> oid) c.c_reads)
      in
      let verdicts =
        List.filter_map
          (fun oid ->
            match Hashtbl.find_opt t.objects oid with
            | Some ho
              when ho.blocked_on = Some cpos
                   && not (Hashtbl.mem t.partials_emitted (cpos, oid)) ->
                Hashtbl.replace t.partials_emitted (cpos, oid) ();
                let ok =
                  List.for_all
                    (fun (roid, key, recorded) ->
                      roid <> oid || version_of t ~oid ?key () <= recorded)
                    c.c_reads
                in
                if not ok then Sim.Metrics.incr t.conflicts_c;
                Some (oid, ok)
            | Some _ | None -> None)
          read_oids
      in
      if verdicts <> [] then begin
        note_partials t cpos verdicts;
        let streams = involved_streams c in
        Sim.Engine.spawn (fun () ->
            ignore
              (Batcher.submit t.batcher ~streams
                 (Record.Partial { p_target = cpos; p_verdicts = verdicts })))
      end

and note_partials t cpos verdicts =
  let tbl =
    match Hashtbl.find_opt t.partials cpos with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace t.partials cpos tbl;
        tbl
  in
  List.iter (fun (oid, ok) -> Hashtbl.replace tbl oid ok) verdicts;
  maybe_combine t cpos

(* When published verdicts cover the whole read set, combine: the
   final outcome is their conjunction — identical from any combiner. *)
and maybe_combine t cpos =
  if not (Hashtbl.mem t.decided cpos) then begin
    let c_opt =
      match Hashtbl.find_opt t.undecided cpos with
      | Some c -> Some c
      | None -> Hashtbl.find_opt t.own_commits cpos
    in
    match (c_opt, Hashtbl.find_opt t.partials cpos) with
    | Some c, Some verdicts ->
        let read_oids =
          List.sort_uniq Int.compare (List.map (fun (oid, _, _) -> oid) c.c_reads)
        in
        if List.for_all (Hashtbl.mem verdicts) read_oids then begin
          let final = List.for_all (Hashtbl.find verdicts) read_oids in
          let publisher =
            Hashtbl.mem t.own_commits cpos
            || List.exists
                 (fun (u : Record.update) -> Hashtbl.mem t.objects u.u_oid)
                 c.c_writes
          in
          resolve t cpos final;
          if publisher then
            publish_decision t cpos c final
        end
    | _, _ -> ()
  end

and publish_decision t cpos c final =
  let streams = involved_streams c in
  Sim.Engine.spawn (fun () ->
      ignore
        (Batcher.submit t.batcher ~streams
           (Record.Decision { d_target = cpos; d_committed = final })))

(* If no decision record shows up (the generator crashed between the
   commit and decision appends), reconstruct the outcome
   deterministically from the log and publish it (§4.1, Failure
   Handling). *)
and spawn_decision_watchdog t cpos c =
  Sim.Engine.spawn (fun () ->
      Sim.Engine.sleep t.decision_timeout_us;
      if Hashtbl.mem t.undecided cpos then begin
        Sim.Trace.f "tango" "%s decision timeout @%d: reconstructing from the log"
          (Sim.Net.host_name (Corfu.Client.host t.cl))
          cpos;
        let committed = reconstruct_outcome t cpos c in
        Sim.Resource.acquire t.play_lock;
        Fun.protect
          ~finally:(fun () -> Sim.Resource.release t.play_lock)
          (fun () -> resolve t cpos committed);
        let streams =
          List.sort_uniq Int.compare (List.map (fun (u : Record.update) -> u.Record.u_oid) c.c_writes)
        in
        ignore
          (Batcher.submit t.batcher ~streams
             (Record.Decision { d_target = cpos; d_committed = committed }))
      end)

(* Deterministic replay of the read set's streams: did any read key
   change between its recorded version and the commit position? Inner
   commit records met during the scan are resolved from decision
   records in the log, previously known outcomes, or recursively. *)
and reconstruct_outcome t cpos (c : Record.commit) =
  let memo = Hashtbl.create 8 in
  let key_conflicts wkey rkey =
    match (wkey, rkey) with None, _ | _, None -> true | Some a, Some b -> String.equal a b
  in
  let scan_records oid =
    (* Fresh stream walk over [oid]'s history; positions ascending. *)
    let s = Corfu.Stream.attach t.cl oid in
    ignore (Corfu.Stream.sync s);
    let rec collect acc =
      match Corfu.Stream.readnext s with
      | None -> List.rev acc
      | Some (off, entry) ->
          let records = Record.decode_payload entry.Corfu.Types.payload in
          let tagged = List.mapi (fun slot r -> (Record.pos ~offset:off ~slot, r)) records in
          collect (List.rev_append tagged acc)
    in
    collect []
  in
  let rec outcome_of pos (c : Record.commit) =
    match Hashtbl.find_opt t.decided pos with
    | Some o -> o
    | None -> (
        match Hashtbl.find_opt memo pos with
        | Some o -> o
        | None ->
            let o =
              List.for_all
                (fun (oid, key, recorded) -> not (modified_between oid key ~after:recorded ~before:pos))
                c.c_reads
            in
            Hashtbl.replace memo pos o;
            o)
  and modified_between oid key ~after ~before =
    let records = scan_records oid in
    let decisions =
      List.filter_map
        (function
          | _, Record.Decision { d_target; d_committed } -> Some (d_target, d_committed)
          | _ -> None)
        records
    in
    List.exists
      (fun (pos, r) ->
        pos > after && pos < before
        &&
        match r with
        | Record.Update u -> u.Record.u_oid = oid && key_conflicts u.Record.u_key key
        | Record.Commit inner ->
            List.exists
              (fun (u : Record.update) -> u.Record.u_oid = oid && key_conflicts u.Record.u_key key)
              inner.Record.c_writes
            &&
            (match List.assoc_opt pos decisions with
            | Some committed -> committed
            | None -> outcome_of pos inner)
        | Record.Decision _ | Record.Partial _ | Record.Checkpoint _ -> false)
      records
  in
  outcome_of cpos c

(* ------------------------------------------------------------------ *)
(* Playback                                                           *)
(* ------------------------------------------------------------------ *)

let deliver_update t pos (u : Record.update) =
  match Hashtbl.find_opt t.objects u.u_oid with
  | None -> ()
  | Some ho ->
      refresh_gap ho;
      if ho.blocked_on <> None || ho.gap_pending then Queue.add (pos, Apply_update u) ho.waiting
      else apply_now t ho pos u

let key_overlaps wkey rkey =
  match (wkey, rkey) with None, _ | _, None -> true | Some a, Some b -> String.equal a b

(* Can the commit at [pos] be decided right now, even though some read
   object is frozen behind an undecided commit? Its queued records are
   known, so we can often prove the read window clean (or certainly
   dirty) without waiting — only an {e undecided} queued write to a
   read key forces parking. This keeps one stalled remote-write
   transaction from convoying every local transaction behind it. *)
let eager_outcome t pos (c : Record.commit) =
  if not (hosts_all_reads t c) then None
  else begin
    let rec check = function
      | [] -> Some true
      | (oid, key, recorded) :: rest -> (
          match Hashtbl.find_opt t.objects oid with
          | None -> None
          | Some ho ->
              refresh_gap ho;
              if ho.gap_pending then None
              else if version_of t ~oid ?key () > recorded then begin
                Sim.Metrics.incr t.conflicts_c;
                Some false
              end
              else if ho.blocked_on = None then check rest
              else begin
                let conflict = ref false in
                let unknown = ref false in
                Queue.iter
                  (fun (qpos, action) ->
                    if qpos > recorded && qpos < pos then
                      match action with
                      | Apply_update u ->
                          if u.Record.u_oid = oid && key_overlaps u.Record.u_key key then
                            conflict := true
                      | Commit_point { cpos; writes } ->
                          let touches =
                            List.exists
                              (fun (u : Record.update) ->
                                u.Record.u_oid = oid && key_overlaps u.Record.u_key key)
                              writes
                          in
                          if touches then begin
                            match Hashtbl.find_opt t.decided cpos with
                            | Some true -> conflict := true
                            | Some false -> ()
                            | None -> unknown := true
                          end
                      | Apply_checkpoint _ -> ())
                  ho.waiting;
                if !conflict then begin
                  Sim.Metrics.incr t.conflicts_c;
                  Some false
                end
                else if !unknown then None
                else check rest
              end)
    in
    check c.c_reads
  end

let () = eager_outcome_ref := eager_outcome

(* [involved] is [involved_hosted t c], computed once by the caller
   (the playback loop also needs it to decide whether to charge
   CPU). *)
let handle_commit t pos ~involved (c : Record.commit) =
  match Hashtbl.find_opt t.decided pos with
  | Some committed ->
      if committed then begin
        announce_applied t pos;
        List.iter (deliver_update t pos) c.c_writes
      end
  | None -> (
      List.iter refresh_gap involved;
      (* Failpoint: apply the writes while the verdict is still
         unknown — the §3c discipline (decide, then apply) is broken
         on purpose so the ReadCommitted spec machine has a live
         sensitivity gate. The normal decision machinery still runs
         below, so the run proceeds (and later re-applies). *)
      if Corfu.Cluster.failpoints.Corfu.Cluster.fp_blind_commit_apply then begin
        announce_applied t pos;
        List.iter (deliver_update t pos) c.c_writes
      end;
      match eager_outcome t pos c with
      | Some committed ->
          (* Merged-order playback guarantees every hosted view is at
             exactly [pos] (frozen queues included), so this decision
             matches the generator's. *)
          Hashtbl.replace t.decided pos committed;
          announce_decided t pos committed;
          if committed then begin
            announce_applied t pos;
            List.iter (deliver_update t pos) c.c_writes
          end;
          (* If waiters elsewhere rely on a decision record and the
             generator cannot produce it (collaborative commits), any
             full-read-set host publishes — the verdict is the same
             from everyone. *)
          if c.Record.c_needs_decision && not (Hashtbl.mem t.own_commits pos) then
            publish_decision t pos c committed
      | None -> park_commit t pos c ~involved)

let process_entry t off (entry : Corfu.Types.entry) =
  if not (Hashtbl.mem t.processed off) then begin
    Hashtbl.replace t.processed off ();
    let records = Record.decode_payload entry.Corfu.Types.payload in
    List.iteri
      (fun slot r ->
        let pos = Record.pos ~offset:off ~slot in
        match r with
        | Record.Update u ->
            if Hashtbl.mem t.objects u.Record.u_oid then charge_apply t;
            deliver_update t pos u
        | Record.Commit c ->
            let involved = involved_hosted t c in
            if involved <> [] then charge_apply t;
            handle_commit t pos ~involved c
        | Record.Decision { d_target; d_committed } ->
            charge_apply t;
            resolve t d_target d_committed
        | Record.Partial { p_target; p_verdicts } ->
            charge_apply t;
            note_partials t p_target p_verdicts
        | Record.Checkpoint { k_oid; k_base; k_data } -> (
            match Hashtbl.find_opt t.objects k_oid with
            | None -> ()
            | Some ho ->
                charge_apply t;
                refresh_gap ho;
                if ho.blocked_on <> None then
                  Queue.add (pos, Apply_checkpoint { base = k_base; data = k_data }) ho.waiting
                else begin
                  load_checkpoint_now t ho ~base:k_base k_data;
                  (* records buffered during the gap and not covered by
                     the snapshot replay now *)
                  drain t ho
                end))
      records
  end

(* Consume hosted streams merged by offset so records apply in global
   log order (see the .mli preamble). [upto] is exclusive. *)
let play_merged t ~upto =
  let hos = hosted_list t in
  let rec loop () =
    let best =
      List.fold_left
        (fun acc ho ->
          match Corfu.Stream.peek_next_offset ho.stream with
          | Some off when off < upto -> (
              match acc with Some (boff, _) when boff <= off -> acc | _ -> Some (off, ho))
          | Some _ | None -> acc)
        None hos
    in
    match best with
    | None -> ()
    | Some (_, ho) ->
        (match Corfu.Stream.readnext ho.stream with
        | Some (off, entry) -> process_entry t off entry
        | None -> ());
        loop ()
  in
  loop ()

let with_play_lock t f =
  Sim.Resource.acquire t.play_lock;
  Fun.protect ~finally:(fun () -> Sim.Resource.release t.play_lock) f

(* One sequencer round trip refreshes membership of every hosted
   stream; returns the global tail. *)
let sync_all t =
  let hos = hosted_list t in
  let tail =
    match hos with
    | [] -> Corfu.Client.check t.cl
    | _ ->
        let sids = List.map (fun ho -> ho.oid) hos in
        let tail, tails = Corfu.Client.peek_streams t.cl sids in
        List.iter
          (fun ho ->
            match List.assoc_opt ho.oid tails with
            | Some ptrs -> Corfu.Stream.sync_with ho.stream ~tail ~ptrs
            | None -> ())
          hos;
        tail
  in
  if tail > t.known_tail then t.known_tail <- tail;
  tail

let play_to t upto =
  with_play_lock t (fun () ->
      (* Tracing-disabled playback must not build the span args. *)
      if Sim.Span.enabled () then
        Sim.Span.with_span
          ~host:(Sim.Net.host_name (Corfu.Client.host t.cl))
          ~args:[ ("upto", string_of_int upto) ]
          "playback.apply"
          (fun () -> Sim.Metrics.time t.apply_h (fun () -> play_merged t ~upto))
      else Sim.Metrics.time t.apply_h (fun () -> play_merged t ~upto);
      if upto > t.played_upto then t.played_upto <- upto)

let obj_settled ho = ho.blocked_on = None && Queue.is_empty ho.waiting

(* Bring [ho]'s view up to the log tail (bounded by [upto]) and wait
   out any undecided commits freezing it. *)
let linearizable_sync t ?upto ho =
  let rec attempt backoff =
    let tail = sync_all t in
    let bound = match upto with Some u -> min u tail | None -> tail in
    play_to t bound;
    if obj_settled ho then ()
    else begin
      (* Frozen behind an undecided commit whose decision record lies
         beyond [bound]; keep consuming until it resolves. *)
      Sim.Engine.sleep backoff;
      attempt (Float.min (2. *. backoff) t.retry_backoff_max_us)
    end
  in
  attempt t.retry_sleep_us

(* ------------------------------------------------------------------ *)
(* Public object-facing API                                           *)
(* ------------------------------------------------------------------ *)

let current_tx t = Hashtbl.find_opt t.txs (Sim.Engine.fiber_id ())

let charge_dispatch t = Sim.Resource.use t.dispatch t.dispatch_us

(* Buffered in-transaction operations never leave the runtime — they
   cons onto the context — so they cost a token amount, not a full
   dispatch (the dispatch constant models the runtime's per-external-op
   hot loop; see Params). *)
let charge_tx_op t = Sim.Resource.use t.dispatch 1.0

let update_helper t ~oid ?key data =
  match current_tx t with
  | Some ctx ->
      charge_tx_op t;
      ctx.tx_writes <- { Record.u_oid = oid; u_key = key; u_data = data } :: ctx.tx_writes
  | None ->
      charge_dispatch t;
      ignore
        (Batcher.submit t.batcher ~streams:[ oid ]
           (Record.Update { Record.u_oid = oid; u_key = key; u_data = data }))

let query_helper t ~oid ?key ?upto () =
  match current_tx t with
  | Some ctx ->
      charge_tx_op t;
      if upto <> None then invalid_arg "Runtime.query_helper: no historical reads in transactions";
      if not (Hashtbl.mem t.objects oid) then
        invalid_arg "Runtime.query_helper: remote reads in transactions are not supported (§4.1 D)";
      ctx.tx_reads <- (oid, key, version_of t ~oid ?key ()) :: ctx.tx_reads
  | None -> (
      charge_dispatch t;
      match Hashtbl.find_opt t.objects oid with
      | Some ho -> linearizable_sync t ?upto ho
      | None -> invalid_arg "Runtime.query_helper: object not hosted")

(* ------------------------------------------------------------------ *)
(* Remote reads (§4.1 D)                                              *)
(* ------------------------------------------------------------------ *)

let expose_read t ~oid serve =
  match Hashtbl.find_opt t.objects oid with
  | Some ho -> ho.serve_read <- Some serve
  | None -> invalid_arg "Runtime.expose_read: object not hosted"

let remote_read_service t =
  match t.rr_service with
  | Some svc -> svc
  | None ->
      let svc =
        Sim.Net.service
          (Corfu.Client.host t.cl)
          ~name:"tango-remote-read"
          (fun { rr_oid; rr_key } ->
            Sim.Resource.use t.dispatch t.dispatch_us;
            match Hashtbl.find_opt t.objects rr_oid with
            | Some { serve_read = Some serve; _ } ->
                Some (serve rr_key, version_of t ~oid:rr_oid ?key:rr_key ())
            | Some _ | None -> None)
      in
      t.rr_service <- Some svc;
      svc

let connect_peer t ~oid svc = Hashtbl.replace t.remote_peers oid svc

let query_remote t ~oid ?key () =
  charge_dispatch t;
  match current_tx t with
  | None -> invalid_arg "Runtime.query_remote: only usable inside a transaction"
  | Some ctx -> (
      match Hashtbl.find_opt t.remote_peers oid with
      | None -> invalid_arg "Runtime.query_remote: no peer connected for this object"
      | Some svc -> (
          match Sim.Net.call ~from:(Corfu.Client.host t.cl) svc { rr_oid = oid; rr_key = key } with
          | None -> invalid_arg "Runtime.query_remote: peer does not serve this object"
          | Some (value, version) ->
              ctx.tx_reads <- (oid, key, version) :: ctx.tx_reads;
              ctx.tx_remote_reads <- true;
              value))

let fetch t ?oid pos =
  let off = Record.pos_offset pos in
  let slot = Record.pos_slot pos in
  let entry =
    match Corfu.Client.read_resolved t.cl off with
    | Corfu.Client.Data e -> e
    | Corfu.Client.Junk | Corfu.Client.Trimmed | Corfu.Client.Unwritten -> raise Not_found
  in
  let records = Record.decode_payload entry.Corfu.Types.payload in
  match List.nth_opt records slot with
  | Some (Record.Update u) -> (
      match oid with Some o when o <> u.Record.u_oid -> raise Not_found | _ -> u.Record.u_data)
  | Some (Record.Commit c) -> (
      match oid with
      | Some o -> (
          match List.find_opt (fun (u : Record.update) -> u.Record.u_oid = o) c.Record.c_writes with
          | Some u -> u.Record.u_data
          | None -> raise Not_found)
      | None -> raise Not_found)
  | Some (Record.Decision _ | Record.Partial _ | Record.Checkpoint _) | None -> raise Not_found

(* ------------------------------------------------------------------ *)
(* Transactions                                                       *)
(* ------------------------------------------------------------------ *)

let begin_tx t =
  charge_dispatch t;
  let fid = Sim.Engine.fiber_id () in
  if Hashtbl.mem t.txs fid then raise Nested_transaction;
  (* Refresh the local snapshot so reads record current versions;
     accessors inside the transaction then stay purely local (§3.2). *)
  let tail = sync_all t in
  play_to t tail;
  Hashtbl.replace t.txs fid
    { tx_reads = []; tx_writes = []; tx_remote_reads = false; tx_t0 = Sim.Engine.now () };
  if Sim.Announce.active () then
    Sim.Announce.emit (Sim.Announce.Tx_begin { client = announce_host t })

let abort_tx t =
  let fid = Sim.Engine.fiber_id () in
  if not (Hashtbl.mem t.txs fid) then raise No_transaction;
  Hashtbl.remove t.txs fid

let in_tx t = current_tx t <> None

let check_reads t reads =
  List.for_all (fun (oid, key, recorded) -> version_of t ~oid ?key () <= recorded) reads

let await_decided t pos =
  let rec wait backoff =
    match Hashtbl.find_opt t.decided pos with
    | Some o -> o
    | None ->
        Sim.Engine.sleep backoff;
        let tail = sync_all t in
        play_to t tail;
        wait (Float.min (2. *. backoff) t.retry_backoff_max_us)
  in
  wait t.retry_sleep_us

let read_objects_settled t reads =
  List.for_all
    (fun (oid, _, _) ->
      match Hashtbl.find_opt t.objects oid with Some ho -> obj_settled ho | None -> true)
    reads

(* A generator hosting none of a collaborative transaction's objects
   follows the coordination records by scanning one involved stream
   directly: partial verdicts accumulate until it can combine (it is
   the generator, so it publishes the final decision). *)
let await_decided_scanning t cpos (c : Record.commit) =
  let sid = List.hd (involved_streams c) in
  let s = Corfu.Stream.attach t.cl sid in
  (* Partial verdicts only flow while the read-set hosts are playing
     the log; if they are idle past the decision timeout, fall back to
     the deterministic reconstruction (same as the consumer-side
     watchdog). *)
  let deadline = Sim.Engine.now () +. t.decision_timeout_us in
  let rec loop backoff =
    match Hashtbl.find_opt t.decided cpos with
    | Some outcome -> outcome
    | None ->
        ignore (Corfu.Stream.sync s);
        let rec consume () =
          match Corfu.Stream.readnext s with
          | None -> ()
          | Some (_, entry) ->
              List.iter
                (fun r ->
                  match r with
                  | Record.Partial { p_target; p_verdicts } when p_target = cpos ->
                      note_partials t cpos p_verdicts
                  | Record.Decision { d_target; d_committed } when d_target = cpos ->
                      resolve t d_target d_committed
                  | Record.Update _ | Record.Commit _ | Record.Decision _ | Record.Partial _
                  | Record.Checkpoint _ ->
                      ())
                (Record.decode_payload entry.Corfu.Types.payload);
              consume ()
        in
        consume ();
        if Hashtbl.mem t.decided cpos then loop backoff
        else if Sim.Engine.now () > deadline then begin
          let outcome = reconstruct_outcome t cpos c in
          resolve t cpos outcome;
          publish_decision t cpos c outcome;
          outcome
        end
        else begin
          Sim.Engine.sleep backoff;
          loop (Float.min (2. *. backoff) t.retry_backoff_max_us)
        end
  in
  loop t.retry_sleep_us

let end_tx ?(stale = false) t =
  charge_dispatch t;
  let fid = Sim.Engine.fiber_id () in
  let ctx = match Hashtbl.find_opt t.txs fid with Some c -> c | None -> raise No_transaction in
  Hashtbl.remove t.txs fid;
  let finish status =
    (match status with
    | Committed ->
        t.stats_commits <- t.stats_commits + 1;
        Sim.Metrics.incr t.commits_c
    | Aborted ->
        t.stats_aborts <- t.stats_aborts + 1;
        Sim.Metrics.incr t.aborts_c);
    Sim.Metrics.observe t.tx_h (Sim.Engine.now () -. ctx.tx_t0);
    if Sim.Announce.active () then
      Sim.Announce.emit
        (Sim.Announce.Tx_finish { client = announce_host t; committed = status = Committed });
    status
  in
  match (List.rev ctx.tx_reads, List.rev ctx.tx_writes) with
  | [], [] -> finish Committed
  | reads, [] ->
      (* Read-only: no commit record. Stale mode decides against the
         local snapshot; otherwise play to the tail first (one
         sequencer round trip when the system is quiet, §3.2). *)
      if stale then begin
        let ok = check_reads t reads in
        if not ok then Sim.Metrics.incr t.conflicts_c;
        finish (if ok then Committed else Aborted)
      end
      else begin
        let rec settle backoff =
          let tail = sync_all t in
          play_to t tail;
          if read_objects_settled t reads then ()
          else begin
            Sim.Engine.sleep backoff;
            settle (Float.min (2. *. backoff) t.retry_backoff_max_us)
          end
        in
        settle t.retry_sleep_us;
        let ok = check_reads t reads in
        if not ok then Sim.Metrics.incr t.conflicts_c;
        finish (if ok then Committed else Aborted)
      end
  | reads, writes ->
      let collaborative = ctx.tx_remote_reads && reads <> [] in
      let wstreams =
        List.sort_uniq Int.compare (List.map (fun (u : Record.update) -> u.Record.u_oid) writes)
      in
      let needs_decision =
        collaborative
        || List.exists
             (fun soid ->
               match Hashtbl.find_opt t.objects soid with
               | None -> true (* a remote write: its host may lack our read set *)
               | Some ho -> ho.marked_needs_decision)
             wstreams
      in
      let commit = { Record.c_reads = reads; c_writes = writes; c_needs_decision = needs_decision } in
      (* Collaborative commits travel on the read streams too, so
         every read-set host can publish its partial verdict. *)
      let streams =
        if collaborative then
          List.sort_uniq Int.compare (wstreams @ List.map (fun (oid, _, _) -> oid) reads)
        else wstreams
      in
      let cpos = Batcher.submit t.batcher ~streams (Record.Commit commit) in
      Hashtbl.replace t.own_commits cpos commit;
      let commit_off = Record.pos_offset cpos in
      let committed =
        if reads = [] then begin
          (* Write-only: commits immediately, no playback (§3.2). *)
          Hashtbl.replace t.decided cpos true;
          announce_decided t cpos true;
          true
        end
        else if collaborative then begin
          (* The outcome is assembled from the read hosts' partial
             verdicts (we publish ours through playback like everyone
             else). With no hosted participant, scan a coordination
             stream directly. *)
          if List.exists (Hashtbl.mem t.objects) streams then await_decided t cpos
          else await_decided_scanning t cpos commit
        end
        else begin
          let hosted_write = List.exists (Hashtbl.mem t.objects) wstreams in
          ignore (sync_all t);
          if hosted_write then begin
            (* Our own playback of the commit entry decides it. *)
            play_to t (commit_off + 1);
            await_decided t cpos
          end
          else begin
            (* Remote-only writes: play to just before the commit
               point, then decide from local read versions — parking
               like a consumer if a read object is frozen. *)
            play_to t commit_off;
            with_play_lock t (fun () ->
                match Hashtbl.find_opt t.decided cpos with
                | Some _ -> ()
                | None -> (
                    match eager_outcome t cpos commit with
                    | Some outcome ->
                        Hashtbl.replace t.decided cpos outcome;
                        announce_decided t cpos outcome
                    | None -> park_commit t cpos commit ~involved:(involved_hosted t commit)));
            await_decided t cpos
          end
        end
      in
      if needs_decision && not collaborative then
        ignore
          (Batcher.submit t.batcher ~streams:wstreams
             (Record.Decision { d_target = cpos; d_committed = committed }));
      finish (if committed then Committed else Aborted)

(* ------------------------------------------------------------------ *)
(* Checkpoints and GC                                                 *)
(* ------------------------------------------------------------------ *)

type checkpoint_info = { ckpt_pos : int; ckpt_base : int }

let checkpoint t ~oid =
  charge_dispatch t;
  match Hashtbl.find_opt t.objects oid with
  | None -> invalid_arg "Runtime.checkpoint: object not hosted"
  | Some ho -> (
      match ho.cb.checkpoint with
      | None -> invalid_arg "Runtime.checkpoint: object has no checkpoint callback"
      | Some snapshot ->
          let data = snapshot () in
          let base = find_version t.last_any oid in
          let pos =
            Batcher.submit t.batcher ~streams:[ oid ]
              (Record.Checkpoint { k_oid = oid; k_base = base; k_data = data })
          in
          { ckpt_pos = pos; ckpt_base = base })

let trim_below t off =
  Corfu.Client.prefix_trim t.cl off;
  if off > t.trimmed_below then t.trimmed_below <- off;
  let below_pos = off * Record.slots_per_entry in
  let prune tbl pred = Hashtbl.filter_map_inplace (fun k v -> if pred k then None else Some v) tbl in
  prune t.processed (fun o -> o < off);
  prune t.decided (fun p -> p < below_pos)

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let applied_records t = t.stats_applied
let commits t = t.stats_commits
let aborts t = t.stats_aborts

type append_stats = {
  as_entries : int;
  as_records : int;
  as_inflight : int;
  as_inflight_peak : int;
  as_grants : int;
  as_granted_entries : int;
  as_cache_hits : int;
  as_cache_misses : int;
}

let append_stats t =
  let hits, misses =
    Hashtbl.fold
      (fun _ ho (h, m) ->
        (h + Corfu.Stream.cache_hits ho.stream, m + Corfu.Stream.cache_misses ho.stream))
      t.objects (0, 0)
  in
  {
    as_entries = Batcher.entries_appended t.batcher;
    as_records = Batcher.records_submitted t.batcher;
    as_inflight = Batcher.inflight t.batcher;
    as_inflight_peak = Batcher.inflight_peak t.batcher;
    as_grants = Batcher.grants t.batcher;
    as_granted_entries = Batcher.granted_entries t.batcher;
    as_cache_hits = hits;
    as_cache_misses = misses;
  }
