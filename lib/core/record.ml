let slots_per_entry = 64

let pos ~offset ~slot =
  if slot < 0 || slot >= slots_per_entry then invalid_arg "Record.pos: slot out of range";
  (offset * slots_per_entry) + slot

let pos_offset p = p / slots_per_entry
let pos_slot p = p mod slots_per_entry

type update = { u_oid : int; u_key : string option; u_data : bytes }

type commit = {
  c_reads : (int * string option * int) list;
  c_writes : update list;
  c_needs_decision : bool;
}

type t =
  | Update of update
  | Commit of commit
  | Decision of { d_target : int; d_committed : bool }
  | Partial of { p_target : int; p_verdicts : (int * bool) list }
  | Checkpoint of { k_oid : int; k_base : int; k_data : bytes }

(* ------------------------------------------------------------------ *)
(* Wire format: fixed-width big-endian integers, length-prefixed      *)
(* byte strings, via the shared Corfu.Wire codec. One byte of record  *)
(* count, then length-prefixed records so a reader can skip unknown   *)
(* slots.                                                             *)
(* ------------------------------------------------------------------ *)

module Wire = Corfu.Wire

let put_u8 = Wire.put_u8
let put_u32 = Wire.put_u32
let put_u64 = Wire.put_u64
let put_bytes = Wire.put_bytes
let put_key = Wire.put_opt_string

let put_update b { u_oid; u_key; u_data } =
  put_u64 b u_oid;
  put_key b u_key;
  put_bytes b u_data

let encode_one b = function
  | Update u ->
      put_u8 b 0;
      put_update b u
  | Commit { c_reads; c_writes; c_needs_decision } ->
      put_u8 b 1;
      put_u8 b (if c_needs_decision then 1 else 0);
      put_u32 b (List.length c_reads);
      List.iter
        (fun (oid, key, version) ->
          put_u64 b oid;
          put_key b key;
          put_u64 b version)
        c_reads;
      put_u32 b (List.length c_writes);
      List.iter (put_update b) c_writes
  | Decision { d_target; d_committed } ->
      put_u8 b 2;
      put_u64 b d_target;
      put_u8 b (if d_committed then 1 else 0)
  | Checkpoint { k_oid; k_base; k_data } ->
      put_u8 b 3;
      put_u64 b k_oid;
      put_u64 b k_base;
      put_bytes b k_data
  | Partial { p_target; p_verdicts } ->
      put_u8 b 4;
      put_u64 b p_target;
      put_u32 b (List.length p_verdicts);
      List.iter
        (fun (oid, ok) ->
          put_u64 b oid;
          put_u8 b (if ok then 1 else 0))
        p_verdicts

let get_u8 = Wire.get_u8
let get_u32 = Wire.get_u32
let get_u64 = Wire.get_u64
let get_bytes = Wire.get_bytes
let get_key = Wire.get_opt_string

let get_update c =
  let u_oid = get_u64 c in
  let u_key = get_key c in
  let u_data = get_bytes c in
  { u_oid; u_key; u_data }

let decode_one c =
  match get_u8 c with
  | 0 -> Update (get_update c)
  | 1 ->
      let c_needs_decision = get_u8 c = 1 in
      let nreads = get_u32 c in
      let c_reads =
        List.init nreads (fun _ ->
            let oid = get_u64 c in
            let key = get_key c in
            let version = get_u64 c in
            (oid, key, version))
      in
      let nwrites = get_u32 c in
      let c_writes = List.init nwrites (fun _ -> get_update c) in
      Commit { c_reads; c_writes; c_needs_decision }
  | 2 ->
      let d_target = get_u64 c in
      let d_committed = get_u8 c = 1 in
      Decision { d_target; d_committed }
  | 3 ->
      let k_oid = get_u64 c in
      let k_base = get_u64 c in
      let k_data = get_bytes c in
      Checkpoint { k_oid; k_base; k_data }
  | 4 ->
      let p_target = get_u64 c in
      let n = get_u32 c in
      let p_verdicts =
        List.init n (fun _ ->
            let oid = get_u64 c in
            let ok = get_u8 c = 1 in
            (oid, ok))
      in
      Partial { p_target; p_verdicts }
  | tag -> invalid_arg (Printf.sprintf "Record.decode: unknown tag %d" tag)

(* Payload encodes run through a module-level arena: the record body
   goes straight into the writer and its u32 length prefix is
   backpatched once the body's extent is known, so no per-record
   buffer or copy. Encodes never yield, so sharing one arena is safe;
   [Wire.contents] copies out at the ownership boundary. *)
let arena = Wire.writer ~size:1024 ()

let encode_record_into b r =
  let len_at = Wire.pos b in
  put_u32 b 0;
  encode_one b r;
  Wire.patch_u32 b ~at:len_at (Wire.pos b - len_at - 4)

let encode_payload_array records ~len =
  if len = 0 || len > slots_per_entry || len > Array.length records then
    invalid_arg "Record.encode_payload_array: bad record count";
  Wire.reset arena;
  put_u8 arena len;
  for i = 0 to len - 1 do
    encode_record_into arena (Array.unsafe_get records i)
  done;
  Wire.contents arena

let encode_payload records =
  let n = List.length records in
  if n = 0 || n > slots_per_entry then invalid_arg "Record.encode_payload: bad record count";
  Wire.reset arena;
  put_u8 arena n;
  List.iter (encode_record_into arena) records;
  Wire.contents arena

let decode_payload buf =
  let c = Wire.reader buf in
  let n = get_u8 c in
  List.init n (fun _ ->
      let len = get_u32 c in
      let stop = Wire.at c + len in
      let r = decode_one c in
      if Wire.at c <> stop then invalid_arg "Record.decode: record length mismatch";
      r)

let streams_of = function
  | Update u -> [ u.u_oid ]
  | Commit { c_writes; _ } -> List.sort_uniq Int.compare (List.map (fun u -> u.u_oid) c_writes)
  | Decision _ | Partial _ -> []
  | Checkpoint { k_oid; _ } -> [ k_oid ]

let pp ppf = function
  | Update u -> Fmt.pf ppf "update(oid=%d key=%a)" u.u_oid Fmt.(option string) u.u_key
  | Commit c ->
      Fmt.pf ppf "commit(reads=%d writes=%d%s)" (List.length c.c_reads)
        (List.length c.c_writes)
        (if c.c_needs_decision then " +decision" else "")
  | Decision d -> Fmt.pf ppf "decision(target=%d %b)" d.d_target d.d_committed
  | Checkpoint k -> Fmt.pf ppf "checkpoint(oid=%d base=%d)" k.k_oid k.k_base
  | Partial p ->
      Fmt.pf ppf "partial(target=%d %a)" p.p_target
        Fmt.(list ~sep:comma (pair ~sep:(any ":") int bool))
        p.p_verdicts
