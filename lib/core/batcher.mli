(** Append batching: packs several Tango records into one log entry,
    and keeps a window of entries in flight.

    The paper's clients store a batch of 4 commit records per 4KB
    entry (§6). The batcher fills a forming batch as fibers submit
    records; the submission that completes a batch seals it, and a
    linger timer bounds the latency of partial batches under light
    load.

    Sealed batches drain through a single fiber that reserves offsets
    from the sequencer in {e range grants} (one RPC for a run of
    batches on the same stream set) and spawns one chain-write fiber
    per entry, up to [append_window] concurrently (§6.1). Because the
    drainer is the only fiber allocating offsets, landed offsets — and
    hence the positions handed back to waiters — are monotone in seal
    order. *)

type t

(** [create ~client ~batch_size ?linger_us ?append_window ()] builds a
    batcher appending through [client]. [linger_us] (default 30) is
    how long a partial batch may wait for company; [append_window]
    (default: the client's {!Sim.Params.t.append_window}) caps entries
    in flight. *)
val create :
  client:Corfu.Client.t -> batch_size:int -> ?linger_us:float -> ?append_window:int -> unit -> t

(** [submit t ~streams record] enqueues [record], destined for
    [streams] (the multiappend target set), and blocks the calling
    fiber until the enclosing entry is durable. Returns the record's
    global position. *)
val submit : t -> streams:Corfu.Types.stream_id list -> Record.t -> int

(** Entries appended so far (for tests: measures batching ratio). *)
val entries_appended : t -> int

(** Records submitted so far. *)
val records_submitted : t -> int

(** Entries currently in flight (sealed, offset granted, chain write
    not yet durable). *)
val inflight : t -> int

(** High-water mark of {!inflight}: > 1 means the pipelined path
    actually overlapped chain writes. *)
val inflight_peak : t -> int

(** Sequencer range grants taken so far. *)
val grants : t -> int

(** Entries allocated through those grants; [granted_entries / grants]
    is the mean grant occupancy. *)
val granted_entries : t -> int
