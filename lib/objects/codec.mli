(** Internal: the binary codec shared by the object library's update
    records (big-endian fixed-width integers, length-prefixed
    strings) — thin aliases over {!Corfu.Wire}, kept so the object
    wire formats read in the vocabulary they were written in. Not a
    stable interface — objects define their wire formats with it, and
    only those formats are contracts. *)

(** [to_bytes build] runs [build] against a shared arena writer and
    returns a copy of its contents (see {!Corfu.Wire.to_bytes}). *)
val to_bytes : (Corfu.Wire.writer -> unit) -> bytes

val put_u8 : Corfu.Wire.writer -> int -> unit
val put_bool : Corfu.Wire.writer -> bool -> unit
val put_int : Corfu.Wire.writer -> int -> unit
val put_string : Corfu.Wire.writer -> string -> unit
val put_opt_string : Corfu.Wire.writer -> string option -> unit

type cursor

(** [reader b] starts a cursor at offset 0. Readers raise
    [Invalid_argument] on out-of-bounds access. *)
val reader : bytes -> cursor

val get_u8 : cursor -> int
val get_bool : cursor -> bool
val get_int : cursor -> int
val get_string : cursor -> string
val get_opt_string : cursor -> string option
