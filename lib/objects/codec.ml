(** Binary codec for the object library's update records: thin aliases
    over {!Corfu.Wire}, the shared big-endian codec, plus the
    [int]-flavoured names the object wire formats were written
    against. *)

module Wire = Corfu.Wire

let to_bytes = Wire.to_bytes
let put_u8 = Wire.put_u8
let put_bool = Wire.put_bool
let put_int = Wire.put_u64
let put_string = Wire.put_string
let put_opt_string = Wire.put_opt_string

type cursor = Wire.cursor

let reader = Wire.reader
let get_u8 = Wire.get_u8
let get_bool = Wire.get_bool
let get_int = Wire.get_u64
let get_string = Wire.get_string
let get_opt_string = Wire.get_opt_string
