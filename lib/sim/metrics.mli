(** Global metrics registry: the measurement plane of the simulator.

    Components register named {e counters}, {e gauges}, and log-scale
    {e histograms}, optionally qualified by a host/component label.
    The registry is process-global but {e engine-reset}: it clears
    itself lazily when a new {!Engine.run} starts (detected through
    {!Engine.run_count}), and stays readable after a run ends so
    benches and tests can snapshot it post-mortem.

    A periodic {e sampler} fiber ({!start_sampler}) records time
    series of {!Resource} utilization and queue depth — sequencer CPU,
    per-node SSDs, NICs, the append window — plus every registered
    gauge, against the virtual clock.

    Determinism: recording a metric only reads the virtual clock and
    mutates registry state; it never sleeps, spawns, or consumes
    randomness, so instrumented and bare code schedule identically.
    The sampler is the one exception (it is a fiber and does occupy
    event-queue slots), which is why it must be started explicitly.
    {!snapshot} and {!to_json} emit entries in sorted key order, so
    two same-seed runs of the same scenario produce byte-identical
    dumps.

    Handles are cheap to obtain ({!counter} etc. are get-or-create)
    but belong to the run in which they were created: a handle kept
    across an engine reset still accepts writes, but they land in the
    dead generation and are invisible to later snapshots. Re-acquire
    handles inside each run — and enable {!set_strict} in tests to
    turn such stale writes into a {!Stale_handle} exception instead of
    silent loss. *)

type counter
type gauge
type histogram

(** Raised by {!incr} / {!add} / {!set_gauge} / {!observe} in strict
    mode when the handle was created in an earlier engine generation.
    The payload is the handle's [host.name] label. *)
exception Stale_handle of string

(** [set_strict b] enables (or disables) the stale-handle check on
    every metric write. Off by default — the production hot path pays
    only one flag branch. Sticky across engine resets; tests enable it
    to catch handles cached across runs. *)
val set_strict : bool -> unit

(** [counter ?host name] gets or creates the counter registered under
    [(name, host)]. *)
val counter : ?host:string -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?host:string -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** [histogram ?host name] gets or creates a fixed-bucket log-scale
    latency histogram: 10 buckets per decade from 0.1 µs to 100 s,
    plus underflow and overflow buckets. Values are expected in µs. *)
val histogram : ?host:string -> string -> histogram

val observe : histogram -> float -> unit

(** [time h f] runs [f] and observes the elapsed virtual time in [h].
    The observation happens even if [f] raises. *)
val time : histogram -> (unit -> 'a) -> 'a

val hist_count : histogram -> int
val hist_mean : histogram -> float

(** [hist_percentile h p] estimates the [p]-th percentile ([0..100])
    from the cumulative bucket counts. The estimate is the geometric
    midpoint of the bucket holding the target rank, clamped to the
    exact observed min/max; resolution is one bucket (≈ 26%).
    Returns 0.0 on an empty histogram. *)
val hist_percentile : histogram -> float -> float

(** {2 Registry introspection}

    Read-only access to live handles, used by {!Timeseries} to build
    windowed aggregates over the whole registry. *)

val counter_name : counter -> string
val counter_host : counter -> string option
val gauge_name : gauge -> string
val gauge_host : gauge -> string option
val hist_name : histogram -> string
val hist_host : histogram -> string option

(** Number of histogram buckets (underflow + log buckets + overflow). *)
val num_buckets : int

(** [hist_buckets_into h dst] copies [h]'s raw bucket counts into
    [dst], which must have length {!num_buckets}. Subtracting two
    copies taken at different times gives a per-window sketch. *)
val hist_buckets_into : histogram -> int array -> unit

(** [buckets_percentile counts ~total p] estimates the [p]-th
    percentile from a raw bucket-count array (typically a window
    delta); [total] is the sum of [counts]. Same log-bucket estimator
    as {!hist_percentile}, but with no observed min/max to clamp to.
    Returns [nan] when [total <= 0]. *)
val buckets_percentile : int array -> total:int -> float -> float

(** [iter_handles ~on_counter ~on_gauge ~on_hist] visits every handle
    registered in the current generation, each family in sorted
    (name, host) order — the deterministic enumeration {!Timeseries}
    uses to auto-track the registry. *)
val iter_handles :
  on_counter:(counter -> unit) ->
  on_gauge:(gauge -> unit) ->
  on_hist:(histogram -> unit) ->
  unit

(** [track_resource r] registers [r] for the sampler: each tick
    records utilization ([busy_time] delta / (interval × capacity))
    under series [util:<name>] and queue depth under [qlen:<name>].
    Duplicate registrations (same resource name) are ignored. *)
val track_resource : Resource.t -> unit

(** [start_sampler ?interval_us ()] spawns the sampler fiber (default
    tick 1000 µs). It samples every tracked resource and every
    registered gauge (series [gauge:<name>]) until the run ends. At
    most one sampler per run; later calls are no-ops. Must be called
    inside {!Engine.run}. *)
val start_sampler : ?interval_us:float -> unit -> unit

(** Immutable, sorted view of the registry. *)
type counter_view = { c_name : string; c_host : string option; c_value : int }

type gauge_view = { g_name : string; g_host : string option; g_value : float }

type hist_view = {
  h_name : string;
  h_host : string option;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_buckets : (float * int) list;  (** (upper bound µs, count), non-empty buckets only *)
}

type series_view = {
  s_name : string;
  s_points : (float * float) array;  (** (virtual time µs, value) *)
}

type snapshot = {
  counters : counter_view list;
  gauges : gauge_view list;
  histograms : hist_view list;
  series : series_view list;
}

val snapshot : unit -> snapshot

(** Canonical JSON rendering of {!snapshot}:
    [{"counters": [...], "gauges": [...], "histograms": [...],
      "series": [...]}]. *)
val to_json : unit -> string

(** [reset ()] clears the registry immediately (tests; normally the
    engine-reset does this for you). *)
val reset : unit -> unit
