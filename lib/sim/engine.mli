(** Deterministic discrete-event scheduler with cooperative fibers.

    The engine drives a virtual clock (microseconds, [float]) and a
    priority queue of events. Simulated processes are {e fibers}:
    ordinary OCaml functions that may call {!sleep} and
    {!suspend}, implemented with OCaml 5 effect handlers. Exactly one
    fiber runs at a time; there is no preemption, so plain mutable
    state needs no locking. Ties in the event queue are broken by
    insertion order, making every run reproducible.

    A simulation ends when the main fiber (the function passed to
    {!run}) returns. Fibers still blocked at that point — servers
    waiting for requests that will never come — are discarded. *)

(** Raised by {!run} when the main fiber is blocked but no events
    remain: every remaining fiber waits on something nobody will
    deliver. *)
exception Deadlock

(** Raised by {!run} when the [until] horizon passes before the main
    fiber completes. *)
exception Horizon_reached of float

(** [run ?seed ?until main] creates a fresh simulation world, runs
    [main] as the first fiber, and drives events until [main] returns;
    its result is returned. [seed] (default 1) seeds the world's
    {!Rng.t}. [until] bounds virtual time.

    Nested calls to [run] are not allowed. *)
val run : ?seed:int -> ?until:float -> (unit -> 'a) -> 'a

(** [now ()] is the current virtual time in microseconds.
    @raise Invalid_argument outside of {!run}. *)
val now : unit -> float

(** [rng ()] is the simulation world's generator. *)
val rng : unit -> Rng.t

(** [sleep dt] suspends the calling fiber for [dt] microseconds
    (clamped to 0). *)
val sleep : float -> unit

(** [yield ()] reschedules the calling fiber at the current time,
    letting other ready fibers run first. *)
val yield : unit -> unit

(** A resumer: call it exactly once to wake the suspended fiber with a
    value. Calling it twice raises [Invalid_argument]. *)
type 'a resumer = 'a -> unit

(** [suspend register] parks the calling fiber and hands a {!resumer}
    to [register]. The fiber resumes (at the virtual time of the
    resumer call) with the value passed to the resumer. *)
val suspend : ('a resumer -> unit) -> 'a

(** [spawn ?at f] schedules [f] as a new fiber at time [at] (default
    now). Exceptions escaping a fiber abort the whole simulation: they
    are re-raised from {!run}. *)
val spawn : ?at:float -> (unit -> unit) -> unit

(** [fiber_id ()] identifies the calling fiber; ids are unique within
    a run. The main fiber has id 0. *)
val fiber_id : unit -> int

(** [schedule ~after f] runs the thunk [f] (not a fiber: it must not
    sleep or suspend) after [after] microseconds. *)
val schedule : after:float -> (unit -> unit) -> unit

(** [events_dispatched ()] is the number of events the running world
    has dispatched so far — the numerator of the events-per-wall-second
    throughput metric the bench suite gates on.
    @raise Invalid_argument outside of {!run}. *)
val events_dispatched : unit -> int

(** [run_count ()] is the number of simulation worlds ever started in
    this process (incremented at the top of each {!run}). Unlike the
    other accessors it is usable outside a run. Global registries such
    as {!Metrics} and {!Span} use it to reset themselves lazily at the
    start of a new run while staying readable after a run ends. *)
val run_count : unit -> int
