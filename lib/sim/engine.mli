(** Deterministic discrete-event scheduler with cooperative fibers,
    optionally sharded across OCaml 5 domains.

    The engine drives a virtual clock (microseconds, [float]) and a
    banded priority queue of events. Simulated processes are {e
    fibers}: ordinary OCaml functions that may call {!sleep} and
    {!suspend}, implemented with OCaml 5 effect handlers. Within a
    shard exactly one fiber runs at a time; there is no preemption, so
    plain mutable state needs no locking. Ties in the event queue are
    broken by insertion order, making every run reproducible.

    {!run} executes everything in one world on the calling domain —
    the classic mode, unchanged. {!run_sharded} partitions the event
    space into per-shard worlds (own event queue, RNG stream, fiber
    table) executed on parallel domains with {e conservative lookahead
    synchronization}: virtual time advances in windows of [lookahead]
    µs past the global minimum event time; within a window shards
    dispatch independently, and cross-shard messages ({!post}) — which
    can never land inside the window, because every link imposes at
    least [lookahead] of delay — are merged at a deterministic barrier
    between windows. Same seed, same shard count ⇒ byte-identical
    traces, regardless of how the OS schedules the domains.

    A simulation ends when the main fiber (the function passed to
    {!run}/{!run_sharded}) returns. Fibers still blocked at that point
    — servers waiting for requests that will never come — are
    discarded, on every shard. *)

(** Raised by {!run} when the main fiber is blocked but no events
    remain on any shard: every remaining fiber waits on something
    nobody will deliver. *)
exception Deadlock

(** Raised by {!run} when the [until] horizon passes before the main
    fiber completes. *)
exception Horizon_reached of float

(** [run ?seed ?until main] creates a fresh simulation world, runs
    [main] as the first fiber, and drives events until [main] returns;
    its result is returned. [seed] (default 1) seeds the world's
    {!Rng.t}. [until] bounds virtual time.

    Nested calls to [run] are not allowed. *)
val run : ?seed:int -> ?until:float -> (unit -> 'a) -> 'a

(** [run_sharded ~shards ~lookahead main] is {!run} over [shards]
    parallel worlds. [main] runs as the first fiber of shard 0 on the
    calling domain — so code touching the process-global registries
    ({!Metrics}, {!Span}, {!Timeseries}, {!Flight}) must stay on shard
    0, where it runs exactly as under {!run}. [init ~shard] (if given)
    is spawned at time 0 as the first fiber of every shard >= 1 on its
    own domain; fibers there must confine themselves to shard-local
    state and {!post}.

    [lookahead] is the conservative window in µs: no cross-shard
    message may arrive sooner (see {!post}, {!Net.lookahead}). It must
    be positive when [shards > 1]. With [shards = 1] the call is
    exactly {!run} — same dispatch loop, same RNG stream
    ([Rng.create_stream seed ~stream:0] = [Rng.create seed]) — so
    single-shard traces reproduce unsharded ones byte for byte.

    Determinism contract: same [seed], [shards], [lookahead], and
    program ⇒ identical event orders on every shard and identical
    results, independent of domain scheduling. Shard RNG streams are
    decorrelated per shard, window boundaries derive only from virtual
    time, and merged messages are ordered by (arrival time, source
    shard, source sequence). *)
val run_sharded :
  ?seed:int ->
  ?until:float ->
  ?init:(shard:int -> unit) ->
  shards:int ->
  lookahead:float ->
  (unit -> 'a) ->
  'a

(** [now ()] is the current virtual time in microseconds.
    @raise Invalid_argument outside of {!run}. *)
val now : unit -> float

(** [rng ()] is the calling shard's generator. *)
val rng : unit -> Rng.t

(** [sleep dt] suspends the calling fiber for [dt] microseconds
    (clamped to 0). *)
val sleep : float -> unit

(** [yield ()] reschedules the calling fiber at the current time,
    letting other ready fibers run first. *)
val yield : unit -> unit

(** A resumer: call it exactly once to wake the suspended fiber with a
    value. Calling it twice raises [Invalid_argument]. *)
type 'a resumer = 'a -> unit

(** [suspend register] parks the calling fiber and hands a {!resumer}
    to [register]. The fiber resumes (at the virtual time of the
    resumer call) with the value passed to the resumer. *)
val suspend : ('a resumer -> unit) -> 'a

(** [spawn ?at f] schedules [f] as a new fiber of the calling shard at
    time [at] (default now). Exceptions escaping a fiber abort the
    whole simulation: they are re-raised from {!run}.
    @raise Invalid_argument if [at] is in the past — a fiber cannot
    start before the clock. *)
val spawn : ?at:float -> (unit -> unit) -> unit

(** [fiber_id ()] identifies the calling fiber; ids are unique within
    a shard. The main fiber has id 0. *)
val fiber_id : unit -> int

(** [schedule ~after f] runs the thunk [f] (not a fiber: it must not
    sleep or suspend) after [after] microseconds, on the calling
    shard. *)
val schedule : after:float -> (unit -> unit) -> unit

(** [post ~shard ?after f] runs the thunk [f] (not a fiber — spawn
    from inside it for fiber work) on shard [shard] after [after] µs
    (default: the lookahead). Same-shard posts are plain {!schedule}s.
    Cross-shard posts become timestamped messages delivered at the
    next merge barrier; they require [after >= lookahead] — the
    conservative-synchronization contract.
    @raise Invalid_argument on an unknown shard or an [after] below
    the lookahead for a cross-shard post. *)
val post : shard:int -> ?after:float -> (unit -> unit) -> unit

(** [shard_id ()] is the calling shard's index; 0 under plain {!run}. *)
val shard_id : unit -> int

(** [shard_count ()] is the number of shards in the running world; 1
    under plain {!run}. *)
val shard_count : unit -> int

(** [lookahead ()] is the running world's lookahead window in µs; 0
    under plain {!run}. *)
val lookahead : unit -> float

(** [events_dispatched ()] is the number of events the calling shard
    has dispatched so far — the numerator of the events-per-wall-second
    throughput metric the bench suite gates on.
    @raise Invalid_argument outside of {!run}. *)
val events_dispatched : unit -> int

(** [run_count ()] is the number of simulation worlds ever started in
    this process (incremented at the top of each {!run}). Unlike the
    other accessors it is usable outside a run. Global registries such
    as {!Metrics} and {!Span} use it to reset themselves lazily at the
    start of a new run while staying readable after a run ends. *)
val run_count : unit -> int

(** {2 Post-run shard statistics}

    Readable after {!run}/{!run_sharded} returns (or raises); they
    describe the most recently finished run. *)

type shard_stat = {
  sh_shard : int;
  sh_events : int;  (** events dispatched by this shard *)
  sh_msgs_out : int;  (** cross-shard messages sent *)
  sh_msgs_in : int;  (** cross-shard messages delivered *)
  sh_stall_s : float;
      (** real seconds this shard's domain spent waiting at merge
          barriers — the lookahead-efficiency signal *)
}

(** One entry per shard (a single entry after plain {!run}). *)
val last_shard_stats : unit -> shard_stat array

(** Number of synchronization windows the last sharded run used (0
    after plain {!run}). *)
val last_windows : unit -> int
