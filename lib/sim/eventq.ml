(* Flat event queue: a binary min-heap over parallel unboxed arrays
   (float times, int seqs, thunk slots) plus an "immediate lane" — a
   FIFO ring for events scheduled at the current virtual time, the
   calendar-queue layer that absorbs the resume/yield storms dominating
   timer-light workloads.

   Order contract: events dispatch in strict (time, seq) order, exactly
   as a single heap would. The lane is sound because lane entries carry
   the clock at push time, the clock never decreases, and the clock
   cannot advance past a pending lane entry (dispatch always takes the
   global (time, seq) minimum of lane front vs heap top). So lane
   times are non-decreasing front-to-back and lane seqs at equal times
   are FIFO — the ring IS sorted.

   No [option], no entry records: a push stores three scalars, a pop
   reads them back. [noop] is the sentinel thunk for empty slots so
   popped closures don't outlive their event. *)

type t = {
  mutable ht : float array;  (* heap: times *)
  mutable hs : int array;  (* heap: seqs *)
  mutable hk : (unit -> unit) array;  (* heap: thunks *)
  mutable hlen : int;
  mutable lt : float array;  (* lane ring: times *)
  mutable ls : int array;  (* lane ring: seqs *)
  mutable lk : (unit -> unit) array;  (* lane ring: thunks *)
  mutable lhead : int;
  mutable llen : int;
}

let noop () = ()

let create ?(capacity = 256) () =
  let cap = max 16 capacity in
  {
    ht = Array.make cap 0.;
    hs = Array.make cap 0;
    hk = Array.make cap noop;
    hlen = 0;
    lt = Array.make cap 0.;
    ls = Array.make cap 0;
    lk = Array.make cap noop;
    lhead = 0;
    llen = 0;
  }

let size q = q.hlen + q.llen
let is_empty q = q.hlen = 0 && q.llen = 0

let grow_heap q =
  let old = Array.length q.ht in
  let cap = 2 * old in
  let ht = Array.make cap 0. and hs = Array.make cap 0 and hk = Array.make cap noop in
  Array.blit q.ht 0 ht 0 q.hlen;
  Array.blit q.hs 0 hs 0 q.hlen;
  Array.blit q.hk 0 hk 0 q.hlen;
  q.ht <- ht;
  q.hs <- hs;
  q.hk <- hk

(* Ring capacity stays a power of two so the index mask is a [land]. *)
let grow_lane q =
  let old = Array.length q.lt in
  let cap = 2 * old in
  let lt = Array.make cap 0. and ls = Array.make cap 0 and lk = Array.make cap noop in
  let mask = old - 1 in
  for i = 0 to q.llen - 1 do
    let j = (q.lhead + i) land mask in
    lt.(i) <- q.lt.(j);
    ls.(i) <- q.ls.(j);
    lk.(i) <- q.lk.(j)
  done;
  q.lt <- lt;
  q.ls <- ls;
  q.lk <- lk;
  q.lhead <- 0

(* Heap push: bubble the hole up instead of swapping, one write per
   level plus the final triple store. *)
let push q time seq thunk =
  if q.hlen = Array.length q.ht then grow_heap q;
  let ht = q.ht and hs = q.hs and hk = q.hk in
  let i = ref q.hlen in
  q.hlen <- q.hlen + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = Array.unsafe_get ht p in
    if pt < time || (pt = time && Array.unsafe_get hs p < seq) then stop := true
    else begin
      Array.unsafe_set ht !i pt;
      Array.unsafe_set hs !i (Array.unsafe_get hs p);
      Array.unsafe_set hk !i (Array.unsafe_get hk p);
      i := p
    end
  done;
  Array.unsafe_set ht !i time;
  Array.unsafe_set hs !i seq;
  Array.unsafe_set hk !i thunk

(* Lane push: [time] must be >= the time of every entry already in the
   lane and [seq] greater than theirs at equal time — both hold by
   construction when the caller pushes at the current clock with a
   monotonic sequence counter. *)
let push_now q time seq thunk =
  if q.llen = Array.length q.lt then grow_lane q;
  let at = (q.lhead + q.llen) land (Array.length q.lt - 1) in
  Array.unsafe_set q.lt at time;
  Array.unsafe_set q.ls at seq;
  Array.unsafe_set q.lk at thunk;
  q.llen <- q.llen + 1

(* True when the next event in (time, seq) order sits in the lane. *)
let next_is_lane q =
  q.llen > 0
  && (q.hlen = 0
     ||
     let lf = q.lhead in
     let ht0 = Array.unsafe_get q.ht 0 and lt0 = Array.unsafe_get q.lt lf in
     ht0 > lt0 || (ht0 = lt0 && Array.unsafe_get q.hs 0 > Array.unsafe_get q.ls lf))

let pop_lane q =
  let i = q.lhead in
  let thunk = Array.unsafe_get q.lk i in
  Array.unsafe_set q.lk i noop;
  q.lhead <- (i + 1) land (Array.length q.lt - 1);
  q.llen <- q.llen - 1;
  thunk

let pop_heap q =
  let ht = q.ht and hs = q.hs and hk = q.hk in
  let thunk = Array.unsafe_get hk 0 in
  let len = q.hlen - 1 in
  q.hlen <- len;
  let time = Array.unsafe_get ht len in
  let seq = Array.unsafe_get hs len in
  let last = Array.unsafe_get hk len in
  Array.unsafe_set hk len noop;
  if len > 0 then begin
    (* Sift the displaced last entry down from the root, again bubbling
       the hole. *)
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 in
      if l >= len then stop := true
      else begin
        let r = l + 1 in
        let c =
          if r < len then begin
            let ltm = Array.unsafe_get ht l and rtm = Array.unsafe_get ht r in
            if rtm < ltm || (rtm = ltm && Array.unsafe_get hs r < Array.unsafe_get hs l) then r
            else l
          end
          else l
        in
        let ct = Array.unsafe_get ht c in
        if ct < time || (ct = time && Array.unsafe_get hs c < seq) then begin
          Array.unsafe_set ht !i ct;
          Array.unsafe_set hs !i (Array.unsafe_get hs c);
          Array.unsafe_set hk !i (Array.unsafe_get hk c);
          i := c
        end
        else stop := true
      end
    done;
    Array.unsafe_set ht !i time;
    Array.unsafe_set hs !i seq;
    Array.unsafe_set hk !i last
  end;
  thunk

(* Convenience forms for tests and benches; the engine's dispatch loop
   inlines the lane/heap choice to keep time reads unboxed. *)
let pop q = if next_is_lane q then pop_lane q else pop_heap q

let next_time q =
  if is_empty q then invalid_arg "Eventq.next_time: empty queue"
  else if next_is_lane q then q.lt.(q.lhead)
  else q.ht.(0)
