(* Banded event queue: the engine's dispatch structure, organised as
   four time bands so every push and pop stays allocation-free and the
   common operations stay O(1):

     lane      events at the current clock — a FIFO ring (unchanged
               from the flat-heap design; it absorbs resume/yield
               storms, the bulk of timer-light workloads)
     heap      the near band: a binary min-heap over parallel unboxed
               arrays holding every pending event with time < wfloor
     wheel     a calendar queue / timer wheel: [wheel_slots] buckets of
               [wheel_g] µs covering [wfloor, wlimit); a push is an
               O(1) append to its bucket
     far       the far-future band: a second min-heap for everything
               past the wheel horizon (measurement windows, timeouts,
               think times)

   Order contract (unchanged): events dispatch in strict (time, seq)
   order, exactly as a single heap would. The wheel and far band are
   sound because every event they hold has time >= wfloor, every heap
   event has time < wfloor, and lane entries carry push-time clocks
   that never exceed the current dispatch time — so the global minimum
   always sits in the lane or the heap. [refill] maintains that
   invariant: when both are empty it advances the wheel window,
   dumping one bucket at a time (and any far events that fall before
   the advancing edge) into the heap, where (time, seq) heap order
   restores the exact dispatch sequence.

   No [option], no entry records: a push stores three scalars, a pop
   reads them back. [noop] is the sentinel thunk for empty slots so
   popped closures don't outlive their event. *)

type t = {
  (* near heap *)
  mutable ht : float array;  (* times *)
  mutable hs : int array;  (* seqs *)
  mutable hk : (unit -> unit) array;  (* thunks *)
  mutable hlen : int;
  (* immediate lane ring *)
  mutable lt : float array;
  mutable ls : int array;
  mutable lk : (unit -> unit) array;
  mutable lhead : int;
  mutable llen : int;
  (* timer wheel *)
  mutable wcur : int;  (* absolute bucket index at the window base *)
  wfl : float array;  (* 2 slots: window [floor; limit) — a float-array
                         store stays unboxed, unlike a mutable float
                         field in this mixed record *)
  mutable wcount : int;  (* events currently in the wheel *)
  wbt : float array array;  (* per-slot times *)
  wbs : int array array;  (* per-slot seqs *)
  wbk : (unit -> unit) array array;  (* per-slot thunks *)
  wblen : int array;
  (* far-future heap *)
  mutable ft : float array;
  mutable fs : int array;
  mutable fk : (unit -> unit) array;
  mutable flen : int;
}

let wheel_slots = 256
let wheel_mask = wheel_slots - 1

(* 64 µs buckets cover a 16.4 ms window — wide enough that RPC-scale
   delays land in the wheel while measurement sleeps overflow to the
   far band. *)
let wheel_g = 64.

let noop () = ()

let empty_f : float array = [||]
let empty_i : int array = [||]
let empty_k : (unit -> unit) array = [||]

let create ?(capacity = 256) () =
  let cap = max 16 capacity in
  {
    ht = Array.make cap 0.;
    hs = Array.make cap 0;
    hk = Array.make cap noop;
    hlen = 0;
    lt = Array.make cap 0.;
    ls = Array.make cap 0;
    lk = Array.make cap noop;
    lhead = 0;
    llen = 0;
    wcur = 0;
    wfl = [| 0.; wheel_g *. float_of_int wheel_slots |];
    wcount = 0;
    (* Buckets allocate lazily on first use: a queue that never pushes
       past the near band costs three empty-array pointers per slot. *)
    wbt = Array.make wheel_slots empty_f;
    wbs = Array.make wheel_slots empty_i;
    wbk = Array.make wheel_slots empty_k;
    wblen = Array.make wheel_slots 0;
    ft = Array.make cap 0.;
    fs = Array.make cap 0;
    fk = Array.make cap noop;
    flen = 0;
  }

let size q = q.hlen + q.llen + q.wcount + q.flen
let is_empty q = q.hlen = 0 && q.llen = 0 && q.wcount = 0 && q.flen = 0

(* -- near heap --------------------------------------------------------- *)

let grow_heap q =
  let old = Array.length q.ht in
  let cap = 2 * old in
  let ht = Array.make cap 0. and hs = Array.make cap 0 and hk = Array.make cap noop in
  Array.blit q.ht 0 ht 0 q.hlen;
  Array.blit q.hs 0 hs 0 q.hlen;
  Array.blit q.hk 0 hk 0 q.hlen;
  q.ht <- ht;
  q.hs <- hs;
  q.hk <- hk

(* Heap push: bubble the hole up instead of swapping, one write per
   level plus the final triple store. Inlined into callers so the
   [time] float never crosses a call boundary boxed — the bucket-dump
   and far-migration loops must stay allocation-free. *)
let[@inline always] heap_push q time seq thunk =
  if q.hlen = Array.length q.ht then grow_heap q;
  let ht = q.ht and hs = q.hs and hk = q.hk in
  let i = ref q.hlen in
  q.hlen <- q.hlen + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = Array.unsafe_get ht p in
    if pt < time || (pt = time && Array.unsafe_get hs p < seq) then stop := true
    else begin
      Array.unsafe_set ht !i pt;
      Array.unsafe_set hs !i (Array.unsafe_get hs p);
      Array.unsafe_set hk !i (Array.unsafe_get hk p);
      i := p
    end
  done;
  Array.unsafe_set ht !i time;
  Array.unsafe_set hs !i seq;
  Array.unsafe_set hk !i thunk

let pop_heap q =
  let ht = q.ht and hs = q.hs and hk = q.hk in
  let thunk = Array.unsafe_get hk 0 in
  let len = q.hlen - 1 in
  q.hlen <- len;
  let time = Array.unsafe_get ht len in
  let seq = Array.unsafe_get hs len in
  let last = Array.unsafe_get hk len in
  Array.unsafe_set hk len noop;
  if len > 0 then begin
    (* Sift the displaced last entry down from the root, again bubbling
       the hole. *)
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 in
      if l >= len then stop := true
      else begin
        let r = l + 1 in
        let c =
          if r < len then begin
            let ltm = Array.unsafe_get ht l and rtm = Array.unsafe_get ht r in
            if rtm < ltm || (rtm = ltm && Array.unsafe_get hs r < Array.unsafe_get hs l) then r
            else l
          end
          else l
        in
        let ct = Array.unsafe_get ht c in
        if ct < time || (ct = time && Array.unsafe_get hs c < seq) then begin
          Array.unsafe_set ht !i ct;
          Array.unsafe_set hs !i (Array.unsafe_get hs c);
          Array.unsafe_set hk !i (Array.unsafe_get hk c);
          i := c
        end
        else stop := true
      end
    done;
    Array.unsafe_set ht !i time;
    Array.unsafe_set hs !i seq;
    Array.unsafe_set hk !i last
  end;
  thunk

(* -- far heap: same shape, its own arrays ------------------------------ *)

let grow_far q =
  let old = Array.length q.ft in
  let cap = 2 * old in
  let ft = Array.make cap 0. and fs = Array.make cap 0 and fk = Array.make cap noop in
  Array.blit q.ft 0 ft 0 q.flen;
  Array.blit q.fs 0 fs 0 q.flen;
  Array.blit q.fk 0 fk 0 q.flen;
  q.ft <- ft;
  q.fs <- fs;
  q.fk <- fk

let far_push q time seq thunk =
  if q.flen = Array.length q.ft then grow_far q;
  let ft = q.ft and fs = q.fs and fk = q.fk in
  let i = ref q.flen in
  q.flen <- q.flen + 1;
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = Array.unsafe_get ft p in
    if pt < time || (pt = time && Array.unsafe_get fs p < seq) then stop := true
    else begin
      Array.unsafe_set ft !i pt;
      Array.unsafe_set fs !i (Array.unsafe_get fs p);
      Array.unsafe_set fk !i (Array.unsafe_get fk p);
      i := p
    end
  done;
  Array.unsafe_set ft !i time;
  Array.unsafe_set fs !i seq;
  Array.unsafe_set fk !i thunk

(* Pop the far minimum straight into the near heap — no intermediate
   tuple, no allocation. *)
let far_min_to_heap q =
  let ft = q.ft and fs = q.fs and fk = q.fk in
  heap_push q (Array.unsafe_get ft 0) (Array.unsafe_get fs 0) (Array.unsafe_get fk 0);
  let len = q.flen - 1 in
  q.flen <- len;
  let time = Array.unsafe_get ft len in
  let seq = Array.unsafe_get fs len in
  let last = Array.unsafe_get fk len in
  Array.unsafe_set fk len noop;
  if len > 0 then begin
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 in
      if l >= len then stop := true
      else begin
        let r = l + 1 in
        let c =
          if r < len then begin
            let ltm = Array.unsafe_get ft l and rtm = Array.unsafe_get ft r in
            if rtm < ltm || (rtm = ltm && Array.unsafe_get fs r < Array.unsafe_get fs l) then r
            else l
          end
          else l
        in
        let ct = Array.unsafe_get ft c in
        if ct < time || (ct = time && Array.unsafe_get fs c < seq) then begin
          Array.unsafe_set ft !i ct;
          Array.unsafe_set fs !i (Array.unsafe_get fs c);
          Array.unsafe_set fk !i (Array.unsafe_get fk c);
          i := c
        end
        else stop := true
      end
    done;
    Array.unsafe_set ft !i time;
    Array.unsafe_set fs !i seq;
    Array.unsafe_set fk !i last
  end

(* -- wheel ------------------------------------------------------------- *)

let grow_bucket q slot =
  let old = Array.length q.wbt.(slot) in
  let cap = if old = 0 then 16 else 2 * old in
  let bt = Array.make cap 0. and bs = Array.make cap 0 and bk = Array.make cap noop in
  let n = q.wblen.(slot) in
  Array.blit q.wbt.(slot) 0 bt 0 n;
  Array.blit q.wbs.(slot) 0 bs 0 n;
  Array.blit q.wbk.(slot) 0 bk 0 n;
  q.wbt.(slot) <- bt;
  q.wbs.(slot) <- bs;
  q.wbk.(slot) <- bk

let wheel_push q time seq thunk =
  (* The bucket index is recovered from absolute time; clamping to
     [wcur] guards the float-division round-off at the window base
     (moving an event to an *earlier* bucket is always sound — the
     near heap re-sorts — while a later bucket would dispatch late). *)
  let b = int_of_float (time /. wheel_g) in
  let b = if b < q.wcur then q.wcur else b in
  let b = if b >= q.wcur + wheel_slots then q.wcur + wheel_slots - 1 else b in
  let slot = b land wheel_mask in
  let n = q.wblen.(slot) in
  if n = Array.length q.wbt.(slot) then grow_bucket q slot;
  Array.unsafe_set q.wbt.(slot) n time;
  Array.unsafe_set q.wbs.(slot) n seq;
  Array.unsafe_set q.wbk.(slot) n thunk;
  q.wblen.(slot) <- n + 1;
  q.wcount <- q.wcount + 1

(* Advance the window one bucket: first drain far events that fall
   before the advancing edge (they may predate wheel entries in the
   bucket), then dump the bucket itself into the near heap. *)
let advance_one q =
  let edge = wheel_g *. float_of_int (q.wcur + 1) in
  while q.flen > 0 && Array.unsafe_get q.ft 0 < edge do
    far_min_to_heap q
  done;
  let slot = q.wcur land wheel_mask in
  let n = q.wblen.(slot) in
  if n > 0 then begin
    let bt = q.wbt.(slot) and bs = q.wbs.(slot) and bk = q.wbk.(slot) in
    for i = 0 to n - 1 do
      heap_push q (Array.unsafe_get bt i) (Array.unsafe_get bs i) (Array.unsafe_get bk i)
    done;
    Array.fill bk 0 n noop;
    q.wblen.(slot) <- 0;
    q.wcount <- q.wcount - n
  end;
  q.wcur <- q.wcur + 1;
  Array.unsafe_set q.wfl 0 (wheel_g *. float_of_int q.wcur);
  Array.unsafe_set q.wfl 1 (wheel_g *. float_of_int (q.wcur + wheel_slots))

(* Restore the dispatch invariant (near heap non-empty) by sliding the
   wheel window forward. Caller guarantees there is something in the
   wheel or the far band. An empty wheel jumps the window straight to
   the far minimum instead of crawling bucket by bucket. *)
let refill q =
  while q.hlen = 0 do
    if q.wcount = 0 then begin
      let fmin = Array.unsafe_get q.ft 0 in
      if fmin >= Array.unsafe_get q.wfl 1 then begin
        let b = int_of_float (fmin /. wheel_g) in
        let b = if b < q.wcur then q.wcur else b in
        q.wcur <- b;
        Array.unsafe_set q.wfl 0 (wheel_g *. float_of_int b);
        Array.unsafe_set q.wfl 1 (wheel_g *. float_of_int (b + wheel_slots))
      end
    end;
    advance_one q
  done

(* -- public push ------------------------------------------------------- *)

let push q time seq thunk =
  if time < Array.unsafe_get q.wfl 0 then heap_push q time seq thunk
  else if time < Array.unsafe_get q.wfl 1 then wheel_push q time seq thunk
  else far_push q time seq thunk

(* Ring capacity stays a power of two so the index mask is a [land]. *)
let grow_lane q =
  let old = Array.length q.lt in
  let cap = 2 * old in
  let lt = Array.make cap 0. and ls = Array.make cap 0 and lk = Array.make cap noop in
  let mask = old - 1 in
  for i = 0 to q.llen - 1 do
    let j = (q.lhead + i) land mask in
    lt.(i) <- q.lt.(j);
    ls.(i) <- q.ls.(j);
    lk.(i) <- q.lk.(j)
  done;
  q.lt <- lt;
  q.ls <- ls;
  q.lk <- lk;
  q.lhead <- 0

(* Lane push: [time] must be >= the time of every entry already in the
   lane and [seq] greater than theirs at equal time — both hold by
   construction when the caller pushes at the current clock with a
   monotonic sequence counter. *)
let push_now q time seq thunk =
  if q.llen = Array.length q.lt then grow_lane q;
  let at = (q.lhead + q.llen) land (Array.length q.lt - 1) in
  Array.unsafe_set q.lt at time;
  Array.unsafe_set q.ls at seq;
  Array.unsafe_set q.lk at thunk;
  q.llen <- q.llen + 1

(* -- dispatch ---------------------------------------------------------- *)

(* The near bands (lane + heap) are allowed to miss the global minimum
   only while every wheel/far event provably sorts after the lane
   front: wheel and far times are >= wfloor, so [wfloor > lane front]
   certifies the lane. Otherwise — near heap empty, window not yet
   past the lane front — slide the window until the heap can speak for
   the wheel. In steady state the dumped bucket keeps wfloor just
   ahead of the clock, so this almost never fires while the lane is
   busy. *)
let refill_needed q =
  q.hlen = 0
  && (q.wcount > 0 || q.flen > 0)
  && (q.llen = 0 || Array.unsafe_get q.wfl 0 <= Array.unsafe_get q.lt q.lhead)

(* Time of the next event in dispatch order. Slides the wheel window
   when needed — the one mutating accessor the dispatch loop calls;
   after it returns, the next event is guaranteed to sit in the lane
   or the near heap. *)
let[@inline always] next_time_unboxed q =
  if refill_needed q then refill q
  else if q.hlen = 0 && q.llen = 0 then invalid_arg "Eventq.next_time: empty queue";
  if q.llen = 0 then Array.unsafe_get q.ht 0
  else if q.hlen = 0 then Array.unsafe_get q.lt q.lhead
  else begin
    let lf = q.lhead in
    let ht0 = Array.unsafe_get q.ht 0 and lt0 = Array.unsafe_get q.lt lf in
    if ht0 > lt0 || (ht0 = lt0 && Array.unsafe_get q.hs 0 > Array.unsafe_get q.ls lf) then lt0
    else ht0
  end

let next_time q = next_time_unboxed q

(* Allocation-free peek for the engine's dispatch loop: store the next
   event time into [dst.(0)]. A plain [next_time] call returns a
   *boxed* float across the module boundary (dev builds compile with
   -opaque, so cross-module inlining cannot unbox it); a float-array
   store stays unboxed. *)
let next_time_into q dst = Array.unsafe_set dst 0 (next_time_unboxed q)

(* True when the (time, seq)-minimum pending event sits in the lane.
   Meaningful only when the queue is non-empty and the near bands hold
   the minimum — i.e. after {!next_time}. *)
let next_is_lane q =
  q.llen > 0
  && (q.hlen = 0
     ||
     let lf = q.lhead in
     let ht0 = Array.unsafe_get q.ht 0 and lt0 = Array.unsafe_get q.lt lf in
     ht0 > lt0 || (ht0 = lt0 && Array.unsafe_get q.hs 0 > Array.unsafe_get q.ls lf))

let pop_lane q =
  let i = q.lhead in
  let thunk = Array.unsafe_get q.lk i in
  Array.unsafe_set q.lk i noop;
  q.lhead <- (i + 1) land (Array.length q.lt - 1);
  q.llen <- q.llen - 1;
  thunk

(* Convenience form for tests and benches; the engine's dispatch loop
   calls next_time (which refills) and then the band-specific pop. *)
let pop q =
  if refill_needed q then refill q
  else if q.hlen = 0 && q.llen = 0 then invalid_arg "Eventq.pop: empty queue";
  if next_is_lane q then pop_lane q else pop_heap q
