(* Log-scale bucket layout: bucket 0 is underflow (v <= lo); buckets
   1..n_log cover [lo, lo * 10^(n_log/10)) at 10 buckets per decade;
   the last bucket is overflow. lo = 0.1 µs and 9 decades reach 100 s,
   far past any virtual latency the simulation produces. *)
let bucket_lo = 0.1
let n_log = 90
let n_buckets = n_log + 2

let bucket_bound i =
  (* Upper bound of bucket [i] for i in 0..n_log; the overflow bucket
     has no finite bound. *)
  if i = 0 then bucket_lo else bucket_lo *. (10. ** (float_of_int i /. 10.))

let bucket_index v =
  if v <= bucket_lo then 0
  else
    let i = 1 + int_of_float (Float.floor (10. *. Float.log10 (v /. bucket_lo))) in
    if i > n_log then n_log + 1 else if i < 1 then 1 else i

type key = { k_name : string; k_host : string option }

type counter = { c_key : key; c_born : int; mutable c_n : int }
type gauge = { g_key : key; g_born : int; mutable g_v : float }

type histogram = {
  h_key : key;
  h_born : int;
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type series = {
  s_key : string;
  mutable ts : float array;
  mutable vs : float array;
  mutable s_n : int;
}

let series_cap = 200_000

type tracked = { tr : Resource.t; mutable last_busy : float }

type state = {
  born : int;
  counters : (key, counter) Hashtbl.t;
  gauges : (key, gauge) Hashtbl.t;
  hists : (key, histogram) Hashtbl.t;
  series : (string, series) Hashtbl.t;
  mutable tracked : tracked list;  (* reverse registration order *)
  mutable sampler_on : bool;
}

let fresh ~born =
  {
    born;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 32;
    series = Hashtbl.create 32;
    tracked = [];
    sampler_on = false;
  }

let current = ref (fresh ~born:0)

let state () =
  let rc = Engine.run_count () in
  if !current.born <> rc then current := fresh ~born:rc;
  !current

let reset () = current := fresh ~born:(Engine.run_count ())

(* Stale-handle detection: a handle created in run N that is written in
   run M > N lands in a dead generation and is invisible to snapshots.
   Strict mode (tests) turns that silent loss into an exception. The
   check is a single flag branch when off — cheap enough for the
   zero-alloc hot paths that call [incr] per record. *)

exception Stale_handle of string

let strict = ref false
let set_strict b = strict := b

let handle_label key =
  match key.k_host with None -> key.k_name | Some h -> h ^ "." ^ key.k_name

let check_born born key =
  if born <> (state ()).born then raise (Stale_handle (handle_label key))

let host_string = function Some h -> h | None -> ""

(* -- counters ---------------------------------------------------------- *)

let counter ?host name =
  let st = state () in
  let key = { k_name = name; k_host = host } in
  match Hashtbl.find_opt st.counters key with
  | Some c -> c
  | None ->
      let c = { c_key = key; c_born = st.born; c_n = 0 } in
      Hashtbl.replace st.counters key c;
      c

let incr c =
  if !strict then check_born c.c_born c.c_key;
  c.c_n <- c.c_n + 1;
  if Flight.enabled () then
    Flight.record ~host:(host_string c.c_key.k_host) Flight.Metric ~name:c.c_key.k_name
      ~value:(float_of_int c.c_n)

let add c k =
  if !strict then check_born c.c_born c.c_key;
  c.c_n <- c.c_n + k;
  if Flight.enabled () then
    Flight.record ~host:(host_string c.c_key.k_host) Flight.Metric ~name:c.c_key.k_name
      ~value:(float_of_int c.c_n)

let counter_value c = c.c_n

(* -- gauges ------------------------------------------------------------ *)

let gauge ?host name =
  let st = state () in
  let key = { k_name = name; k_host = host } in
  match Hashtbl.find_opt st.gauges key with
  | Some g -> g
  | None ->
      let g = { g_key = key; g_born = st.born; g_v = 0. } in
      Hashtbl.replace st.gauges key g;
      g

let set_gauge g v =
  if !strict then check_born g.g_born g.g_key;
  g.g_v <- v;
  if Flight.enabled () then
    Flight.record ~host:(host_string g.g_key.k_host) Flight.Metric ~name:g.g_key.k_name ~value:v

let gauge_value g = g.g_v

(* -- histograms -------------------------------------------------------- *)

let histogram ?host name =
  let st = state () in
  let key = { k_name = name; k_host = host } in
  match Hashtbl.find_opt st.hists key with
  | Some h -> h
  | None ->
      let h =
        {
          h_key = key;
          h_born = st.born;
          buckets = Array.make n_buckets 0;
          n = 0;
          sum = 0.;
          vmin = infinity;
          vmax = neg_infinity;
        }
      in
      Hashtbl.replace st.hists key h;
      h

let observe h v =
  if !strict then check_born h.h_born h.h_key;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  if Flight.enabled () then
    Flight.record ~host:(host_string h.h_key.k_host) Flight.Metric ~name:h.h_key.k_name ~value:v

let time h f =
  let t0 = Engine.now () in
  Fun.protect ~finally:(fun () -> observe h (Engine.now () -. t0)) f

let hist_count h = h.n
let hist_mean h = if h.n = 0 then 0. else h.sum /. float_of_int h.n

let hist_percentile h p =
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg "Metrics.hist_percentile: p must be in [0, 100]";
  if h.n = 0 then 0.
  else begin
    let target = Stdlib.max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int h.n))) in
    let cum = ref 0 in
    let found = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= target then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    let est =
      if !found = 0 then bucket_lo
      else if !found > n_log then bucket_bound n_log
      else sqrt (bucket_bound (!found - 1) *. bucket_bound !found)
    in
    Float.min h.vmax (Float.max h.vmin est)
  end

(* -- registry introspection (Timeseries support) ----------------------- *)

let counter_name c = c.c_key.k_name
let counter_host c = c.c_key.k_host
let gauge_name g = g.g_key.k_name
let gauge_host g = g.g_key.k_host
let hist_name h = h.h_key.k_name
let hist_host h = h.h_key.k_host
let num_buckets = n_buckets

let hist_buckets_into h dst =
  if Array.length dst <> n_buckets then invalid_arg "Metrics.hist_buckets_into: wrong length";
  Array.blit h.buckets 0 dst 0 n_buckets

(* Percentile over a raw bucket-count array (a window delta of two
   [hist_buckets_into] snapshots). Same estimator as [hist_percentile]
   but with no observed min/max to clamp to; nan on an empty window. *)
let buckets_percentile counts ~total p =
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg "Metrics.buckets_percentile: p must be in [0, 100]";
  if Array.length counts <> n_buckets then
    invalid_arg "Metrics.buckets_percentile: wrong length";
  if total <= 0 then Float.nan
  else begin
    let target = Stdlib.max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int total))) in
    let cum = ref 0 in
    let found = ref (n_buckets - 1) in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + counts.(i);
         if !cum >= target then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !found = 0 then bucket_lo
    else if !found > n_log then bucket_bound n_log
    else sqrt (bucket_bound (!found - 1) *. bucket_bound !found)
  end

let sorted_handles tbl key_of =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> compare (key_of a) (key_of b))

let iter_handles ~on_counter ~on_gauge ~on_hist =
  let st = state () in
  List.iter on_counter (sorted_handles st.counters (fun c -> (c.c_key.k_name, c.c_key.k_host)));
  List.iter on_gauge (sorted_handles st.gauges (fun g -> (g.g_key.k_name, g.g_key.k_host)));
  List.iter on_hist (sorted_handles st.hists (fun h -> (h.h_key.k_name, h.h_key.k_host)))

(* -- series + sampler -------------------------------------------------- *)

let series_get st name =
  match Hashtbl.find_opt st.series name with
  | Some s -> s
  | None ->
      let s = { s_key = name; ts = Array.make 256 0.; vs = Array.make 256 0.; s_n = 0 } in
      Hashtbl.replace st.series name s;
      s

let series_add s t v =
  if s.s_n < series_cap then begin
    if s.s_n = Array.length s.ts then begin
      let grow a = Array.append a (Array.make (Array.length a) 0.) in
      s.ts <- grow s.ts;
      s.vs <- grow s.vs
    end;
    s.ts.(s.s_n) <- t;
    s.vs.(s.s_n) <- v;
    s.s_n <- s.s_n + 1
  end

let track_resource r =
  let st = state () in
  let rname = Resource.name r in
  if not (List.exists (fun t -> Resource.name t.tr = rname) st.tracked) then
    st.tracked <- { tr = r; last_busy = 0. } :: st.tracked

let sample st ~interval_us =
  let now = Engine.now () in
  List.iter
    (fun t ->
      let busy = Resource.busy_time t.tr in
      let util = (busy -. t.last_busy) /. (interval_us *. float_of_int (Resource.capacity t.tr)) in
      t.last_busy <- busy;
      let rname = Resource.name t.tr in
      series_add (series_get st ("util:" ^ rname)) now util;
      series_add (series_get st ("qlen:" ^ rname)) now (float_of_int (Resource.queue_length t.tr)))
    (List.rev st.tracked);
  let gauges = Hashtbl.fold (fun _ g acc -> g :: acc) st.gauges [] in
  let gauges =
    List.sort (fun a b -> compare (a.g_key.k_name, a.g_key.k_host) (b.g_key.k_name, b.g_key.k_host)) gauges
  in
  List.iter
    (fun g ->
      let label =
        match g.g_key.k_host with None -> g.g_key.k_name | Some h -> h ^ "." ^ g.g_key.k_name
      in
      series_add (series_get st ("gauge:" ^ label)) now g.g_v)
    gauges

let start_sampler ?(interval_us = 1000.) () =
  if interval_us <= 0. then invalid_arg "Metrics.start_sampler: interval must be positive";
  let st = state () in
  if not st.sampler_on then begin
    st.sampler_on <- true;
    Engine.spawn (fun () ->
        let rec loop () =
          Engine.sleep interval_us;
          (* A reset mid-run (tests) orphans this fiber; stop sampling
             into the dead generation. *)
          if !current == st then begin
            sample st ~interval_us;
            loop ()
          end
        in
        loop ())
  end

(* -- snapshots --------------------------------------------------------- *)

type counter_view = { c_name : string; c_host : string option; c_value : int }

type gauge_view = { g_name : string; g_host : string option; g_value : float }

type hist_view = {
  h_name : string;
  h_host : string option;
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_buckets : (float * int) list;
}

type series_view = { s_name : string; s_points : (float * float) array }

type snapshot = {
  counters : counter_view list;
  gauges : gauge_view list;
  histograms : hist_view list;
  series : series_view list;
}

let sorted_values tbl key_of =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> compare (key_of a) (key_of b))

let snapshot () =
  let st = state () in
  let counters =
    sorted_values st.counters (fun c -> (c.c_key.k_name, c.c_key.k_host))
    |> List.map (fun c -> { c_name = c.c_key.k_name; c_host = c.c_key.k_host; c_value = c.c_n })
  in
  let gauges =
    sorted_values st.gauges (fun g -> (g.g_key.k_name, g.g_key.k_host))
    |> List.map (fun g -> { g_name = g.g_key.k_name; g_host = g.g_key.k_host; g_value = g.g_v })
  in
  let histograms =
    sorted_values st.hists (fun h -> (h.h_key.k_name, h.h_key.k_host))
    |> List.map (fun h ->
           let buckets = ref [] in
           for i = n_buckets - 1 downto 0 do
             if h.buckets.(i) > 0 then begin
               let bound = if i > n_log then infinity else bucket_bound i in
               buckets := (bound, h.buckets.(i)) :: !buckets
             end
           done;
           {
             h_name = h.h_key.k_name;
             h_host = h.h_key.k_host;
             h_count = h.n;
             h_sum = h.sum;
             h_min = (if h.n = 0 then 0. else h.vmin);
             h_max = (if h.n = 0 then 0. else h.vmax);
             h_p50 = hist_percentile h 50.;
             h_p90 = hist_percentile h 90.;
             h_p99 = hist_percentile h 99.;
             h_buckets = !buckets;
           })
  in
  let series =
    sorted_values st.series (fun s -> s.s_key)
    |> List.map (fun s ->
           { s_name = s.s_key; s_points = Array.init s.s_n (fun i -> (s.ts.(i), s.vs.(i))) })
  in
  { counters; gauges; histograms; series }

let host_json = function None -> "null" | Some h -> Jout.str h

let counter_json c =
  Jout.obj
    [ ("name", Jout.str c.c_name); ("host", host_json c.c_host); ("value", string_of_int c.c_value) ]

let gauge_json g =
  Jout.obj [ ("name", Jout.str g.g_name); ("host", host_json g.g_host); ("value", Jout.flt g.g_value) ]

let hist_json h =
  Jout.obj
    [
      ("name", Jout.str h.h_name);
      ("host", host_json h.h_host);
      ("count", string_of_int h.h_count);
      ("sum_us", Jout.flt h.h_sum);
      ("min_us", Jout.flt h.h_min);
      ("max_us", Jout.flt h.h_max);
      ("p50_us", Jout.flt h.h_p50);
      ("p90_us", Jout.flt h.h_p90);
      ("p99_us", Jout.flt h.h_p99);
      ( "buckets",
        Jout.arr
          (List.map
             (fun (bound, n) ->
               Jout.obj [ ("le_us", Jout.flt bound); ("count", string_of_int n) ])
             h.h_buckets) );
    ]

let series_json s =
  Jout.obj
    [
      ("name", Jout.str s.s_name);
      ( "points",
        Jout.arr
          (Array.to_list s.s_points
          |> List.map (fun (t, v) -> Jout.arr [ Jout.flt t; Jout.flt v ])) );
    ]

let snapshot_json snap =
  Jout.obj
    [
      ("counters", Jout.arr (List.map counter_json snap.counters));
      ("gauges", Jout.arr (List.map gauge_json snap.gauges));
      ("histograms", Jout.arr (List.map hist_json snap.histograms));
      ("series", Jout.arr (List.map series_json snap.series));
    ]

let to_json () = snapshot_json (snapshot ())
