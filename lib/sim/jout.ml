let str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let flt v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 9.007199254740992e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let obj fields =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (str k);
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let arr items =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf v)
    items;
  Buffer.add_char buf ']';
  Buffer.contents buf
