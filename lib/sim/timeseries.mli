(** Windowed time-series aggregation: the streaming view of {!Metrics}.

    Where {!Metrics} answers "what happened over the whole run", this
    module answers "what is happening {e right now}": a ticker fiber
    seals fixed virtual-time windows and records, per window, counter
    {e rates}, gauge {e min/max/last}, histogram {e count/p50/p99}
    sketches (from bucket-count deltas), and derived {e lag watermark}
    probes — log tail vs. per-runtime applied position, trim-horizon
    lag, batcher sealed-queue age, sequencer grant backlog — each in a
    preallocated ring of the most recent [slots] windows.

    Determinism contract (same as {!Metrics}): sampling reads only the
    virtual clock and component state — no sleeps beyond the ticker's
    own, no randomness — so two same-seed runs produce byte-identical
    {!to_json} dumps. The ticker is a fiber and occupies event-queue
    slots, which is why it must be started explicitly ({!start}), like
    the {!Metrics} sampler.

    The store is global and engine-reset ({!Engine.run_count}), and
    stays readable after the run ends. {!Slo} monitors evaluate on the
    {!on_window_close} hook; the future auto-scaling controller reads
    the same rings. *)

(** [configure ?window_us ?subticks ?slots ()] sets the window length
    (default 10 000 µs), sub-samples per window (default 5 — gauge and
    probe min/max are sampled at [window_us / subticks] cadence), and
    ring capacity in windows (default 256). Must be called before the
    first tick of the run; raises [Invalid_argument] afterwards. *)
val configure : ?window_us:float -> ?subticks:int -> ?slots:int -> unit -> unit

(** [start ?window_us ?subticks ?track_metrics ()] spawns the ticker
    fiber (at most one per run; later calls are no-ops). When
    [track_metrics] (default true), every counter, gauge, and
    histogram currently registered in {!Metrics} is tracked — handles
    created later are not picked up automatically. Must be called
    inside {!Engine.run}. *)
val start : ?window_us:float -> ?subticks:int -> ?track_metrics:bool -> unit -> unit

(** [tick ()] advances the aggregation by one sub-tick, sealing a
    window every [subticks] calls. The ticker fiber calls this; it is
    exposed for tests and the [timeseries.tick] bench kernel. *)
val tick : unit -> unit

(** {2 Sources}

    Series are named ["<kind>:<host>.<name>"] (or ["<kind>:<name>"]
    without a host): [kind] is [counter] (column [rate], per second),
    [gauge] / [probe] (columns [min]/[max]/[last]), or [hist]
    (columns [count]/[p50]/[p99], percentiles in µs over the window's
    own observations). *)

val track_counter : Metrics.counter -> unit
val track_gauge : Metrics.gauge -> unit
val track_histogram : Metrics.histogram -> unit

(** Track every handle currently registered in {!Metrics} (sorted
    order, deterministic; duplicates are ignored). *)
val track_all_metrics : unit -> unit

(** [probe ?host name fn] registers a derived watermark: [fn] is
    called on every sub-tick and must only read component state.
    Re-registering an existing probe name replaces its function (a
    component re-created by reconfiguration takes over its series). *)
val probe : ?host:string -> string -> (unit -> float) -> unit

(** [on_window_close f] runs [f] after every sealed window, in
    registration order ({!Slo} evaluation hangs off this). *)
val on_window_close : (unit -> unit) -> unit

(** {2 Queries} *)

(** Number of sealed windows so far. *)
val windows : unit -> int

val window_us : unit -> float

(** A resolved (series, column) handle. Belongs to the current run. *)
type sel

val find : series:string -> col:string -> sel option

(** [window_value sel j] is the value of window [j] (0-based since run
    start); [nan] if the window predates the source, has been evicted
    from the ring, or is not yet sealed. *)
val window_value : sel -> int -> float

(** Latest sealed value; [nan] if none. *)
val last : sel -> float

(** Virtual start time of window [j]; [nan] if evicted. *)
val window_start : int -> float

val series_names : unit -> string list
val columns : string -> string array

(** Canonical JSON of all retained windows: [{"window_us": ...,
    "subticks": ..., "windows": ..., "from": ..., "starts": [...],
    "series": [{"name", "kind", "from", "cols": {...}}]}], series
    sorted by name. Byte-identical across two same-seed runs. *)
val to_json : unit -> string

(** Clear the store immediately (tests). *)
val reset : unit -> unit
