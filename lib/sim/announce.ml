(* Lightweight instrumentation bus for online temporal monitors.

   Producers in the corfu/tango layers announce protocol milestones
   (append acked, commit decided/applied, reconfig start/finish, fault
   inject/repair); spec machines in the harness subscribe and evaluate
   liveness/isolation properties in virtual time.  The bus is inert by
   default: producers guard every emission with [active ()], so a run
   with no subscribers allocates nothing on the hot path. *)

type event =
  | Append_acked of { client : string; offset : int; streams : int list }
  | Offset_readable of { client : string; offset : int }
  | Tx_begin of { client : string }
  | Tx_finish of { client : string; committed : bool }
  | Commit_decided of { client : string; pos : int; committed : bool }
  | Commit_applied of { client : string; pos : int }
  | Reconfig_started of { kind : string }
  | Reconfig_installed of { kind : string; epoch : int }
  | Fault_injected of { key : string }
  | Fault_repaired of { key : string }
  | Custom_fault of { name : string }

type state = { born : int; mutable subs : (event -> unit) array }

let fresh ~born = { born; subs = [||] }
let current = ref (fresh ~born:0)

let state () =
  let rc = Engine.run_count () in
  if !current.born <> rc then current := fresh ~born:rc;
  !current

let reset () = current := fresh ~born:(Engine.run_count ())

let subscribe f =
  let st = state () in
  st.subs <- Array.append st.subs [| f |]

let active () = Array.length (state ()).subs > 0

let emit ev =
  let st = state () in
  for i = 0 to Array.length st.subs - 1 do
    st.subs.(i) ev
  done
