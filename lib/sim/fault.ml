type verdict = Deliver of float | Drop

type action =
  | Crash of string
  | Restart of string
  | Partition of string list list
  | Heal
  | Degrade of { d_src : string; d_dst : string; d_drop : float; d_delay_us : float; d_jitter_us : float }
  | Clear_edge of string * string
  | Custom of string * (unit -> unit)

type event = { ev_time : float; ev_label : string }

type edge = { e_drop : float; e_delay_us : float; e_jitter_us : float }

type t = {
  frng : Rng.t;
  crashed : (string, unit) Hashtbl.t;
  mutable components : string list list;  (* [] = fully connected *)
  edges : (string * string, edge) Hashtbl.t;
  mutable log : event list;  (* newest first *)
}

let create ?(seed = 0) () =
  {
    frng = Rng.create seed;
    crashed = Hashtbl.create 8;
    components = [];
    edges = Hashtbl.create 8;
    log = [];
  }

let is_crashed t h = Hashtbl.mem t.crashed h

(* Hosts absent from every component share one implicit component, so a
   partition plan only has to name the minority side. *)
let component_of t h =
  let rec go i = function
    | [] -> -1
    | c :: rest -> if List.mem h c then i else go (i + 1) rest
  in
  go 0 t.components

let partitioned t a b =
  match t.components with [] -> false | _ -> component_of t a <> component_of t b

let edge_rule t src dst =
  match Hashtbl.find_opt t.edges (src, dst) with
  | Some e -> Some e
  | None -> (
      match Hashtbl.find_opt t.edges (src, "*") with
      | Some e -> Some e
      | None -> (
          match Hashtbl.find_opt t.edges ("*", dst) with
          | Some e -> Some e
          | None -> Hashtbl.find_opt t.edges ("*", "*")))

(* One verdict per message direction. The controller's own rng is drawn
   only when a matching edge rule needs randomness, so an installed but
   quiescent controller perturbs nothing. *)
let judge t ~src ~dst =
  if is_crashed t src || is_crashed t dst then Drop
  else if partitioned t src dst then Drop
  else
    match edge_rule t src dst with
    | None -> Deliver 0.
    | Some e ->
        if e.e_drop > 0. && Rng.bool t.frng e.e_drop then Drop
        else if e.e_jitter_us > 0. then Deliver (e.e_delay_us +. Rng.float t.frng e.e_jitter_us)
        else Deliver e.e_delay_us

let label = function
  | Crash h -> "crash " ^ h
  | Restart h -> "restart " ^ h
  | Partition cs -> "partition " ^ String.concat " | " (List.map (String.concat ",") cs)
  | Heal -> "heal"
  | Degrade { d_src; d_dst; d_drop; d_delay_us; d_jitter_us } ->
      Printf.sprintf "degrade %s->%s drop=%.3f delay=%.0f+%.0fus" d_src d_dst d_drop d_delay_us
        d_jitter_us
  | Clear_edge (s, d) -> Printf.sprintf "clear-edge %s->%s" s d
  | Custom (name, _) -> name

let host_of = function
  | Crash h | Restart h -> Some h
  | Degrade { d_src; _ } -> Some d_src
  | Partition _ | Heal | Clear_edge _ | Custom _ -> None

let apply t action =
  (match action with
  | Crash h -> Hashtbl.replace t.crashed h ()
  | Restart h -> Hashtbl.remove t.crashed h
  | Partition cs -> t.components <- cs
  | Heal -> t.components <- []
  | Degrade { d_src; d_dst; d_drop; d_delay_us; d_jitter_us } ->
      Hashtbl.replace t.edges (d_src, d_dst)
        { e_drop = d_drop; e_delay_us = d_delay_us; e_jitter_us = d_jitter_us }
  | Clear_edge (s, d) -> Hashtbl.remove t.edges (s, d)
  | Custom (_, run) -> run ());
  let what = label action in
  if Announce.active () then
    Announce.emit
      (match action with
      | Crash h -> Announce.Fault_injected { key = "crash:" ^ h }
      | Restart h -> Announce.Fault_repaired { key = "crash:" ^ h }
      | Partition _ -> Announce.Fault_injected { key = "partition" }
      | Heal -> Announce.Fault_repaired { key = "partition" }
      | Degrade { d_src; d_dst; _ } ->
          Announce.Fault_injected { key = "edge:" ^ d_src ^ ">" ^ d_dst }
      | Clear_edge (s, d) -> Announce.Fault_repaired { key = "edge:" ^ s ^ ">" ^ d }
      | Custom (name, _) -> Announce.Custom_fault { name });
  Metrics.incr (Metrics.counter ?host:(host_of action) "fault.injected");
  t.log <- { ev_time = Engine.now (); ev_label = what } :: t.log;
  if Flight.enabled () then
    Flight.record
      ~host:(match host_of action with Some h -> h | None -> "fault-plane")
      Flight.Fault ~name:what ~value:0.;
  Trace.f ?host:(host_of action) "fault" "%s" what

let crash t h = apply t (Crash h)
let restart t h = apply t (Restart h)
let partition t cs = apply t (Partition cs)
let heal t = apply t Heal

let degrade t ~src ~dst ?(drop = 0.) ?(delay_us = 0.) ?(jitter_us = 0.) () =
  apply t (Degrade { d_src = src; d_dst = dst; d_drop = drop; d_delay_us = delay_us; d_jitter_us = jitter_us })

let clear_edge t ~src ~dst = apply t (Clear_edge (src, dst))

let schedule t ~at action =
  Engine.schedule ~after:(Float.max 0. (at -. Engine.now ())) (fun () -> apply t action)

let plan t actions = List.iter (fun (at, action) -> schedule t ~at action) actions

let events t = List.rev t.log

(* ------------------------------------------------------------------ *)
(* Plans as data: equality, printing, serialization                   *)
(* ------------------------------------------------------------------ *)

let equal_action a b =
  match (a, b) with
  | Crash x, Crash y | Restart x, Restart y -> String.equal x y
  | Partition xs, Partition ys -> List.equal (List.equal String.equal) xs ys
  | Heal, Heal -> true
  | Degrade d1, Degrade d2 ->
      String.equal d1.d_src d2.d_src
      && String.equal d1.d_dst d2.d_dst
      && Float.equal d1.d_drop d2.d_drop
      && Float.equal d1.d_delay_us d2.d_delay_us
      && Float.equal d1.d_jitter_us d2.d_jitter_us
  | Clear_edge (s1, e1), Clear_edge (s2, e2) -> String.equal s1 s2 && String.equal e1 e2
  (* Custom thunks compare by name: the closure is rebound from the
     name when a serialized plan is rehydrated, so the name is the
     action's whole identity. *)
  | Custom (n1, _), Custom (n2, _) -> String.equal n1 n2
  | (Crash _ | Restart _ | Partition _ | Heal | Degrade _ | Clear_edge _ | Custom _), _ -> false

let pp_action ppf a = Format.pp_print_string ppf (label a)

let equal_plan p1 p2 =
  List.equal (fun (t1, a1) (t2, a2) -> Float.equal t1 t2 && equal_action a1 a2) p1 p2

let pp_plan ppf p =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (at, a) ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%10.1fus  %a" at pp_action a)
    p;
  Format.fprintf ppf "@]"

let plan_version = 1

(* Exact float round-trip: %.17g re-reads to the same double, so an
   encoded plan decodes to an [equal_plan] plan bit-for-bit. Virtual
   times are finite by construction. *)
let num v =
  if Float.is_integer v && Float.abs v < 9.007199254740992e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let encode_action = function
  | Crash h -> [ ("kind", Jout.str "crash"); ("host", Jout.str h) ]
  | Restart h -> [ ("kind", Jout.str "restart"); ("host", Jout.str h) ]
  | Partition cs ->
      [
        ("kind", Jout.str "partition");
        ("components", Jout.arr (List.map (fun c -> Jout.arr (List.map Jout.str c)) cs));
      ]
  | Heal -> [ ("kind", Jout.str "heal") ]
  | Degrade { d_src; d_dst; d_drop; d_delay_us; d_jitter_us } ->
      [
        ("kind", Jout.str "degrade");
        ("src", Jout.str d_src);
        ("dst", Jout.str d_dst);
        ("drop", num d_drop);
        ("delay_us", num d_delay_us);
        ("jitter_us", num d_jitter_us);
      ]
  | Clear_edge (s, d) ->
      [ ("kind", Jout.str "clear-edge"); ("src", Jout.str s); ("dst", Jout.str d) ]
  | Custom (name, _) -> [ ("kind", Jout.str "custom"); ("name", Jout.str name) ]

let encode_plan p =
  Jout.obj
    [
      ("version", string_of_int plan_version);
      ( "events",
        Jout.arr (List.map (fun (at, a) -> Jout.obj (("at", num at) :: encode_action a)) p) );
    ]

let unbound_custom name () =
  invalid_arg (Printf.sprintf "Fault: custom action %S has no bound thunk" name)

let decode_action ~custom v =
  let str k = Jin.to_string (Jin.member k v) in
  let flt k = Jin.to_float (Jin.member k v) in
  match str "kind" with
  | "crash" -> Crash (str "host")
  | "restart" -> Restart (str "host")
  | "partition" ->
      Partition
        (List.map
           (fun c -> List.map Jin.to_string (Jin.to_list c))
           (Jin.to_list (Jin.member "components" v)))
  | "heal" -> Heal
  | "degrade" ->
      Degrade
        {
          d_src = str "src";
          d_dst = str "dst";
          d_drop = flt "drop";
          d_delay_us = flt "delay_us";
          d_jitter_us = flt "jitter_us";
        }
  | "clear-edge" -> Clear_edge (str "src", str "dst")
  | "custom" ->
      let name = str "name" in
      Custom (name, custom name)
  | k -> invalid_arg (Printf.sprintf "Fault.decode_plan: unknown action kind %S" k)

let decode_plan_value ?(custom = unbound_custom) doc =
  let version = Jin.to_int (Jin.member "version" doc) in
  if version <> plan_version then
    invalid_arg
      (Printf.sprintf "Fault.decode_plan: plan version %d, this build reads %d" version
         plan_version);
  List.map
    (fun ev -> (Jin.to_float (Jin.member "at" ev), decode_action ~custom ev))
    (Jin.to_list (Jin.member "events" doc))

let decode_plan ?custom s = decode_plan_value ?custom (Jin.parse s)
