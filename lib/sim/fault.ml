type verdict = Deliver of float | Drop

type action =
  | Crash of string
  | Restart of string
  | Partition of string list list
  | Heal
  | Degrade of { d_src : string; d_dst : string; d_drop : float; d_delay_us : float; d_jitter_us : float }
  | Clear_edge of string * string
  | Custom of string * (unit -> unit)

type event = { ev_time : float; ev_label : string }

type edge = { e_drop : float; e_delay_us : float; e_jitter_us : float }

type t = {
  frng : Rng.t;
  crashed : (string, unit) Hashtbl.t;
  mutable components : string list list;  (* [] = fully connected *)
  edges : (string * string, edge) Hashtbl.t;
  mutable log : event list;  (* newest first *)
}

let create ?(seed = 0) () =
  {
    frng = Rng.create seed;
    crashed = Hashtbl.create 8;
    components = [];
    edges = Hashtbl.create 8;
    log = [];
  }

let is_crashed t h = Hashtbl.mem t.crashed h

(* Hosts absent from every component share one implicit component, so a
   partition plan only has to name the minority side. *)
let component_of t h =
  let rec go i = function
    | [] -> -1
    | c :: rest -> if List.mem h c then i else go (i + 1) rest
  in
  go 0 t.components

let partitioned t a b =
  match t.components with [] -> false | _ -> component_of t a <> component_of t b

let edge_rule t src dst =
  match Hashtbl.find_opt t.edges (src, dst) with
  | Some e -> Some e
  | None -> (
      match Hashtbl.find_opt t.edges (src, "*") with
      | Some e -> Some e
      | None -> (
          match Hashtbl.find_opt t.edges ("*", dst) with
          | Some e -> Some e
          | None -> Hashtbl.find_opt t.edges ("*", "*")))

(* One verdict per message direction. The controller's own rng is drawn
   only when a matching edge rule needs randomness, so an installed but
   quiescent controller perturbs nothing. *)
let judge t ~src ~dst =
  if is_crashed t src || is_crashed t dst then Drop
  else if partitioned t src dst then Drop
  else
    match edge_rule t src dst with
    | None -> Deliver 0.
    | Some e ->
        if e.e_drop > 0. && Rng.bool t.frng e.e_drop then Drop
        else if e.e_jitter_us > 0. then Deliver (e.e_delay_us +. Rng.float t.frng e.e_jitter_us)
        else Deliver e.e_delay_us

let label = function
  | Crash h -> "crash " ^ h
  | Restart h -> "restart " ^ h
  | Partition cs -> "partition " ^ String.concat " | " (List.map (String.concat ",") cs)
  | Heal -> "heal"
  | Degrade { d_src; d_dst; d_drop; d_delay_us; d_jitter_us } ->
      Printf.sprintf "degrade %s->%s drop=%.3f delay=%.0f+%.0fus" d_src d_dst d_drop d_delay_us
        d_jitter_us
  | Clear_edge (s, d) -> Printf.sprintf "clear-edge %s->%s" s d
  | Custom (name, _) -> name

let host_of = function
  | Crash h | Restart h -> Some h
  | Degrade { d_src; _ } -> Some d_src
  | Partition _ | Heal | Clear_edge _ | Custom _ -> None

let apply t action =
  (match action with
  | Crash h -> Hashtbl.replace t.crashed h ()
  | Restart h -> Hashtbl.remove t.crashed h
  | Partition cs -> t.components <- cs
  | Heal -> t.components <- []
  | Degrade { d_src; d_dst; d_drop; d_delay_us; d_jitter_us } ->
      Hashtbl.replace t.edges (d_src, d_dst)
        { e_drop = d_drop; e_delay_us = d_delay_us; e_jitter_us = d_jitter_us }
  | Clear_edge (s, d) -> Hashtbl.remove t.edges (s, d)
  | Custom (_, run) -> run ());
  let what = label action in
  Metrics.incr (Metrics.counter ?host:(host_of action) "fault.injected");
  t.log <- { ev_time = Engine.now (); ev_label = what } :: t.log;
  Trace.f ?host:(host_of action) "fault" "%s" what

let crash t h = apply t (Crash h)
let restart t h = apply t (Restart h)
let partition t cs = apply t (Partition cs)
let heal t = apply t Heal

let degrade t ~src ~dst ?(drop = 0.) ?(delay_us = 0.) ?(jitter_us = 0.) () =
  apply t (Degrade { d_src = src; d_dst = dst; d_drop = drop; d_delay_us = delay_us; d_jitter_us = jitter_us })

let clear_edge t ~src ~dst = apply t (Clear_edge (src, dst))

let schedule t ~at action =
  Engine.schedule ~after:(Float.max 0. (at -. Engine.now ())) (fun () -> apply t action)

let plan t actions = List.iter (fun (at, action) -> schedule t ~at action) actions

let events t = List.rev t.log
