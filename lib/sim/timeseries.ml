(* Fixed-window ring-buffer aggregation over the live Metrics registry
   plus derived lag-watermark probes. A ticker fiber samples sub-window
   accumulators and seals a window every [subticks] ticks; sealed
   column values land in preallocated per-source float-array rings
   (parallel arrays — a mixed record with mutable float fields would
   box every store). Recording reads only the virtual clock, so two
   same-seed runs dump byte-identical timeseries. *)

type kind = K_counter | K_gauge | K_hist | K_probe

let kind_name = function
  | K_counter -> "counter"
  | K_gauge -> "gauge"
  | K_hist -> "hist"
  | K_probe -> "probe"

let counter_cols = [| "rate" |]
let gauge_cols = [| "min"; "max"; "last" |]
let hist_cols = [| "count"; "p50"; "p99" |]

type src = {
  se_name : string;  (* "<kind>:<host>.<name>" — the registry key *)
  se_kind : kind;
  se_counter : Metrics.counter option;
  se_gauge : Metrics.gauge option;
  se_hist : Metrics.histogram option;
  mutable se_probe : unit -> float;  (* K_probe only *)
  se_prev_buckets : int array;  (* K_hist: bucket counts at window open *)
  se_delta : int array;  (* K_hist: scratch for the window delta *)
  se_acc : float array;  (* gauge/probe sub-tick accumulator: min, max, last *)
  mutable se_prev : int;  (* K_counter: value at window open *)
  mutable se_first_w : int;  (* first window this source participates in *)
  se_cols : string array;
  mutable se_rings : float array array;  (* one ring per column; [||] until first seal *)
}

type state = {
  born : int;
  mutable srcs : src array;
  mutable n : int;
  index : (string, src) Hashtbl.t;
  mutable slots : int;
  mutable window_us : float;
  mutable subticks : int;
  mutable starts : float array;  (* window-start ring; [||] until first window *)
  mutable w_count : int;  (* sealed windows *)
  mutable cur_start : float;  (* nan = no window open *)
  mutable sub_n : int;
  mutable ticker_on : bool;
  mutable closers : (unit -> unit) array;
}

let no_probe () = 0.

let fresh ~born =
  {
    born;
    srcs = Array.make 0 { se_name = ""; se_kind = K_probe; se_counter = None; se_gauge = None;
                          se_hist = None; se_probe = no_probe; se_prev_buckets = [||];
                          se_delta = [||]; se_acc = [||]; se_prev = 0; se_first_w = 0;
                          se_cols = [||]; se_rings = [||] };
    n = 0;
    index = Hashtbl.create 64;
    slots = 256;
    window_us = 10_000.;
    subticks = 5;
    starts = [||];
    w_count = 0;
    cur_start = Float.nan;
    sub_n = 0;
    ticker_on = false;
    closers = [||];
  }

let current = ref (fresh ~born:0)

let state () =
  let rc = Engine.run_count () in
  if !current.born <> rc then current := fresh ~born:rc;
  !current

let reset () = current := fresh ~born:(Engine.run_count ())

let configure ?window_us ?subticks ?slots () =
  let st = state () in
  if st.w_count > 0 || not (Float.is_nan st.cur_start) || st.ticker_on then
    invalid_arg "Timeseries.configure: already ticking";
  (match window_us with
  | Some w ->
      if w <= 0. then invalid_arg "Timeseries.configure: window must be positive"
      else st.window_us <- w
  | None -> ());
  (match subticks with
  | Some s ->
      if s <= 0 then invalid_arg "Timeseries.configure: subticks must be positive"
      else st.subticks <- s
  | None -> ());
  match slots with
  | Some s ->
      if s <= 0 then invalid_arg "Timeseries.configure: slots must be positive"
      else st.slots <- s
  | None -> ()

(* -- source registration ----------------------------------------------- *)

let reset_acc a =
  a.(0) <- infinity;
  a.(1) <- neg_infinity;
  a.(2) <- Float.nan

let label ~host name = match host with None -> name | Some h -> h ^ "." ^ name

let add_src st s =
  if Hashtbl.mem st.index s.se_name then ()
  else begin
    if st.n = Array.length st.srcs then begin
      let cap = Stdlib.max 16 (2 * st.n) in
      let bigger = Array.make cap s in
      Array.blit st.srcs 0 bigger 0 st.n;
      st.srcs <- bigger
    end;
    st.srcs.(st.n) <- s;
    st.n <- st.n + 1;
    Hashtbl.replace st.index s.se_name s
  end

let blank ~name ~kind ~cols =
  {
    se_name = name;
    se_kind = kind;
    se_counter = None;
    se_gauge = None;
    se_hist = None;
    se_probe = no_probe;
    se_prev_buckets = (if kind = K_hist then Array.make Metrics.num_buckets 0 else [||]);
    se_delta = (if kind = K_hist then Array.make Metrics.num_buckets 0 else [||]);
    se_acc = Array.make 3 Float.nan;
    se_prev = 0;
    se_first_w = 0;
    se_cols = cols;
    se_rings = [||];
  }

let track_counter c =
  let st = state () in
  let name = "counter:" ^ label ~host:(Metrics.counter_host c) (Metrics.counter_name c) in
  if not (Hashtbl.mem st.index name) then begin
    let s = { (blank ~name ~kind:K_counter ~cols:counter_cols) with se_counter = Some c } in
    s.se_prev <- Metrics.counter_value c;
    s.se_first_w <- st.w_count;
    add_src st s
  end

let track_gauge g =
  let st = state () in
  let name = "gauge:" ^ label ~host:(Metrics.gauge_host g) (Metrics.gauge_name g) in
  if not (Hashtbl.mem st.index name) then begin
    let s = { (blank ~name ~kind:K_gauge ~cols:gauge_cols) with se_gauge = Some g } in
    reset_acc s.se_acc;
    s.se_first_w <- st.w_count;
    add_src st s
  end

let track_histogram h =
  let st = state () in
  let name = "hist:" ^ label ~host:(Metrics.hist_host h) (Metrics.hist_name h) in
  if not (Hashtbl.mem st.index name) then begin
    let s = { (blank ~name ~kind:K_hist ~cols:hist_cols) with se_hist = Some h } in
    Metrics.hist_buckets_into h s.se_prev_buckets;
    s.se_first_w <- st.w_count;
    add_src st s
  end

let probe ?host name fn =
  let st = state () in
  let sname = "probe:" ^ label ~host name in
  match Hashtbl.find_opt st.index sname with
  | Some s ->
      (* A component re-created mid-run (reconfiguration) re-registers
         its probe; the newest instance wins. *)
      s.se_probe <- fn
  | None ->
      let s = blank ~name:sname ~kind:K_probe ~cols:gauge_cols in
      s.se_probe <- fn;
      reset_acc s.se_acc;
      s.se_first_w <- st.w_count;
      add_src st s

let track_all_metrics () =
  Metrics.iter_handles ~on_counter:track_counter ~on_gauge:track_gauge ~on_hist:track_histogram

let on_window_close f =
  let st = state () in
  st.closers <- Array.append st.closers [| f |]

(* -- ticking ----------------------------------------------------------- *)

let open_window st now =
  if Array.length st.starts = 0 then st.starts <- Array.make st.slots Float.nan;
  st.cur_start <- now;
  st.sub_n <- 0

let sample_sub s =
  match s.se_kind with
  | K_counter | K_hist -> ()
  | K_gauge | K_probe ->
      let v =
        match s.se_kind with
        | K_gauge -> ( match s.se_gauge with Some g -> Metrics.gauge_value g | None -> 0.)
        | _ -> s.se_probe ()
      in
      let a = s.se_acc in
      if v < a.(0) then a.(0) <- v;
      if v > a.(1) then a.(1) <- v;
      a.(2) <- v

let ensure_rings st s =
  if Array.length s.se_rings = 0 then
    s.se_rings <- Array.init (Array.length s.se_cols) (fun _ -> Array.make st.slots Float.nan)

let seal_src st s ~slot ~dt_s =
  ensure_rings st s;
  match s.se_kind with
  | K_counter ->
      let v = match s.se_counter with Some c -> Metrics.counter_value c | None -> 0 in
      let rate = if dt_s > 0. then float_of_int (v - s.se_prev) /. dt_s else 0. in
      s.se_rings.(0).(slot) <- rate;
      s.se_prev <- v
  | K_gauge | K_probe ->
      let a = s.se_acc in
      let empty = a.(0) > a.(1) in
      s.se_rings.(0).(slot) <- (if empty then Float.nan else a.(0));
      s.se_rings.(1).(slot) <- (if empty then Float.nan else a.(1));
      s.se_rings.(2).(slot) <- a.(2);
      reset_acc a
  | K_hist -> (
      match s.se_hist with
      | None -> ()
      | Some h ->
          Metrics.hist_buckets_into h s.se_delta;
          let total = ref 0 in
          for i = 0 to Metrics.num_buckets - 1 do
            let d = s.se_delta.(i) - s.se_prev_buckets.(i) in
            s.se_prev_buckets.(i) <- s.se_delta.(i);
            s.se_delta.(i) <- d;
            total := !total + d
          done;
          s.se_rings.(0).(slot) <- float_of_int !total;
          s.se_rings.(1).(slot) <- Metrics.buckets_percentile s.se_delta ~total:!total 50.;
          s.se_rings.(2).(slot) <- Metrics.buckets_percentile s.se_delta ~total:!total 99.)

let seal_window st now =
  let slot = st.w_count mod st.slots in
  st.starts.(slot) <- st.cur_start;
  let dt_s = (now -. st.cur_start) /. 1e6 in
  for i = 0 to st.n - 1 do
    seal_src st st.srcs.(i) ~slot ~dt_s
  done;
  st.w_count <- st.w_count + 1;
  st.cur_start <- now;
  st.sub_n <- 0;
  Array.iter (fun f -> f ()) st.closers

let tick () =
  let st = state () in
  let now = Engine.now () in
  if Float.is_nan st.cur_start then open_window st now;
  for i = 0 to st.n - 1 do
    sample_sub st.srcs.(i)
  done;
  st.sub_n <- st.sub_n + 1;
  if st.sub_n >= st.subticks then seal_window st now

let start ?window_us ?subticks ?(track_metrics = true) () =
  let st = state () in
  if window_us <> None || subticks <> None then configure ?window_us ?subticks ();
  if track_metrics then track_all_metrics ();
  if not st.ticker_on then begin
    st.ticker_on <- true;
    Engine.spawn (fun () ->
        let rec loop () =
          Engine.sleep (st.window_us /. float_of_int st.subticks);
          (* A reset mid-run (tests) orphans this fiber; stop ticking
             into the dead generation. *)
          if !current == st then begin
            tick ();
            loop ()
          end
        in
        loop ())
  end

(* -- queries ----------------------------------------------------------- *)

let windows () = (state ()).w_count
let window_us () = (state ()).window_us

type sel = { q_src : src; q_col : int }

let col_index cols c =
  let rec go i = if i >= Array.length cols then -1 else if cols.(i) = c then i else go (i + 1) in
  go 0

let find ~series ~col =
  let st = state () in
  match Hashtbl.find_opt st.index series with
  | None -> None
  | Some s ->
      let i = col_index s.se_cols col in
      if i < 0 then None else Some { q_src = s; q_col = i }

let window_value sel j =
  let st = state () in
  let s = sel.q_src in
  if j < 0 || j >= st.w_count || j < s.se_first_w || j < st.w_count - st.slots
     || Array.length s.se_rings = 0
  then Float.nan
  else s.se_rings.(sel.q_col).(j mod st.slots)

let last sel =
  let st = state () in
  if st.w_count = 0 then Float.nan else window_value sel (st.w_count - 1)

let window_start j =
  let st = state () in
  if j < 0 || j >= st.w_count || j < st.w_count - st.slots || Array.length st.starts = 0 then
    Float.nan
  else st.starts.(j mod st.slots)

let series_names () =
  let st = state () in
  List.sort compare (List.init st.n (fun i -> st.srcs.(i).se_name))

let columns series =
  match Hashtbl.find_opt (state ()).index series with
  | None -> [||]
  | Some s -> Array.copy s.se_cols

(* -- dump -------------------------------------------------------------- *)

let to_json () =
  let st = state () in
  let from_global = Stdlib.max 0 (st.w_count - st.slots) in
  let starts =
    List.init (st.w_count - from_global) (fun k -> Jout.flt (window_start (from_global + k)))
  in
  let srcs = Array.sub st.srcs 0 st.n |> Array.to_list in
  let srcs = List.sort (fun a b -> compare a.se_name b.se_name) srcs in
  let series =
    List.map
      (fun s ->
        let from = Stdlib.max s.se_first_w from_global in
        let cols =
          Array.to_list
            (Array.mapi
               (fun ci cname ->
                 let vals =
                   List.init (st.w_count - from) (fun k ->
                       Jout.flt (window_value { q_src = s; q_col = ci } (from + k)))
                 in
                 (cname, Jout.arr vals))
               s.se_cols)
        in
        Jout.obj
          [
            ("name", Jout.str s.se_name);
            ("kind", Jout.str (kind_name s.se_kind));
            ("from", string_of_int from);
            ("cols", Jout.obj cols);
          ])
      srcs
  in
  Jout.obj
    [
      ("window_us", Jout.flt st.window_us);
      ("subticks", string_of_int st.subticks);
      ("windows", string_of_int st.w_count);
      ("from", string_of_int from_global);
      ("starts", Jout.arr starts);
      ("series", Jout.arr series);
    ]
