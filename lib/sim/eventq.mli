(** Flat, allocation-free event queue for the engine's dispatch loop:
    a binary min-heap over parallel unboxed arrays (no [option] boxes,
    no entry records) plus an {e immediate lane} — a FIFO ring
    absorbing events scheduled at the current virtual time, which
    dominate resume/yield-heavy workloads and bypass the O(log n)
    heap entirely.

    Events dispatch in strict (time, seq) order, exactly as a single
    heap would: the lane is kept sorted by construction (its times are
    the non-decreasing push-time clocks, its seqs FIFO), and {!pop}
    always takes the global minimum of lane front vs heap top.

    The representation is exposed so the engine's inner loop and the
    micro-benchmarks can read the next event time without boxing a
    float; treat the fields as read-only outside this module. *)

type t = {
  mutable ht : float array;  (** heap: times *)
  mutable hs : int array;  (** heap: seqs *)
  mutable hk : (unit -> unit) array;  (** heap: thunks *)
  mutable hlen : int;
  mutable lt : float array;  (** lane ring: times *)
  mutable ls : int array;  (** lane ring: seqs *)
  mutable lk : (unit -> unit) array;  (** lane ring: thunks *)
  mutable lhead : int;  (** lane ring: first pending slot *)
  mutable llen : int;
}

val create : ?capacity:int -> unit -> t
val size : t -> int
val is_empty : t -> bool

(** [push q time seq thunk] schedules via the heap: O(log n),
    allocation-free (amortised; growth doubles the arrays). *)
val push : t -> float -> int -> (unit -> unit) -> unit

(** [push_now q time seq thunk] appends to the immediate lane: O(1),
    allocation-free. Sound only when [time] is the current clock (>=
    every pending lane time) and [seq] comes from the same monotonic
    counter as every other push — the engine's scheduling discipline. *)
val push_now : t -> float -> int -> (unit -> unit) -> unit

(** Whether the (time, seq)-minimum pending event sits in the lane.
    Meaningful only when the queue is non-empty. *)
val next_is_lane : t -> bool

(** Pop the lane front / heap top. Undefined on the respective empty
    structure; callers gate on {!next_is_lane} and {!is_empty}. *)
val pop_lane : t -> unit -> unit

val pop_heap : t -> unit -> unit

(** [pop q] combines the gate and the pop — the convenience form for
    tests and benches (the engine inlines the choice). Undefined on an
    empty queue. *)
val pop : t -> unit -> unit

(** Time of the next event in dispatch order.
    @raise Invalid_argument on an empty queue. *)
val next_time : t -> float
