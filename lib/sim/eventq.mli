(** Banded, allocation-free event queue for the engine's dispatch
    loop. Four time bands behind one abstract type:

    - an {e immediate lane} — a FIFO ring absorbing events scheduled
      at the current virtual time, which dominate resume/yield-heavy
      workloads and bypass every priority structure;
    - a {e near heap} — a binary min-heap over parallel unboxed arrays
      (no [option] boxes, no entry records) holding events below the
      wheel window;
    - a {e timer wheel} — a 256-bucket calendar queue of 64 µs slots
      covering a sliding ~16.4 ms window, making RPC-scale timer
      pushes O(1);
    - a {e far band} — a second min-heap for everything past the wheel
      horizon (measurement windows, think times, timeouts).

    Events dispatch in strict (time, seq) order, exactly as a single
    heap would: wheel buckets and far events are migrated into the
    near heap ({e refilled}) before they can become the minimum, and
    the heap's (time, seq) order restores the exact dispatch sequence.
    Refill happens inside {!next_time} and {!pop}; between a
    {!next_time} and the matching {!pop_lane}/{!pop_heap} no
    migration occurs, so the engine's split peek/pop dispatch remains
    valid.

    The representation is abstract — dispatch call sites go through
    {!next_time}/{!next_is_lane} so the band structure can evolve
    without touching them. *)

type t

val create : ?capacity:int -> unit -> t

(** Pending events across all bands. *)
val size : t -> int

val is_empty : t -> bool

(** [push q time seq thunk] schedules at absolute [time]: O(1) into
    the wheel for times inside the window, O(log n) into the near or
    far heap otherwise. Allocation-free (amortised; growth doubles
    the arrays). *)
val push : t -> float -> int -> (unit -> unit) -> unit

(** [push_now q time seq thunk] appends to the immediate lane: O(1),
    allocation-free. Sound only when [time] is the current clock (>=
    every pending lane time) and [seq] comes from the same monotonic
    counter as every other push — the engine's scheduling discipline. *)
val push_now : t -> float -> int -> (unit -> unit) -> unit

(** Time of the next event in dispatch order. May slide the wheel
    window to restore the refill invariant; afterwards the next event
    is guaranteed to sit in the lane or the near heap, so
    {!next_is_lane} + {!pop_lane}/{!pop_heap} dispatch it.
    @raise Invalid_argument on an empty queue. *)
val next_time : t -> float

(** [next_time_into q dst] is [dst.(0) <- next_time q] without boxing
    the float: the dispatch loop's peek. (A float returned across the
    module boundary is boxed — dev builds compile with [-opaque], so
    cross-module inlining cannot recover it; a float-array store
    stays unboxed.)
    @raise Invalid_argument on an empty queue. *)
val next_time_into : t -> float array -> unit

(** Whether the (time, seq)-minimum pending event sits in the lane.
    Meaningful only when the queue is non-empty and refilled — i.e.
    after {!next_time}. *)
val next_is_lane : t -> bool

(** Pop the lane front / near-heap top. Undefined on the respective
    empty structure; callers gate on {!next_is_lane} after
    {!next_time}. *)
val pop_lane : t -> unit -> unit

val pop_heap : t -> unit -> unit

(** [pop q] combines refill, the gate, and the pop — the convenience
    form for tests and benches (the engine inlines the choice).
    @raise Invalid_argument on an empty queue. *)
val pop : t -> unit -> unit
