module Series = struct
  type t = { mutable data : float array; mutable len : int; mutable sorted : bool }

  let create () = { data = Array.make 1024 0.; len = 0; sorted = true }

  let add t v =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0. in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let iter t f =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.len in
      Array.sort Float.compare live;
      Array.blit live 0 t.data 0 t.len;
      t.sorted <- true
    end

  let mean t =
    if t.len = 0 then 0.
    else begin
      let sum = ref 0. in
      for i = 0 to t.len - 1 do
        sum := !sum +. t.data.(i)
      done;
      !sum /. float_of_int t.len
    end

  let percentile_opt t p =
    if Float.is_nan p || p < 0. || p > 100. then
      invalid_arg "Series.percentile: p must be in [0, 100]";
    if t.len = 0 then None
    else begin
      ensure_sorted t;
      let rank = p /. 100. *. float_of_int (t.len - 1) in
      (* Clamp both indices so float round-off (and the 1-sample case,
         where rank = 0 for every p) can never index past the end. *)
      let clamp i = Stdlib.min (t.len - 1) (Stdlib.max 0 i) in
      let lo = clamp (int_of_float (Float.floor rank)) in
      let hi = clamp (int_of_float (Float.ceil rank)) in
      let frac = rank -. float_of_int lo in
      Some ((t.data.(lo) *. (1. -. frac)) +. (t.data.(hi) *. frac))
    end

  let percentile t p =
    match percentile_opt t p with
    | Some v -> v
    | None -> invalid_arg "Series.percentile: empty series"

  let min t = percentile t 0.
  let max t = percentile t 100.

  let stddev t =
    if t.len < 2 then 0.
    else begin
      let m = mean t in
      let sum = ref 0. in
      for i = 0 to t.len - 1 do
        let d = t.data.(i) -. m in
        sum := !sum +. (d *. d)
      done;
      sqrt (!sum /. float_of_int (t.len - 1))
    end
end

module Counter = struct
  type t = { cname : string; mutable n : int }

  let create ~name () = { cname = name; n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let count t = t.n
  let name t = t.cname
end

module Meter = struct
  type t = { mutable n : int; mutable since : float }

  let create () = { n = 0; since = Engine.now () }
  let mark t = t.n <- t.n + 1
  let mark_n t n = t.n <- t.n + n
  let count t = t.n

  let reset t =
    t.n <- 0;
    t.since <- Engine.now ()

  let rate t =
    let elapsed_us = Engine.now () -. t.since in
    if elapsed_us <= 0. then 0. else float_of_int t.n /. elapsed_us *. 1_000_000.
end
