type host = {
  hname : string;
  nic_in_r : Resource.t;
  nic_out_r : Resource.t;
  cpu : Resource.t;
  fabric_latency : float;
  fabric_jitter : float;
  byte_time : float;
  hfault : Fault.t option ref;  (* shared with the owning fabric *)
}

type t = {
  latency : float;
  jitter : float;
  byte_time : float;
  net_fault : Fault.t option ref;
}

(* [sspan] is the precomputed span name "rpc.<sname>": building it per
   call would allocate even with tracing disabled. *)
type ('req, 'resp) service = { shost : host; sname : string; sspan : string; serve : 'req -> 'resp }

type rpc_error = Rpc_timeout | Rpc_dead

let create ~latency ~bandwidth ?(jitter = 0.05) () =
  if bandwidth <= 0. then invalid_arg "Net.create: bandwidth must be positive";
  { latency; jitter; byte_time = 1. /. bandwidth; net_fault = ref None }

let install_fault t f = t.net_fault := Some f
let fault t = !(t.net_fault)

let add_host ?(cores = 8) t name =
  let h =
    {
      hname = name;
      nic_in_r = Resource.create ~name:(name ^ ".nic-in") ~capacity:1 ();
      nic_out_r = Resource.create ~name:(name ^ ".nic-out") ~capacity:1 ();
      cpu = Resource.create ~name:(name ^ ".cpu") ~capacity:cores ();
      fabric_latency = t.latency;
      fabric_jitter = t.jitter;
      byte_time = t.byte_time;
      hfault = t.net_fault;
    }
  in
  Metrics.track_resource h.nic_in_r;
  Metrics.track_resource h.nic_out_r;
  Metrics.track_resource h.cpu;
  h

let host_name h = h.hname
let host_cpu h = h.cpu
let nic_in h = h.nic_in_r
let nic_out h = h.nic_out_r

let service shost ~name serve = { shost; sname = name; sspan = "rpc." ^ name; serve }
let service_name svc = svc.sname

let propagation h =
  let base = h.fabric_latency in
  if h.fabric_jitter = 0. then base
  else base *. (1. +. Rng.float (Engine.rng ()) h.fabric_jitter)

let transfer ~(src : host) ~(dst : host) ~bytes =
  let wire_time = float_of_int bytes *. src.byte_time in
  Resource.use src.nic_out_r wire_time;
  Engine.sleep (propagation src);
  Resource.use dst.nic_in_r wire_time

let crashed fault name = match fault with Some f -> Fault.is_crashed f name | None -> false

(* A message that will never be answered: park the fiber forever. The
   run discards it when the main fiber finishes (or deadlocks if the
   main fiber depended on it — which is exactly the hang a real client
   without timeouts experiences). *)
let park : unit -> 'a = fun () -> Engine.suspend (fun (_ : 'a Engine.resumer) -> ())

let call_inner ~req_bytes ~resp_bytes ~from svc req =
  match !(from.hfault) with
  | None ->
      if from == svc.shost then svc.serve req
      else begin
        transfer ~src:from ~dst:svc.shost ~bytes:req_bytes;
        let resp = svc.serve req in
        transfer ~src:svc.shost ~dst:from ~bytes:resp_bytes;
        resp
      end
  | Some f ->
      if Fault.is_crashed f from.hname then park ()
      else if from == svc.shost then svc.serve req
      else begin
        (* The sender always pays serialization: the bytes leave the
           NIC whether or not they arrive. *)
        let wire = float_of_int req_bytes *. from.byte_time in
        Resource.use from.nic_out_r wire;
        (match Fault.judge f ~src:from.hname ~dst:svc.shost.hname with
        | Fault.Drop -> park ()
        | Fault.Deliver extra -> Engine.sleep (propagation from +. extra));
        if Fault.is_crashed f svc.shost.hname then park ();
        Resource.use svc.shost.nic_in_r wire;
        let resp = svc.serve req in
        if Fault.is_crashed f svc.shost.hname then park ();
        let wire_r = float_of_int resp_bytes *. svc.shost.byte_time in
        Resource.use svc.shost.nic_out_r wire_r;
        (match Fault.judge f ~src:svc.shost.hname ~dst:from.hname with
        | Fault.Drop -> park ()
        | Fault.Deliver extra -> Engine.sleep (propagation svc.shost +. extra));
        Resource.use from.nic_in_r wire_r;
        resp
      end

(* Tracing-disabled calls must not allocate span args (or a body
   closure): branch before building either. *)
let call ?(req_bytes = 64) ?(resp_bytes = 64) ~from svc req =
  if Span.enabled () then
    Span.with_span ~host:from.hname
      ~args:[ ("dst", svc.shost.hname) ]
      svc.sspan
      (fun () -> call_inner ~req_bytes ~resp_bytes ~from svc req)
  else call_inner ~req_bytes ~resp_bytes ~from svc req

(* The result-typed RPC. Without an installed fault controller this is
   exactly [call] (same fiber, same event sequence), so fault-free runs
   stay byte-identical; with one, the exchange runs in a helper fiber
   and the caller waits for first-of(response, timeout). *)
let call_r_inner ~req_bytes ~resp_bytes ?timeout_us ~from svc req fault f =
      if crashed fault from.hname then Error Rpc_dead
      else if from == svc.shost then begin
        match svc.serve req with
        | resp -> Ok resp
        | exception Resource.Failed _ -> Error Rpc_dead
      end
      else
        let span_parent = Span.current () in
        Engine.suspend (fun resume ->
            let settled = ref false in
            let settle r =
              if not !settled then begin
                settled := true;
                resume r
              end
            in
            (match timeout_us with
            | Some dt -> Engine.schedule ~after:dt (fun () -> settle (Error Rpc_timeout))
            | None -> ());
            Engine.spawn (fun () ->
                Span.with_parent span_parent @@ fun () ->
                try
                  let wire = float_of_int req_bytes *. from.byte_time in
                  Resource.use from.nic_out_r wire;
                  match Fault.judge f ~src:from.hname ~dst:svc.shost.hname with
                  | Fault.Drop -> ()
                  | Fault.Deliver extra ->
                      Engine.sleep (propagation from +. extra);
                      if Fault.is_crashed f svc.shost.hname then ()
                      else begin
                        Resource.use svc.shost.nic_in_r wire;
                        match svc.serve req with
                        | exception Resource.Failed _ -> ()  (* no response: device gone *)
                        | resp ->
                            (* The host may have died while serving: the
                               response is lost with it. *)
                            if Fault.is_crashed f svc.shost.hname then ()
                            else begin
                              let wire_r = float_of_int resp_bytes *. svc.shost.byte_time in
                              Resource.use svc.shost.nic_out_r wire_r;
                              match Fault.judge f ~src:svc.shost.hname ~dst:from.hname with
                              | Fault.Drop -> ()
                              | Fault.Deliver extra ->
                                  Engine.sleep (propagation svc.shost +. extra);
                                  Resource.use from.nic_in_r wire_r;
                                  settle (Ok resp)
                            end
                      end
                with Resource.Failed _ -> ()))

let call_r ?(req_bytes = 64) ?(resp_bytes = 64) ?timeout_us ~from svc req =
  let fault = !(from.hfault) in
  match fault with
  | None -> Ok (call ~req_bytes ~resp_bytes ~from svc req)
  | Some f ->
      if Span.enabled () then
        Span.with_span ~host:from.hname
          ~args:[ ("dst", svc.shost.hname) ]
          svc.sspan
          (fun () -> call_r_inner ~req_bytes ~resp_bytes ?timeout_us ~from svc req fault f)
      else call_r_inner ~req_bytes ~resp_bytes ?timeout_us ~from svc req fault f

let send ?(req_bytes = 64) ~from svc req =
  let span_parent = Span.current () in
  match !(from.hfault) with
  | None ->
      if from == svc.shost then
        Engine.spawn (fun () -> Span.with_parent span_parent (fun () -> svc.serve req))
      else begin
        let wire_time = float_of_int req_bytes *. from.byte_time in
        Resource.use from.nic_out_r wire_time;
        Engine.spawn (fun () ->
            Span.with_parent span_parent @@ fun () ->
            Engine.sleep (propagation from);
            Resource.use svc.shost.nic_in_r wire_time;
            svc.serve req)
      end
  | Some f ->
      if Fault.is_crashed f from.hname then ()
      else if from == svc.shost then
        Engine.spawn (fun () ->
            Span.with_parent span_parent @@ fun () ->
            try svc.serve req with Resource.Failed _ -> ())
      else begin
        let wire_time = float_of_int req_bytes *. from.byte_time in
        Resource.use from.nic_out_r wire_time;
        match Fault.judge f ~src:from.hname ~dst:svc.shost.hname with
        | Fault.Drop -> ()
        | Fault.Deliver extra ->
            Engine.spawn (fun () ->
                Span.with_parent span_parent @@ fun () ->
                Engine.sleep (propagation from +. extra);
                if not (Fault.is_crashed f svc.shost.hname) then begin
                  Resource.use svc.shost.nic_in_r wire_time;
                  try svc.serve req with Resource.Failed _ -> ()
                end)
      end

let one_way_delay t ~bytes = (2. *. float_of_int bytes *. t.byte_time) +. t.latency

(* Jitter is a non-negative multiplicative perturbation (uniform in
   [1, 1+jitter)), so the mean latency lower-bounds every propagation
   delay on this fabric — the conservative lookahead window for
   cross-shard synchronization. *)
let lookahead t = t.latency
