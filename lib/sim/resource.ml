exception Failed of string

type t = {
  name : string;
  capacity : int;
  mutable in_use : int;
  waiters : (bool -> unit) Queue.t;  (* resumed with [false] when the station fails *)
  mutable busy_integral : float;
  mutable last_update : float;
  mutable broken : bool;
}

let create ~name ~capacity () =
  if capacity < 1 then invalid_arg "Resource.create: capacity must be >= 1";
  {
    name;
    capacity;
    in_use = 0;
    waiters = Queue.create ();
    busy_integral = 0.;
    last_update = 0.;
    broken = false;
  }

let name t = t.name
let capacity t = t.capacity

let account t =
  let now = Engine.now () in
  t.busy_integral <- t.busy_integral +. (float_of_int t.in_use *. (now -. t.last_update));
  t.last_update <- now

let acquire t =
  if t.broken then raise (Failed t.name);
  if t.in_use < t.capacity && Queue.is_empty t.waiters then begin
    account t;
    t.in_use <- t.in_use + 1
  end
  else begin
    let ok = Engine.suspend (fun resume -> Queue.add resume t.waiters) in
    if not ok then raise (Failed t.name)
  end

let release t =
  if t.in_use = 0 then invalid_arg "Resource.release: not held";
  match Queue.take_opt t.waiters with
  | Some waiter ->
      (* Hand the server straight to the next fiber in line; [in_use]
         stays constant so no accounting boundary is needed. *)
      waiter true
  | None ->
      account t;
      t.in_use <- t.in_use - 1

let use t dt =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) (fun () -> Engine.sleep dt)

let fail t =
  if not t.broken then begin
    t.broken <- true;
    (* Waiters will never be served: wake them into the failure path. *)
    let rec drain () =
      match Queue.take_opt t.waiters with
      | Some waiter ->
          waiter false;
          drain ()
      | None -> ()
    in
    drain ()
  end

let repair t = t.broken <- false
let failed t = t.broken

let queue_length t = Queue.length t.waiters

let busy_time t =
  account t;
  t.busy_integral
