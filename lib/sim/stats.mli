(** Measurement helpers for experiments.

    {!Series} collects latency samples for percentile reporting;
    {!Meter} counts events against the virtual clock for throughput
    reporting. Both are cheap enough to leave enabled in every run. *)

module Series : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [iter t f] applies [f] to every sample in insertion order —
      the merge hook for combining per-shard series. *)
  val iter : t -> (float -> unit) -> unit

  val mean : t -> float

  (** [percentile t p] with [p] in [\[0,100\]]; 50.0 is the median.
      Linear interpolation between order statistics; a 1-sample series
      returns that sample for every [p].
      @raise Invalid_argument if the series is empty or [p] is outside
      [\[0,100\]]. *)
  val percentile : t -> float -> float

  (** Raise-free variant: [None] on an empty series. Still raises
      [Invalid_argument] on [p] outside [\[0,100\]] — that is a caller
      bug, not a data condition. *)
  val percentile_opt : t -> float -> float option

  val min : t -> float
  val max : t -> float
  val stddev : t -> float
end

(** A named monotonic counter, for counting discrete incidents (failed
    RPCs, retries, rebuild entries) that availability reports surface
    alongside the rate meters. *)
module Counter : sig
  type t

  val create : name:string -> unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val count : t -> int
  val name : t -> string
end

module Meter : sig
  type t

  (** [create ()] starts counting at the current virtual time. *)
  val create : unit -> t

  (** [mark t] records one event; [mark_n t n] records [n]. *)
  val mark : t -> unit

  val mark_n : t -> int -> unit
  val count : t -> int

  (** [reset t] zeroes the count and restarts the window now. *)
  val reset : t -> unit

  (** [rate t] is events per {e second} (not µs) since the window
      started. *)
  val rate : t -> float
end
