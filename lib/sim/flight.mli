(** Incident flight recorder: the black box of the simulation.

    Every instrumented subsystem streams its most recent structured
    events — span closes ({!Span}), metric writes ({!Metrics}),
    fault-plane actions ({!Fault}), SLO alert transitions ({!Slo}) —
    into a bounded per-host ring. Nothing is retained beyond the ring:
    the recorder answers "what were the last N things this host did
    right before the incident", not "what happened over the whole run"
    (that is {!Metrics} / {!Span} / {!Timeseries}).

    {!snapshot} freezes the rings into an incident-scoped JSON document
    and a Chrome [trace_event] timeline. It is called automatically
    when an {!Slo} monitor fires, and by the harness when a chaos
    stall or a fuzz oracle violation is detected — so every failure
    artifact ships with its last-N-events context.

    Recording costs one branch when disabled and writes into
    preallocated parallel arrays when enabled (the PR 6 allocation
    discipline); it reads only the virtual clock, so arming the
    recorder never changes simulation behavior and two same-seed runs
    produce byte-identical snapshots. Like {!Metrics}, the store is
    engine-reset but the enabled flag and ring configuration are
    sticky across runs. *)

type kind =
  | Span_close  (** a {!Span} closed; value = duration µs *)
  | Metric  (** a counter/gauge/histogram write; value = new value *)
  | Fault  (** a {!Fault} action was applied *)
  | Alert  (** an {!Slo} monitor transitioned; value = fast burn rate *)
  | Note  (** free-form marker from a component or test *)

(** [set_enabled b] arms or disarms the recorder (sticky across engine
    resets; default off). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** [configure ?cap ?snapshots ()] sets the per-host ring capacity
    (default 256 events) and the per-run snapshot budget (default 16).
    Sticky; affects rings created after the call. *)
val configure : ?cap:int -> ?snapshots:int -> unit -> unit

(** [record ~host k ~name ~value] appends one event to [host]'s ring,
    overwriting the oldest once full. No-op when disabled; must be
    called inside {!Engine.run} when enabled. [name] should be a
    preallocated string on hot paths. *)
val record : host:string -> kind -> name:string -> value:float -> unit

(** [note ~host name] = [record ~host Note ~name ~value:0.]. *)
val note : host:string -> string -> unit

(** Total events recorded this run across all hosts (including ones
    that have rolled out of their rings). *)
val events_recorded : unit -> int

type snap = {
  sn_reason : string;
  sn_time : float;  (** virtual µs; 0. if taken after the run ended *)
  sn_json : string;  (** incident document: per-host event rings *)
  sn_trace : string;  (** Chrome trace_event instant-event timeline *)
}

(** [snapshot ~reason] freezes the current rings into a {!snap}.
    No-op when disabled or once the snapshot budget is exhausted. *)
val snapshot : reason:string -> unit

(** All snapshots taken this run, oldest first. *)
val snapshots : unit -> snap list

val snapshot_count : unit -> int

(** [{"snapshots": [...]}] — every snapshot document of the run, the
    shape embedded in fuzz artifacts. *)
val dump_json : unit -> string

(** Clear the store immediately (tests). *)
val reset : unit -> unit
