(** Minimal deterministic JSON emitter.

    The toolchain has no JSON library, and the observability plane
    ({!Metrics} snapshots, {!Span} timelines, harness run reports) only
    needs to {e write} JSON, never parse it. Output is canonical for a
    given call sequence — no hash-order iteration, fixed float
    formatting — so byte-for-byte comparison of two dumps is a valid
    determinism check. *)

(** [str s] is [s] quoted and escaped as a JSON string literal. *)
val str : string -> string

(** [flt v] formats [v] as a JSON number. Integers up to 2^53 print
    without an exponent; non-finite values print as [null] (JSON has
    no representation for them). *)
val flt : float -> string

(** [obj fields] is [{"k": v, ...}] with fields in the given order;
    values must already be serialized JSON. *)
val obj : (string * string) list -> string

(** [arr items] is [[v, ...]]; items must already be serialized. *)
val arr : string list -> string
