type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* splitmix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_seed t)

let split t = { state = int64 t }

(* Stream [k] perturbs the seed by the mixed k-th multiple of the
   golden gamma — the same decorrelation step splitmix64 uses between
   outputs. [mix 0L = 0L], so stream 0 is exactly [create seed]: the
   single-shard world reproduces the unsharded stream bit-for-bit. *)
let create_stream seed ~stream =
  { state = Int64.logxor (Int64.of_int seed) (mix (Int64.mul (Int64.of_int stream) golden_gamma)) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value is a non-negative OCaml int. *)
  let positive = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  positive mod bound

let float t bound =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (bits /. 9007199254740992.0)

let bool t p = float t 1.0 < p

let exponential t ~mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))
