exception Deadlock
exception Horizon_reached of float

type 'a resumer = 'a -> unit

type world = {
  q : Eventq.t;
  world_rng : Rng.t;
  clock : float array;  (* 1 element: a float-array store stays unboxed *)
  mutable next_seq : int;
  mutable next_fiber : int;
  mutable current_fiber : int;
  mutable events : int;  (* dispatched so far this run *)
  mutable failure : exn option;
  mutable main_done : bool;
}

let current : world option ref = ref None

(* Monotonic count of worlds ever started, readable outside a run.
   Registries that outlive [run] (Metrics, Span) compare it to decide
   when to lazily reset. *)
let runs = ref 0
let run_count () = !runs

let get_world () =
  match !current with
  | Some w -> w
  | None -> invalid_arg "Sim.Engine: no simulation is running"

let now () = (get_world ()).clock.(0)
let rng () = (get_world ()).world_rng
let fiber_id () = (get_world ()).current_fiber
let events_dispatched () = (get_world ()).events

(* Events due now (after <= 0) take the immediate lane: O(1) ring
   append, no heap traffic. Later events go through the heap. Both
   paths allocate nothing beyond the caller's thunk. *)
let push_event w ~after thunk =
  let seq = w.next_seq in
  w.next_seq <- seq + 1;
  if after <= 0. then Eventq.push_now w.q (Array.unsafe_get w.clock 0) seq thunk
  else Eventq.push w.q (Array.unsafe_get w.clock 0 +. after) seq thunk

let schedule ~after thunk = push_event (get_world ()) ~after thunk

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t

let sleep dt = Effect.perform (Sleep dt)
let yield () = Effect.perform (Sleep 0.)
let suspend register = Effect.perform (Suspend register)

let make_resumer w fid k =
  let used = ref false in
  fun v ->
    if !used then invalid_arg "Sim.Engine: resumer called twice";
    used := true;
    push_event w ~after:0. (fun () ->
        w.current_fiber <- fid;
        Effect.Deep.continue k v)

let start_fiber w fid f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          (* First failure wins; it aborts the whole run. *)
          if w.failure = None then w.failure <- Some e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep dt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  push_event w ~after:dt (fun () ->
                      w.current_fiber <- fid;
                      continue k ()))
          | Suspend register ->
              Some (fun (k : (a, unit) continuation) -> register (make_resumer w fid k))
          | _ -> None);
    }
  in
  w.current_fiber <- fid;
  match_with f () handler

let spawn ?(at = Float.neg_infinity) f =
  let w = get_world () in
  let fid = w.next_fiber in
  w.next_fiber <- fid + 1;
  let after = if at = Float.neg_infinity then 0. else at -. w.clock.(0) in
  push_event w ~after (fun () -> start_fiber w fid f)

let run ?(seed = 1) ?until main =
  if !current <> None then invalid_arg "Sim.Engine.run: already running";
  let w =
    {
      q = Eventq.create ();
      world_rng = Rng.create seed;
      clock = [| 0. |];
      next_seq = 0;
      next_fiber = 0;
      current_fiber = 0;
      events = 0;
      failure = None;
      main_done = false;
    }
  in
  current := Some w;
  incr runs;
  Fun.protect ~finally:(fun () -> current := None) @@ fun () ->
  let result = ref None in
  let fid = w.next_fiber in
  w.next_fiber <- fid + 1;
  push_event w ~after:0. (fun () ->
      start_fiber w fid (fun () ->
          let r = main () in
          result := Some r;
          w.main_done <- true));
  let q = w.q in
  let clock = w.clock in
  (* The dispatch inner loop: per already-scheduled event, two float
     array reads, one comparison, one store, one pop — zero
     allocations. Times are read straight off the queue's unboxed
     arrays so no float is ever boxed here. *)
  let rec loop () =
    if w.main_done || w.failure <> None then ()
    else if Eventq.is_empty q then raise Deadlock
    else begin
      let lane = Eventq.next_is_lane q in
      let time =
        if lane then Array.unsafe_get q.Eventq.lt q.Eventq.lhead else Array.unsafe_get q.Eventq.ht 0
      in
      (match until with
      | Some horizon when time > horizon -> raise (Horizon_reached horizon)
      | Some _ | None -> ());
      Array.unsafe_set clock 0 time;
      w.events <- w.events + 1;
      let thunk = if lane then Eventq.pop_lane q else Eventq.pop_heap q in
      thunk ();
      loop ()
    end
  in
  loop ();
  (match w.failure with Some e -> raise e | None -> ());
  match !result with
  | Some r -> r
  | None -> assert false
