exception Deadlock
exception Horizon_reached of float

type 'a resumer = 'a -> unit

(* Binary min-heap of events ordered by (time, seq). *)
module Heap = struct
  type entry = { time : float; seq : int; thunk : unit -> unit }

  type t = { mutable arr : entry option array; mutable len : int }

  let create () = { arr = Array.make 256 None; len = 0 }

  let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let get h i =
    match h.arr.(i) with
    | Some e -> e
    | None -> assert false

  let push h e =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) None in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- Some e;
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && before (get h !i) (get h ((!i - 1) / 2)) do
      let parent = (!i - 1) / 2 in
      let tmp = h.arr.(!i) in
      h.arr.(!i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      i := parent
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = get h 0 in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- None;
      let i = ref 0 in
      let continue = ref (h.len > 1) in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before (get h l) (get h !smallest) then smallest := l;
        if r < h.len && before (get h r) (get h !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.arr.(!i) in
          h.arr.(!i) <- h.arr.(!smallest);
          h.arr.(!smallest) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type world = {
  heap : Heap.t;
  world_rng : Rng.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable next_fiber : int;
  mutable current_fiber : int;
  mutable failure : exn option;
  mutable main_done : bool;
}

let current : world option ref = ref None

(* Monotonic count of worlds ever started, readable outside a run.
   Registries that outlive [run] (Metrics, Span) compare it to decide
   when to lazily reset. *)
let runs = ref 0
let run_count () = !runs

let get_world () =
  match !current with
  | Some w -> w
  | None -> invalid_arg "Sim.Engine: no simulation is running"

let now () = (get_world ()).clock
let rng () = (get_world ()).world_rng
let fiber_id () = (get_world ()).current_fiber

let push_event w ~after thunk =
  let time = w.clock +. Float.max 0. after in
  let seq = w.next_seq in
  w.next_seq <- seq + 1;
  Heap.push w.heap { Heap.time; seq; thunk }

let schedule ~after thunk = push_event (get_world ()) ~after thunk

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t

let sleep dt = Effect.perform (Sleep dt)
let yield () = Effect.perform (Sleep 0.)
let suspend register = Effect.perform (Suspend register)

let make_resumer w fid k =
  let used = ref false in
  fun v ->
    if !used then invalid_arg "Sim.Engine: resumer called twice";
    used := true;
    push_event w ~after:0. (fun () ->
        w.current_fiber <- fid;
        Effect.Deep.continue k v)

let start_fiber w fid f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          (* First failure wins; it aborts the whole run. *)
          if w.failure = None then w.failure <- Some e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep dt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  push_event w ~after:dt (fun () ->
                      w.current_fiber <- fid;
                      continue k ()))
          | Suspend register ->
              Some (fun (k : (a, unit) continuation) -> register (make_resumer w fid k))
          | _ -> None);
    }
  in
  w.current_fiber <- fid;
  match_with f () handler

let spawn ?(at = Float.neg_infinity) f =
  let w = get_world () in
  let fid = w.next_fiber in
  w.next_fiber <- fid + 1;
  let after = if at = Float.neg_infinity then 0. else at -. w.clock in
  push_event w ~after (fun () -> start_fiber w fid f)

let run ?(seed = 1) ?until main =
  if !current <> None then invalid_arg "Sim.Engine.run: already running";
  let w =
    {
      heap = Heap.create ();
      world_rng = Rng.create seed;
      clock = 0.;
      next_seq = 0;
      next_fiber = 0;
      current_fiber = 0;
      failure = None;
      main_done = false;
    }
  in
  current := Some w;
  incr runs;
  Fun.protect ~finally:(fun () -> current := None) @@ fun () ->
  let result = ref None in
  let fid = w.next_fiber in
  w.next_fiber <- fid + 1;
  push_event w ~after:0. (fun () ->
      start_fiber w fid (fun () ->
          let r = main () in
          result := Some r;
          w.main_done <- true));
  let rec loop () =
    if w.main_done || w.failure <> None then ()
    else
      match Heap.pop w.heap with
      | None -> raise Deadlock
      | Some { Heap.time; thunk; _ } -> (
          match until with
          | Some horizon when time > horizon -> raise (Horizon_reached horizon)
          | Some _ | None ->
              w.clock <- time;
              thunk ();
              loop ())
  in
  loop ();
  (match w.failure with Some e -> raise e | None -> ());
  match !result with
  | Some r -> r
  | None -> assert false
