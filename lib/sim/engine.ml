exception Deadlock
exception Horizon_reached of float

type 'a resumer = 'a -> unit

(* A timestamped cross-shard message: produced by [post] during a
   window, delivered by the coordinator at the merge barrier. (m_at,
   m_src, m_seq) totally orders every message of a window, making the
   merge deterministic regardless of domain scheduling. *)
type smsg = {
  m_at : float;
  m_src : int;
  m_seq : int;
  m_dst : int;
  m_thunk : unit -> unit;
}

type world = {
  q : Eventq.t;
  world_rng : Rng.t;
  clock : float array;  (* 1 element: a float-array store stays unboxed *)
  peek : float array;  (* 1 element: Eventq.next_time_into scratch *)
  mutable next_seq : int;
  mutable next_fiber : int;
  mutable current_fiber : int;
  mutable events : int;  (* dispatched so far this run *)
  mutable failure : exn option;
  mutable main_done : bool;
  (* sharding *)
  shard : int;
  nshards : int;
  lookahead_us : float;
  mutable outbox : smsg list;  (* drained at each merge barrier *)
  mutable out_seq : int;
  mutable msgs_out : int;
  mutable msgs_in : int;
  mutable stall_s : float;  (* real seconds spent waiting at barriers *)
}

(* The running world is domain-local: each shard's domain sees its own
   world, so [now]/[rng]/[spawn] inside event thunks bind to the shard
   executing them. *)
let current_key : world option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

(* Monotonic count of worlds ever started, readable outside a run.
   Registries that outlive [run] (Metrics, Span) compare it to decide
   when to lazily reset. Written only by the coordinating domain,
   before worker domains spawn. *)
let runs = ref 0
let run_count () = !runs

let get_world () =
  match !(Domain.DLS.get current_key) with
  | Some w -> w
  | None -> invalid_arg "Sim.Engine: no simulation is running"

let now () = (get_world ()).clock.(0)
let rng () = (get_world ()).world_rng
let fiber_id () = (get_world ()).current_fiber
let events_dispatched () = (get_world ()).events
let shard_id () = (get_world ()).shard
let shard_count () = (get_world ()).nshards
let lookahead () = (get_world ()).lookahead_us

(* Events due now (after <= 0) take the immediate lane: O(1) ring
   append, no heap traffic. Later events go through the banded queue.
   Both paths allocate nothing beyond the caller's thunk. *)
let push_event w ~after thunk =
  let seq = w.next_seq in
  w.next_seq <- seq + 1;
  if after <= 0. then Eventq.push_now w.q (Array.unsafe_get w.clock 0) seq thunk
  else Eventq.push w.q (Array.unsafe_get w.clock 0 +. after) seq thunk

let schedule ~after thunk = push_event (get_world ()) ~after thunk

let post ~shard ?after thunk =
  let w = get_world () in
  if shard < 0 || shard >= w.nshards then invalid_arg "Sim.Engine.post: no such shard";
  let after = match after with Some a -> a | None -> w.lookahead_us in
  if shard = w.shard then push_event w ~after thunk
  else begin
    if after < w.lookahead_us then
      invalid_arg "Sim.Engine.post: cross-shard delay below the lookahead window";
    let seq = w.out_seq in
    w.out_seq <- seq + 1;
    w.msgs_out <- w.msgs_out + 1;
    w.outbox <-
      {
        m_at = Array.unsafe_get w.clock 0 +. after;
        m_src = w.shard;
        m_seq = seq;
        m_dst = shard;
        m_thunk = thunk;
      }
      :: w.outbox
  end

type _ Effect.t +=
  | Sleep : float -> unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t

let sleep dt = Effect.perform (Sleep dt)
let yield () = Effect.perform (Sleep 0.)
let suspend register = Effect.perform (Suspend register)

let make_resumer w fid k =
  let used = ref false in
  fun v ->
    if !used then invalid_arg "Sim.Engine: resumer called twice";
    used := true;
    push_event w ~after:0. (fun () ->
        w.current_fiber <- fid;
        Effect.Deep.continue k v)

let start_fiber w fid f =
  let open Effect.Deep in
  let handler =
    {
      retc = (fun () -> ());
      exnc =
        (fun e ->
          (* First failure wins; it aborts the whole run. *)
          if w.failure = None then w.failure <- Some e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep dt ->
              Some
                (fun (k : (a, unit) continuation) ->
                  push_event w ~after:dt (fun () ->
                      w.current_fiber <- fid;
                      continue k ()))
          | Suspend register ->
              Some (fun (k : (a, unit) continuation) -> register (make_resumer w fid k))
          | _ -> None);
    }
  in
  w.current_fiber <- fid;
  match_with f () handler

let spawn ?(at = Float.neg_infinity) f =
  let w = get_world () in
  let fid = w.next_fiber in
  w.next_fiber <- fid + 1;
  let after =
    if at = Float.neg_infinity then 0.
    else begin
      let d = at -. Array.unsafe_get w.clock 0 in
      if d < 0. then invalid_arg "Sim.Engine.spawn: ~at is in the past";
      d
    end
  in
  push_event w ~after (fun () -> start_fiber w fid f)

(* -- per-shard dispatch ------------------------------------------------ *)

let make_world ~shard ~nshards ~lookahead ~seed =
  {
    q = Eventq.create ();
    world_rng = Rng.create_stream seed ~stream:shard;
    clock = [| 0. |];
    peek = [| 0. |];
    next_seq = 0;
    next_fiber = 0;
    current_fiber = 0;
    events = 0;
    failure = None;
    main_done = false;
    shard;
    nshards;
    lookahead_us = lookahead;
    outbox = [];
    out_seq = 0;
    msgs_out = 0;
    msgs_in = 0;
    stall_s = 0.;
  }

let spawn_main w main result =
  let fid = w.next_fiber in
  w.next_fiber <- fid + 1;
  push_event w ~after:0. (fun () ->
      start_fiber w fid (fun () ->
          let r = main () in
          result := Some r;
          w.main_done <- true))

(* The dispatch inner loop: per already-scheduled event, a peek, one
   comparison, one store, one pop — zero allocations.
   [Eventq.next_time_into] moves the peeked time through unboxed
   float-array slots so no float is ever boxed here. *)
let drive w ?until () =
  let q = w.q in
  let clock = w.clock in
  let peek = w.peek in
  let rec loop () =
    if w.main_done || w.failure <> None then ()
    else if Eventq.is_empty q then raise Deadlock
    else begin
      Eventq.next_time_into q peek;
      let time = Array.unsafe_get peek 0 in
      (match until with
      | Some horizon when time > horizon -> raise (Horizon_reached horizon)
      | Some _ | None -> ());
      Array.unsafe_set clock 0 time;
      w.events <- w.events + 1;
      let thunk = if Eventq.next_is_lane q then Eventq.pop_lane q else Eventq.pop_heap q in
      thunk ();
      loop ()
    end
  in
  loop ()

(* One conservative window: dispatch strictly below [window_end] (and
   never beyond the horizon — those events stay queued for the
   coordinator to judge). Runs in parallel across shards; soundness
   comes from [post] guaranteeing no in-window send lands before
   [window_end]. *)
let run_window w ~window_end ~horizon =
  let q = w.q in
  let clock = w.clock in
  let peek = w.peek in
  let continue_ = ref true in
  while !continue_ do
    if w.main_done || w.failure <> None || Eventq.is_empty q then continue_ := false
    else begin
      Eventq.next_time_into q peek;
      let time = Array.unsafe_get peek 0 in
      if time >= window_end || time > horizon then continue_ := false
      else begin
        Array.unsafe_set clock 0 time;
        w.events <- w.events + 1;
        let thunk = if Eventq.next_is_lane q then Eventq.pop_lane q else Eventq.pop_heap q in
        thunk ()
      end
    end
  done

(* -- shard statistics -------------------------------------------------- *)

type shard_stat = {
  sh_shard : int;
  sh_events : int;
  sh_msgs_out : int;
  sh_msgs_in : int;
  sh_stall_s : float;
}

let last_stats = ref ([||] : shard_stat array)
let last_windows_count = ref 0
let last_shard_stats () = !last_stats
let last_windows () = !last_windows_count

let stat_of w =
  {
    sh_shard = w.shard;
    sh_events = w.events;
    sh_msgs_out = w.msgs_out;
    sh_msgs_in = w.msgs_in;
    sh_stall_s = w.stall_s;
  }

(* -- single-world run -------------------------------------------------- *)

let finish_single w result =
  last_windows_count := 0;
  last_stats := [| stat_of w |];
  (match w.failure with Some e -> raise e | None -> ());
  match !result with Some r -> r | None -> assert false

let run_single ~seed ~until ~lookahead main =
  let cur = Domain.DLS.get current_key in
  if !cur <> None then invalid_arg "Sim.Engine.run: already running";
  let w = make_world ~shard:0 ~nshards:1 ~lookahead ~seed in
  cur := Some w;
  incr runs;
  Fun.protect ~finally:(fun () -> cur := None) @@ fun () ->
  let result = ref None in
  spawn_main w main result;
  drive w ?until ();
  finish_single w result

let run ?(seed = 1) ?until main = run_single ~seed ~until ~lookahead:0. main

(* -- sharded run ------------------------------------------------------- *)

(* Cyclic barrier over a mutex + condition; the phase counter lets the
   same barrier be reused every window. The mutex hand-off is also the
   happens-before edge that publishes window results (outboxes, queue
   states, [ctl] fields) between domains. *)
type barrier = {
  bm : Mutex.t;
  bc : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable phase : int;
}

let barrier_make parties = { bm = Mutex.create (); bc = Condition.create (); parties; arrived = 0; phase = 0 }

let barrier_wait b =
  Mutex.lock b.bm;
  let ph = b.phase in
  b.arrived <- b.arrived + 1;
  if b.arrived = b.parties then begin
    b.arrived <- 0;
    b.phase <- ph + 1;
    Condition.broadcast b.bc
  end
  else
    while b.phase = ph do
      Condition.wait b.bc b.bm
    done;
  Mutex.unlock b.bm

let timed_barrier w b =
  let t0 = Unix.gettimeofday () in
  barrier_wait b;
  w.stall_s <- w.stall_s +. (Unix.gettimeofday () -. t0)

type ctl = { mutable stop : bool; mutable window_end : float }

let run_sharded ?(seed = 1) ?until ?init ~shards ~lookahead main =
  if shards < 1 then invalid_arg "Sim.Engine.run_sharded: shards must be >= 1";
  if lookahead < 0. then invalid_arg "Sim.Engine.run_sharded: negative lookahead";
  if shards = 1 then
    (* Degenerate case: the exact single-world dispatch loop — traces
       are byte-identical with [run] (stream 0 = the unsharded RNG
       stream; [init] never applies below shard 1). *)
    run_single ~seed ~until ~lookahead main
  else begin
    if lookahead <= 0. then
      invalid_arg "Sim.Engine.run_sharded: lookahead must be positive with shards > 1";
    let cur = Domain.DLS.get current_key in
    if !cur <> None then invalid_arg "Sim.Engine.run: already running";
    let worlds = Array.init shards (fun k -> make_world ~shard:k ~nshards:shards ~lookahead ~seed) in
    let w0 = worlds.(0) in
    cur := Some w0;
    incr runs;
    let result = ref None in
    spawn_main w0 main result;
    (match init with
    | None -> ()
    | Some f ->
        for k = 1 to shards - 1 do
          let w = worlds.(k) in
          let fid = w.next_fiber in
          w.next_fiber <- fid + 1;
          push_event w ~after:0. (fun () -> start_fiber w fid (fun () -> f ~shard:k))
        done);
    let horizon = match until with Some h -> h | None -> infinity in
    let bar = barrier_make shards in
    let c = { stop = false; window_end = 0. } in
    let windows = ref 0 in
    let stop_exn : exn option ref = ref None in
    let workers =
      Array.init (shards - 1) (fun i ->
          let w = worlds.(i + 1) in
          Domain.spawn (fun () ->
              let dcur = Domain.DLS.get current_key in
              dcur := Some w;
              let rec wloop () =
                timed_barrier w bar;
                (* A: window published (or stop) *)
                if not c.stop then begin
                  (try run_window w ~window_end:c.window_end ~horizon
                   with e -> if w.failure = None then w.failure <- Some e);
                  timed_barrier w bar;
                  (* B: window done *)
                  wloop ()
                end
              in
              wloop ();
              dcur := None))
    in
    (* Deterministic merge: gather every outbox, order by (arrival,
       source shard, source seq), and stamp destination-side sequence
       numbers in that order — identical in every same-seed run. *)
    let deliver_all () =
      let msgs = ref [] in
      Array.iter
        (fun w ->
          (match w.outbox with [] -> () | l -> msgs := List.rev_append l !msgs);
          w.outbox <- [])
        worlds;
      match !msgs with
      | [] -> ()
      | l ->
          let sorted =
            List.sort
              (fun a b ->
                if a.m_at < b.m_at then -1
                else if a.m_at > b.m_at then 1
                else if a.m_src <> b.m_src then Int.compare a.m_src b.m_src
                else Int.compare a.m_seq b.m_seq)
              l
          in
          List.iter
            (fun m ->
              let d = worlds.(m.m_dst) in
              let seq = d.next_seq in
              d.next_seq <- seq + 1;
              d.msgs_in <- d.msgs_in + 1;
              Eventq.push d.q m.m_at seq m.m_thunk)
            sorted
    in
    let first_failure () =
      let r = ref None in
      Array.iter (fun w -> if !r = None then match w.failure with Some e -> r := Some e | None -> ()) worlds;
      !r
    in
    let rec rounds () =
      deliver_all ();
      if w0.main_done then ()
      else
        match first_failure () with
        | Some e -> stop_exn := Some e
        | None ->
            let t_min = ref infinity in
            Array.iter
              (fun w -> if not (Eventq.is_empty w.q) then begin
                   let t = Eventq.next_time w.q in
                   if t < !t_min then t_min := t
                 end)
              worlds;
            if !t_min = infinity then stop_exn := Some Deadlock
            else if !t_min > horizon then stop_exn := Some (Horizon_reached horizon)
            else begin
              c.window_end <- !t_min +. lookahead;
              incr windows;
              timed_barrier w0 bar;
              (try run_window w0 ~window_end:c.window_end ~horizon
               with e -> if w0.failure = None then w0.failure <- Some e);
              timed_barrier w0 bar;
              rounds ()
            end
    in
    Fun.protect
      ~finally:(fun () ->
        c.stop <- true;
        barrier_wait bar;
        Array.iter Domain.join workers;
        last_windows_count := !windows;
        last_stats := Array.map stat_of worlds;
        cur := None)
    @@ fun () ->
    rounds ();
    (match !stop_exn with Some e -> raise e | None -> ());
    match !result with Some r -> r | None -> assert false
  end
