(** Calibration constants for the simulated testbed.

    The paper's cluster (§6): 36 8-core machines in two racks, gigabit
    NICs, 18 CORFU storage nodes (9 replica sets × 2, Intel X25-V
    SSDs), a 32-core sequencer machine, 4KB log entries, and a batch
    of 4 commit records per entry. Each field below is the synthetic
    stand-in for one measured property of that hardware; the
    derivations are in DESIGN.md §1 and the comments in [params.ml].

    All times are microseconds of virtual time. *)

type t = {
  net_latency_us : float;  (** one-way propagation delay *)
  net_jitter : float;  (** multiplicative latency jitter bound *)
  nic_bandwidth : float;  (** bytes/µs per NIC direction (125 = 1 Gbps) *)
  entry_bytes : int;  (** fixed CORFU log-entry size *)
  rpc_bytes : int;  (** size of small control messages *)
  sequencer_service_us : float;  (** per-request time at the sequencer *)
  storage_write_us : float;  (** SSD service time for a 4KB write *)
  storage_read_us : float;  (** SSD service time for a 4KB read *)
  storage_capacity : int;  (** parallel ops per storage node *)
  client_dispatch_us : float;  (** Tango runtime cost to issue one op *)
  apply_record_us : float;  (** cost to apply one update record to a view *)
  commit_batch : int;  (** update/commit records packed per log entry *)
  backpointer_k : int;  (** stream-header backpointers per stream *)
  max_streams_per_entry : int;  (** multiappend fan-out limit *)
  fill_timeout_us : float;  (** hole-filling timeout (paper: 100 ms) *)
  append_window : int;
      (** max log entries a client keeps in flight concurrently (the
          paper's §6.1 append window, 8–256 in Fig. 8) *)
  prefetch_min : int;  (** playback prefetch window floor (entries) *)
  prefetch_max : int;
      (** playback prefetch window cap; the window adapts between the
          floor and this cap on observed cache miss rate *)
  retry_sleep_us : float;
      (** initial sleep between undecided-commit / settle retries *)
  retry_backoff_max_us : float;
      (** bound for the exponential backoff on those retries *)
  rpc_timeout_us : float;
      (** client-side deadline on storage RPCs before the peer is
          presumed dead; must exceed the worst queueing delay of a
          saturated node, or healthy-but-busy servers get declared
          failed *)
}

(** The paper-calibrated testbed. *)
val default : t

(** [replica_sets_of_servers n] is [n/2]: the paper always mirrors
    across racks in sets of two. *)
val replica_sets_of_servers : int -> int
