(** Queueing stations: the cost model of the simulation.

    A resource models a physical bottleneck — a NIC direction, an SSD,
    a CPU — as [capacity] identical servers in front of a FIFO queue.
    A fiber occupies one server for a service time; when all servers
    are busy the fiber waits in line. Saturation curves in the
    benchmarks emerge from these queues. *)

type t

(** Raised (with the station's name) by {!acquire}/{!use} when the
    station has been failed by {!fail}: the hardware behind the queue
    is gone, so the operation can never complete. *)
exception Failed of string

(** [create ~name ~capacity ()] makes a station with [capacity]
    parallel servers.
    @raise Invalid_argument if [capacity < 1]. *)
val create : name:string -> capacity:int -> unit -> t

val name : t -> string

(** [capacity t] is the number of parallel servers, for utilization
    reporting ([busy_time] / (interval × capacity)). *)
val capacity : t -> int

(** [acquire t] takes one server, waiting in FIFO order if none is
    free.
    @raise Failed if the station is failed (also raised from the wait
    when {!fail} hits a queued fiber). *)
val acquire : t -> unit

(** [release t] frees one server, handing it to the longest-waiting
    fiber if any.
    @raise Invalid_argument if no server is held. *)
val release : t -> unit

(** [use t dt] = acquire, hold for [dt] microseconds, release. This is
    the normal way to charge a cost to the resource. *)
val use : t -> float -> unit

(** [fail t] breaks the station: subsequent {!acquire}/{!use} raise
    {!Failed}, and every fiber already queued is woken into that same
    failure. Holders of in-flight service times finish normally (the
    request was already on the device). Used by the fault plane to
    model an SSD dying. *)
val fail : t -> unit

(** [repair t] puts a failed station back in service. *)
val repair : t -> unit

val failed : t -> bool

(** [queue_length t] is the number of fibers currently waiting. *)
val queue_length : t -> int

(** [busy_time t] is the total server-busy integral (µs × servers)
    accumulated so far, for utilization reporting. *)
val busy_time : t -> float
