(** Deterministic fault injection.

    A fault controller is attached to a {!Net} fabric (see
    {!Net.install_fault}) and consulted once per message direction. It
    can crash and restart hosts (by name), partition the network into
    components and heal it, and degrade selected edges with
    probabilistic drops and extra delay — which also reorders
    fire-and-forget casts, since each delivery sleeps independently.
    SSD-style resource failures compose through {!Custom} actions
    wrapping {!Resource.fail}.

    {b Determinism contract.} The controller owns a private
    {!Rng.t} seeded at {!create} — independent of the simulation
    world's generator — and draws from it only when a matching edge
    rule actually needs randomness. Consequences: (1) installing a
    controller with no active faults leaves a simulation's event
    sequence byte-identical to a run without one; (2) the same seed and
    fault plan reproduce the same trace on every run. Fault actions are
    scheduled as virtual-time events ({!schedule}, {!plan}), so a whole
    fault scenario is a pure function of (world seed, fault seed,
    plan). *)

type t

(** A message verdict: deliver after an extra delay (µs, usually 0), or
    silently drop. *)
type verdict = Deliver of float | Drop

type action =
  | Crash of string  (** host by name: NICs and services go dead *)
  | Restart of string
  | Partition of string list list
      (** connectivity components; hosts absent from every listed
          component share one implicit component *)
  | Heal  (** remove the partition *)
  | Degrade of { d_src : string; d_dst : string; d_drop : float; d_delay_us : float; d_jitter_us : float }
      (** per-edge drop probability and extra delay; ["*"] matches any
          host *)
  | Clear_edge of string * string
  | Custom of string * (unit -> unit)
      (** escape hatch for faults outside the network (e.g. failing an
          SSD {!Resource.t}); the thunk runs at the scheduled time and
          must not suspend *)

(** [create ?seed ()] makes an idle controller (nothing crashed, no
    partition, no degraded edges). [seed] (default 0) seeds the
    controller's private generator. *)
val create : ?seed:int -> unit -> t

(** {2 Immediate faults} *)

val crash : t -> string -> unit
val restart : t -> string -> unit
val is_crashed : t -> string -> bool
val partition : t -> string list list -> unit
val heal : t -> unit

val degrade :
  t -> src:string -> dst:string -> ?drop:float -> ?delay_us:float -> ?jitter_us:float -> unit -> unit

val clear_edge : t -> src:string -> dst:string -> unit

(** [apply t action] executes one action now, logging it to the event
    list and the trace. *)
val apply : t -> action -> unit

(** {2 Scheduled plans} *)

(** [schedule t ~at action] applies [action] at absolute virtual time
    [at] (clamped to now). *)
val schedule : t -> at:float -> action -> unit

(** [plan t actions] schedules a whole fault scenario. *)
val plan : t -> (float * action) list -> unit

(** {2 Consultation and audit} *)

(** [judge t ~src ~dst] decides the fate of one message between named
    hosts. Called by {!Net} for each direction of an RPC. *)
val judge : t -> src:string -> dst:string -> verdict

type event = { ev_time : float; ev_label : string }

(** Applied actions in chronological order, for correlating faults with
    recovery metrics. *)
val events : t -> event list

(** {2 Plans as data}

    A fault plan — the [(time, action) list] fed to {!plan} — is also
    a {e replayable artifact}: the fuzzer serializes every failing plan
    to versioned JSON so any violation can be re-run, shrunk, and
    attached to a bug report. [Custom] actions serialize by {e name}
    only; {!decode_plan} rebinds the thunk through the [custom]
    resolver (and {!equal_action} compares customs by name), so a
    plan's identity never depends on closure values. *)

(** [equal_action a b]: structural equality; [Custom] by name. *)
val equal_action : action -> action -> bool

(** Prints the same label {!apply} logs. *)
val pp_action : Format.formatter -> action -> unit

val equal_plan : (float * action) list -> (float * action) list -> bool
val pp_plan : Format.formatter -> (float * action) list -> unit

(** Bumped on any incompatible change to the plan JSON layout. *)
val plan_version : int

(** [encode_plan p] is [p] as a versioned JSON document. Floats are
    written exactly (17 significant digits), so
    [decode_plan (encode_plan p)] satisfies [equal_plan] with [p]. *)
val encode_plan : (float * action) list -> string

(** [decode_plan ?custom s] parses a plan document. [custom name]
    supplies the thunk for each [Custom] action (default: a thunk that
    raises [Invalid_argument] when executed — fine for plans that are
    only compared, printed, or re-encoded).
    @raise Jin.Parse_error on malformed JSON.
    @raise Invalid_argument on an unknown version or action kind. *)
val decode_plan : ?custom:(string -> unit -> unit) -> string -> (float * action) list

(** [decode_plan_value ?custom v] reads a plan from an already-parsed
    {!Jin} document — for plans embedded inside larger artifacts (the
    fuzzer's replayable envelope). *)
val decode_plan_value : ?custom:(string -> unit -> unit) -> Jin.t -> (float * action) list
