type t = {
  net_latency_us : float;
  net_jitter : float;
  nic_bandwidth : float;
  entry_bytes : int;
  rpc_bytes : int;
  sequencer_service_us : float;
  storage_write_us : float;
  storage_read_us : float;
  storage_capacity : int;
  client_dispatch_us : float;
  apply_record_us : float;
  commit_batch : int;
  backpointer_k : int;
  max_streams_per_entry : int;
  fill_timeout_us : float;
  append_window : int;
  prefetch_min : int;
  prefetch_max : int;
  retry_sleep_us : float;
  retry_backoff_max_us : float;
  rpc_timeout_us : float;
}

(* Derivations (see DESIGN.md §1):
   - sequencer_service_us = 1.75: Fig. 2 plateaus at ~570K req/s.
   - storage_write_us = 80: Fig. 10(L) shows a 6-server log (3 replica
     sets) saturating around 150K tx/s with 4 commit records per
     entry, i.e. ~12.5K appends/s per set; the chain head is the
     bottleneck, so one 4KB write is ~80 µs.
   - storage_read_us = 16.6: Fig. 8(R) shows a 2-server log
     bottlenecking at ~120K reads/s; reads of committed entries are
     spread across both replicas, so each sustains ~60K/s.
   - client_dispatch_us = 7: Fig. 8(L) shows a single client topping
     out near 135K linearizable reads/s; the runtime's dispatch thread
     is the cap.
   - apply_record_us = 22: Fig. 9 shows the playback bottleneck
     pinning fully-replicated transaction throughput near 40K/s no
     matter how many clients are added: every client must apply every
     commit record, so one client sustains ~45K records/s.
   - net_latency_us = 50 one-way: sub-millisecond reads (Fig. 8 L)
     with pipelining, ~2 ms writes near saturation. *)
let default =
  {
    net_latency_us = 50.;
    net_jitter = 0.05;
    nic_bandwidth = 125.;
    entry_bytes = 4096;
    rpc_bytes = 64;
    sequencer_service_us = 1.75;
    storage_write_us = 80.;
    storage_read_us = 16.6;
    storage_capacity = 1;
    client_dispatch_us = 7.;
    apply_record_us = 22.;
    commit_batch = 4;
    backpointer_k = 4;
    max_streams_per_entry = 16;
    fill_timeout_us = 100_000.;
    append_window = 8;
    prefetch_min = 16;
    prefetch_max = 64;
    retry_sleep_us = 200.;
    retry_backoff_max_us = 1_600.;
    (* Worst-case queueing on a saturated chain head (64 writers, 80 µs
       writes) is a few ms; 50 ms leaves an order of magnitude of
       headroom while still detecting a dead node well inside the
       100 ms fill timeout. *)
    rpc_timeout_us = 50_000.;
  }

let replica_sets_of_servers n =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Params.replica_sets_of_servers: need an even count";
  n / 2
