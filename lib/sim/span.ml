type id = int

let id_int i = i

type rec_ = {
  sid : int;
  sparent : int option;
  sname : string;
  shost : string option;
  sfiber : int;
  st0 : float;
  mutable st1 : float;  (* nan while open *)
  mutable sargs : (string * string) list;
}

type state = {
  born : int;
  mutable arr : rec_ option array;
  mutable count : int;
  stacks : (int, int list) Hashtbl.t;  (* fiber id -> open span ids, innermost first *)
}

let fresh ~born = { born; arr = Array.make 256 None; count = 0; stacks = Hashtbl.create 32 }
let current_state = ref (fresh ~born:0)

let state () =
  let rc = Engine.run_count () in
  if !current_state.born <> rc then current_state := fresh ~born:rc;
  !current_state

let reset () = current_state := fresh ~born:(Engine.run_count ())

let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let get st i = match st.arr.(i) with Some r -> r | None -> assert false

let push st r =
  if st.count = Array.length st.arr then begin
    let bigger = Array.make (2 * st.count) None in
    Array.blit st.arr 0 bigger 0 st.count;
    st.arr <- bigger
  end;
  st.arr.(st.count) <- Some r;
  st.count <- st.count + 1

let stack_of st fid = match Hashtbl.find_opt st.stacks fid with Some s -> s | None -> []

let current () =
  if not !enabled_flag then None
  else
    let st = state () in
    match stack_of st (Engine.fiber_id ()) with [] -> None | top :: _ -> Some top

let with_span ?host ?(args = []) name f =
  if not !enabled_flag then f ()
  else begin
    let st = state () in
    let fid = Engine.fiber_id () in
    let old_stack = stack_of st fid in
    let sparent = match old_stack with [] -> None | top :: _ -> Some top in
    let shost =
      match host with
      | Some _ -> host
      | None -> ( match sparent with Some p -> (get st p).shost | None -> None)
    in
    let sid = st.count in
    let r = { sid; sparent; sname = name; shost; sfiber = fid; st0 = Engine.now (); st1 = Float.nan; sargs = args } in
    push st r;
    Hashtbl.replace st.stacks fid (sid :: old_stack);
    Fun.protect
      ~finally:(fun () ->
        r.st1 <- Engine.now ();
        if Flight.enabled () then
          Flight.record
            ~host:(match r.shost with Some h -> h | None -> "")
            Flight.Span_close ~name:r.sname ~value:(r.st1 -. r.st0);
        (* The stack may belong to a newer generation if a reset
           happened mid-span; only unwind our own generation. *)
        if !current_state == st then Hashtbl.replace st.stacks fid old_stack)
      f
  end

let with_parent parent f =
  if not !enabled_flag then f ()
  else begin
    let st = state () in
    let fid = Engine.fiber_id () in
    let old_stack = stack_of st fid in
    Hashtbl.replace st.stacks fid (match parent with None -> [] | Some p -> [ p ]);
    Fun.protect
      ~finally:(fun () -> if !current_state == st then Hashtbl.replace st.stacks fid old_stack)
      f
  end

let add_arg k v =
  if !enabled_flag then begin
    let st = state () in
    match stack_of st (Engine.fiber_id ()) with
    | [] -> ()
    | top :: _ ->
        let r = get st top in
        r.sargs <- r.sargs @ [ (k, v) ]
  end

type view = {
  v_id : int;
  v_parent : int option;
  v_name : string;
  v_host : string option;
  v_fiber : int;
  v_start : float;
  v_end : float option;
  v_args : (string * string) list;
}

let spans () =
  let st = state () in
  List.init st.count (fun i ->
      let r = get st i in
      {
        v_id = r.sid;
        v_parent = r.sparent;
        v_name = r.sname;
        v_host = r.shost;
        v_fiber = r.sfiber;
        v_start = r.st0;
        v_end = (if Float.is_nan r.st1 then None else Some r.st1);
        v_args = r.sargs;
      })

let dump_json () =
  let st = state () in
  (* Assign pids to hosts in first-appearance (span id) order so the
     mapping — and thus the whole dump — is deterministic. *)
  let pids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let pid_order = ref [] in
  let next_pid = ref 0 in
  let pid_of host =
    let name = match host with Some h -> h | None -> "(no host)" in
    match Hashtbl.find_opt pids name with
    | Some p -> p
    | None ->
        let p = !next_pid in
        incr next_pid;
        Hashtbl.replace pids name p;
        pid_order := (name, p) :: !pid_order;
        p
  in
  for i = 0 to st.count - 1 do
    ignore (pid_of (get st i).shost)
  done;
  let events = ref [] in
  for i = st.count - 1 downto 0 do
    let r = get st i in
    let dur = if Float.is_nan r.st1 then 0. else r.st1 -. r.st0 in
    let args =
      [ ("id", Jout.str (string_of_int r.sid)) ]
      @ (match r.sparent with None -> [] | Some p -> [ ("parent", Jout.str (string_of_int p)) ])
      @ List.map (fun (k, v) -> (k, Jout.str v)) r.sargs
      @ (if Float.is_nan r.st1 then [ ("unfinished", "true") ] else [])
    in
    events :=
      Jout.obj
        [
          ("name", Jout.str r.sname);
          ("ph", Jout.str "X");
          ("pid", string_of_int (pid_of r.shost));
          ("tid", string_of_int r.sfiber);
          ("ts", Jout.flt r.st0);
          ("dur", Jout.flt dur);
          ("args", Jout.obj args);
        ]
      :: !events
  done;
  let meta =
    List.rev_map
      (fun (name, p) ->
        Jout.obj
          [
            ("name", Jout.str "process_name");
            ("ph", Jout.str "M");
            ("pid", string_of_int p);
            ("tid", "0");
            ("args", Jout.obj [ ("name", Jout.str name) ]);
          ])
      !pid_order
  in
  Jout.obj [ ("traceEvents", Jout.arr (meta @ !events)) ]

let capture f =
  let prev = !enabled_flag in
  enabled_flag := true;
  match f () with
  | r ->
      let dump = dump_json () in
      enabled_flag := prev;
      (r, dump)
  | exception e ->
      enabled_flag := prev;
      raise e
