(* Incident flight recorder: a bounded per-host ring of recent
   structured events (span closes, metric writes, fault-plane actions,
   SLO alerts). Recording is one branch when disabled; when enabled it
   writes into preallocated parallel arrays (no per-event record — a
   mixed record with mutable float fields would box every store).
   [snapshot] freezes the rings into JSON + Chrome-trace strings at
   incident time, because the rings keep rolling afterwards. *)

type kind = Span_close | Metric | Fault | Alert | Note

let kind_code = function Span_close -> 0 | Metric -> 1 | Fault -> 2 | Alert -> 3 | Note -> 4
let kind_name = function 0 -> "span" | 1 -> "metric" | 2 -> "fault" | 3 -> "alert" | _ -> "note"

type ring = {
  r_host : string;
  times : float array;
  values : float array;
  kinds : int array;
  names : string array;
  mutable head : int;  (* next write slot *)
  mutable total : int;  (* events ever recorded on this host *)
}

type snap = { sn_reason : string; sn_time : float; sn_json : string; sn_trace : string }

type state = {
  born : int;
  rings : (string, ring) Hashtbl.t;
  mutable snaps : snap list;  (* newest first *)
  mutable n_snaps : int;
}

let fresh ~born = { born; rings = Hashtbl.create 16; snaps = []; n_snaps = 0 }
let current = ref (fresh ~born:0)

let state () =
  let rc = Engine.run_count () in
  if !current.born <> rc then current := fresh ~born:rc;
  !current

let reset () = current := fresh ~born:(Engine.run_count ())

(* Sticky configuration, like the Span enabled flag: survives engine
   resets so a harness can arm the recorder once for many runs. *)
let enabled_flag = ref false
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let ring_cap = ref 256
let max_snaps = ref 16

let configure ?cap ?snapshots () =
  (match cap with
  | Some c -> if c <= 0 then invalid_arg "Flight.configure: cap must be positive" else ring_cap := c
  | None -> ());
  match snapshots with
  | Some s ->
      if s <= 0 then invalid_arg "Flight.configure: snapshots must be positive" else max_snaps := s
  | None -> ()

let new_ring st host =
  let cap = !ring_cap in
  let r =
    {
      r_host = host;
      times = Array.make cap 0.;
      values = Array.make cap 0.;
      kinds = Array.make cap 0;
      names = Array.make cap "";
      head = 0;
      total = 0;
    }
  in
  Hashtbl.replace st.rings host r;
  r

let record ~host kind ~name ~value =
  if !enabled_flag then begin
    let st = state () in
    let r =
      match Hashtbl.find st.rings host with r -> r | exception Not_found -> new_ring st host
    in
    let i = r.head in
    r.times.(i) <- Engine.now ();
    r.values.(i) <- value;
    r.kinds.(i) <- kind_code kind;
    r.names.(i) <- name;
    r.head <- (if i + 1 = Array.length r.times then 0 else i + 1);
    r.total <- r.total + 1
  end

let note ~host name = record ~host Note ~name ~value:0.

let events_recorded () =
  Hashtbl.fold (fun _ r acc -> acc + r.total) (state ()).rings 0

(* -- snapshot rendering ------------------------------------------------ *)

let sorted_rings st =
  Hashtbl.fold (fun _ r acc -> r :: acc) st.rings []
  |> List.sort (fun a b -> compare a.r_host b.r_host)

(* Iterate a ring oldest -> newest. *)
let ring_iter r f =
  let cap = Array.length r.times in
  let len = if r.total < cap then r.total else cap in
  let first = if r.total < cap then 0 else r.head in
  for k = 0 to len - 1 do
    let i = (first + k) mod cap in
    f r.times.(i) r.kinds.(i) r.names.(i) r.values.(i)
  done

let render_json st ~reason ~time =
  let hosts =
    List.map
      (fun r ->
        let events = ref [] in
        ring_iter r (fun t k n v ->
            events :=
              Jout.obj
                [
                  ("t_us", Jout.flt t);
                  ("kind", Jout.str (kind_name k));
                  ("name", Jout.str n);
                  ("value", Jout.flt v);
                ]
              :: !events);
        Jout.obj
          [
            ("host", Jout.str r.r_host);
            ("recorded", string_of_int r.total);
            ("events", Jout.arr (List.rev !events));
          ])
      (sorted_rings st)
  in
  Jout.obj
    [ ("reason", Jout.str reason); ("t_us", Jout.flt time); ("hosts", Jout.arr hosts) ]

let render_trace st ~reason ~time =
  let rings = sorted_rings st in
  let meta =
    List.mapi
      (fun p r ->
        Jout.obj
          [
            ("name", Jout.str "process_name");
            ("ph", Jout.str "M");
            ("pid", string_of_int p);
            ("tid", "0");
            ("args", Jout.obj [ ("name", Jout.str r.r_host) ]);
          ])
      rings
  in
  let events = ref [] in
  List.iteri
    (fun p r ->
      ring_iter r (fun t k n v ->
          events :=
            Jout.obj
              [
                ("name", Jout.str n);
                ("ph", Jout.str "i");
                ("s", Jout.str "t");
                ("pid", string_of_int p);
                ("tid", "0");
                ("ts", Jout.flt t);
                ( "args",
                  Jout.obj [ ("kind", Jout.str (kind_name k)); ("value", Jout.flt v) ] );
              ]
            :: !events))
    rings;
  let incident =
    Jout.obj
      [
        ("name", Jout.str ("incident: " ^ reason));
        ("ph", Jout.str "i");
        ("s", Jout.str "g");
        ("pid", "0");
        ("tid", "0");
        ("ts", Jout.flt time);
        ("args", Jout.obj [ ("reason", Jout.str reason) ]);
      ]
  in
  Jout.obj [ ("traceEvents", Jout.arr (meta @ List.rev !events @ [ incident ])) ]

let snapshot ~reason =
  if !enabled_flag then begin
    let st = state () in
    if st.n_snaps < !max_snaps then begin
      (* Oracle checks run inside the engine, but terminal blame (a
         deadlock, a horizon overrun) is assigned after the run has
         unwound — stamp those snapshots at 0. *)
      let time = try Engine.now () with Invalid_argument _ -> 0. in
      let sn =
        {
          sn_reason = reason;
          sn_time = time;
          sn_json = render_json st ~reason ~time;
          sn_trace = render_trace st ~reason ~time;
        }
      in
      st.snaps <- sn :: st.snaps;
      st.n_snaps <- st.n_snaps + 1
    end
  end

let snapshots () = List.rev (state ()).snaps
let snapshot_count () = (state ()).n_snaps

let dump_json () =
  let st = state () in
  Jout.obj
    [
      ("snapshots", Jout.arr (List.rev_map (fun sn -> sn.sn_json) st.snaps));
    ]
