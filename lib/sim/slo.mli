(** Declarative SLO monitors with multi-window burn-rate alerting.

    A monitor watches one {!Timeseries} column (an append-latency p99,
    a playback-lag watermark, an error rate). Every sealed window is
    classified good or bad against a threshold; the monitor computes
    how fast the bad-window fraction is burning the error budget
    [1 - objective] over a {e fast} and a {e slow} trailing window,
    and fires only when {e both} exceed the [burn] multiplier — the
    classic pairing: the fast window gives low detection latency, the
    slow window keeps a single bad blip from paging.

    Alert transitions (fire and resolve) are appended to a
    deterministic, virtually-timestamped stream: alerts are stamped at
    the end of the window that caused the transition, so two same-seed
    runs produce byte-identical {!alerts_json}. Firing also records
    into {!Flight} and takes a flight snapshot when the recorder is
    armed. {!subscribe} is the trigger interface the auto-scaling
    controller fiber will consume.

    Evaluation is O(1) per window per monitor (a classification bit
    ring with incremental fast/slow counts) and runs on the
    {!Timeseries.on_window_close} hook. State is engine-reset, like
    {!Metrics}. *)

type monitor

(** [monitor ~name ~series ~col ?kind ~threshold ~objective ()]
    registers a monitor on {!Timeseries} series/column (resolved
    lazily, so monitors may be declared before the source exists).
    A window is {e bad} when its value is above ([?kind = `Above],
    default) or below ([`Below]) [threshold]; windows with [nan]
    values count as good. [objective] is the target good-window
    fraction in [0, 1) — the error budget is [1 - objective].
    [fast_windows] (default 3) and [slow_windows] (default 12) are the
    two trailing evaluation horizons; the monitor fires when both burn
    rates reach [burn] (default 2.0) and resolves when either drops
    back under. *)
val monitor :
  name:string ->
  series:string ->
  col:string ->
  ?kind:[ `Above | `Below ] ->
  threshold:float ->
  objective:float ->
  ?fast_windows:int ->
  ?slow_windows:int ->
  ?burn:float ->
  unit ->
  monitor

(** [eval ()] classifies any newly sealed windows for every monitor.
    Runs automatically on window close; idempotent when nothing new
    has sealed (exposed for tests and post-run catch-up). *)
val eval : unit -> unit

(** [feed m v] pushes one synthetic window value through [m]'s
    burn-rate machinery, bypassing {!Timeseries} — the unit-test and
    [slo.eval] bench-kernel entry point. *)
val feed : monitor -> float -> unit

val firing : monitor -> bool
val monitor_name : monitor -> string

type alert = {
  al_time : float;  (** virtual µs of the causing window's end *)
  al_monitor : string;
  al_firing : bool;  (** [true] = fired, [false] = resolved *)
  al_burn_fast : float;
  al_burn_slow : float;
  al_value : float;  (** the window value that tipped the transition *)
}

(** Alert transitions of the run, oldest first. *)
val alerts : unit -> alert list

(** Canonical JSON array of {!alerts} — the report's [alerts] section.
    Byte-identical across two same-seed runs. *)
val alerts_json : unit -> string

(** [subscribe f] calls [f] on every alert transition, in subscription
    order — the auto-scaling controller's trigger interface. *)
val subscribe : (alert -> unit) -> unit

(** Clear all monitors and alerts immediately (tests). *)
val reset : unit -> unit
