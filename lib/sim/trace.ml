let state = ref (match Sys.getenv_opt "TANGO_TRACE" with Some ("1" | "true") -> true | _ -> false)

let set_enabled b = state := b
let enabled () = !state

(* When capturing, lines go to a buffer instead of stderr so a test can
   compare two runs byte for byte. *)
let sink : Format.formatter option ref = ref None

let f ?host component fmt =
  if !state then begin
    let ppf = match !sink with Some p -> p | None -> Format.err_formatter in
    let clock = try Engine.now () with Invalid_argument _ -> 0. in
    let fiber = try Engine.fiber_id () with Invalid_argument _ -> -1 in
    let span =
      if not (Span.enabled ()) then ""
      else
        match (try Span.current () with Invalid_argument _ -> None) with
        | Some id -> Printf.sprintf " s%-5d" (Span.id_int id)
        | None -> Printf.sprintf " %-6s" "-"
    in
    Format.fprintf ppf "[%12.1f] f%-4d%s %-14s %-10s " clock fiber span
      (match host with Some h -> h | None -> "-")
      component;
    Format.kfprintf (fun ppf -> Format.pp_print_newline ppf ()) ppf fmt
  end
  else Format.ifprintf Format.err_formatter fmt

let capture fn =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let saved_state = !state in
  let saved_sink = !sink in
  state := true;
  sink := Some ppf;
  let restore () =
    Format.pp_print_flush ppf ();
    state := saved_state;
    sink := saved_sink
  in
  match fn () with
  | r ->
      restore ();
      (r, Buffer.contents buf)
  | exception e ->
      restore ();
      raise e
