(** Simulated datacenter network.

    Hosts own full-duplex NICs modelled as {!Resource.t} pairs; every
    message charges serialization time (bytes / bandwidth) on the
    sender's outbound NIC and the receiver's inbound NIC, plus a
    propagation latency with optional jitter. Services are typed
    request/response endpoints; {!call} performs a blocking RPC with
    both directions paying network costs. Handler code runs in the
    calling fiber but charges its costs to the {e server's} resources,
    so server saturation behaves correctly.

    A {!Fault.t} controller can be installed on the fabric; every
    message direction is then judged by it (crashes, partitions,
    per-edge drop/delay). {!call_r} is the failure-aware RPC variant
    returning a [result] instead of hanging. *)

type t
type host

(** [create ~latency ~bandwidth ?jitter ()] builds a network fabric.
    [latency] is the one-way propagation delay in µs; [bandwidth] is
    per-NIC-direction in bytes/µs; [jitter] (default 0.05) scales a
    uniform multiplicative perturbation of the latency. *)
val create : latency:float -> bandwidth:float -> ?jitter:float -> unit -> t

(** [add_host t name] registers a machine with its own NIC pair and a
    CPU station ([cores], default 8). *)
val add_host : ?cores:int -> t -> string -> host

val host_name : host -> string
val host_cpu : host -> Resource.t
val nic_in : host -> Resource.t
val nic_out : host -> Resource.t

type ('req, 'resp) service

(** [service host ~name serve] exposes [serve] as an RPC endpoint on
    [host]. [serve] should model its own server-side costs (CPU, SSD)
    via {!Resource.use}. *)
val service : host -> name:string -> ('req -> 'resp) -> ('req, 'resp) service

(** [service_name svc] is the name the endpoint was registered under.
    RPC spans are labelled ["rpc.<service_name>"]. *)
val service_name : ('req, 'resp) service -> string

(** [call ~from svc req] performs a blocking RPC. [req_bytes] and
    [resp_bytes] (default 64) size the two messages. Calls between a
    host and itself skip the network entirely.

    Under an installed fault controller, a dropped message or a dead
    peer makes the call {e hang forever} — the historical footgun this
    models faithfully. Use {!call_r} anywhere a fault may strike. *)
val call :
  ?req_bytes:int -> ?resp_bytes:int -> from:host -> ('req, 'resp) service -> 'req -> 'resp

(** Why an RPC failed: the deadline passed with no response, or the
    failure was evident immediately (caller/callee host crashed, or the
    servicing device raised {!Resource.Failed} on a loopback call). *)
type rpc_error = Rpc_timeout | Rpc_dead

(** [call_r ?timeout_us ~from svc req] is {!call} with a failure path:
    [Error Rpc_timeout] after [timeout_us] with no response (lost
    request, lost response, dead or partitioned peer, failed device),
    [Error Rpc_dead] when failure is known immediately. Without
    [timeout_us] a lost exchange still hangs, like {!call}.

    When no fault controller is installed the exchange runs exactly
    like {!call} in the calling fiber (and always returns [Ok]), so
    fault-free simulations are byte-identical with or without the
    wrapper. *)
val call_r :
  ?req_bytes:int ->
  ?resp_bytes:int ->
  ?timeout_us:float ->
  from:host ->
  ('req, 'resp) service ->
  'req ->
  ('resp, rpc_error) result

(** [install_fault t fault] attaches a fault controller to the fabric;
    all subsequent traffic between this fabric's hosts consults it. *)
val install_fault : t -> Fault.t -> unit

val fault : t -> Fault.t option

(** [send ~from svc req] is a fire-and-forget cast: the caller pays
    only its own serialization cost; delivery and handling happen in a
    fresh fiber. *)
val send : ?req_bytes:int -> from:host -> ('req, unit) service -> 'req -> unit

(** [one_way_delay t ~bytes] is the modelled cost of moving [bytes]
    one hop, excluding queueing: serialization at both ends plus mean
    propagation latency. Useful for calibration printouts. *)
val one_way_delay : t -> bytes:int -> float

(** [lookahead t] is a sound conservative-synchronization window for
    this fabric: no message propagates in less than the base latency
    (jitter only lengthens delays), so sharded worlds linked by [t]
    may pass [lookahead t] to {!Engine.run_sharded}. *)
val lookahead : t -> float
