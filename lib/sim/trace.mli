(** Lightweight simulation tracing.

    Disabled by default; set the environment variable [TANGO_TRACE=1]
    (or call {!set_enabled}) to print one line per event to stderr.
    Every line carries the virtual timestamp, the emitting fiber's id,
    and — when the caller passes [?host] — the simulated machine the
    event belongs to, so injected faults and recovery steps are
    attributable. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [f ?host "component" fmt ...] logs one formatted line when
    enabled. When {!Span} tracing is also on, the line carries the
    calling fiber's innermost span id, tying text traces to the span
    timeline. *)
val f : ?host:string -> string -> ('a, Format.formatter, unit) format -> 'a

(** [capture fn] runs [fn] with tracing force-enabled and redirected to
    an in-memory buffer; returns [fn]'s result and the accumulated
    trace text. Restores the previous tracing state afterwards. This is
    the determinism probe: two same-seed runs must produce identical
    capture strings. *)
val capture : (unit -> 'a) -> 'a * string
