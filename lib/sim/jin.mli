(** Minimal JSON reader, the inverse of {!Jout}.

    The toolchain has no JSON library; the write side ({!Jout}) has
    existed since the observability plane, and the fuzzer's replayable
    fault-plan artifacts are the first thing that must be read {e back}
    into a simulation. This parser covers exactly the JSON the repo
    emits — objects, arrays, strings with the {!Jout.str} escape set,
    numbers, booleans, null — and rejects everything else loudly.

    Not streaming, not resumable: artifacts are small (a fault plan is
    tens of events). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** fields in document order *)

(** Raised on malformed input; the message includes the byte offset. *)
exception Parse_error of string

(** [parse s] parses one JSON document; trailing whitespace is
    allowed, trailing garbage is not.
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** {2 Accessors}

    All raise {!Parse_error} (with the offending key or constructor in
    the message) on shape mismatch, so decoding code stays flat. *)

(** [member k v] is field [k] of object [v]. *)
val member : string -> t -> t

val member_opt : string -> t -> t option
val to_list : t -> t list
val to_string : t -> string
val to_float : t -> float

(** [to_int v] is [to_float] checked to be integral. *)
val to_int : t -> int

val to_bool : t -> bool
