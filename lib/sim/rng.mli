(** Deterministic pseudo-random number generation for simulations.

    A small, fast, splittable PRNG (splitmix64). Every simulation owns
    one generator seeded at construction, so runs are reproducible
    bit-for-bit regardless of scheduling. *)

type t

(** [create seed] returns a fresh generator. Equal seeds produce equal
    streams. *)
val create : int -> t

(** [split t] derives an independent generator from [t], advancing
    [t]. Useful to give each simulated client its own stream. *)
val split : t -> t

(** [create_stream seed ~stream] returns the [stream]-th decorrelated
    generator for [seed] — deterministic in both arguments, with
    [create_stream seed ~stream:0] equal to [create seed] bit-for-bit.
    The sharded engine gives shard [k] stream [k], so the single-shard
    world reproduces the unsharded RNG stream exactly. *)
val create_stream : int -> stream:int -> t

(** [int64 t] returns the next raw 64-bit output. *)
val int64 : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] returns a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t p] returns [true] with probability [p]. *)
val bool : t -> float -> bool

(** [exponential t ~mean] samples an exponential variate. *)
val exponential : t -> mean:float -> float

(** [shuffle t arr] shuffles [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t arr] returns a uniformly random element.
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a
