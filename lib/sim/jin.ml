type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg pos))

(* Recursive-descent over a cursor; values are tiny (fault plans), so
   no effort is spent on buffers or streaming. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then fail !pos (Printf.sprintf "expected '%c'" c);
    advance ()
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected '%s'" lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail !pos "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail !pos "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail !pos "bad \\u escape"
              in
              (* The emitter only writes \u00xx control characters;
                 anything in the Latin-1 range decodes to one byte, the
                 rest is preserved as UTF-8 by the caller never putting
                 it there. *)
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else fail !pos "\\u escape above U+00FF unsupported";
              pos := !pos + 4
          | c -> fail !pos (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    if !pos = start then fail !pos "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail !pos "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected ',' or ']'"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let shape_error what v =
  raise (Parse_error (Printf.sprintf "expected %s, found %s" what (type_name v)))

let member k = function
  | Obj fields -> (
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "missing field %S" k)))
  | v -> shape_error (Printf.sprintf "an object with field %S" k) v

let member_opt k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function Arr items -> items | v -> shape_error "an array" v
let to_string = function Str x -> x | v -> shape_error "a string" v
let to_float = function Num x -> x | v -> shape_error "a number" v

let to_int v =
  let f = to_float v in
  if Float.is_integer f then int_of_float f
  else raise (Parse_error (Printf.sprintf "expected an integer, found %g" f))

let to_bool = function Bool b -> b | v -> shape_error "a bool" v
