(* Declarative SLO monitors with multi-window burn-rate evaluation.
   A monitor watches one Timeseries column; each sealed window is
   classified good/bad against the threshold, and the monitor fires
   when the bad-window fraction burns the error budget (1 - objective)
   faster than [burn] over BOTH the fast and the slow window — the
   standard fast-burn/slow-burn pairing: the fast window gives low
   detection latency, the slow window suppresses one-window blips.
   Evaluation is O(1) per window per monitor: a bit ring of the last
   [slow] classifications with incremental fast/slow bad counts. *)

type alert = {
  al_time : float;
  al_monitor : string;
  al_firing : bool;
  al_burn_fast : float;
  al_burn_slow : float;
  al_value : float;
}

type monitor = {
  m_name : string;
  m_series : string;
  m_col : string;
  m_above : bool;
  m_threshold : float;
  m_objective : float;
  m_fast : int;
  m_slow : int;
  m_burn : float;
  m_bad : Bytes.t;  (* classification ring, length m_slow *)
  mutable m_head : int;
  mutable m_n : int;  (* windows evaluated *)
  mutable m_bad_fast : int;
  mutable m_bad_slow : int;
  mutable m_firing : bool;
  mutable m_next_w : int;  (* next Timeseries window to evaluate *)
  mutable m_sel : Timeseries.sel option;  (* resolved lazily *)
}

let alerts_cap = 10_000

type state = {
  born : int;
  mutable mons : monitor array;
  mutable n : int;
  mutable alerts : alert list;  (* newest first *)
  mutable n_alerts : int;
  mutable subs : (alert -> unit) array;
  mutable hooked : bool;
}

let fresh ~born =
  { born; mons = [||]; n = 0; alerts = []; n_alerts = 0; subs = [||]; hooked = false }

let current = ref (fresh ~born:0)

let state () =
  let rc = Engine.run_count () in
  if !current.born <> rc then current := fresh ~born:rc;
  !current

let reset () = current := fresh ~born:(Engine.run_count ())

let subscribe f =
  let st = state () in
  st.subs <- Array.append st.subs [| f |]

let transition st m ~time ~firing ~bf ~bs ~v =
  m.m_firing <- firing;
  let al =
    {
      al_time = time;
      al_monitor = m.m_name;
      al_firing = firing;
      al_burn_fast = bf;
      al_burn_slow = bs;
      al_value = v;
    }
  in
  if st.n_alerts < alerts_cap then begin
    st.alerts <- al :: st.alerts;
    st.n_alerts <- st.n_alerts + 1
  end;
  if Flight.enabled () then begin
    Flight.record ~host:"slo" Flight.Alert ~name:m.m_name ~value:bf;
    if firing then Flight.snapshot ~reason:("slo:" ^ m.m_name)
  end;
  Array.iter (fun f -> f al) st.subs

let push st m ~time v =
  let bad =
    if Float.is_nan v then false
    else if m.m_above then v > m.m_threshold
    else v < m.m_threshold
  in
  if m.m_n >= m.m_slow then
    m.m_bad_slow <- m.m_bad_slow - Char.code (Bytes.get m.m_bad m.m_head);
  if m.m_n >= m.m_fast then begin
    let idx = (m.m_head + m.m_slow - m.m_fast) mod m.m_slow in
    m.m_bad_fast <- m.m_bad_fast - Char.code (Bytes.get m.m_bad idx)
  end;
  Bytes.set m.m_bad m.m_head (if bad then '\001' else '\000');
  m.m_head <- (if m.m_head + 1 = m.m_slow then 0 else m.m_head + 1);
  if bad then begin
    m.m_bad_fast <- m.m_bad_fast + 1;
    m.m_bad_slow <- m.m_bad_slow + 1
  end;
  m.m_n <- m.m_n + 1;
  let budget = 1. -. m.m_objective in
  let bf = float_of_int m.m_bad_fast /. float_of_int (Stdlib.min m.m_n m.m_fast) /. budget in
  let bs = float_of_int m.m_bad_slow /. float_of_int (Stdlib.min m.m_n m.m_slow) /. budget in
  let firing = bf >= m.m_burn && bs >= m.m_burn in
  if firing <> m.m_firing then transition st m ~time ~firing ~bf ~bs ~v

let eval () =
  let st = state () in
  let w = Timeseries.windows () in
  for i = 0 to st.n - 1 do
    let m = st.mons.(i) in
    (match m.m_sel with
    | None -> m.m_sel <- Timeseries.find ~series:m.m_series ~col:m.m_col
    | Some _ -> ());
    match m.m_sel with
    | None -> m.m_next_w <- w  (* series not registered yet; skip its windows *)
    | Some sel ->
        while m.m_next_w < w do
          let v = Timeseries.window_value sel m.m_next_w in
          (* Alerts are stamped at the window's end, so evaluation
             timing (in-run closer vs. post-run catch-up) never shifts
             the alert stream. *)
          let time = Timeseries.window_start m.m_next_w +. Timeseries.window_us () in
          push st m ~time v;
          m.m_next_w <- m.m_next_w + 1
        done
  done

let monitor ~name ~series ~col ?(kind = `Above) ~threshold ~objective ?(fast_windows = 3)
    ?(slow_windows = 12) ?(burn = 2.) () =
  if objective < 0. || objective >= 1. then
    invalid_arg "Slo.monitor: objective must be in [0, 1)";
  if fast_windows <= 0 || slow_windows < fast_windows then
    invalid_arg "Slo.monitor: need 0 < fast_windows <= slow_windows";
  if burn <= 0. then invalid_arg "Slo.monitor: burn must be positive";
  let st = state () in
  let m =
    {
      m_name = name;
      m_series = series;
      m_col = col;
      m_above = (kind = `Above);
      m_threshold = threshold;
      m_objective = objective;
      m_fast = fast_windows;
      m_slow = slow_windows;
      m_burn = burn;
      m_bad = Bytes.make slow_windows '\000';
      m_head = 0;
      m_n = 0;
      m_bad_fast = 0;
      m_bad_slow = 0;
      m_firing = false;
      m_next_w = Timeseries.windows ();
      m_sel = None;
    }
  in
  st.mons <- Array.append (Array.sub st.mons 0 st.n) [| m |];
  st.n <- st.n + 1;
  if not st.hooked then begin
    st.hooked <- true;
    Timeseries.on_window_close eval
  end;
  m

let feed m v =
  let time = try Engine.now () with Invalid_argument _ -> 0. in
  push (state ()) m ~time v

let firing m = m.m_firing
let monitor_name m = m.m_name

let alerts () = List.rev (state ()).alerts

let alert_json al =
  Jout.obj
    [
      ("t_us", Jout.flt al.al_time);
      ("monitor", Jout.str al.al_monitor);
      ("state", Jout.str (if al.al_firing then "firing" else "resolved"));
      ("burn_fast", Jout.flt al.al_burn_fast);
      ("burn_slow", Jout.flt al.al_burn_slow);
      ("value", Jout.flt al.al_value);
    ]

let alerts_json () = Jout.arr (List.rev_map alert_json (state ()).alerts)
