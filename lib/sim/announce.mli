(** Instrumentation bus for online temporal monitors.

    Protocol layers announce milestones as they happen in virtual
    time; harness-level spec machines subscribe and check temporal
    properties (liveness deadlines, isolation invariants) {e during}
    a run instead of after it.

    Contract for producers: guard every emission with {!active} —

    {[ if Sim.Announce.active () then Sim.Announce.emit (...) ]}

    so that runs without subscribers pay one branch and zero
    allocation per milestone.  Subscribers run synchronously at the
    emission point, inside the emitting fiber: they must not block,
    sleep, or perform I/O.

    Like {!Metrics} and {!Slo}, the registry is process-global and
    resets lazily whenever a new {!Engine.run} begins. *)

type event =
  | Append_acked of { client : string; offset : int; streams : int list }
      (** The chain ack for [offset] reached [client]; the append is
          durable on every replica and was issued on [streams]. *)
  | Offset_readable of { client : string; offset : int }
      (** A resolved read of [offset] returned data at [client]. *)
  | Tx_begin of { client : string }
  | Tx_finish of { client : string; committed : bool }
  | Commit_decided of { client : string; pos : int; committed : bool }
      (** [client]'s runtime recorded the commit/abort verdict for the
          commit record at log position [pos]. *)
  | Commit_applied of { client : string; pos : int }
      (** [client]'s playback applied the writes of the commit at
          [pos] to its hosted views. *)
  | Reconfig_started of { kind : string }
      (** A seal/scale/replace operation of [kind] began. *)
  | Reconfig_installed of { kind : string; epoch : int }
      (** The operation installed projection [epoch]. *)
  | Fault_injected of { key : string }
      (** A repairable fault keyed [key] (e.g. ["crash:host"],
          ["partition"]) took effect. *)
  | Fault_repaired of { key : string }  (** The fault keyed [key] was repaired. *)
  | Custom_fault of { name : string }
      (** A named custom fault-plan action ran (takeovers, scaling,
          SSD events); classification is up to the subscriber. *)

val subscribe : (event -> unit) -> unit
(** Register a synchronous listener for the current engine run. *)

val active : unit -> bool
(** [true] iff at least one subscriber is registered. *)

val emit : event -> unit
(** Deliver [ev] to all subscribers, in subscription order. *)

val reset : unit -> unit
(** Drop all subscribers (tests). *)
