(** Causal span tracing: hierarchical timing of simulated operations.

    A span is a named interval of virtual time with a host and fiber
    context. Spans nest: within one fiber, {!with_span} pushes onto an
    ambient per-fiber stack, so a client append decomposes into
    [append → sequencer.grant → chain.write → commit] without threading
    ids by hand. Across fibers (helper fibers spawned by [Net.call_r],
    the batcher drainer, parallel chain writers) {!current} +
    {!with_parent} carry the causal parent explicitly.

    Tracing is {e off} by default and costs one branch per
    instrumentation point when off. When on, recording reads only the
    virtual clock — no sleeps, no randomness — so enabling spans never
    changes simulation behavior, and two same-seed runs dump
    byte-identical timelines ({!capture} is the determinism probe, the
    span analogue of [Trace.capture]).

    Like {!Metrics}, the span store is global but engine-reset: it
    clears when a new {!Engine.run} starts and remains readable after
    the run ends. Span ids are dense and allocated in open order. *)

(** [set_enabled b] switches recording on or off (sticky across engine
    resets; default off). *)
val set_enabled : bool -> unit

val enabled : unit -> bool

(** Opaque span identity, for cross-fiber parenting. *)
type id

(** The dense integer behind an {!id} (matches {!view.v_id}). *)
val id_int : id -> int

(** [with_span ?host ?args name f] runs [f] inside a new span. The
    parent is the innermost open span of the calling fiber, if any.
    [host] defaults to the parent's host. The span closes when [f]
    returns or raises. Must be called inside {!Engine.run} when
    tracing is enabled. *)
val with_span : ?host:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [current ()] is the innermost open span of the calling fiber. *)
val current : unit -> id option

(** [with_parent p f] runs [f] with its span stack seeded from [p]
    instead of the calling fiber's stack: spans opened inside [f]
    become children of [p]. Use when handing work to another fiber:
    capture [current ()] before [Engine.spawn], apply inside. *)
val with_parent : id option -> (unit -> 'a) -> 'a

(** [add_arg k v] attaches an annotation to the calling fiber's
    innermost open span (no-op if tracing is off or no span is open). *)
val add_arg : string -> string -> unit

type view = {
  v_id : int;
  v_parent : int option;
  v_name : string;
  v_host : string option;
  v_fiber : int;
  v_start : float;
  v_end : float option;  (** [None]: still open when the run ended *)
  v_args : (string * string) list;
}

(** All recorded spans in id (open) order. *)
val spans : unit -> view list

(** Chrome [trace_event]-format JSON: [{"traceEvents": [...]}] with
    one ["X"] (complete) event per span — [ts]/[dur] in virtual µs,
    [pid] = host (named by ["M"] metadata events), [tid] = fiber —
    loadable in [chrome://tracing] / Perfetto. Deterministic for a
    given run. *)
val dump_json : unit -> string

(** [capture f] enables tracing, runs [f] (typically a whole
    [Engine.run]), and returns its result with {!dump_json} of the
    spans it recorded. The previous enabled state is restored. *)
val capture : (unit -> 'a) -> 'a * string

(** Clear the span store immediately (tests). *)
val reset : unit -> unit
