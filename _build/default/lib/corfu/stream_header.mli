(** Stream headers: the on-entry metadata that turns the flat shared
    log into a set of streams (paper §5).

    Each entry carries one header per stream it belongs to. A header
    holds a 31-bit stream id, a format bit, and backpointers to the
    previous K entries of the same stream, in one of two wire formats:

    - {e relative}: K 2-byte deltas from the current offset
      (delta 0 = empty slot), used when every delta fits in 16 bits;
    - {e absolute}: K/4 8-byte offsets (all-ones = empty slot), used
      when some delta overflows 64K entries.

    With K = 4 a header is 12 bytes either way. A block of headers is
    a count byte followed by the fixed-size headers; the number of
    headers an entry can hold bounds how many streams a single
    multiappend — and therefore a single transaction — can touch. *)

type t = {
  stream : Types.stream_id;
  backptrs : Types.offset list;  (** most recent first; length ≤ K *)
}

(** [header_size ~k] is the wire size of one header in bytes. *)
val header_size : k:int -> int

(** [block_size ~k ~streams] is the wire size of a block with
    [streams] headers. *)
val block_size : k:int -> streams:int -> int

(** [encode_block ~k ~current headers] encodes headers for the entry
    being written at offset [current]. Picks the relative format per
    header when all its deltas fit, else the absolute format keeping
    the K/4 most recent pointers.
    @raise Invalid_argument on a stream id outside [0, 2^31) or a
    backpointer not strictly below [current]. *)
val encode_block : k:int -> current:Types.offset -> t list -> bytes

(** [decode_block ~k ~current block] inverts {!encode_block}.
    Relative-format headers need [current] to reconstruct offsets.
    @raise Invalid_argument on a malformed block. *)
val decode_block : k:int -> current:Types.offset -> bytes -> t list

(** [find headers sid] returns the header for stream [sid], if any. *)
val find : t list -> Types.stream_id -> t option

(** [uses_absolute_format ~current header] reports which wire format
    {!encode_block} will pick, for tests and diagnostics. *)
val uses_absolute_format : current:Types.offset -> t -> bool
