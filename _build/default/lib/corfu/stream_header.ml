type t = { stream : Types.stream_id; backptrs : Types.offset list }

let max_stream_id = 0x7FFF_FFFF
let relative_limit = 0xFFFF

let header_size ~k = 4 + (2 * k)
let block_size ~k ~streams = 1 + (streams * header_size ~k)

let check_k k = if k < 4 || k mod 4 <> 0 then invalid_arg "Stream_header: K must be a positive multiple of 4"

let fits_relative ~current backptrs =
  List.for_all (fun p -> current - p >= 1 && current - p <= relative_limit) backptrs

let uses_absolute_format ~current t = not (fits_relative ~current t.backptrs)

let set_u16 buf pos v =
  Bytes.set_uint8 buf pos (v lsr 8);
  Bytes.set_uint8 buf (pos + 1) (v land 0xFF)

let get_u16 buf pos = (Bytes.get_uint8 buf pos lsl 8) lor Bytes.get_uint8 buf (pos + 1)

let set_u32 buf pos v =
  set_u16 buf pos (v lsr 16);
  set_u16 buf (pos + 2) (v land 0xFFFF)

let get_u32 buf pos = (get_u16 buf pos lsl 16) lor get_u16 buf (pos + 2)

let absolute_empty = 0xFFFF_FFFF_FFFF_FFFFL

let set_u64 buf pos v = Bytes.set_int64_be buf pos v
let get_u64 buf pos = Bytes.get_int64_be buf pos

let encode_header ~k ~current buf pos t =
  if t.stream < 0 || t.stream > max_stream_id then
    invalid_arg "Stream_header: stream id out of range";
  List.iter
    (fun p -> if p < 0 || p >= current then invalid_arg "Stream_header: backpointer not below entry")
    t.backptrs;
  if List.length t.backptrs > k then invalid_arg "Stream_header: too many backpointers";
  if fits_relative ~current t.backptrs then begin
    (* Format bit 0: K 2-byte deltas, zero-padded. *)
    set_u32 buf pos t.stream;
    List.iteri (fun i p -> set_u16 buf (pos + 4 + (2 * i)) (current - p)) t.backptrs;
    let used = List.length t.backptrs in
    for i = used to k - 1 do
      set_u16 buf (pos + 4 + (2 * i)) 0
    done
  end
  else begin
    (* Format bit 1: K/4 8-byte absolute offsets, most recent first. *)
    set_u32 buf pos (t.stream lor 0x8000_0000);
    let slots = k / 4 in
    let kept = List.filteri (fun i _ -> i < slots) t.backptrs in
    List.iteri (fun i p -> set_u64 buf (pos + 4 + (8 * i)) (Int64.of_int p)) kept;
    for i = List.length kept to slots - 1 do
      set_u64 buf (pos + 4 + (8 * i)) absolute_empty
    done
  end

let decode_header ~k ~current buf pos =
  let word = get_u32 buf pos in
  let stream = word land max_stream_id in
  let absolute = word land 0x8000_0000 <> 0 in
  let backptrs =
    if absolute then begin
      let slots = k / 4 in
      let rec collect i acc =
        if i >= slots then List.rev acc
        else
          let v = get_u64 buf (pos + 4 + (8 * i)) in
          if v = absolute_empty then List.rev acc
          else collect (i + 1) (Int64.to_int v :: acc)
      in
      collect 0 []
    end
    else begin
      let rec collect i acc =
        if i >= k then List.rev acc
        else
          let d = get_u16 buf (pos + 4 + (2 * i)) in
          if d = 0 then List.rev acc else collect (i + 1) ((current - d) :: acc)
      in
      collect 0 []
    end
  in
  { stream; backptrs }

let encode_block ~k ~current headers =
  check_k k;
  let n = List.length headers in
  if n > 255 then invalid_arg "Stream_header: too many headers in one entry";
  let buf = Bytes.make (block_size ~k ~streams:n) '\000' in
  Bytes.set_uint8 buf 0 n;
  List.iteri (fun i h -> encode_header ~k ~current buf (1 + (i * header_size ~k)) h) headers;
  buf

let decode_block ~k ~current buf =
  check_k k;
  if Bytes.length buf < 1 then invalid_arg "Stream_header: empty block";
  let n = Bytes.get_uint8 buf 0 in
  if Bytes.length buf < block_size ~k ~streams:n then invalid_arg "Stream_header: truncated block";
  List.init n (fun i -> decode_header ~k ~current buf (1 + (i * header_size ~k)))

let find headers sid = List.find_opt (fun h -> h.stream = sid) headers
