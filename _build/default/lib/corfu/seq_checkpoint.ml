let stream_id = 0x7FFF_FFFE

type t = {
  snap_tail : Types.offset;
  snap_streams : (Types.stream_id * Types.offset list) list;
}

let encode t =
  let b = Buffer.create 256 in
  Buffer.add_int64_be b (Int64.of_int t.snap_tail);
  Buffer.add_int32_be b (Int32.of_int (List.length t.snap_streams));
  List.iter
    (fun (sid, offs) ->
      Buffer.add_int32_be b (Int32.of_int sid);
      Buffer.add_int32_be b (Int32.of_int (List.length offs));
      List.iter (fun o -> Buffer.add_int64_be b (Int64.of_int o)) offs)
    t.snap_streams;
  Buffer.to_bytes b

let decode data =
  if Bytes.length data < 12 then invalid_arg "Seq_checkpoint.decode: truncated";
  let at = ref 0 in
  let u32 () =
    let v = Int32.to_int (Bytes.get_int32_be data !at) in
    at := !at + 4;
    v
  in
  let u64 () =
    let v = Int64.to_int (Bytes.get_int64_be data !at) in
    at := !at + 8;
    v
  in
  let snap_tail = u64 () in
  let n = u32 () in
  let snap_streams =
    List.init n (fun _ ->
        let sid = u32 () in
        let count = u32 () in
        (sid, List.init count (fun _ -> u64 ())))
  in
  { snap_tail; snap_streams }

let is_snapshot ~k ~current (entry : Types.entry) =
  match Stream_header.decode_block ~k ~current entry.Types.headers with
  | headers -> Stream_header.find headers stream_id <> None
  | exception Invalid_argument _ -> false

let merge ~above t ~k =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (sid, offs) -> Hashtbl.replace tbl sid offs) t.snap_streams;
  Hashtbl.iter
    (fun sid recent ->
      let older = match Hashtbl.find_opt tbl sid with Some l -> l | None -> [] in
      let rec take n = function x :: r when n > 0 -> x :: take (n - 1) r | _ -> [] in
      Hashtbl.replace tbl sid (take k (recent @ older)))
    above;
  Hashtbl.fold (fun sid offs acc -> (sid, offs) :: acc) tbl []
