type propose_result = Installed | Conflict of Projection.t

type t = {
  mutable views : Projection.t list;  (* newest first *)
  latest_svc : (unit, Projection.t) Sim.Net.service;
  propose_svc : (Projection.t, propose_result) Sim.Net.service;
}

let newest t = match t.views with v :: _ -> v | [] -> assert false

let handle_propose t (p : Projection.t) =
  let current = newest t in
  if p.Projection.epoch = current.Projection.epoch + 1 then begin
    t.views <- p :: t.views;
    Installed
  end
  else Conflict current

let create ~net ~initial =
  let aux_host = Sim.Net.add_host net "auxiliary" in
  let rec t =
    lazy
      {
        views = [ initial ];
        latest_svc = Sim.Net.service aux_host ~name:"latest" (fun () -> newest (Lazy.force t));
        propose_svc =
          Sim.Net.service aux_host ~name:"propose" (fun p -> handle_propose (Lazy.force t) p);
      }
  in
  Lazy.force t

let latest_service t = t.latest_svc
let propose_service t = t.propose_svc
let latest t = newest t
