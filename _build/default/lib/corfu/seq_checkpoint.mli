(** Sequencer state checkpoints (§5, Failure Handling — the paper's
    proposed optimization): the sequencer's soft state (tail +
    per-stream last-K offsets) is periodically snapshotted into the
    shared log on a reserved stream, so a replacement sequencer
    rebuilds by scanning only back to the latest snapshot instead of
    the whole log.

    The snapshot's log offset is {e reserved in the same sequencer
    operation that dumps the state} ({!Sequencer.dump_service}), so
    the state is complete for every offset below it — scanning the
    suffix above the snapshot entry and merging yields exact state. *)

(** The reserved stream id (top of the 31-bit space). *)
val stream_id : Types.stream_id

type t = {
  snap_tail : Types.offset;  (** tail at snapshot = the snapshot's own offset *)
  snap_streams : (Types.stream_id * Types.offset list) list;
}

val encode : t -> bytes

(** @raise Invalid_argument on malformed input. *)
val decode : bytes -> t

(** [is_snapshot ~k ~current entry] tests an entry's headers for the
    reserved stream. *)
val is_snapshot : k:int -> current:Types.offset -> Types.entry -> bool

(** [merge ~above snapshot ~k] combines per-stream offsets collected
    from entries {e above} the snapshot (most recent first, possibly
    fewer than K) with the snapshot's state, keeping the most recent K
    per stream. *)
val merge :
  above:(Types.stream_id, Types.offset list) Hashtbl.t ->
  t ->
  k:int ->
  (Types.stream_id * Types.offset list) list
