type t = {
  epoch : Types.epoch;
  replica_sets : Storage_node.t array array;
  sequencer : Sequencer.t;
}

let v ~epoch ~replica_sets ~sequencer =
  let nsets = Array.length replica_sets in
  if nsets = 0 then invalid_arg "Projection: need at least one replica set";
  let width = Array.length replica_sets.(0) in
  if width = 0 then invalid_arg "Projection: empty replica set";
  Array.iter
    (fun set ->
      if Array.length set <> width then invalid_arg "Projection: ragged replica sets")
    replica_sets;
  { epoch; replica_sets; sequencer }

let num_sets t = Array.length t.replica_sets
let num_servers t = Array.fold_left (fun acc set -> acc + Array.length set) 0 t.replica_sets
let replica_set t off = t.replica_sets.(off mod num_sets t)
let local_offset t off = off / num_sets t
let global_offset t ~set ~local = (local * num_sets t) + set

let global_tail_from_locals t locals =
  if Array.length locals <> num_sets t then
    invalid_arg "Projection.global_tail_from_locals: arity mismatch";
  let highest = ref (-1) in
  Array.iteri
    (fun set local ->
      if local >= 0 then begin
        let g = global_offset t ~set ~local in
        if g > !highest then highest := g
      end)
    locals;
  !highest + 1
