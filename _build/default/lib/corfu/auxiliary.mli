(** The auxiliary: a tiny, reliable projection store.

    CORFU keeps the sequence of projections in an external consensus
    service consulted only during reconfiguration. We model it as a
    single always-up host exposing a write-once-per-epoch register:
    [propose] installs a projection if and only if its epoch is
    exactly one past the latest, otherwise the caller learns the
    winning view and retries. This serializes concurrent
    reconfigurations without modelling a full Paxos group, which the
    paper also treats as a given. *)

type t

type propose_result = Installed | Conflict of Projection.t

val create : net:Sim.Net.t -> initial:Projection.t -> t

(** Returns the highest-epoch installed projection. *)
val latest_service : t -> (unit, Projection.t) Sim.Net.service

val propose_service : t -> (Projection.t, propose_result) Sim.Net.service

(** Direct (non-RPC) accessor for tests and bootstrap. *)
val latest : t -> Projection.t
