lib/corfu/stream_header.mli: Types
