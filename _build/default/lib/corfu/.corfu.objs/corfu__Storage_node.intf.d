lib/corfu/storage_node.mli: Sim Types
