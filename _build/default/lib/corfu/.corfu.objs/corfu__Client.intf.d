lib/corfu/client.mli: Auxiliary Projection Sim Types
