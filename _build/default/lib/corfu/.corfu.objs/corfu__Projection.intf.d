lib/corfu/projection.mli: Sequencer Storage_node Types
