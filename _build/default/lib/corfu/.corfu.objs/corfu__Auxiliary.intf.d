lib/corfu/auxiliary.mli: Projection Sim
