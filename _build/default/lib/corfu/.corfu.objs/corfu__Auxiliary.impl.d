lib/corfu/auxiliary.ml: Lazy Projection Sim
