lib/corfu/seq_checkpoint.ml: Buffer Bytes Hashtbl Int32 Int64 List Stream_header Types
