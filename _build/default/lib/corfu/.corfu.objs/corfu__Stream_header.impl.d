lib/corfu/stream_header.ml: Bytes Int64 List Types
