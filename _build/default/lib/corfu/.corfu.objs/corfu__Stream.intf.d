lib/corfu/stream.mli: Client Types
