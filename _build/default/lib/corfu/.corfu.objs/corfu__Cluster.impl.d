lib/corfu/cluster.ml: Array Auxiliary Client Hashtbl List Printf Projection Seq_checkpoint Sequencer Sim Storage_node Stream_header Types
