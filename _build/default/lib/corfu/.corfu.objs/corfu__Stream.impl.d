lib/corfu/stream.ml: Array Client Hashtbl List Sim Stream_header Types
