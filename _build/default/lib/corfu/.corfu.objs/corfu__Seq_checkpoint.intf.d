lib/corfu/seq_checkpoint.mli: Hashtbl Types
