lib/corfu/sequencer.ml: Hashtbl Lazy List Seq_checkpoint Sim Types
