lib/corfu/sequencer.mli: Sim Types
