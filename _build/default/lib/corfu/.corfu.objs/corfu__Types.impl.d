lib/corfu/types.ml: Fmt
