lib/corfu/cluster.mli: Auxiliary Client Sequencer Sim Storage_node Types
