lib/corfu/client.ml: Array Auxiliary Float Hashtbl List Projection Sequencer Sim Storage_node Stream_header Types
