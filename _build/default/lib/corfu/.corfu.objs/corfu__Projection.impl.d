lib/corfu/projection.ml: Array Sequencer Storage_node Types
