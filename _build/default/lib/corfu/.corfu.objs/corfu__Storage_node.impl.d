lib/corfu/storage_node.ml: Hashtbl Lazy Sim Types
