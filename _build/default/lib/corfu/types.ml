(** Shared vocabulary for the CORFU log.

    Offsets index the global, 64-bit, write-once address space of the
    shared log; OCaml's 63-bit [int] stands in for them. Epochs number
    membership views ("projections"); every storage and sequencer
    operation carries the client's epoch and is rejected once the node
    has been sealed at a higher one. *)

type offset = int
type epoch = int
type stream_id = int

(** A log entry as stored on a replica: an encoded block of stream
    headers (see {!Stream_header}) followed by an opaque payload. The
    on-disk size is fixed at deployment time ([Params.entry_bytes]);
    we keep the two parts structured but charge the fixed size on
    every transfer. *)
type entry = { headers : bytes; payload : bytes }

(** State of one address on a storage node. [Junk] marks a hole
    patched by [fill]; junk entries carry no headers or payload. *)
type cell = Unwritten | Data of entry | Junk | Trimmed

(** Result of a write (or fill) at one replica. *)
type write_result =
  | Write_ok
  | Already_written of cell  (** write-once conflict; holds the winner *)
  | Sealed_at of epoch  (** node sealed at a higher epoch *)
  | Out_of_space

(** Result of a read at one replica. *)
type read_result =
  | Read_data of entry
  | Read_unwritten
  | Read_junk
  | Read_trimmed
  | Read_sealed of epoch

let pp_write_result ppf = function
  | Write_ok -> Fmt.string ppf "ok"
  | Already_written _ -> Fmt.string ppf "already-written"
  | Sealed_at e -> Fmt.pf ppf "sealed@%d" e
  | Out_of_space -> Fmt.string ppf "out-of-space"

let pp_read_result ppf = function
  | Read_data _ -> Fmt.string ppf "data"
  | Read_unwritten -> Fmt.string ppf "unwritten"
  | Read_junk -> Fmt.string ppf "junk"
  | Read_trimmed -> Fmt.string ppf "trimmed"
  | Read_sealed e -> Fmt.pf ppf "sealed@%d" e
