(** Projections: epoch-numbered membership views of the log.

    A projection names the replica sets and — unlike the original
    CORFU — includes the sequencer as a first-class member (paper §5,
    Failure Handling), because conflicting backpointer state from two
    live sequencers would corrupt streams. Global offsets map onto
    (replica set, local offset) with the simple deterministic function
    from §2.2: offset [o] lives at local offset [o / nsets] on set
    [o mod nsets]. *)

type t = {
  epoch : Types.epoch;
  replica_sets : Storage_node.t array array;  (** [sets.(i)] is chain i, head first *)
  sequencer : Sequencer.t;
}

(** [v ~epoch ~replica_sets ~sequencer] validates shape: at least one
    non-empty set, all sets the same size. *)
val v : epoch:Types.epoch -> replica_sets:Storage_node.t array array -> sequencer:Sequencer.t -> t

val num_sets : t -> int
val num_servers : t -> int

(** [replica_set t off] is the chain storing global offset [off]. *)
val replica_set : t -> Types.offset -> Storage_node.t array

(** [local_offset t off] is [off]'s address within its chain. *)
val local_offset : t -> Types.offset -> Types.offset

(** [global_offset t ~set ~local] inverts the mapping. *)
val global_offset : t -> set:int -> local:Types.offset -> Types.offset

(** [global_tail_from_locals t locals] inverts the mapping over the
    per-set local tails (the slow check, §2.2): the global tail is one
    past the highest written global offset. [locals.(i)] is the local
    tail of set [i], -1 when empty. *)
val global_tail_from_locals : t -> Types.offset array -> Types.offset
