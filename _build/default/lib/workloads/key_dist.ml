type t = Uniform of int | Zipfian of Zipf.t

let uniform ~n =
  if n < 1 then invalid_arg "Key_dist.uniform: n must be positive";
  Uniform n

let zipf ?theta ~n () = Zipfian (Zipf.create ?theta ~n ())

let population = function Uniform n -> n | Zipfian z -> Zipf.n z

let sample t rng =
  match t with Uniform n -> Sim.Rng.int rng n | Zipfian z -> Zipf.sample z rng

let key_name i = Printf.sprintf "k%08d" i
let sample_key t rng = key_name (sample t rng)

let distinct_keys t rng count =
  if count > population t then invalid_arg "Key_dist.distinct_keys: count exceeds population";
  let seen = Hashtbl.create count in
  let rec draw acc remaining =
    if remaining = 0 then acc
    else begin
      let i = sample t rng in
      if Hashtbl.mem seen i then draw acc remaining
      else begin
        Hashtbl.replace seen i ();
        draw (key_name i :: acc) (remaining - 1)
      end
    end
  in
  draw [] count
