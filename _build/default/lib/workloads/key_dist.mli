(** Key distributions for the transaction benchmarks (§6.2): uniform
    or zipfian choice over a fixed key population, rendered as the
    string keys Tango objects use. *)

type t

val uniform : n:int -> t
val zipf : ?theta:float -> n:int -> unit -> t

val population : t -> int

(** [sample t rng] draws a key index. *)
val sample : t -> Sim.Rng.t -> int

(** [key_name i] renders index [i] as a map key ("k00000042"). *)
val key_name : int -> string

(** [sample_key t rng] = [key_name (sample t rng)]. *)
val sample_key : t -> Sim.Rng.t -> string

(** [distinct_keys t rng count] draws [count] distinct keys — a
    transaction's read or write set. *)
val distinct_keys : t -> Sim.Rng.t -> int -> string list
