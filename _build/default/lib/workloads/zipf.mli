(** Zipfian key sampling, YCSB-style.

    Figure 9 chooses keys "using a highly skewed zipf distribution
    (corresponding to workload 'a' of the Yahoo! Cloud Serving
    Benchmark)". This is the standard YCSB ZipfianGenerator with the
    Gray et al. approximation: rank 0 is the hottest key. *)

type t

(** [create ~n ()] prepares a sampler over ranks [\[0, n)].
    [theta] defaults to YCSB's 0.99.
    @raise Invalid_argument if [n < 1] or [theta] outside (0, 1). *)
val create : ?theta:float -> n:int -> unit -> t

val n : t -> int

(** [sample t rng] draws a rank; low ranks are hot. *)
val sample : t -> Sim.Rng.t -> int
