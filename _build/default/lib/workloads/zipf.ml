type t = {
  size : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

let zeta n theta =
  let sum = ref 0. in
  for i = 1 to n do
    sum := !sum +. (1. /. Float.pow (float_of_int i) theta)
  done;
  !sum

let create ?(theta = 0.99) ~n () =
  if n < 1 then invalid_arg "Zipf.create: n must be positive";
  if theta <= 0. || theta >= 1. then invalid_arg "Zipf.create: theta must be in (0,1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1. /. (1. -. theta) in
  let eta = (1. -. Float.pow (2. /. float_of_int n) (1. -. theta)) /. (1. -. (zeta2 /. zetan)) in
  { size = n; theta; alpha; zetan; eta; half_pow_theta = Float.pow 0.5 theta }

let n t = t.size

let sample t rng =
  let u = Sim.Rng.float rng 1.0 in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. t.half_pow_theta then 1
  else begin
    let rank =
      int_of_float (float_of_int t.size *. Float.pow ((t.eta *. u) -. t.eta +. 1.) t.alpha)
    in
    if rank >= t.size then t.size - 1 else rank
  end
