lib/workloads/key_dist.ml: Hashtbl Printf Sim Zipf
