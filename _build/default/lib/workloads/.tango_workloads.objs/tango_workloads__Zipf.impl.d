lib/workloads/zipf.ml: Float Sim
