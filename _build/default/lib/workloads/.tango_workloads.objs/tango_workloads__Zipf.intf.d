lib/workloads/zipf.mli: Sim
