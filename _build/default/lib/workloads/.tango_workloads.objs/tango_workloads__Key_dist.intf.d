lib/workloads/key_dist.mli: Sim
