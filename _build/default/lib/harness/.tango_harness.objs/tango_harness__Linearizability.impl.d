lib/harness/linearizability.ml: Array Hashtbl
