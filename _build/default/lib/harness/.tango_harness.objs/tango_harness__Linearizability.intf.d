lib/harness/linearizability.mli:
