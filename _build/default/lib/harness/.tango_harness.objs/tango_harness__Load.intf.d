lib/harness/load.mli: Format
