lib/harness/load.ml: Fmt Sim
