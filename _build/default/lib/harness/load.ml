type report = {
  throughput : float;
  goodput : float;
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p99_us : float;
  samples : int;
}

let pp_report ppf r =
  Fmt.pf ppf "%.0f ops/s (goodput %.0f), latency mean %.0f µs p50 %.0f µs p99 %.0f µs (%d samples)"
    r.throughput r.goodput r.latency_mean_us r.latency_p50_us r.latency_p99_us r.samples

type window = {
  mutable measuring : bool;
  latencies : Sim.Stats.Series.t;
  mutable completed : int;
  mutable succeeded : int;
}

let fresh_window () =
  { measuring = false; latencies = Sim.Stats.Series.create (); completed = 0; succeeded = 0 }

let record w ~started ok =
  if w.measuring then begin
    Sim.Stats.Series.add w.latencies (Sim.Engine.now () -. started);
    w.completed <- w.completed + 1;
    if ok then w.succeeded <- w.succeeded + 1
  end

let finish w ~measure_us =
  let seconds = measure_us /. 1e6 in
  let lat p = if Sim.Stats.Series.count w.latencies = 0 then 0. else Sim.Stats.Series.percentile w.latencies p in
  {
    throughput = float_of_int w.completed /. seconds;
    goodput = float_of_int w.succeeded /. seconds;
    latency_mean_us = Sim.Stats.Series.mean w.latencies;
    latency_p50_us = lat 50.;
    latency_p99_us = lat 99.;
    samples = w.completed;
  }

let run_window w ~warmup_us ~measure_us =
  Sim.Engine.sleep warmup_us;
  w.measuring <- true;
  Sim.Engine.sleep measure_us;
  w.measuring <- false;
  finish w ~measure_us

let closed_loop ?(warmup_us = 200_000.) ?(measure_us = 1_000_000.) ~fibers op =
  if fibers < 1 then invalid_arg "Load.closed_loop: need at least one fiber";
  let w = fresh_window () in
  for _ = 1 to fibers do
    Sim.Engine.spawn (fun () ->
        let rec loop () =
          let started = Sim.Engine.now () in
          let ok = op () in
          record w ~started ok;
          loop ()
        in
        loop ())
  done;
  run_window w ~warmup_us ~measure_us

let open_loop ?(warmup_us = 200_000.) ?(measure_us = 1_000_000.) ?(max_outstanding = 10_000)
    ~rate op =
  if rate <= 0. then invalid_arg "Load.open_loop: rate must be positive";
  let w = fresh_window () in
  let outstanding = ref 0 in
  let mean_gap = 1e6 /. rate in
  Sim.Engine.spawn (fun () ->
      let rng = Sim.Rng.split (Sim.Engine.rng ()) in
      let rec generate () =
        Sim.Engine.sleep (Sim.Rng.exponential rng ~mean:mean_gap);
        if !outstanding < max_outstanding then begin
          incr outstanding;
          Sim.Engine.spawn (fun () ->
              let started = Sim.Engine.now () in
              let ok = op () in
              decr outstanding;
              record w ~started ok)
        end;
        generate ()
      in
      generate ());
  run_window w ~warmup_us ~measure_us

let measure_counter ?(warmup_us = 200_000.) ?(measure_us = 1_000_000.) get =
  Sim.Engine.sleep warmup_us;
  let before = get () in
  Sim.Engine.sleep measure_us;
  let after = get () in
  float_of_int (after - before) /. (measure_us /. 1e6)
