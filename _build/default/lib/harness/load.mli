(** Load generation and measurement for the evaluation harness.

    Mirrors the paper's methodology (§6): closed loops with a window
    of outstanding operations per client for the latency/throughput
    curves, and open loops with a target rate for the
    fixed-write-load experiments. Warmup is excluded from
    measurement. *)

type report = {
  throughput : float;  (** completed ops per second *)
  goodput : float;  (** successful (committed) ops per second *)
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p99_us : float;
  samples : int;
}

val pp_report : Format.formatter -> report -> unit

(** [closed_loop ~fibers op] spawns [fibers] fibers repeatedly
    invoking [op] (its [bool] result marks goodput) and measures for
    [measure_us] (default 1 s) after [warmup_us] (default 200 ms).
    Call from the simulation's main fiber. *)
val closed_loop :
  ?warmup_us:float -> ?measure_us:float -> fibers:int -> (unit -> bool) -> report

(** [open_loop ~rate op] fires [op] at [rate] per second (Poisson
    arrivals), each in its own fiber, capping in-flight ops at
    [max_outstanding] (default 10_000; excess arrivals are dropped and
    not counted). *)
val open_loop :
  ?warmup_us:float ->
  ?measure_us:float ->
  ?max_outstanding:int ->
  rate:float ->
  (unit -> bool) ->
  report

(** [measure_counter ~warmup_us ~measure_us get] samples a
    monotonically increasing counter over the window and returns its
    rate per second — for throughput that is counted inside the
    system (e.g. records applied). *)
val measure_counter : ?warmup_us:float -> ?measure_us:float -> (unit -> int) -> float
