type op = Read of int | Write of int

type event = { started : float; finished : float; op : op }

(* Depth-first search over linearization orders: an operation may be
   linearized next only if no other pending operation finished before
   it started (that operation would really-precede it). Memoize on
   (pending set, register value): two search states with the same
   remaining operations and the same current value are equivalent. *)
let check_register ?(initial = 0) history =
  let events = Array.of_list history in
  let n = Array.length events in
  if n > 62 then invalid_arg "Linearizability.check_register: history too long";
  Array.iter
    (fun e ->
      if e.finished < e.started then
        invalid_arg "Linearizability.check_register: finished < started")
    events;
  if n = 0 then true
  else begin
    let all_done = (1 lsl n) - 1 in
    let failed = Hashtbl.create 1024 in
    (* really-precedes: e1 responded before e2 was invoked *)
    let precedes i j = events.(i).finished < events.(j).started in
    let rec search done_mask value =
      if done_mask = all_done then true
      else if Hashtbl.mem failed (done_mask, value) then false
      else begin
        let ok = ref false in
        let i = ref 0 in
        while (not !ok) && !i < n do
          let candidate = !i in
          incr i;
          if done_mask land (1 lsl candidate) = 0 then begin
            (* minimal among pending ops w.r.t. real-time order? *)
            let minimal = ref true in
            for j = 0 to n - 1 do
              if done_mask land (1 lsl j) = 0 && j <> candidate && precedes j candidate then
                minimal := false
            done;
            if !minimal then
              match events.(candidate).op with
              | Write w -> if search (done_mask lor (1 lsl candidate)) w then ok := true
              | Read r ->
                  if r = value && search (done_mask lor (1 lsl candidate)) value then ok := true
          end
        done;
        if not !ok then Hashtbl.replace failed (done_mask, value) ();
        !ok
      end
    in
    search 0 initial
  end
