(** A linearizability checker for register histories (Wing & Gong
    style search with memoization).

    The paper's core single-object claim (§3.1) is that "a Tango
    object with multiple views on different machines provides
    linearizable semantics for invocations of its mutators and
    accessors". This module checks that claim {e from observations}:
    record each operation's invocation and response times (virtual
    time in the simulator) plus its value, and ask whether some legal
    sequential register execution explains the history while
    respecting real-time order.

    Exhaustive search is exponential in the worst case; fine for the
    hundreds-of-ops histories the tests generate. *)

type op = Read of int | Write of int

type event = {
  started : float;  (** invocation time *)
  finished : float;  (** response time; must be >= [started] *)
  op : op;
}

(** [check_register ?initial history] returns [true] iff the history
    of a single register is linearizable. [initial] (default 0) is the
    register's starting value.
    @raise Invalid_argument on an event with [finished < started] or a
    history longer than 62 events (the search uses a bitmask). *)
val check_register : ?initial:int -> event list -> bool
