(** Unbounded FIFO channels between fibers.

    [send] never blocks; [recv] blocks until a message is available.
    Messages are delivered in send order; blocked receivers are served
    in arrival order. *)

type 'a t

val create : unit -> 'a t
val send : 'a t -> 'a -> unit

(** [recv t] returns the next message, blocking if none is queued. *)
val recv : 'a t -> 'a

(** [try_recv t] returns the next message without blocking. *)
val try_recv : 'a t -> 'a option

(** [length t] is the number of queued (undelivered) messages. *)
val length : 'a t -> int
