let state = ref (match Sys.getenv_opt "TANGO_TRACE" with Some ("1" | "true") -> true | _ -> false)

let set_enabled b = state := b
let enabled () = !state

let f component fmt =
  if !state then begin
    Format.eprintf "[%12.1f] %-10s " (Engine.now ()) component;
    Format.kfprintf (fun ppf -> Format.pp_print_newline ppf ()) Format.err_formatter fmt
  end
  else Format.ifprintf Format.err_formatter fmt
