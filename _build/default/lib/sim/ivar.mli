(** Write-once synchronization cells for fibers.

    An ivar starts empty; any number of fibers may block in {!read}
    until a single {!fill} publishes the value. *)

type 'a t

val create : unit -> 'a t

(** [fill t v] stores [v] and wakes all readers.
    @raise Invalid_argument if already filled. *)
val fill : 'a t -> 'a -> unit

(** [read t] returns the value, blocking the calling fiber until the
    ivar is filled. *)
val read : 'a t -> 'a

(** [peek t] returns the value if present, without blocking. *)
val peek : 'a t -> 'a option

val is_filled : 'a t -> bool
