type t = {
  name : string;
  capacity : int;
  mutable in_use : int;
  waiters : (unit -> unit) Queue.t;
  mutable busy_integral : float;
  mutable last_update : float;
}

let create ~name ~capacity () =
  if capacity < 1 then invalid_arg "Resource.create: capacity must be >= 1";
  { name; capacity; in_use = 0; waiters = Queue.create (); busy_integral = 0.; last_update = 0. }

let name t = t.name

let account t =
  let now = Engine.now () in
  t.busy_integral <- t.busy_integral +. (float_of_int t.in_use *. (now -. t.last_update));
  t.last_update <- now

let acquire t =
  if t.in_use < t.capacity && Queue.is_empty t.waiters then begin
    account t;
    t.in_use <- t.in_use + 1
  end
  else Engine.suspend (fun resume -> Queue.add (fun () -> resume ()) t.waiters)

let release t =
  if t.in_use = 0 then invalid_arg "Resource.release: not held";
  match Queue.take_opt t.waiters with
  | Some waiter ->
      (* Hand the server straight to the next fiber in line; [in_use]
         stays constant so no accounting boundary is needed. *)
      waiter ()
  | None ->
      account t;
      t.in_use <- t.in_use - 1

let use t dt =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) (fun () -> Engine.sleep dt)

let queue_length t = Queue.length t.waiters

let busy_time t =
  account t;
  t.busy_integral
