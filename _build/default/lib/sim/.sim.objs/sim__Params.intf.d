lib/sim/params.mli:
