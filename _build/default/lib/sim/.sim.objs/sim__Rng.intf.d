lib/sim/rng.mli:
