lib/sim/mailbox.mli:
