lib/sim/net.ml: Engine Resource Rng
