lib/sim/resource.mli:
