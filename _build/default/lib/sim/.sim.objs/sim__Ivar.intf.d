lib/sim/ivar.mli:
