lib/sim/stats.mli:
