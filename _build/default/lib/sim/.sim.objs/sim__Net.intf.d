lib/sim/net.mli: Resource
