lib/sim/engine.ml: Array Effect Float Fun Rng
