lib/sim/trace.ml: Engine Format Sys
