lib/sim/params.ml:
