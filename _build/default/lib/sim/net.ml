type host = {
  hname : string;
  nic_in_r : Resource.t;
  nic_out_r : Resource.t;
  cpu : Resource.t;
  fabric_latency : float;
  fabric_jitter : float;
  byte_time : float;
}

type t = { latency : float; jitter : float; byte_time : float }

type ('req, 'resp) service = { shost : host; serve : 'req -> 'resp }

let create ~latency ~bandwidth ?(jitter = 0.05) () =
  if bandwidth <= 0. then invalid_arg "Net.create: bandwidth must be positive";
  { latency; jitter; byte_time = 1. /. bandwidth }

let add_host ?(cores = 8) t name =
  {
    hname = name;
    nic_in_r = Resource.create ~name:(name ^ ".nic-in") ~capacity:1 ();
    nic_out_r = Resource.create ~name:(name ^ ".nic-out") ~capacity:1 ();
    cpu = Resource.create ~name:(name ^ ".cpu") ~capacity:cores ();
    fabric_latency = t.latency;
    fabric_jitter = t.jitter;
    byte_time = t.byte_time;
  }

let host_name h = h.hname
let host_cpu h = h.cpu
let nic_in h = h.nic_in_r
let nic_out h = h.nic_out_r

let service shost ~name:_ serve = { shost; serve }

let propagation h =
  let base = h.fabric_latency in
  if h.fabric_jitter = 0. then base
  else base *. (1. +. Rng.float (Engine.rng ()) h.fabric_jitter)

let transfer ~(src : host) ~(dst : host) ~bytes =
  let wire_time = float_of_int bytes *. src.byte_time in
  Resource.use src.nic_out_r wire_time;
  Engine.sleep (propagation src);
  Resource.use dst.nic_in_r wire_time

let call ?(req_bytes = 64) ?(resp_bytes = 64) ~from svc req =
  if from == svc.shost then svc.serve req
  else begin
    transfer ~src:from ~dst:svc.shost ~bytes:req_bytes;
    let resp = svc.serve req in
    transfer ~src:svc.shost ~dst:from ~bytes:resp_bytes;
    resp
  end

let send ?(req_bytes = 64) ~from svc req =
  if from == svc.shost then Engine.spawn (fun () -> svc.serve req)
  else begin
    let wire_time = float_of_int req_bytes *. from.byte_time in
    Resource.use from.nic_out_r wire_time;
    Engine.spawn (fun () ->
        Engine.sleep (propagation from);
        Resource.use svc.shost.nic_in_r wire_time;
        svc.serve req)
  end

let one_way_delay t ~bytes = (2. *. float_of_int bytes *. t.byte_time) +. t.latency
