(** Simulated datacenter network.

    Hosts own full-duplex NICs modelled as {!Resource.t} pairs; every
    message charges serialization time (bytes / bandwidth) on the
    sender's outbound NIC and the receiver's inbound NIC, plus a
    propagation latency with optional jitter. Services are typed
    request/response endpoints; {!call} performs a blocking RPC with
    both directions paying network costs. Handler code runs in the
    calling fiber but charges its costs to the {e server's} resources,
    so server saturation behaves correctly. *)

type t
type host

(** [create ~latency ~bandwidth ?jitter ()] builds a network fabric.
    [latency] is the one-way propagation delay in µs; [bandwidth] is
    per-NIC-direction in bytes/µs; [jitter] (default 0.05) scales a
    uniform multiplicative perturbation of the latency. *)
val create : latency:float -> bandwidth:float -> ?jitter:float -> unit -> t

(** [add_host t name] registers a machine with its own NIC pair and a
    CPU station ([cores], default 8). *)
val add_host : ?cores:int -> t -> string -> host

val host_name : host -> string
val host_cpu : host -> Resource.t
val nic_in : host -> Resource.t
val nic_out : host -> Resource.t

type ('req, 'resp) service

(** [service host ~name serve] exposes [serve] as an RPC endpoint on
    [host]. [serve] should model its own server-side costs (CPU, SSD)
    via {!Resource.use}. *)
val service : host -> name:string -> ('req -> 'resp) -> ('req, 'resp) service

(** [call ~from svc req] performs a blocking RPC. [req_bytes] and
    [resp_bytes] (default 64) size the two messages. Calls between a
    host and itself skip the network entirely. *)
val call :
  ?req_bytes:int -> ?resp_bytes:int -> from:host -> ('req, 'resp) service -> 'req -> 'resp

(** [send ~from svc req] is a fire-and-forget cast: the caller pays
    only its own serialization cost; delivery and handling happen in a
    fresh fiber. *)
val send : ?req_bytes:int -> from:host -> ('req, unit) service -> 'req -> unit

(** [one_way_delay t ~bytes] is the modelled cost of moving [bytes]
    one hop, excluding queueing: serialization at both ends plus mean
    propagation latency. Useful for calibration printouts. *)
val one_way_delay : t -> bytes:int -> float
