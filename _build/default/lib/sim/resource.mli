(** Queueing stations: the cost model of the simulation.

    A resource models a physical bottleneck — a NIC direction, an SSD,
    a CPU — as [capacity] identical servers in front of a FIFO queue.
    A fiber occupies one server for a service time; when all servers
    are busy the fiber waits in line. Saturation curves in the
    benchmarks emerge from these queues. *)

type t

(** [create ~name ~capacity ()] makes a station with [capacity]
    parallel servers.
    @raise Invalid_argument if [capacity < 1]. *)
val create : name:string -> capacity:int -> unit -> t

val name : t -> string

(** [acquire t] takes one server, waiting in FIFO order if none is
    free. *)
val acquire : t -> unit

(** [release t] frees one server, handing it to the longest-waiting
    fiber if any.
    @raise Invalid_argument if no server is held. *)
val release : t -> unit

(** [use t dt] = acquire, hold for [dt] microseconds, release. This is
    the normal way to charge a cost to the resource. *)
val use : t -> float -> unit

(** [queue_length t] is the number of fibers currently waiting. *)
val queue_length : t -> int

(** [busy_time t] is the total server-busy integral (µs × servers)
    accumulated so far, for utilization reporting. *)
val busy_time : t -> float
