(** Lightweight simulation tracing.

    Disabled by default; set the environment variable [TANGO_TRACE=1]
    (or call {!set_enabled}) to print one line per event to stderr,
    prefixed with the virtual timestamp. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

(** [f "component" fmt ...] logs one formatted line when enabled. *)
val f : string -> ('a, Format.formatter, unit) format -> 'a
