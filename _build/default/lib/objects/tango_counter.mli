(** TangoCounter: a shared counter whose updates are {e deltas}, so
    concurrent increments from many clients never conflict — apply is
    commutative addition. The paper's job-scheduler example uses one
    for fresh job ids. *)

type t

val attach : Tango.Runtime.t -> oid:int -> t
val oid : t -> int

(** [add t delta]: blind increment (no read, no conflict). *)
val add : t -> int -> unit

val incr : t -> unit

(** Linearizable value. *)
val get : t -> int

(** [next_id t] transactionally reserves and returns a fresh value:
    reads the counter, bumps it, retrying on conflict. Unlike {!add},
    concurrent callers are serialized. *)
val next_id : t -> int
