type t = { rt : Tango.Runtime.t; coid : int; mutable value : int }

let encode v = Codec.to_bytes (fun b -> Codec.put_int b v)
let decode data = Codec.get_int (Codec.reader data)

let attach rt ~oid =
  let t = { rt; coid = oid; value = 0 } in
  Tango.Runtime.register rt ~oid
    {
      Tango.Runtime.apply = (fun ~pos:_ ~key:_ data -> t.value <- t.value + decode data);
      checkpoint = Some (fun () -> encode t.value);
      load_checkpoint = Some (fun data -> t.value <- decode data);
    };
  t

let oid t = t.coid
let add t delta = Tango.Runtime.update_helper t.rt ~oid:t.coid (encode delta)
let incr t = add t 1

let get t =
  Tango.Runtime.query_helper t.rt ~oid:t.coid ();
  t.value

let rec next_id t =
  Tango.Runtime.begin_tx t.rt;
  Tango.Runtime.query_helper t.rt ~oid:t.coid ();
  let id = t.value in
  Tango.Runtime.update_helper t.rt ~oid:t.coid (encode 1);
  match Tango.Runtime.end_tx t.rt with
  | Tango.Runtime.Committed -> id
  | Tango.Runtime.Aborted -> next_id t
