(** TangoQueue: a replicated FIFO queue. Producers can enqueue with a
    remote-write transaction without hosting the queue or seeing its
    updates (§4.1 case B); consumers dequeue transactionally, so each
    item is delivered exactly once across competing consumers. *)

type t

(** [attach rt ~oid] hosts a consumer-side view. [needs_decision] is
    set: remote producers' commit records reach consumers that lack
    the producers' read sets. *)
val attach : Tango.Runtime.t -> oid:int -> t

val oid : t -> int

(** [enqueue t item]: add at the tail (blind append; buffered inside a
    transaction). *)
val enqueue : t -> string -> unit

(** [enqueue_remote rt ~oid item]: producer-side enqueue that does not
    require hosting the queue — usable standalone or inside the
    producer's transactions. *)
val enqueue_remote : Tango.Runtime.t -> oid:int -> string -> unit

(** [dequeue t]: transactionally remove the head; [None] when empty.
    Retries internally on conflicts with competing consumers. *)
val dequeue : t -> string option

(** [peek t]: linearizable head without removal. *)
val peek : t -> string option

val length : t -> int
