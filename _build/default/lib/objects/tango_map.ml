type stored = Inline_value of string | At_pos of int

type t = {
  rt : Tango.Runtime.t;
  moid : int;
  mode : [ `Inline | `Indexed ];
  tbl : (string, stored) Hashtbl.t;
}

let encode_put k v =
  Codec.to_bytes (fun b ->
      Codec.put_u8 b 1;
      Codec.put_string b k;
      Codec.put_string b v)

let encode_remove k =
  Codec.to_bytes (fun b ->
      Codec.put_u8 b 2;
      Codec.put_string b k)

type op = Op_put of string * string | Op_remove of string

let decode data =
  let c = Codec.reader data in
  match Codec.get_u8 c with
  | 1 ->
      let k = Codec.get_string c in
      let v = Codec.get_string c in
      Op_put (k, v)
  | 2 -> Op_remove (Codec.get_string c)
  | tag -> invalid_arg (Printf.sprintf "Tango_map: unknown op tag %d" tag)

let snapshot t =
  Codec.to_bytes (fun b ->
      Codec.put_int b (Hashtbl.length t.tbl);
      Hashtbl.iter
        (fun k stored ->
          Codec.put_string b k;
          match stored with
          | Inline_value v ->
              Codec.put_u8 b 1;
              Codec.put_string b v
          | At_pos p ->
              Codec.put_u8 b 2;
              Codec.put_int b p)
        t.tbl)

let load_snapshot t data =
  Hashtbl.reset t.tbl;
  let c = Codec.reader data in
  let n = Codec.get_int c in
  for _ = 1 to n do
    let k = Codec.get_string c in
    match Codec.get_u8 c with
    | 1 -> Hashtbl.replace t.tbl k (Inline_value (Codec.get_string c))
    | _ -> Hashtbl.replace t.tbl k (At_pos (Codec.get_int c))
  done

let attach ?(mode = `Inline) ?(needs_decision = false) rt ~oid =
  let t = { rt; moid = oid; mode; tbl = Hashtbl.create 64 } in
  Tango.Runtime.register rt ~oid ~needs_decision
    {
      Tango.Runtime.apply =
        (fun ~pos ~key:_ data ->
          match decode data with
          | Op_put (k, v) ->
              Hashtbl.replace t.tbl k
                (match t.mode with `Inline -> Inline_value v | `Indexed -> At_pos pos)
          | Op_remove k -> Hashtbl.remove t.tbl k);
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let oid t = t.moid
let put t k v = Tango.Runtime.update_helper t.rt ~oid:t.moid ~key:k (encode_put k v)
let remove t k = Tango.Runtime.update_helper t.rt ~oid:t.moid ~key:k (encode_remove k)

let value_of t = function
  | Inline_value v -> v
  | At_pos pos -> (
      (* The view is an index over the log: fetch the update record
         and re-decode its payload (§3.1, Durability). *)
      match decode (Tango.Runtime.fetch t.rt ~oid:t.moid pos) with
      | Op_put (_, v) -> v
      | Op_remove _ -> assert false)

let get t k =
  Tango.Runtime.query_helper t.rt ~oid:t.moid ~key:k ();
  Option.map (value_of t) (Hashtbl.find_opt t.tbl k)

let mem t k =
  Tango.Runtime.query_helper t.rt ~oid:t.moid ~key:k ();
  Hashtbl.mem t.tbl k

let size t =
  Tango.Runtime.query_helper t.rt ~oid:t.moid ();
  Hashtbl.length t.tbl

let bindings t =
  Tango.Runtime.query_helper t.rt ~oid:t.moid ();
  Hashtbl.fold (fun k stored acc -> (k, value_of t stored) :: acc) t.tbl []
  |> List.sort compare

let remote_put rt ~oid k v = Tango.Runtime.update_helper rt ~oid ~key:k (encode_put k v)

let coarse_put t k v = Tango.Runtime.update_helper t.rt ~oid:t.moid (encode_put k v)

let wire_decode data =
  match decode data with Op_put (k, v) -> `Put (k, v) | Op_remove k -> `Remove k

let serve_reads t =
  Tango.Runtime.expose_read t.rt ~oid:t.moid (fun key ->
      match key with
      | Some k ->
          Option.map (fun stored -> Bytes.of_string (value_of t stored)) (Hashtbl.find_opt t.tbl k)
      | None -> None)

let get_remote rt ~oid k =
  Option.map Bytes.to_string (Tango.Runtime.query_remote rt ~oid ~key:k ())

let get_at t ~upto k =
  Tango.Runtime.query_helper t.rt ~oid:t.moid ~upto ();
  Option.map (value_of t) (Hashtbl.find_opt t.tbl k)

let bindings_at t ~upto =
  Tango.Runtime.query_helper t.rt ~oid:t.moid ~upto ();
  Hashtbl.fold (fun k stored acc -> (k, value_of t stored) :: acc) t.tbl []
  |> List.sort compare

let transfer ~from_map ~to_map_oid k =
  let rt = from_map.rt in
  Tango.Runtime.begin_tx rt;
  match get from_map k with
  | None ->
      Tango.Runtime.abort_tx rt;
      false
  | Some v -> (
      remove from_map k;
      Tango.Runtime.update_helper rt ~oid:to_map_oid ~key:k (encode_put k v);
      match Tango.Runtime.end_tx rt with
      | Tango.Runtime.Committed -> true
      | Tango.Runtime.Aborted -> false)
