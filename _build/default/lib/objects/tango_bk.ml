type error = No_ledger | Not_owner | Ledger_closed

type ledger = {
  owner : string;
  mutable closed : bool;
  mutable entry_positions : int array;  (* entry id -> log position *)
  mutable entry_count : int;
}

type t = {
  rt : Tango.Runtime.t;
  boid : int;
  me : string;
  ledgers_tbl : (int, ledger) Hashtbl.t;
  by_nonce : (string, int) Hashtbl.t;
  mutable next_ledger : int;
  mutable nonce_counter : int;
}

type update =
  | Create_ledger_u of { nonce : string; owner : string }
  | Add_entry_u of { ledger : int; writer : string; data : bytes }
  | Close_ledger_u of { ledger : int }

let encode = function
  | Create_ledger_u { nonce; owner } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 1;
          Codec.put_string b nonce;
          Codec.put_string b owner)
  | Add_entry_u { ledger; writer; data } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 2;
          Codec.put_int b ledger;
          Codec.put_string b writer;
          Codec.put_string b (Bytes.to_string data))
  | Close_ledger_u { ledger } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 3;
          Codec.put_int b ledger)

type decoded =
  | D_create of string * string
  | D_add of int * string * bytes
  | D_close of int

let decode data =
  let c = Codec.reader data in
  match Codec.get_u8 c with
  | 1 ->
      let nonce = Codec.get_string c in
      let owner = Codec.get_string c in
      D_create (nonce, owner)
  | 2 ->
      let ledger = Codec.get_int c in
      let writer = Codec.get_string c in
      let body = Bytes.of_string (Codec.get_string c) in
      D_add (ledger, writer, body)
  | 3 -> D_close (Codec.get_int c)
  | tag -> invalid_arg (Printf.sprintf "Tango_bk: unknown update tag %d" tag)

let push_entry l pos =
  if l.entry_count = Array.length l.entry_positions then begin
    let bigger = Array.make (max 16 (2 * l.entry_count)) 0 in
    Array.blit l.entry_positions 0 bigger 0 l.entry_count;
    l.entry_positions <- bigger
  end;
  l.entry_positions.(l.entry_count) <- pos;
  l.entry_count <- l.entry_count + 1

let apply t ~pos data =
  match decode data with
  | D_create (nonce, owner) ->
      if not (Hashtbl.mem t.by_nonce nonce) then begin
        let id = t.next_ledger in
        t.next_ledger <- id + 1;
        Hashtbl.replace t.by_nonce nonce id;
        Hashtbl.replace t.ledgers_tbl id
          { owner; closed = false; entry_positions = [||]; entry_count = 0 }
      end
  | D_add (ledger, writer, _body) -> (
      match Hashtbl.find_opt t.ledgers_tbl ledger with
      | Some l when (not l.closed) && String.equal l.owner writer ->
          (* Log-as-index: remember where the body lives, not the body. *)
          push_entry l pos
      | Some _ | None -> () (* single-writer / closed enforcement *))
  | D_close ledger -> (
      match Hashtbl.find_opt t.ledgers_tbl ledger with
      | Some l -> l.closed <- true
      | None -> ())

let snapshot t =
  Codec.to_bytes (fun b ->
      Codec.put_int b t.next_ledger;
      Codec.put_int b (Hashtbl.length t.by_nonce);
      Hashtbl.iter
        (fun nonce id ->
          Codec.put_string b nonce;
          Codec.put_int b id)
        t.by_nonce;
      Codec.put_int b (Hashtbl.length t.ledgers_tbl);
      Hashtbl.iter
        (fun id l ->
          Codec.put_int b id;
          Codec.put_string b l.owner;
          Codec.put_bool b l.closed;
          Codec.put_int b l.entry_count;
          for i = 0 to l.entry_count - 1 do
            Codec.put_int b l.entry_positions.(i)
          done)
        t.ledgers_tbl)

let load_snapshot t data =
  Hashtbl.reset t.ledgers_tbl;
  Hashtbl.reset t.by_nonce;
  let c = Codec.reader data in
  t.next_ledger <- Codec.get_int c;
  let nnonce = Codec.get_int c in
  for _ = 1 to nnonce do
    let nonce = Codec.get_string c in
    let id = Codec.get_int c in
    Hashtbl.replace t.by_nonce nonce id
  done;
  let nledgers = Codec.get_int c in
  for _ = 1 to nledgers do
    let id = Codec.get_int c in
    let owner = Codec.get_string c in
    let closed = Codec.get_bool c in
    let n = Codec.get_int c in
    let entry_positions = Array.init n (fun _ -> Codec.get_int c) in
    Hashtbl.replace t.ledgers_tbl id { owner; closed; entry_positions; entry_count = n }
  done

let attach rt ~oid =
  let me = Sim.Net.host_name (Corfu.Client.host (Tango.Runtime.client rt)) in
  let t =
    {
      rt;
      boid = oid;
      me;
      ledgers_tbl = Hashtbl.create 16;
      by_nonce = Hashtbl.create 16;
      next_ledger = 0;
      nonce_counter = 0;
    }
  in
  Tango.Runtime.register rt ~oid
    {
      Tango.Runtime.apply = (fun ~pos ~key:_ data -> apply t ~pos data);
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let oid t = t.boid
let sync t = Tango.Runtime.query_helper t.rt ~oid:t.boid ()

let create_ledger t =
  t.nonce_counter <- t.nonce_counter + 1;
  let nonce = Printf.sprintf "%s#%d" t.me t.nonce_counter in
  Tango.Runtime.update_helper t.rt ~oid:t.boid (encode (Create_ledger_u { nonce; owner = t.me }));
  sync t;
  match Hashtbl.find_opt t.by_nonce nonce with
  | Some id -> id
  | None -> failwith "Tango_bk.create_ledger: creation did not materialize"

let with_ledger t ledger f =
  sync t;
  match Hashtbl.find_opt t.ledgers_tbl ledger with None -> Error No_ledger | Some l -> f l

let add_entry t ~ledger data =
  with_ledger t ledger (fun l ->
      if not (String.equal l.owner t.me) then Error Not_owner
      else if l.closed then Error Ledger_closed
      else begin
        Tango.Runtime.update_helper t.rt ~oid:t.boid ~key:(string_of_int ledger)
          (encode (Add_entry_u { ledger; writer = t.me; data }));
        sync t;
        Ok (l.entry_count - 1)
      end)

let fetch_body t pos =
  match decode (Tango.Runtime.fetch t.rt ~oid:t.boid pos) with
  | D_add (_, _, body) -> body
  | D_create _ | D_close _ -> assert false

let read_entry t ~ledger i =
  sync t;
  match Hashtbl.find_opt t.ledgers_tbl ledger with
  | Some l when i >= 0 && i < l.entry_count -> Some (fetch_body t l.entry_positions.(i))
  | Some _ | None -> None

let read_entries t ~ledger ~lo ~hi =
  sync t;
  match Hashtbl.find_opt t.ledgers_tbl ledger with
  | None -> []
  | Some l ->
      let hi = min hi (l.entry_count - 1) in
      let rec go i acc = if i < lo then acc else go (i - 1) (fetch_body t l.entry_positions.(i) :: acc) in
      if hi < lo then [] else go hi []

let last_entry_id t ~ledger = with_ledger t ledger (fun l -> Ok (l.entry_count - 1))

let close_ledger t ~ledger =
  with_ledger t ledger (fun _ ->
      Tango.Runtime.update_helper t.rt ~oid:t.boid ~key:(string_of_int ledger)
        (encode (Close_ledger_u { ledger }));
      sync t;
      match Hashtbl.find_opt t.ledgers_tbl ledger with
      | Some l -> Ok (l.entry_count - 1)
      | None -> Error No_ledger)

let is_closed t ~ledger = with_ledger t ledger (fun l -> Ok l.closed)
let writer_of t ~ledger = with_ledger t ledger (fun l -> Ok l.owner)

let ledgers t =
  sync t;
  Hashtbl.fold (fun id _ acc -> id :: acc) t.ledgers_tbl [] |> List.sort compare
