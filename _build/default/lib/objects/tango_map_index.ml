module Keys = Set.Make (String)
module Kmap = Map.Make (String)

type t = {
  rt : Tango.Runtime.t;
  ioid : int;
  mutable by_key : string Kmap.t;  (* ordered key -> value *)
  inverted : (string, Keys.t) Hashtbl.t;  (* value -> keys *)
}

let unbind t k =
  match Kmap.find_opt k t.by_key with
  | None -> ()
  | Some v -> (
      t.by_key <- Kmap.remove k t.by_key;
      match Hashtbl.find_opt t.inverted v with
      | Some keys ->
          let keys = Keys.remove k keys in
          if Keys.is_empty keys then Hashtbl.remove t.inverted v
          else Hashtbl.replace t.inverted v keys
      | None -> ())

let apply t data =
  match Tango_map.wire_decode data with
  | `Put (k, v) ->
      unbind t k;
      t.by_key <- Kmap.add k v t.by_key;
      let keys = match Hashtbl.find_opt t.inverted v with Some s -> s | None -> Keys.empty in
      Hashtbl.replace t.inverted v (Keys.add k keys)
  | `Remove k -> unbind t k

let attach rt ~oid =
  let t = { rt; ioid = oid; by_key = Kmap.empty; inverted = Hashtbl.create 64 } in
  let callbacks =
    {
      Tango.Runtime.apply = (fun ~pos:_ ~key:_ data -> apply t data);
      checkpoint = None;
      load_checkpoint = None;
    }
  in
  if Tango.Runtime.is_hosted rt oid then Tango.Runtime.register_extra_view rt ~oid callbacks
  else Tango.Runtime.register rt ~oid callbacks;
  t

let oid t = t.ioid
let sync t = Tango.Runtime.query_helper t.rt ~oid:t.ioid ()

let keys_with_prefix t p =
  sync t;
  Kmap.fold
    (fun k _ acc -> if String.starts_with ~prefix:p k then k :: acc else acc)
    t.by_key []
  |> List.rev

let key_range t ~lo ~hi =
  sync t;
  Kmap.fold
    (fun k _ acc -> if String.compare k lo >= 0 && String.compare k hi < 0 then k :: acc else acc)
    t.by_key []
  |> List.rev

let keys_with_value t v =
  sync t;
  match Hashtbl.find_opt t.inverted v with Some keys -> Keys.elements keys | None -> []

let size t =
  sync t;
  Kmap.cardinal t.by_key
