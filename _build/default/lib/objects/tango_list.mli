(** TangoList: a replicated, append-ordered list (the paper's free
    list / single-writer list examples, Figure 4). Coarse versioning:
    a list is not statically divisible into sub-regions (§3.2), so any
    transactional read conflicts with any concurrent mutation. *)

type t

val attach : Tango.Runtime.t -> oid:int -> t
val oid : t -> int

(** [add t item]: append to the tail. *)
val add : t -> string -> unit

(** [remove t item]: remove the first occurrence, if any. *)
val remove : t -> string -> unit

(** [pop t]: transactionally remove and return the head; [None] when
    empty. Retries internally on conflict. *)
val pop : t -> string option

val to_list : t -> string list

(** Historical read as of log offset [upto] (fresh views only). *)
val to_list_at : t -> upto:Corfu.Types.offset -> string list
val length : t -> int
val mem : t -> string -> bool
