(** An alternate view over a {!Tango_map}'s stream (§3.1: "objects
    with different in-memory data structures can share the same data
    on the log... allowing applications to perform two types of
    queries efficiently").

    Where the map answers point lookups, this view keeps the same data
    as (a) an ordered key index, answering prefix and range scans
    ("list all files starting with the letter B"), and (b) an inverted
    value→keys index. Attach it {e alongside} the map on the same
    runtime, or standalone on another client — either way it consumes
    the map's stream and is always consistent with it. *)

type t

(** [attach rt ~oid] hosts the index over map [oid]'s stream. If the
    runtime already hosts the map, the index rides along as an extra
    view; otherwise it becomes the stream's primary view. *)
val attach : Tango.Runtime.t -> oid:int -> t

val oid : t -> int

(** [keys_with_prefix t p]: all current keys starting with [p], in
    order. Linearizable. *)
val keys_with_prefix : t -> string -> string list

(** [key_range t ~lo ~hi]: keys with [lo <= k < hi], in order. *)
val key_range : t -> lo:string -> hi:string -> string list

(** [keys_with_value t v]: all keys currently bound to [v], in
    order — the inverted index. *)
val keys_with_value : t -> string -> string list

val size : t -> int
