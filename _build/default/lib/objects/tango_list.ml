type t = { rt : Tango.Runtime.t; loid : int; mutable items : string list (* reversed *) }

let encode_add item =
  Codec.to_bytes (fun b ->
      Codec.put_u8 b 1;
      Codec.put_string b item)

let encode_remove item =
  Codec.to_bytes (fun b ->
      Codec.put_u8 b 2;
      Codec.put_string b item)

let remove_first item l =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest when String.equal x item -> List.rev_append acc rest
    | x :: rest -> go (x :: acc) rest
  in
  go [] l

let snapshot t =
  Codec.to_bytes (fun b ->
      Codec.put_int b (List.length t.items);
      List.iter (Codec.put_string b) t.items)

let load_snapshot t data =
  let c = Codec.reader data in
  let n = Codec.get_int c in
  t.items <- List.init n (fun _ -> Codec.get_string c)

let attach rt ~oid =
  let t = { rt; loid = oid; items = [] } in
  Tango.Runtime.register rt ~oid
    {
      Tango.Runtime.apply =
        (fun ~pos:_ ~key:_ data ->
          let c = Codec.reader data in
          match Codec.get_u8 c with
          | 1 -> t.items <- Codec.get_string c :: t.items
          | 2 -> t.items <- List.rev (remove_first (Codec.get_string c) (List.rev t.items))
          | tag -> invalid_arg (Printf.sprintf "Tango_list: unknown op tag %d" tag));
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let oid t = t.loid
let add t item = Tango.Runtime.update_helper t.rt ~oid:t.loid (encode_add item)
let remove t item = Tango.Runtime.update_helper t.rt ~oid:t.loid (encode_remove item)

let sync t = Tango.Runtime.query_helper t.rt ~oid:t.loid ()

let to_list t =
  sync t;
  List.rev t.items

let to_list_at t ~upto =
  Tango.Runtime.query_helper t.rt ~oid:t.loid ~upto ();
  List.rev t.items

let length t =
  sync t;
  List.length t.items

let mem t item =
  sync t;
  List.exists (String.equal item) t.items

let rec pop t =
  Tango.Runtime.begin_tx t.rt;
  sync t;
  match List.rev t.items with
  | [] ->
      Tango.Runtime.abort_tx t.rt;
      None
  | head :: _ -> (
      Tango.Runtime.update_helper t.rt ~oid:t.loid (encode_remove head);
      match Tango.Runtime.end_tx t.rt with
      | Tango.Runtime.Committed -> Some head
      | Tango.Runtime.Aborted -> pop t)
