lib/objects/tango_map_index.mli: Tango
