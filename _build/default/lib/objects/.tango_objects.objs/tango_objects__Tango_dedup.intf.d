lib/objects/tango_dedup.mli: Tango
