lib/objects/tango_graph.ml: Codec Hashtbl List Option Printf Set String Tango
