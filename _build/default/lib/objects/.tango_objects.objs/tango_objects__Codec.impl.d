lib/objects/codec.ml: Buffer Bytes Int32 Int64 String
