lib/objects/tango_counter.mli: Tango
