lib/objects/tango_set.ml: Codec Printf Set String Tango
