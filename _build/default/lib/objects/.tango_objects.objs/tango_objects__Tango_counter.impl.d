lib/objects/tango_counter.ml: Codec Tango
