lib/objects/tango_bk.ml: Array Bytes Codec Corfu Hashtbl List Printf Sim String Tango
