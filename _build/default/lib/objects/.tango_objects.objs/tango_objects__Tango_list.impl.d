lib/objects/tango_list.ml: Codec List Printf String Tango
