lib/objects/tango_map_index.ml: Hashtbl List Map Set String Tango Tango_map
