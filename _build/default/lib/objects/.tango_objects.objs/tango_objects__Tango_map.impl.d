lib/objects/tango_map.ml: Bytes Codec Hashtbl List Option Printf Tango
