lib/objects/tango_list.mli: Corfu Tango
