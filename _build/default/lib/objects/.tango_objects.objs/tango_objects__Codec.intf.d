lib/objects/codec.mli: Buffer
