lib/objects/tango_queue.ml: Codec Hashtbl Printf Tango
