lib/objects/tango_graph.mli: Tango
