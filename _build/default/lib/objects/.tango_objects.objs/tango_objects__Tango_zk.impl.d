lib/objects/tango_zk.ml: Codec Corfu Hashtbl List Option Printf Set Sim String Tango
