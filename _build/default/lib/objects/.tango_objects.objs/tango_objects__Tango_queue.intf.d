lib/objects/tango_queue.mli: Tango
