lib/objects/tango_dedup.ml: Codec Hashtbl Option Printf Tango
