lib/objects/tango_register.mli: Corfu Tango
