lib/objects/tango_set.mli: Tango
