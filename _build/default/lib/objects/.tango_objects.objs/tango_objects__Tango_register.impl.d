lib/objects/tango_register.ml: Codec Tango
