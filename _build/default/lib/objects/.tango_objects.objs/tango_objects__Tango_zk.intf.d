lib/objects/tango_zk.mli: Tango
