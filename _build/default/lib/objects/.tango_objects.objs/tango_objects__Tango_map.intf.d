lib/objects/tango_map.mli: Corfu Tango
