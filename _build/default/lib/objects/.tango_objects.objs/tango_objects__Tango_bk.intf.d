lib/objects/tango_bk.mli: Tango
