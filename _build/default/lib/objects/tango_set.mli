(** TangoSet: a replicated ordered set (the TreeSet of the paper's
    Collections bindings, §1). Ordered queries — min, max, ranges —
    are what a plain ZooKeeper namespace cannot provide efficiently
    (§2): a membership service can pull the oldest inserted name or
    search by an index. *)

type t

val attach : Tango.Runtime.t -> oid:int -> t
val oid : t -> int

(** [add t elt] / [remove t elt]: per-element fine-grained
    versioning — transactions on different elements commute. *)
val add : t -> string -> unit

val remove : t -> string -> unit
val mem : t -> string -> bool
val cardinal : t -> int

(** Smallest / largest element (linearizable). *)
val min_elt : t -> string option

val max_elt : t -> string option

(** [range t ~lo ~hi] lists elements with [lo <= e < hi] in order. *)
val range : t -> lo:string -> hi:string -> string list

val elements : t -> string list
