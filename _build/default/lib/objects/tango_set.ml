module S = Set.Make (String)

type t = { rt : Tango.Runtime.t; soid : int; mutable set : S.t }

let encode_op tag elt =
  Codec.to_bytes (fun b ->
      Codec.put_u8 b tag;
      Codec.put_string b elt)

let snapshot t =
  Codec.to_bytes (fun b ->
      Codec.put_int b (S.cardinal t.set);
      S.iter (Codec.put_string b) t.set)

let load_snapshot t data =
  let c = Codec.reader data in
  let n = Codec.get_int c in
  t.set <- S.empty;
  for _ = 1 to n do
    t.set <- S.add (Codec.get_string c) t.set
  done

let attach rt ~oid =
  let t = { rt; soid = oid; set = S.empty } in
  Tango.Runtime.register rt ~oid
    {
      Tango.Runtime.apply =
        (fun ~pos:_ ~key:_ data ->
          let c = Codec.reader data in
          match Codec.get_u8 c with
          | 1 -> t.set <- S.add (Codec.get_string c) t.set
          | 2 -> t.set <- S.remove (Codec.get_string c) t.set
          | tag -> invalid_arg (Printf.sprintf "Tango_set: unknown op tag %d" tag));
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let oid t = t.soid
let add t elt = Tango.Runtime.update_helper t.rt ~oid:t.soid ~key:elt (encode_op 1 elt)
let remove t elt = Tango.Runtime.update_helper t.rt ~oid:t.soid ~key:elt (encode_op 2 elt)

let sync_key t elt = Tango.Runtime.query_helper t.rt ~oid:t.soid ~key:elt ()
let sync t = Tango.Runtime.query_helper t.rt ~oid:t.soid ()

let mem t elt =
  sync_key t elt;
  S.mem elt t.set

let cardinal t =
  sync t;
  S.cardinal t.set

let min_elt t =
  sync t;
  S.min_elt_opt t.set

let max_elt t =
  sync t;
  S.max_elt_opt t.set

let range t ~lo ~hi =
  sync t;
  S.elements (S.filter (fun e -> String.compare e lo >= 0 && String.compare e hi < 0) t.set)

let elements t =
  sync t;
  S.elements t.set
