type error = Node_exists | No_node | Not_empty | Bad_version

type event =
  | Node_created of string
  | Node_deleted of string
  | Node_data_changed of string
  | Node_children_changed of string

module Names = Set.Make (String)

type znode = {
  mutable data : string;
  mutable version : int;
  mutable children : Names.t;
  mutable seq_counter : int;
  ephemeral_owner : string option;
}

type t = {
  rt : Tango.Runtime.t;
  zoid : int;
  nodes : (string, znode) Hashtbl.t;
  data_watches : (string, (event -> unit) list ref) Hashtbl.t;
  child_watches : (string, (event -> unit) list ref) Hashtbl.t;
  mutable session_counter : int;
}

type session = { zk : t; sid : string }

(* ------------------------------------------------------------------ *)
(* Paths                                                              *)
(* ------------------------------------------------------------------ *)

let validate_path path =
  let n = String.length path in
  if n = 0 || path.[0] <> '/' then invalid_arg "Tango_zk: path must start with '/'";
  if n > 1 && path.[n - 1] = '/' then invalid_arg "Tango_zk: no trailing slash";
  let rec no_double i =
    if i >= n - 1 then ()
    else if path.[i] = '/' && path.[i + 1] = '/' then invalid_arg "Tango_zk: empty path component"
    else no_double (i + 1)
  in
  no_double 0

let parent_of path =
  match String.rindex path '/' with
  | 0 -> "/"
  | i -> String.sub path 0 i
  | exception Not_found -> invalid_arg "Tango_zk: bad path"

let name_of path =
  let i = String.rindex path '/' in
  String.sub path (i + 1) (String.length path - i - 1)

let join parent name = if parent = "/" then "/" ^ name else parent ^ "/" ^ name

(* ------------------------------------------------------------------ *)
(* Update records                                                     *)
(* ------------------------------------------------------------------ *)

type update =
  | Create_node of { path : string; data : string; ephemeral_owner : string option }
  | Add_child of { parent : string; name : string; used_seq : int option }
  | Delete_node of { path : string }
  | Remove_child of { parent : string; name : string }
  | Set_node_data of { path : string; data : string }
  | Close_session_u of { session : string }

let encode = function
  | Create_node { path; data; ephemeral_owner } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 1;
          Codec.put_string b path;
          Codec.put_string b data;
          Codec.put_opt_string b ephemeral_owner)
  | Add_child { parent; name; used_seq } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 2;
          Codec.put_string b parent;
          Codec.put_string b name;
          Codec.put_bool b (used_seq <> None);
          Codec.put_int b (Option.value used_seq ~default:0))
  | Delete_node { path } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 3;
          Codec.put_string b path)
  | Remove_child { parent; name } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 4;
          Codec.put_string b parent;
          Codec.put_string b name)
  | Set_node_data { path; data } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 5;
          Codec.put_string b path;
          Codec.put_string b data)
  | Close_session_u { session } ->
      Codec.to_bytes (fun b ->
          Codec.put_u8 b 6;
          Codec.put_string b session)

let decode data =
  let c = Codec.reader data in
  match Codec.get_u8 c with
  | 1 ->
      let path = Codec.get_string c in
      let d = Codec.get_string c in
      let ephemeral_owner = Codec.get_opt_string c in
      Create_node { path; data = d; ephemeral_owner }
  | 2 ->
      let parent = Codec.get_string c in
      let name = Codec.get_string c in
      let has_seq = Codec.get_bool c in
      let seq = Codec.get_int c in
      Add_child { parent; name; used_seq = (if has_seq then Some seq else None) }
  | 3 -> Delete_node { path = Codec.get_string c }
  | 4 ->
      let parent = Codec.get_string c in
      let name = Codec.get_string c in
      Remove_child { parent; name }
  | 5 ->
      let path = Codec.get_string c in
      let d = Codec.get_string c in
      Set_node_data { path; data = d }
  | 6 -> Close_session_u { session = Codec.get_string c }
  | tag -> invalid_arg (Printf.sprintf "Tango_zk: unknown update tag %d" tag)

(* ------------------------------------------------------------------ *)
(* Watches                                                            *)
(* ------------------------------------------------------------------ *)

let fire tbl path event =
  match Hashtbl.find_opt tbl path with
  | None -> ()
  | Some callbacks ->
      let cbs = !callbacks in
      callbacks := [];
      List.iter (fun cb -> cb event) (List.rev cbs)

let add_watch tbl path cb =
  match Hashtbl.find_opt tbl path with
  | Some callbacks -> callbacks := cb :: !callbacks
  | None -> Hashtbl.replace tbl path (ref [ cb ])

(* ------------------------------------------------------------------ *)
(* The view                                                           *)
(* ------------------------------------------------------------------ *)

let fresh_node ?ephemeral_owner data =
  { data; version = 0; children = Names.empty; seq_counter = 0; ephemeral_owner }

(* Blind creates from cross-namespace moves may land before their
   ancestors exist here; materialize the spine deterministically. *)
let rec ensure_node t path =
  match Hashtbl.find_opt t.nodes path with
  | Some z -> z
  | None ->
      let z = fresh_node "" in
      Hashtbl.replace t.nodes path z;
      if path <> "/" then begin
        let parent = ensure_node t (parent_of path) in
        parent.children <- Names.add (name_of path) parent.children
      end;
      z

let remove_node t path =
  match Hashtbl.find_opt t.nodes path with
  | None -> ()
  | Some _ ->
      Hashtbl.remove t.nodes path;
      fire t.data_watches path (Node_deleted path)

let apply_update t u =
  match u with
  | Create_node { path; data; ephemeral_owner } ->
      (match Hashtbl.find_opt t.nodes path with
      | Some existing ->
          (* Blind create over an existing node: last writer wins on
             data, children survive. *)
          existing.data <- data;
          existing.version <- existing.version + 1
      | None ->
          Hashtbl.replace t.nodes path (fresh_node ?ephemeral_owner data);
          fire t.data_watches path (Node_created path));
      ()
  | Add_child { parent; name; used_seq } ->
      let z = ensure_node t parent in
      z.children <- Names.add name z.children;
      (match used_seq with Some n -> z.seq_counter <- max z.seq_counter (n + 1) | None -> ());
      fire t.child_watches parent (Node_children_changed parent)
  | Delete_node { path } -> remove_node t path
  | Remove_child { parent; name } -> (
      match Hashtbl.find_opt t.nodes parent with
      | None -> ()
      | Some z ->
          z.children <- Names.remove name z.children;
          fire t.child_watches parent (Node_children_changed parent))
  | Set_node_data { path; data } -> (
      match Hashtbl.find_opt t.nodes path with
      | None -> ()
      | Some z ->
          z.data <- data;
          z.version <- z.version + 1;
          fire t.data_watches path (Node_data_changed path))
  | Close_session_u { session } ->
      let doomed =
        Hashtbl.fold
          (fun path z acc -> if z.ephemeral_owner = Some session then path :: acc else acc)
          t.nodes []
      in
      List.iter
        (fun path ->
          remove_node t path;
          match Hashtbl.find_opt t.nodes (parent_of path) with
          | Some parent ->
              parent.children <- Names.remove (name_of path) parent.children;
              fire t.child_watches (parent_of path) (Node_children_changed (parent_of path))
          | None -> ())
        doomed

let snapshot t =
  Codec.to_bytes (fun b ->
      Codec.put_int b (Hashtbl.length t.nodes);
      Hashtbl.iter
        (fun path z ->
          Codec.put_string b path;
          Codec.put_string b z.data;
          Codec.put_int b z.version;
          Codec.put_int b z.seq_counter;
          Codec.put_opt_string b z.ephemeral_owner;
          Codec.put_int b (Names.cardinal z.children);
          Names.iter (Codec.put_string b) z.children)
        t.nodes)

let load_snapshot t data =
  Hashtbl.reset t.nodes;
  let c = Codec.reader data in
  let n = Codec.get_int c in
  for _ = 1 to n do
    let path = Codec.get_string c in
    let data = Codec.get_string c in
    let version = Codec.get_int c in
    let seq_counter = Codec.get_int c in
    let ephemeral_owner = Codec.get_opt_string c in
    let nchildren = Codec.get_int c in
    let children = ref Names.empty in
    for _ = 1 to nchildren do
      children := Names.add (Codec.get_string c) !children
    done;
    Hashtbl.replace t.nodes path
      { data; version; children = !children; seq_counter; ephemeral_owner }
  done

let attach rt ~oid =
  let t =
    {
      rt;
      zoid = oid;
      nodes = Hashtbl.create 256;
      data_watches = Hashtbl.create 16;
      child_watches = Hashtbl.create 16;
      session_counter = 0;
    }
  in
  Hashtbl.replace t.nodes "/" (fresh_node "");
  Tango.Runtime.register rt ~oid ~needs_decision:true
    {
      Tango.Runtime.apply = (fun ~pos:_ ~key:_ data -> apply_update t (decode data));
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let oid t = t.zoid

(* ------------------------------------------------------------------ *)
(* Sessions                                                           *)
(* ------------------------------------------------------------------ *)

let create_session t =
  t.session_counter <- t.session_counter + 1;
  let host = Sim.Net.host_name (Corfu.Client.host (Tango.Runtime.client t.rt)) in
  { zk = t; sid = Printf.sprintf "%s#%d" host t.session_counter }

let session_id s = s.sid

let close_session t s =
  Tango.Runtime.update_helper t.rt ~oid:t.zoid (encode (Close_session_u { session = s.sid }))

(* ------------------------------------------------------------------ *)
(* Mutators (each a Tango transaction, retried on conflict)           *)
(* ------------------------------------------------------------------ *)

let submit t ~key u = Tango.Runtime.update_helper t.rt ~oid:t.zoid ~key (encode u)
let read_key t key = Tango.Runtime.query_helper t.rt ~oid:t.zoid ~key ()

let rec create t ?ephemeral ?(sequential = false) path data =
  validate_path path;
  if path = "/" then Error Node_exists
  else begin
    let parent = parent_of path in
    Tango.Runtime.begin_tx t.rt;
    read_key t parent;
    match Hashtbl.find_opt t.nodes parent with
    | None ->
        Tango.Runtime.abort_tx t.rt;
        Error No_node
    | Some pz -> (
        let final_path =
          if sequential then Printf.sprintf "%s%010d" path pz.seq_counter else path
        in
        read_key t final_path;
        if Hashtbl.mem t.nodes final_path then begin
          Tango.Runtime.abort_tx t.rt;
          Error Node_exists
        end
        else begin
          let owner = Option.map session_id ephemeral in
          submit t ~key:final_path
            (Create_node { path = final_path; data; ephemeral_owner = owner });
          submit t ~key:parent
            (Add_child
               {
                 parent;
                 name = name_of final_path;
                 used_seq = (if sequential then Some pz.seq_counter else None);
               });
          match Tango.Runtime.end_tx t.rt with
          | Tango.Runtime.Committed -> Ok final_path
          | Tango.Runtime.Aborted -> create t ?ephemeral ~sequential path data
        end)
  end

let rec delete t ?version path =
  validate_path path;
  if path = "/" then Error Not_empty
  else begin
    Tango.Runtime.begin_tx t.rt;
    read_key t path;
    match Hashtbl.find_opt t.nodes path with
    | None ->
        Tango.Runtime.abort_tx t.rt;
        Error No_node
    | Some z ->
        if not (Names.is_empty z.children) then begin
          Tango.Runtime.abort_tx t.rt;
          Error Not_empty
        end
        else if (match version with Some v -> v <> z.version | None -> false) then begin
          Tango.Runtime.abort_tx t.rt;
          Error Bad_version
        end
        else begin
          let parent = parent_of path in
          read_key t parent;
          submit t ~key:path (Delete_node { path });
          submit t ~key:parent (Remove_child { parent; name = name_of path });
          match Tango.Runtime.end_tx t.rt with
          | Tango.Runtime.Committed -> Ok ()
          | Tango.Runtime.Aborted -> delete t ?version path
        end
  end

let rec set_data t ?version path data =
  validate_path path;
  Tango.Runtime.begin_tx t.rt;
  read_key t path;
  match Hashtbl.find_opt t.nodes path with
  | None ->
      Tango.Runtime.abort_tx t.rt;
      Error No_node
  | Some z ->
      if (match version with Some v -> v <> z.version | None -> false) then begin
        Tango.Runtime.abort_tx t.rt;
        Error Bad_version
      end
      else begin
        submit t ~key:path (Set_node_data { path; data });
        match Tango.Runtime.end_tx t.rt with
        | Tango.Runtime.Committed -> Ok ()
        | Tango.Runtime.Aborted -> set_data t ?version path data
      end

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let get_data t path =
  validate_path path;
  read_key t path;
  Option.map (fun z -> (z.data, z.version)) (Hashtbl.find_opt t.nodes path)

let exists t path =
  validate_path path;
  read_key t path;
  Hashtbl.mem t.nodes path

let get_children t path =
  validate_path path;
  read_key t path;
  match Hashtbl.find_opt t.nodes path with
  | None -> Error No_node
  | Some z -> Ok (Names.elements z.children)

let node_count t =
  Tango.Runtime.query_helper t.rt ~oid:t.zoid ();
  Hashtbl.length t.nodes

(* ------------------------------------------------------------------ *)
(* Multi-ops                                                          *)
(* ------------------------------------------------------------------ *)

type op = Check of string * int | Create_op of string * string | Delete_op of string | Set_op of string * string

let rec multi t ops =
  Tango.Runtime.begin_tx t.rt;
  let bail e =
    Tango.Runtime.abort_tx t.rt;
    Error e
  in
  (* Validate against the snapshot while emitting buffered updates;
     the whole batch commits or aborts as one record. *)
  let rec step = function
    | [] -> (
        match Tango.Runtime.end_tx t.rt with
        | Tango.Runtime.Committed -> Ok ()
        | Tango.Runtime.Aborted -> multi t ops)
    | Check (path, v) :: rest -> (
        read_key t path;
        match Hashtbl.find_opt t.nodes path with
        | Some z when z.version = v -> step rest
        | Some _ -> bail Bad_version
        | None -> bail No_node)
    | Create_op (path, data) :: rest -> (
        let parent = parent_of path in
        read_key t parent;
        read_key t path;
        if Hashtbl.mem t.nodes path then bail Node_exists
        else if not (Hashtbl.mem t.nodes parent) then bail No_node
        else begin
          submit t ~key:path (Create_node { path; data; ephemeral_owner = None });
          submit t ~key:parent (Add_child { parent; name = name_of path; used_seq = None });
          step rest
        end)
    | Delete_op path :: rest -> (
        read_key t path;
        match Hashtbl.find_opt t.nodes path with
        | None -> bail No_node
        | Some z when not (Names.is_empty z.children) -> bail Not_empty
        | Some _ ->
            let parent = parent_of path in
            read_key t parent;
            submit t ~key:path (Delete_node { path });
            submit t ~key:parent (Remove_child { parent; name = name_of path });
            step rest)
    | Set_op (path, data) :: rest ->
        read_key t path;
        if not (Hashtbl.mem t.nodes path) then bail No_node
        else begin
          submit t ~key:path (Set_node_data { path; data });
          step rest
        end
  in
  step ops

(* ------------------------------------------------------------------ *)
(* Cross-namespace move                                               *)
(* ------------------------------------------------------------------ *)

let subtree_paths t path =
  let rec go path acc =
    match Hashtbl.find_opt t.nodes path with
    | None -> acc
    | Some z -> Names.fold (fun name acc -> go (join path name) acc) z.children (path :: acc)
  in
  (* post-order: children before parents *)
  go path []

let rec move t ~dst_oid path =
  validate_path path;
  if path = "/" then false
  else begin
    Tango.Runtime.begin_tx t.rt;
    read_key t path;
    if not (Hashtbl.mem t.nodes path) then begin
      Tango.Runtime.abort_tx t.rt;
      false
    end
    else begin
      let doomed = subtree_paths t path in
      (* Blind creates on the destination namespace (§4.1 case B: the
         destination need not be hosted here), children after parents. *)
      List.iter
        (fun p ->
          read_key t p;
          let z = Hashtbl.find t.nodes p in
          Tango.Runtime.update_helper t.rt ~oid:dst_oid ~key:p
            (encode (Create_node { path = p; data = z.data; ephemeral_owner = None }));
          Tango.Runtime.update_helper t.rt ~oid:dst_oid ~key:(parent_of p)
            (encode (Add_child { parent = parent_of p; name = name_of p; used_seq = None })))
        (List.rev doomed);
      (* Local deletes, children before parents. *)
      List.iter (fun p -> submit t ~key:p (Delete_node { path = p })) doomed;
      let parent = parent_of path in
      submit t ~key:parent (Remove_child { parent; name = name_of path });
      match Tango.Runtime.end_tx t.rt with
      | Tango.Runtime.Committed -> true
      | Tango.Runtime.Aborted -> move t ~dst_oid path
    end
  end

(* ------------------------------------------------------------------ *)
(* Watches                                                            *)
(* ------------------------------------------------------------------ *)

let watch_data t path cb =
  validate_path path;
  add_watch t.data_watches path cb

let watch_children t path cb =
  validate_path path;
  add_watch t.child_watches path cb
