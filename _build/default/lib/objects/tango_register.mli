(** TangoRegister (paper Figure 3): a linearizable, highly available,
    persistent integer register in a handful of lines over the
    runtime. *)

type t

(** [attach rt ~oid] hosts a view of the register on [rt]. Initial
    value 0. *)
val attach : Tango.Runtime.t -> oid:int -> t

val oid : t -> int

(** [write t v]: linearizable write (durable on return). Inside a
    transaction: buffered. *)
val write : t -> int -> unit

(** [read t]: linearizable read; inside a transaction, a versioned
    snapshot read. *)
val read : t -> int

(** [read_at t ~upto]: historical read of the state as of global log
    offset [upto] (§3.1, History). Use on a fresh view. *)
val read_at : t -> upto:Corfu.Types.offset -> int

(** Position of the last applied write, -1 if none. *)
val last_update_pos : t -> int
