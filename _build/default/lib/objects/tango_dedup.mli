(** TangoDedup: a replicated deduplication index — another of the
    paper's motivating metadata structures (§1, citing ChunkStash).

    Maps content hashes to storage locations with reference counts.
    [store] either finds the chunk already present (bumping its
    refcount and returning the existing location — the dedup hit) or
    claims a fresh location; [release] drops a reference and reports
    when the chunk became garbage. Both are transactions keyed by the
    hash, so operations on different chunks commute. *)

type t

val attach : Tango.Runtime.t -> oid:int -> t
val oid : t -> int

(** [store t ~hash ~bytes] returns [(location, `Duplicate | `Fresh)].
    Fresh locations are allocated densely. [bytes] is the chunk size,
    tracked for the savings report. *)
val store : t -> hash:string -> bytes:int -> int * [ `Duplicate | `Fresh ]

(** [release t ~hash] decrements; [Some location] when the last
    reference died and the location is reclaimable. [None] while
    references remain.
    @raise Not_found if the hash is unknown. *)
val release : t -> hash:string -> int option

(** [lookup t ~hash] returns [(location, refcount)] if present. *)
val lookup : t -> hash:string -> (int * int) option

(** Number of distinct chunks resident. *)
val chunk_count : t -> int

(** [(logical, physical)] bytes: what clients stored vs what is
    actually resident — the deduplication savings. *)
val bytes_stored : t -> int * int
