(** TangoMap: a replicated hash map with fine-grained per-key
    versioning (§3.2, Versioning), the workhorse of the paper's
    transaction benchmarks (Figures 9 and 10).

    Two storage modes (§3.1, Durability):
    - [`Inline]: the view holds the values;
    - [`Indexed]: the view holds log positions and {!get} issues a
      random read to the shared log — the map becomes an index over
      log-structured storage. *)

type t

(** [needs_decision] marks maps that remote-write transactions may
    target on clients lacking the generator's read set (§4.1 case C):
    commit records writing them get follow-up decision records. *)
val attach :
  ?mode:[ `Inline | `Indexed ] -> ?needs_decision:bool -> Tango.Runtime.t -> oid:int -> t
val oid : t -> int

(** [put t k v]: linearizable put (buffered inside transactions).
    Conflicts only with operations on the same key. *)
val put : t -> string -> string -> unit

(** [remove t k]: delete the binding. *)
val remove : t -> string -> unit

(** [get t k]: linearizable (or in-tx snapshot) lookup. *)
val get : t -> string -> string option

(** [mem t k] = [get t k <> None] without fetching indexed values. *)
val mem : t -> string -> bool

val size : t -> int

(** Current bindings (inline values or fetched). Linearizable. *)
val bindings : t -> (string * string) list

(** [remote_put rt ~oid k v]: write into a map that [rt] does not
    host — inside a transaction this is the §4.1 remote write; outside
    it is a plain blind update. *)
val remote_put : Tango.Runtime.t -> oid:int -> string -> string -> unit

(** [coarse_put t k v]: like {!put} but versioned against the whole
    object instead of the key — any concurrent transactional read of
    the map conflicts with it (the §3.2 versioning ablation). *)
val coarse_put : t -> string -> string -> unit

(** The map's wire format, for alternate views sharing its stream
    (§3.1): decode an update record's opaque buffer. *)
val wire_decode : bytes -> [ `Put of string * string | `Remove of string ]

(** [serve_reads t] exposes this view to peers' remote reads
    ({!Tango.Runtime.expose_read}); pair with {!get_remote} on the
    reading side. *)
val serve_reads : t -> unit

(** [get_remote rt ~oid k] reads key [k] of an unhosted map through a
    connected peer, inside the current transaction (§4.1 D). *)
val get_remote : Tango.Runtime.t -> oid:int -> string -> string option

(** [get_at t ~upto k] / [bindings_at t ~upto]: historical reads of
    the state as of global log offset [upto] (§3.1, History). Use on a
    fresh view; they never advance it past [upto]. *)
val get_at : t -> upto:Corfu.Types.offset -> string -> string option

val bindings_at : t -> upto:Corfu.Types.offset -> (string * string) list

(** [transfer ~from_map ~to_map key] atomically moves a binding
    between two maps — the paper's cross-partition transaction
    (Figure 10, Middle). Both maps must live on the same runtime; the
    destination may be remote (unhosted). Returns [false] if the key
    was absent or the transaction lost a conflict. *)
val transfer : from_map:t -> to_map_oid:int -> string -> bool
