type chunk = { location : int; mutable refs : int; size : int }

type t = {
  rt : Tango.Runtime.t;
  doid : int;
  chunks : (string, chunk) Hashtbl.t;
  mutable next_location : int;
  mutable logical : int;
  mutable physical : int;
}

type update = Insert of string * int | Retain of string * int | Release_u of string

let encode u =
  Codec.to_bytes (fun b ->
      match u with
      | Insert (hash, size) ->
          Codec.put_u8 b 1;
          Codec.put_string b hash;
          Codec.put_int b size
      | Retain (hash, size) ->
          Codec.put_u8 b 2;
          Codec.put_string b hash;
          Codec.put_int b size
      | Release_u hash ->
          Codec.put_u8 b 3;
          Codec.put_string b hash)

let decode data =
  let c = Codec.reader data in
  match Codec.get_u8 c with
  | 1 ->
      let hash = Codec.get_string c in
      Insert (hash, Codec.get_int c)
  | 2 ->
      let hash = Codec.get_string c in
      Retain (hash, Codec.get_int c)
  | 3 -> Release_u (Codec.get_string c)
  | tag -> invalid_arg (Printf.sprintf "Tango_dedup: unknown update tag %d" tag)

let apply t u =
  match u with
  | Insert (hash, size) ->
      (* Location allocation happens deterministically at apply time,
         so racing inserts of the same hash converge: the first one
         claims the location, the loser degrades to a retain. *)
      t.logical <- t.logical + size;
      (match Hashtbl.find_opt t.chunks hash with
      | Some c -> c.refs <- c.refs + 1
      | None ->
          let location = t.next_location in
          t.next_location <- location + 1;
          t.physical <- t.physical + size;
          Hashtbl.replace t.chunks hash { location; refs = 1; size })
  | Retain (hash, size) -> (
      t.logical <- t.logical + size;
      match Hashtbl.find_opt t.chunks hash with
      | Some c -> c.refs <- c.refs + 1
      | None -> () (* released concurrently; deterministic no-op *))
  | Release_u hash -> (
      match Hashtbl.find_opt t.chunks hash with
      | Some c ->
          c.refs <- c.refs - 1;
          if c.refs <= 0 then begin
            t.physical <- t.physical - c.size;
            Hashtbl.remove t.chunks hash
          end
      | None -> ())

let snapshot t =
  Codec.to_bytes (fun b ->
      Codec.put_int b t.next_location;
      Codec.put_int b t.logical;
      Codec.put_int b t.physical;
      Codec.put_int b (Hashtbl.length t.chunks);
      Hashtbl.iter
        (fun hash c ->
          Codec.put_string b hash;
          Codec.put_int b c.location;
          Codec.put_int b c.refs;
          Codec.put_int b c.size)
        t.chunks)

let load_snapshot t data =
  Hashtbl.reset t.chunks;
  let c = Codec.reader data in
  t.next_location <- Codec.get_int c;
  t.logical <- Codec.get_int c;
  t.physical <- Codec.get_int c;
  let n = Codec.get_int c in
  for _ = 1 to n do
    let hash = Codec.get_string c in
    let location = Codec.get_int c in
    let refs = Codec.get_int c in
    let size = Codec.get_int c in
    Hashtbl.replace t.chunks hash { location; refs; size }
  done

let attach rt ~oid =
  let t =
    { rt; doid = oid; chunks = Hashtbl.create 256; next_location = 0; logical = 0; physical = 0 }
  in
  Tango.Runtime.register rt ~oid
    {
      Tango.Runtime.apply = (fun ~pos:_ ~key:_ data -> apply t (decode data));
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let oid t = t.doid
let submit t ~key u = Tango.Runtime.update_helper t.rt ~oid:t.doid ~key (encode u)
let read_key t key = Tango.Runtime.query_helper t.rt ~oid:t.doid ~key ()

let rec store t ~hash ~bytes =
  Tango.Runtime.begin_tx t.rt;
  read_key t hash;
  match Hashtbl.find_opt t.chunks hash with
  | Some c -> (
      submit t ~key:hash (Retain (hash, bytes));
      match Tango.Runtime.end_tx t.rt with
      | Tango.Runtime.Committed -> (c.location, `Duplicate)
      | Tango.Runtime.Aborted -> store t ~hash ~bytes)
  | None -> (
      submit t ~key:hash (Insert (hash, bytes));
      match Tango.Runtime.end_tx t.rt with
      | Tango.Runtime.Committed -> (
          read_key t hash;
          match Hashtbl.find_opt t.chunks hash with
          | Some c -> (c.location, `Fresh)
          | None -> store t ~hash ~bytes)
      | Tango.Runtime.Aborted -> store t ~hash ~bytes)

let rec release t ~hash =
  Tango.Runtime.begin_tx t.rt;
  read_key t hash;
  match Hashtbl.find_opt t.chunks hash with
  | None ->
      Tango.Runtime.abort_tx t.rt;
      raise Not_found
  | Some c -> (
      let dying = c.refs = 1 in
      let location = c.location in
      submit t ~key:hash (Release_u hash);
      match Tango.Runtime.end_tx t.rt with
      | Tango.Runtime.Committed -> if dying then Some location else None
      | Tango.Runtime.Aborted -> release t ~hash)

let lookup t ~hash =
  read_key t hash;
  Option.map (fun c -> (c.location, c.refs)) (Hashtbl.find_opt t.chunks hash)

let chunk_count t =
  Tango.Runtime.query_helper t.rt ~oid:t.doid ();
  Hashtbl.length t.chunks

let bytes_stored t =
  Tango.Runtime.query_helper t.rt ~oid:t.doid ();
  (t.logical, t.physical)
