(* The view assigns each enqueued item a dense sequence number; a
   dequeue names the sequence number it removes so replicas agree on
   which item went to which consumer. *)

type t = {
  rt : Tango.Runtime.t;
  qoid : int;
  items : (int, string) Hashtbl.t;
  mutable head : int;  (* next sequence number to dequeue *)
  mutable tail : int;  (* next sequence number to assign *)
}

let encode_enqueue item =
  Codec.to_bytes (fun b ->
      Codec.put_u8 b 1;
      Codec.put_string b item)

let encode_dequeue seq =
  Codec.to_bytes (fun b ->
      Codec.put_u8 b 2;
      Codec.put_int b seq)

let snapshot t =
  Codec.to_bytes (fun b ->
      Codec.put_int b t.head;
      Codec.put_int b t.tail;
      Codec.put_int b (Hashtbl.length t.items);
      Hashtbl.iter
        (fun seq item ->
          Codec.put_int b seq;
          Codec.put_string b item)
        t.items)

let load_snapshot t data =
  Hashtbl.reset t.items;
  let c = Codec.reader data in
  t.head <- Codec.get_int c;
  t.tail <- Codec.get_int c;
  let n = Codec.get_int c in
  for _ = 1 to n do
    let seq = Codec.get_int c in
    let item = Codec.get_string c in
    Hashtbl.replace t.items seq item
  done

let attach rt ~oid =
  let t = { rt; qoid = oid; items = Hashtbl.create 64; head = 0; tail = 0 } in
  Tango.Runtime.register rt ~oid ~needs_decision:true
    {
      Tango.Runtime.apply =
        (fun ~pos:_ ~key:_ data ->
          let c = Codec.reader data in
          match Codec.get_u8 c with
          | 1 ->
              Hashtbl.replace t.items t.tail (Codec.get_string c);
              t.tail <- t.tail + 1
          | 2 ->
              let seq = Codec.get_int c in
              Hashtbl.remove t.items seq;
              if seq >= t.head then t.head <- seq + 1
          | tag -> invalid_arg (Printf.sprintf "Tango_queue: unknown op tag %d" tag));
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let oid t = t.qoid
let enqueue t item = Tango.Runtime.update_helper t.rt ~oid:t.qoid (encode_enqueue item)
let enqueue_remote rt ~oid item = Tango.Runtime.update_helper rt ~oid (encode_enqueue item)

let sync t = Tango.Runtime.query_helper t.rt ~oid:t.qoid ()

let peek t =
  sync t;
  if t.head >= t.tail then None else Hashtbl.find_opt t.items t.head

let length t =
  sync t;
  Hashtbl.length t.items

let rec dequeue t =
  Tango.Runtime.begin_tx t.rt;
  sync t;
  if t.head >= t.tail then begin
    Tango.Runtime.abort_tx t.rt;
    None
  end
  else begin
    let seq = t.head in
    match Hashtbl.find_opt t.items seq with
    | None ->
        (* Head already consumed but not yet advanced locally. *)
        Tango.Runtime.abort_tx t.rt;
        dequeue t
    | Some item -> (
        Tango.Runtime.update_helper t.rt ~oid:t.qoid (encode_dequeue seq);
        match Tango.Runtime.end_tx t.rt with
        | Tango.Runtime.Committed -> Some item
        | Tango.Runtime.Aborted -> dequeue t)
  end
