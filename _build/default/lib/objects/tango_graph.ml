module S = Set.Make (String)

type node = { node_label : string; mutable out : S.t; mutable into : S.t }

type t = { rt : Tango.Runtime.t; goid : int; nodes : (string, node) Hashtbl.t }

type update =
  | Add_node of string * string
  | Add_edge of string * string
  | Remove_node of string
  | Remove_edge of string * string

let encode u =
  Codec.to_bytes (fun b ->
      match u with
      | Add_node (id, label) ->
          Codec.put_u8 b 1;
          Codec.put_string b id;
          Codec.put_string b label
      | Add_edge (src, dst) ->
          Codec.put_u8 b 2;
          Codec.put_string b src;
          Codec.put_string b dst
      | Remove_node id ->
          Codec.put_u8 b 3;
          Codec.put_string b id
      | Remove_edge (src, dst) ->
          Codec.put_u8 b 4;
          Codec.put_string b src;
          Codec.put_string b dst)

let decode data =
  let c = Codec.reader data in
  match Codec.get_u8 c with
  | 1 ->
      let id = Codec.get_string c in
      let label = Codec.get_string c in
      Add_node (id, label)
  | 2 ->
      let src = Codec.get_string c in
      let dst = Codec.get_string c in
      Add_edge (src, dst)
  | 3 -> Remove_node (Codec.get_string c)
  | 4 ->
      let src = Codec.get_string c in
      let dst = Codec.get_string c in
      Remove_edge (src, dst)
  | tag -> invalid_arg (Printf.sprintf "Tango_graph: unknown update tag %d" tag)

let apply t u =
  match u with
  | Add_node (id, label) ->
      if not (Hashtbl.mem t.nodes id) then
        Hashtbl.replace t.nodes id { node_label = label; out = S.empty; into = S.empty }
  | Add_edge (src, dst) -> (
      match (Hashtbl.find_opt t.nodes src, Hashtbl.find_opt t.nodes dst) with
      | Some s, Some d ->
          s.out <- S.add dst s.out;
          d.into <- S.add src d.into
      | _ -> () (* endpoint vanished: the edge is dropped deterministically *))
  | Remove_node id -> (
      match Hashtbl.find_opt t.nodes id with
      | None -> ()
      | Some n ->
          S.iter
            (fun dst ->
              match Hashtbl.find_opt t.nodes dst with
              | Some d -> d.into <- S.remove id d.into
              | None -> ())
            n.out;
          S.iter
            (fun src ->
              match Hashtbl.find_opt t.nodes src with
              | Some s -> s.out <- S.remove id s.out
              | None -> ())
            n.into;
          Hashtbl.remove t.nodes id)
  | Remove_edge (src, dst) -> (
      match (Hashtbl.find_opt t.nodes src, Hashtbl.find_opt t.nodes dst) with
      | Some s, Some d ->
          s.out <- S.remove dst s.out;
          d.into <- S.remove src d.into
      | _ -> ())

let snapshot t =
  Codec.to_bytes (fun b ->
      Codec.put_int b (Hashtbl.length t.nodes);
      Hashtbl.iter
        (fun id n ->
          Codec.put_string b id;
          Codec.put_string b n.node_label;
          Codec.put_int b (S.cardinal n.out);
          S.iter (Codec.put_string b) n.out)
        t.nodes)

let load_snapshot t data =
  Hashtbl.reset t.nodes;
  let c = Codec.reader data in
  let n = Codec.get_int c in
  let edges = ref [] in
  for _ = 1 to n do
    let id = Codec.get_string c in
    let node_label = Codec.get_string c in
    Hashtbl.replace t.nodes id { node_label; out = S.empty; into = S.empty };
    let nout = Codec.get_int c in
    for _ = 1 to nout do
      edges := (id, Codec.get_string c) :: !edges
    done
  done;
  List.iter (fun (src, dst) -> apply t (Add_edge (src, dst))) !edges

let attach rt ~oid =
  let t = { rt; goid = oid; nodes = Hashtbl.create 64 } in
  Tango.Runtime.register rt ~oid
    {
      Tango.Runtime.apply = (fun ~pos:_ ~key:_ data -> apply t (decode data));
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let oid t = t.goid

let submit t ~key u = Tango.Runtime.update_helper t.rt ~oid:t.goid ~key (encode u)
let read_key t key = Tango.Runtime.query_helper t.rt ~oid:t.goid ~key ()
let sync t = Tango.Runtime.query_helper t.rt ~oid:t.goid ()

let add_node t id label = submit t ~key:id (Add_node (id, label))

let rec add_edge t ~src ~dst =
  Tango.Runtime.begin_tx t.rt;
  read_key t src;
  read_key t dst;
  if Hashtbl.mem t.nodes src && Hashtbl.mem t.nodes dst then begin
    submit t ~key:src (Add_edge (src, dst));
    match Tango.Runtime.end_tx t.rt with
    | Tango.Runtime.Committed -> true
    | Tango.Runtime.Aborted -> add_edge t ~src ~dst
  end
  else begin
    Tango.Runtime.abort_tx t.rt;
    false
  end

let rec remove_node t id =
  Tango.Runtime.begin_tx t.rt;
  read_key t id;
  match Hashtbl.find_opt t.nodes id with
  | None ->
      Tango.Runtime.abort_tx t.rt;
      false
  | Some _ -> (
      submit t ~key:id (Remove_node id);
      match Tango.Runtime.end_tx t.rt with
      | Tango.Runtime.Committed -> true
      | Tango.Runtime.Aborted -> remove_node t id)

let mem t id =
  read_key t id;
  Hashtbl.mem t.nodes id

let label t id =
  read_key t id;
  Option.map (fun n -> n.node_label) (Hashtbl.find_opt t.nodes id)

let successors t id =
  read_key t id;
  match Hashtbl.find_opt t.nodes id with Some n -> S.elements n.out | None -> []

let predecessors t id =
  read_key t id;
  match Hashtbl.find_opt t.nodes id with Some n -> S.elements n.into | None -> []

let closure t id step =
  sync t;
  let seen = Hashtbl.create 16 in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | id :: rest ->
        let next =
          match Hashtbl.find_opt t.nodes id with
          | Some n ->
              S.fold
                (fun x acc ->
                  if Hashtbl.mem seen x then acc
                  else begin
                    Hashtbl.replace seen x ();
                    x :: acc
                  end)
                (step n) []
          | None -> []
        in
        go (next @ rest)
  in
  go [ id ];
  Hashtbl.remove seen id;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let ancestors t id = closure t id (fun n -> n.into)
let descendants t id = closure t id (fun n -> n.out)

let node_count t =
  sync t;
  Hashtbl.length t.nodes

let edge_count t =
  sync t;
  Hashtbl.fold (fun _ n acc -> acc + S.cardinal n.out) t.nodes 0
