(** TangoZK (paper §6.3): the ZooKeeper interface re-implemented as a
    Tango object — a hierarchical namespace of znodes with versioned
    data, ephemeral and sequential nodes, one-shot watches, and atomic
    multi-ops. The paper's version is under 1K lines against 13K for
    the original; like it, this one adds a capability ZooKeeper lacks:
    {e transactions across namespaces} — run several instances with
    different OIDs and move files between them atomically with
    remote-write transactions (§4.1).

    Every mutator is a Tango transaction, so conditional semantics
    (create-if-absent, version-checked writes) are enforced against
    the shared log, not a local guess; conflicting operations retry
    internally. *)

type t

type error =
  | Node_exists
  | No_node
  | Not_empty  (** delete of a znode that still has children *)
  | Bad_version

type event =
  | Node_created of string
  | Node_deleted of string
  | Node_data_changed of string
  | Node_children_changed of string

(** [attach rt ~oid] hosts a namespace view; the root ["/"] always
    exists. *)
val attach : Tango.Runtime.t -> oid:int -> t

val oid : t -> int

(** {2 Sessions}

    Ephemeral znodes belong to a session and vanish when it closes. *)

type session

val create_session : t -> session
val session_id : session -> string

(** [close_session t s] removes every ephemeral node [s] owns. *)
val close_session : t -> session -> unit

(** {2 Znode operations} *)

(** [create t path data] creates a znode. [ephemeral] ties its
    lifetime to a session; [sequential] appends a monotonically
    increasing zero-padded counter to the name (scoped to the
    parent). Returns the actual path created. *)
val create :
  t -> ?ephemeral:session -> ?sequential:bool -> string -> string -> (string, error) result

(** [delete t ?version path] deletes a childless znode; [version]
    makes it conditional on the data version. *)
val delete : t -> ?version:int -> string -> (unit, error) result

(** [set_data t ?version path data]: versioned write. *)
val set_data : t -> ?version:int -> string -> string -> (unit, error) result

(** [get_data t path] returns (data, version). Linearizable. *)
val get_data : t -> string -> (string * int) option

val exists : t -> string -> bool
val get_children : t -> string -> (string list, error) result

(** Number of znodes in the namespace (including the root). *)
val node_count : t -> int

(** {2 Multi-ops}

    ZooKeeper's [multi] executes a batch atomically; checks guard the
    batch. This is the "limited form of transaction within a single
    instance" the paper contrasts with Tango's general transactions. *)

type op =
  | Check of string * int  (** path must exist at this data version *)
  | Create_op of string * string
  | Delete_op of string
  | Set_op of string * string

val multi : t -> op list -> (unit, error) result

(** {2 Cross-namespace moves (§4.1)}

    [move t ~dst_oid path] atomically removes [path] from this
    namespace and creates it (with its data) in the namespace of
    [dst_oid], which need not be hosted here — the write travels as a
    remote-write transaction and the destination applies it when the
    commit record reaches its stream. Missing intermediate directories
    are created on the destination. Returns [false] on conflict or if
    [path] is absent. *)
val move : t -> dst_oid:int -> string -> bool

(** {2 Watches (one-shot, local to this client)} *)

val watch_data : t -> string -> (event -> unit) -> unit
val watch_children : t -> string -> (event -> unit) -> unit
