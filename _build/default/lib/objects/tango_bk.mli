(** TangoBK (paper §6.3): the BookKeeper single-writer ledger
    abstraction in a few hundred lines over Tango.

    Ledger writes translate directly into stream appends, so they run
    at the speed of the underlying shared log; the view stores only
    log positions (the log-as-index pattern of §3.1), and reads fetch
    entry bodies with random reads. Single-writer enforcement rides on
    metadata in each add: replicas deterministically drop appends from
    anyone but the ledger's owner, or after the close record. *)

type t

type error = No_ledger | Not_owner | Ledger_closed

(** [attach rt ~oid] hosts the ledger registry view. *)
val attach : Tango.Runtime.t -> oid:int -> t

val oid : t -> int

(** [create_ledger t] allocates a fresh ledger owned by this client.
    Safe against concurrent creations. *)
val create_ledger : t -> int

(** [add_entry t ~ledger data] appends one entry; returns its entry id
    (dense, starting at 0).
    @raise Invalid_argument via [Error] cases instead: returns
    [Error Not_owner] on someone else's ledger, [Error Ledger_closed]
    after close. *)
val add_entry : t -> ledger:int -> bytes -> (int, error) result

(** [read_entry t ~ledger i] fetches entry [i]'s body from the shared
    log. *)
val read_entry : t -> ledger:int -> int -> bytes option

(** [read_entries t ~ledger ~lo ~hi] fetches entries [lo..hi]
    inclusive, in order. *)
val read_entries : t -> ledger:int -> lo:int -> hi:int -> bytes list

(** [last_entry_id t ~ledger]: highest entry id, -1 when empty. *)
val last_entry_id : t -> ledger:int -> (int, error) result

(** [close_ledger t ~ledger] seals the ledger (idempotent) and returns
    the last entry id. Any client may close — BookKeeper's recovery
    path. *)
val close_ledger : t -> ledger:int -> (int, error) result

val is_closed : t -> ledger:int -> (bool, error) result
val writer_of : t -> ledger:int -> (string, error) result

(** All ledger ids, ascending. *)
val ledgers : t -> int list
