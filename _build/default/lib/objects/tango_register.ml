type t = { rt : Tango.Runtime.t; roid : int; mutable value : int; mutable last_pos : int }

let encode v = Codec.to_bytes (fun b -> Codec.put_int b v)
let decode data = Codec.get_int (Codec.reader data)

let attach rt ~oid =
  let t = { rt; roid = oid; value = 0; last_pos = -1 } in
  Tango.Runtime.register rt ~oid
    {
      Tango.Runtime.apply =
        (fun ~pos ~key:_ data ->
          t.value <- decode data;
          t.last_pos <- pos);
      checkpoint = Some (fun () -> encode t.value);
      load_checkpoint = Some (fun data -> t.value <- decode data);
    };
  t

let oid t = t.roid
let write t v = Tango.Runtime.update_helper t.rt ~oid:t.roid (encode v)

let read t =
  Tango.Runtime.query_helper t.rt ~oid:t.roid ();
  t.value

let read_at t ~upto =
  Tango.Runtime.query_helper t.rt ~oid:t.roid ~upto ();
  t.value

let last_update_pos t = t.last_pos
