(** TangoGraph: a replicated directed graph — the "provenance graphs"
    of the paper's motivating metadata examples (§1).

    Nodes carry a label; edges are directed (src → dst). Mutators are
    fine-grained (per-node keys), so transactions touching disjoint
    regions of the graph commute. Reachability queries run on the
    local view after a linearizable sync. *)

type t

val attach : Tango.Runtime.t -> oid:int -> t
val oid : t -> int

(** [add_node t id label]: idempotent node creation. *)
val add_node : t -> string -> string -> unit

(** [add_edge t ~src ~dst]: transactional — fails (returns [false])
    only if either endpoint is missing; retried on OCC conflicts. *)
val add_edge : t -> src:string -> dst:string -> bool

(** [remove_node t id] deletes the node and every incident edge,
    atomically. [false] if absent. *)
val remove_node : t -> string -> bool

val mem : t -> string -> bool
val label : t -> string -> string option

(** Direct successors / predecessors, sorted. *)
val successors : t -> string -> string list

val predecessors : t -> string -> string list

(** [ancestors t id]: every node with a path {e to} [id] — the
    provenance query. Sorted; excludes [id]. *)
val ancestors : t -> string -> string list

(** [descendants t id]: every node reachable {e from} [id]. *)
val descendants : t -> string -> string list

val node_count : t -> int
val edge_count : t -> int
