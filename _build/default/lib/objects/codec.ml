(** Tiny binary codec shared by the object library's update records.
    Big-endian fixed-width integers and length-prefixed strings over
    [Buffer]/[Bytes]; mirrors the style of {!Tango.Record}. *)

let to_bytes build =
  let b = Buffer.create 64 in
  build b;
  Buffer.to_bytes b

let put_u8 = Buffer.add_uint8
let put_bool b v = put_u8 b (if v then 1 else 0)
let put_int b v = Buffer.add_int64_be b (Int64.of_int v)

let put_string b s =
  Buffer.add_int32_be b (Int32.of_int (String.length s));
  Buffer.add_string b s

let put_opt_string b = function
  | None -> put_u8 b 0
  | Some s ->
      put_u8 b 1;
      put_string b s

type cursor = { buf : bytes; mutable at : int }

let reader buf = { buf; at = 0 }

let get_u8 c =
  let v = Bytes.get_uint8 c.buf c.at in
  c.at <- c.at + 1;
  v

let get_bool c = get_u8 c = 1

let get_int c =
  let v = Int64.to_int (Bytes.get_int64_be c.buf c.at) in
  c.at <- c.at + 8;
  v

let get_string c =
  let n = Int32.to_int (Bytes.get_int32_be c.buf c.at) in
  c.at <- c.at + 4;
  let s = Bytes.sub_string c.buf c.at n in
  c.at <- c.at + n;
  s

let get_opt_string c = match get_u8 c with 0 -> None | _ -> Some (get_string c)
