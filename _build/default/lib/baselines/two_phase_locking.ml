type item = { mutable value : string; mutable version : int; mutable locked_by : int option }

type node = {
  name : string;
  host : Sim.Net.host;
  items : (string, item) Hashtbl.t;
  read_svc : (string, string * int) Sim.Net.service;
  lock_read_svc : (int * (string * int) list, bool) Sim.Net.service;
  lock_write_svc : (int * string list, (string * int) list option) Sim.Net.service;
  commit_svc : (int * (string * string) list, unit) Sim.Net.service;
  unlock_svc : (int * string list, unit) Sim.Net.service;
}

type t = { fabric : Sim.Net.t; ts_host : Sim.Net.host; ts_svc : (unit, int) Sim.Net.service }

let service_us = 2.

let create ~net =
  let ts_host = Sim.Net.add_host ~cores:32 net "2pl-timestamp-server" in
  let counter = ref 0 in
  let counter_cpu = Sim.Resource.create ~name:"2pl-ts.counter" ~capacity:1 () in
  let ts_svc =
    Sim.Net.service ts_host ~name:"timestamp" (fun () ->
        Sim.Resource.use counter_cpu 1.75;
        incr counter;
        !counter)
  in
  { fabric = net; ts_host; ts_svc }

let find_item node key =
  match Hashtbl.find_opt node.items key with
  | Some it -> it
  | None ->
      let it = { value = ""; version = -1; locked_by = None } in
      Hashtbl.replace node.items key it;
      it

let lock_one node ts key =
  let it = find_item node key in
  match it.locked_by with
  | None ->
      it.locked_by <- Some ts;
      true
  | Some owner -> owner = ts (* reentrant for the same transaction *)

let unlock_one node ts key =
  let it = find_item node key in
  if it.locked_by = Some ts then it.locked_by <- None

let add_node t ~name =
  let host = Sim.Net.add_host t.fabric name in
  let charge () = Sim.Resource.use (Sim.Net.host_cpu host) service_us in
  let rec node =
    lazy
      {
        name;
        host;
        items = Hashtbl.create 1024;
        read_svc =
          Sim.Net.service host ~name:"read" (fun key ->
              charge ();
              let it = find_item (Lazy.force node) key in
              (it.value, it.version));
        lock_read_svc =
          (* Lock each read item and validate its version is still the
             one the transaction observed. *)
          Sim.Net.service host ~name:"lock-read" (fun (ts, keyed_versions) ->
              charge ();
              let node = Lazy.force node in
              let rec go locked = function
                | [] -> true
                | (key, expected) :: rest ->
                    let it = find_item node key in
                    if lock_one node ts key && it.version = expected then
                      go (key :: locked) rest
                    else begin
                      List.iter (unlock_one node ts) locked;
                      unlock_one node ts key;
                      false
                    end
              in
              go [] keyed_versions);
        lock_write_svc =
          Sim.Net.service host ~name:"lock-write" (fun (ts, keys) ->
              charge ();
              let node = Lazy.force node in
              let rec go locked acc = function
                | [] -> Some (List.rev acc)
                | key :: rest ->
                    if lock_one node ts key then
                      go (key :: locked) ((key, (find_item node key).version) :: acc) rest
                    else begin
                      List.iter (unlock_one node ts) locked;
                      None
                    end
              in
              go [] [] keys);
        commit_svc =
          Sim.Net.service host ~name:"commit" (fun (ts, writes) ->
              charge ();
              let node = Lazy.force node in
              List.iter
                (fun (key, value) ->
                  let it = find_item node key in
                  it.value <- value;
                  it.version <- ts;
                  it.locked_by <- None)
                writes);
        unlock_svc =
          Sim.Net.service host ~name:"unlock" (fun (ts, keys) ->
              charge ();
              List.iter (unlock_one (Lazy.force node) ts) keys);
      }
  in
  Lazy.force node

let node_name n = n.name
let read ~from target key = Sim.Net.call ~from:from.host target.read_svc key
let peek node key = Option.map (fun it -> it.value) (Hashtbl.find_opt node.items key)

(* Group a keyed list by target node, preserving order within groups. *)
let group_by_node pairs =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (node, payload) ->
      match Hashtbl.find_opt tbl node.name with
      | Some (n, l) -> Hashtbl.replace tbl node.name (n, payload :: l)
      | None ->
          order := node :: !order;
          Hashtbl.replace tbl node.name (node, [ payload ]))
    pairs;
  List.rev_map
    (fun node ->
      let n, l = Hashtbl.find tbl node.name in
      (n, List.rev l))
    !order

let execute t ~from ~reads ~writes =
  let ts = Sim.Net.call ~from:from.host t.ts_svc () in
  let ts_of_read (node, key, version) = (node, (key, version)) in
  let read_groups = group_by_node (List.map ts_of_read reads) in
  let write_groups = group_by_node (List.map (fun (n, k, v) -> (n, (k, v))) writes) in
  let unlock_reads ts upto =
    List.iteri
      (fun i (node, kvs) ->
        if i < upto then
          Sim.Net.call ~from:from.host node.unlock_svc (ts, List.map fst kvs))
      read_groups
  in
  let unlock_writes ts upto =
    List.iteri
      (fun i (node, kvs) ->
        if i < upto then
          Sim.Net.call ~from:from.host node.unlock_svc (ts, List.map fst kvs))
      write_groups
  in
  (* Phase 1: lock + validate the read set. *)
  let rec lock_reads i = function
      | [] -> true
      | (node, kvs) :: rest ->
          if Sim.Net.call ~from:from.host node.lock_read_svc (ts, kvs) then
            lock_reads (i + 1) rest
          else begin
            unlock_reads ts i;
            false
          end
    in
    (* Phase 2: lock the write set, collecting latest versions. *)
    let rec lock_writes i = function
      | [] -> Some []
      | (node, kvs) :: rest -> (
          match Sim.Net.call ~from:from.host node.lock_write_svc (ts, List.map fst kvs) with
          | Some versions -> (
              match lock_writes (i + 1) rest with
              | Some more -> Some (versions @ more)
              | None -> None)
          | None ->
              unlock_writes ts i;
              None)
    in
    if not (lock_reads 0 read_groups) then false
    else
      match lock_writes 0 write_groups with
      | None ->
          unlock_reads ts (List.length read_groups);
          false
      | Some versions ->
          if List.exists (fun (_, v) -> v > ts) versions then begin
            (* Write-write conflict: someone committed past our ts. *)
            unlock_writes ts (List.length write_groups);
            unlock_reads ts (List.length read_groups);
            false
          end
          else begin
            List.iter
              (fun (node, kvs) -> Sim.Net.call ~from:from.host node.commit_svc (ts, kvs))
              write_groups;
            unlock_reads ts (List.length read_groups);
            true
          end
