(** The comparison baseline of Figure 10 (Middle): a conventional
    distributed two-phase-locking protocol, Percolator-style but
    serializable (§6.2).

    State is sharded across item servers (one per application node);
    a central timestamp server hands out transaction versions. A
    transaction: (1) takes a timestamp, (2) locks its read set and
    validates that versions haven't moved, (3) locks its write set,
    collecting latest versions — any newer version is a write-write
    conflict — then (4) commits everywhere, stamping items with the
    transaction timestamp and unlocking. Any failure unlocks
    everything; the caller retries with a fresh timestamp. Locks are
    non-blocking (no deadlocks, as in Percolator). *)

type t
type node

val create : net:Sim.Net.t -> t

(** [add_node t ~name] registers an item server + client pair. *)
val add_node : t -> name:string -> node

val node_name : node -> string

(** [read ~from target key] returns (value, version); missing items
    read as ("", -1). One RPC unless [target == from]. *)
val read : from:node -> node -> string -> string * int

(** [execute t ~from ~reads ~writes] runs one 2PL attempt from node
    [from]: takes a fresh timestamp, then locks/validates/commits.
    [reads] carry the versions observed; [writes] are
    (target, key, value). Returns [true] on commit. On [false] all
    locks have been released; retry with fresh reads. *)
val execute :
  t ->
  from:node ->
  reads:(node * string * int) list ->
  writes:(node * string * string) list ->
  bool

(** Local, non-RPC peek for tests. *)
val peek : node -> string -> string option
