lib/baselines/two_phase_locking.ml: Hashtbl Lazy List Option Sim
