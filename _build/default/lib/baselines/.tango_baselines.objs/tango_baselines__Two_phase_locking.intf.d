lib/baselines/two_phase_locking.mli: Sim
