open Tango_objects

type error = Not_active | Exists | Missing | Not_dir

module Names = Set.Make (String)

type t = {
  nn_name : string;
  zk : Tango_zk.t;
  bk : Tango_bk.t;
  mutable session : Tango_zk.session option;
  mutable active : bool;
  mutable dead : bool;
  mutable my_ledger : int option;
  dirs : (string, Names.t) Hashtbl.t;
  files : (string, int list) Hashtbl.t;  (* newest block first *)
  replay_cursor : (int, int) Hashtbl.t;  (* ledger id -> entries consumed *)
  mutable next_block : int;
  mutable edits : int;
}

let lock_path = "/hdfs/lock"
let ledgers_path = "/hdfs/ledgers"

(* ------------------------------------------------------------------ *)
(* Edits                                                              *)
(* ------------------------------------------------------------------ *)

type edit = Mkdir of string | Create_file of string | Add_block of string * int | Delete of string

let encode_edit e =
  let b = Buffer.create 32 in
  (match e with
  | Mkdir path ->
      Buffer.add_uint8 b 1;
      Buffer.add_string b path
  | Create_file path ->
      Buffer.add_uint8 b 2;
      Buffer.add_string b path
  | Add_block (path, id) ->
      Buffer.add_uint8 b 3;
      Buffer.add_int64_be b (Int64.of_int id);
      Buffer.add_string b path
  | Delete path ->
      Buffer.add_uint8 b 4;
      Buffer.add_string b path);
  Buffer.to_bytes b

let decode_edit data =
  let tail from = Bytes.sub_string data from (Bytes.length data - from) in
  match Bytes.get_uint8 data 0 with
  | 1 -> Mkdir (tail 1)
  | 2 -> Create_file (tail 1)
  | 3 -> Add_block (tail 9, Int64.to_int (Bytes.get_int64_be data 1))
  | 4 -> Delete (tail 1)
  | tag -> invalid_arg (Printf.sprintf "Namenode: unknown edit tag %d" tag)

let parent_of path =
  match String.rindex path '/' with 0 -> "/" | i -> String.sub path 0 i

let name_of path =
  let i = String.rindex path '/' in
  String.sub path (i + 1) (String.length path - i - 1)

let apply_edit t e =
  t.edits <- t.edits + 1;
  let add_child parent name =
    let kids = match Hashtbl.find_opt t.dirs parent with Some s -> s | None -> Names.empty in
    Hashtbl.replace t.dirs parent (Names.add name kids)
  in
  let remove_child parent name =
    match Hashtbl.find_opt t.dirs parent with
    | Some s -> Hashtbl.replace t.dirs parent (Names.remove name s)
    | None -> ()
  in
  match e with
  | Mkdir path ->
      if not (Hashtbl.mem t.dirs path) then Hashtbl.replace t.dirs path Names.empty;
      add_child (parent_of path) (name_of path)
  | Create_file path ->
      if not (Hashtbl.mem t.files path) then Hashtbl.replace t.files path [];
      add_child (parent_of path) (name_of path)
  | Add_block (path, id) ->
      (match Hashtbl.find_opt t.files path with
      | Some blocks -> Hashtbl.replace t.files path (id :: blocks)
      | None -> ());
      if id >= t.next_block then t.next_block <- id + 1
  | Delete path ->
      Hashtbl.remove t.files path;
      Hashtbl.remove t.dirs path;
      remove_child (parent_of path) (name_of path)

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

let registered_ledgers t =
  match Tango_zk.get_children t.zk ledgers_path with
  | Ok names -> List.sort compare (List.filter_map int_of_string_opt names)
  | Error _ -> []

let refresh t =
  if not t.dead then
    List.iter
      (fun ledger ->
        let from = match Hashtbl.find_opt t.replay_cursor ledger with Some n -> n | None -> 0 in
        match Tango_bk.last_entry_id t.bk ~ledger with
        | Error _ -> ()
        | Ok last ->
            if last >= from then begin
              List.iter
                (fun body -> apply_edit t (decode_edit body))
                (Tango_bk.read_entries t.bk ~ledger ~lo:from ~hi:last);
              Hashtbl.replace t.replay_cursor ledger (last + 1)
            end)
      (registered_ledgers t)

(* ------------------------------------------------------------------ *)
(* Leadership                                                         *)
(* ------------------------------------------------------------------ *)

let ensure_scaffolding t =
  List.iter
    (fun path ->
      match Tango_zk.create t.zk path "" with
      | Ok _ | Error Tango_zk.Node_exists -> ()
      | Error _ -> failwith "Namenode: cannot build /hdfs scaffolding")
    [ "/hdfs"; ledgers_path ]

let campaign t =
  if t.dead then false
  else if t.active then true
  else begin
    refresh t;
    let session =
      match t.session with
      | Some s -> s
      | None ->
          let s = Tango_zk.create_session t.zk in
          t.session <- Some s;
          s
    in
    match Tango_zk.create t.zk ~ephemeral:session lock_path t.nn_name with
    | Error _ -> false
    | Ok _ ->
        (* New term: fresh edit ledger, registered for replayers. *)
        let ledger = Tango_bk.create_ledger t.bk in
        (match Tango_zk.create t.zk (Printf.sprintf "%s/%d" ledgers_path ledger) "" with
        | Ok _ -> ()
        | Error _ -> failwith "Namenode: cannot register edit ledger");
        (* Our own ledger needs no replay: we applied edits as we wrote
           them. *)
        Hashtbl.replace t.replay_cursor ledger 0;
        t.my_ledger <- Some ledger;
        t.active <- true;
        true
  end

let start rt ~name ~zk_oid ~bk_oid =
  let zk = Tango_zk.attach rt ~oid:zk_oid in
  let bk = Tango_bk.attach rt ~oid:bk_oid in
  let t =
    {
      nn_name = name;
      zk;
      bk;
      session = None;
      active = false;
      dead = false;
      my_ledger = None;
      dirs = Hashtbl.create 64;
      files = Hashtbl.create 64;
      replay_cursor = Hashtbl.create 8;
      next_block = 0;
      edits = 0;
    }
  in
  Hashtbl.replace t.dirs "/" Names.empty;
  ensure_scaffolding t;
  refresh t;
  ignore (campaign t);
  t

let name t = t.nn_name
let is_active t = t.active && not t.dead

let crash t =
  (match t.session with Some s -> Tango_zk.close_session t.zk s | None -> ());
  t.dead <- true;
  t.active <- false;
  Hashtbl.reset t.dirs;
  Hashtbl.reset t.files

(* ------------------------------------------------------------------ *)
(* Mutations: edit-log first, then RAM                                *)
(* ------------------------------------------------------------------ *)

let log_edit t e =
  match t.my_ledger with
  | None -> Error Not_active
  | Some ledger -> (
      match Tango_bk.add_entry t.bk ~ledger (encode_edit e) with
      | Ok entry_id ->
          apply_edit t e;
          Hashtbl.replace t.replay_cursor ledger (entry_id + 1);
          Ok ()
      | Error _ ->
          (* Someone sealed our ledger: we've been deposed. *)
          t.active <- false;
          Error Not_active)

let guard_active t f = if not (is_active t) then Error Not_active else f ()

let mkdir t path =
  guard_active t (fun () ->
      if Hashtbl.mem t.dirs path || Hashtbl.mem t.files path then Error Exists
      else if not (Hashtbl.mem t.dirs (parent_of path)) then Error Missing
      else log_edit t (Mkdir path))

let create_file t path =
  guard_active t (fun () ->
      if Hashtbl.mem t.dirs path || Hashtbl.mem t.files path then Error Exists
      else if not (Hashtbl.mem t.dirs (parent_of path)) then Error Missing
      else log_edit t (Create_file path))

let add_block t path =
  guard_active t (fun () ->
      if not (Hashtbl.mem t.files path) then Error Missing
      else begin
        let id = t.next_block in
        match log_edit t (Add_block (path, id)) with Ok () -> Ok id | Error e -> Error e
      end)

let delete t path =
  guard_active t (fun () ->
      match Hashtbl.find_opt t.dirs path with
      | Some kids when not (Names.is_empty kids) -> Error Not_dir
      | Some _ -> log_edit t (Delete path)
      | None -> if Hashtbl.mem t.files path then log_edit t (Delete path) else Error Missing)

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let ls t path = Option.map Names.elements (Hashtbl.find_opt t.dirs path)
let file_blocks t path = Option.map List.rev (Hashtbl.find_opt t.files path)
let exists t path = Hashtbl.mem t.dirs path || Hashtbl.mem t.files path
let is_dir t path = Hashtbl.mem t.dirs path
let edits_applied t = t.edits
