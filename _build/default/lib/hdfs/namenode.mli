(** A miniature HDFS namenode over TangoZK + TangoBK (paper §6.3).

    The paper validated its ZooKeeper and BookKeeper implementations
    by running the HDFS namenode on them and demonstrating recovery
    from a reboot and fail-over to a backup. We reproduce the
    architecture of the HDFS high-availability design (HDFS-1623):

    - {e leader election}: an ephemeral znode in TangoZK; the holder
      is the active namenode, others are standbys;
    - {e edit log}: every namespace mutation is an edit appended to a
      TangoBK ledger before being applied to the in-RAM namespace;
      each active term writes its own ledger, registered in TangoZK;
    - {e recovery}: a (re)starting namenode replays every registered
      ledger to rebuild the namespace, then campaigns for leadership.

    Block contents live on (simulated) datanodes and are out of
    scope — the namenode tracks block {e ids} only, as the real one
    tracks block metadata. *)

type t

type error = Not_active | Exists | Missing | Not_dir

(** [start runtime ~name ~zk_oid ~bk_oid] boots a namenode: replays
    the existing edit history, then campaigns. Check {!is_active}. *)
val start : Tango.Runtime.t -> name:string -> zk_oid:int -> bk_oid:int -> t

val name : t -> string

(** Whether this instance currently holds the leader lock. *)
val is_active : t -> bool

(** [campaign t] (re)attempts to become active; returns the new
    status. Standbys call this after the active's session closes. *)
val campaign : t -> bool

(** [crash t] simulates failure: closes the ZK session (dropping the
    leader lock) and discards in-RAM state. The instance is dead
    afterwards; [start] a new one. *)
val crash : t -> unit

(** {2 Namespace operations (active only)} *)

val mkdir : t -> string -> (unit, error) result
val create_file : t -> string -> (unit, error) result

(** [add_block t path] allocates a fresh block id and appends it to
    the file. *)
val add_block : t -> string -> (int, error) result

val delete : t -> string -> (unit, error) result

(** {2 Read-only queries (any instance, after {!refresh})} *)

(** [refresh t] replays any new edits — standbys tail the log. *)
val refresh : t -> unit

val ls : t -> string -> string list option
val file_blocks : t -> string -> int list option
val exists : t -> string -> bool
val is_dir : t -> string -> bool

(** Number of edits this instance has applied (for tests). *)
val edits_applied : t -> int
