lib/hdfs/namenode.mli: Tango
