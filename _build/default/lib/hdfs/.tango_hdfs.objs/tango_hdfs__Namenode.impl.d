lib/hdfs/namenode.ml: Buffer Bytes Hashtbl Int64 List Option Printf Set String Tango_bk Tango_objects Tango_zk
