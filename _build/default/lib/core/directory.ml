let oid = 0

type t = {
  rt : Runtime.t;
  bindings : (string, int) Hashtbl.t;
  forgets : (int, int) Hashtbl.t;  (* oid -> forget position *)
  mutable next_oid : int;
}

(* Update buffers: '\001' ^ name = declare; '\002' ^ oid ^ pos = forget. *)

let encode_declare name =
  let b = Buffer.create (1 + String.length name) in
  Buffer.add_uint8 b 1;
  Buffer.add_string b name;
  Buffer.to_bytes b

let encode_forget ~target_oid ~below =
  let b = Buffer.create 17 in
  Buffer.add_uint8 b 2;
  Buffer.add_int64_be b (Int64.of_int target_oid);
  Buffer.add_int64_be b (Int64.of_int below);
  Buffer.to_bytes b

let apply t ~pos:_ ~key:_ data =
  match Bytes.get_uint8 data 0 with
  | 1 ->
      let name = Bytes.sub_string data 1 (Bytes.length data - 1) in
      if not (Hashtbl.mem t.bindings name) then begin
        Hashtbl.replace t.bindings name t.next_oid;
        t.next_oid <- t.next_oid + 1
      end
  | 2 ->
      let target = Int64.to_int (Bytes.get_int64_be data 1) in
      let below = Int64.to_int (Bytes.get_int64_be data 9) in
      let prev = match Hashtbl.find_opt t.forgets target with Some p -> p | None -> -1 in
      if below > prev then Hashtbl.replace t.forgets target below
  | tag -> invalid_arg (Printf.sprintf "Directory.apply: unknown tag %d" tag)

let snapshot t =
  let b = Buffer.create 256 in
  Buffer.add_int32_be b (Int32.of_int t.next_oid);
  Buffer.add_int32_be b (Int32.of_int (Hashtbl.length t.bindings));
  Hashtbl.iter
    (fun name o ->
      Buffer.add_int32_be b (Int32.of_int (String.length name));
      Buffer.add_string b name;
      Buffer.add_int32_be b (Int32.of_int o))
    t.bindings;
  Buffer.add_int32_be b (Int32.of_int (Hashtbl.length t.forgets));
  Hashtbl.iter
    (fun o p ->
      Buffer.add_int32_be b (Int32.of_int o);
      Buffer.add_int64_be b (Int64.of_int p))
    t.forgets;
  Buffer.to_bytes b

let load_snapshot t data =
  Hashtbl.reset t.bindings;
  Hashtbl.reset t.forgets;
  let at = ref 0 in
  let u32 () =
    let v = Int32.to_int (Bytes.get_int32_be data !at) in
    at := !at + 4;
    v
  in
  let u64 () =
    let v = Int64.to_int (Bytes.get_int64_be data !at) in
    at := !at + 8;
    v
  in
  t.next_oid <- u32 ();
  let nbindings = u32 () in
  for _ = 1 to nbindings do
    let len = u32 () in
    let name = Bytes.sub_string data !at len in
    at := !at + len;
    let o = u32 () in
    Hashtbl.replace t.bindings name o
  done;
  let nforgets = u32 () in
  for _ = 1 to nforgets do
    let o = u32 () in
    let p = u64 () in
    Hashtbl.replace t.forgets o p
  done

let attach rt =
  let t = { rt; bindings = Hashtbl.create 16; forgets = Hashtbl.create 16; next_oid = 1 } in
  Runtime.register rt ~oid
    {
      Runtime.apply = (fun ~pos ~key data -> apply t ~pos ~key data);
      checkpoint = Some (fun () -> snapshot t);
      load_checkpoint = Some (fun data -> load_snapshot t data);
    };
  t

let lookup t name =
  Runtime.query_helper t.rt ~oid ();
  Hashtbl.find_opt t.bindings name

let declare t name =
  match lookup t name with
  | Some o -> o
  | None -> (
      Runtime.update_helper t.rt ~oid ~key:name (encode_declare name);
      match lookup t name with
      | Some o -> o
      | None -> failwith "Directory.declare: binding did not materialize")

let names t =
  Runtime.query_helper t.rt ~oid ();
  Hashtbl.fold (fun name o acc -> (name, o) :: acc) t.bindings [] |> List.sort compare

let forget t ~oid:target ~below =
  Runtime.update_helper t.rt ~oid ~key:(string_of_int target)
    (encode_forget ~target_oid:target ~below)

let collect t =
  Runtime.query_helper t.rt ~oid ();
  let declared = Hashtbl.fold (fun _ o acc -> o :: acc) t.bindings [] in
  let forget_pos_of o = match Hashtbl.find_opt t.forgets o with Some p -> p | None -> 0 in
  let min_pos =
    List.fold_left
      (fun acc o -> min acc (forget_pos_of o))
      (forget_pos_of oid) declared
  in
  let off = Record.pos_offset min_pos in
  if off > 0 then Runtime.trim_below t.rt off;
  off
