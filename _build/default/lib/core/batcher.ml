type waiting = {
  w_record : Record.t;
  w_streams : Corfu.Types.stream_id list;
  w_pos : int Sim.Ivar.t;
}

type t = {
  client : Corfu.Client.t;
  batch_size : int;
  linger_us : float;
  mutable forming : waiting list;  (* newest first *)
  mutable generation : int;  (* bumped on every flush; guards linger timers *)
  mutable entries : int;
  mutable records : int;
}

let create ~client ~batch_size ?(linger_us = 30.) () =
  if batch_size < 1 || batch_size > Record.slots_per_entry then
    invalid_arg "Batcher.create: bad batch size";
  { client; batch_size; linger_us; forming = []; generation = 0; entries = 0; records = 0 }

let flush t =
  match t.forming with
  | [] -> ()
  | batch ->
      t.forming <- [];
      t.generation <- t.generation + 1;
      let batch = List.rev batch in
      let streams =
        List.sort_uniq compare (List.concat_map (fun w -> w.w_streams) batch)
      in
      let payload = Record.encode_payload (List.map (fun w -> w.w_record) batch) in
      let off = Corfu.Client.append t.client ~streams payload in
      t.entries <- t.entries + 1;
      List.iteri (fun slot w -> Sim.Ivar.fill w.w_pos (Record.pos ~offset:off ~slot)) batch

let submit t ~streams record =
  if streams = [] then invalid_arg "Batcher.submit: no target streams";
  let w = { w_record = record; w_streams = streams; w_pos = Sim.Ivar.create () } in
  let was_empty = t.forming = [] in
  t.forming <- w :: t.forming;
  t.records <- t.records + 1;
  if List.length t.forming >= t.batch_size then flush t
  else if was_empty then begin
    (* First record of a fresh batch arms the linger timer. *)
    let generation = t.generation in
    Sim.Engine.spawn (fun () ->
        Sim.Engine.sleep t.linger_us;
        if t.generation = generation then flush t)
  end;
  Sim.Ivar.read w.w_pos

let entries_appended t = t.entries
let records_submitted t = t.records
