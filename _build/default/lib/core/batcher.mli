(** Append batching: packs several Tango records into one log entry.

    The paper's clients store a batch of 4 commit records per 4KB
    entry (§6). The batcher fills a forming batch as fibers submit
    records; the submission that completes a batch appends it, and a
    linger timer bounds the latency of partial batches under light
    load. Batches fly concurrently — ordering comes from the
    sequencer, not from the batcher — so one client can keep many
    appends in flight. *)

type t

(** [create ~client ~batch_size ?linger_us ()] builds a batcher
    appending through [client]. [linger_us] (default 30) is how long a
    partial batch may wait for company. *)
val create : client:Corfu.Client.t -> batch_size:int -> ?linger_us:float -> unit -> t

(** [submit t ~streams record] enqueues [record], destined for
    [streams] (the multiappend target set), and blocks the calling
    fiber until the enclosing entry is durable. Returns the record's
    global position. *)
val submit : t -> streams:Corfu.Types.stream_id list -> Record.t -> int

(** Entries appended so far (for tests: measures batching ratio). *)
val entries_appended : t -> int

(** Records submitted so far. *)
val records_submitted : t -> int
