lib/core/record.mli: Corfu Format
