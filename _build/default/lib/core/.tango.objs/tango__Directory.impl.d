lib/core/directory.ml: Buffer Bytes Hashtbl Int32 Int64 List Printf Record Runtime String
