lib/core/batcher.mli: Corfu Record
