lib/core/runtime.mli: Corfu Sim
