lib/core/runtime.ml: Batcher Corfu Fun Hashtbl List Option Queue Record Sim String
