lib/core/directory.mli: Corfu Runtime
