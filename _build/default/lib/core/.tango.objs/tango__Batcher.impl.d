lib/core/batcher.ml: Corfu List Record Sim
