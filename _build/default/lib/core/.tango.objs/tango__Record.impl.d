lib/core/record.ml: Buffer Bytes Fmt Int32 Int64 List Printf String
