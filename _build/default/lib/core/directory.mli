(** The object directory (§3.2, Naming): a Tango object with the
    hard-coded OID 0 that maps human-readable names to OIDs and tracks
    per-object forget offsets for garbage collection.

    OID allocation is deterministic: a [declare] appends the name, and
    every replica assigns the next counter value when the record is
    applied, so concurrent declarations of different names — or races
    on the same name — converge without coordination.

    GC (§3.2): an object that has checkpointed its state calls
    {!forget} with the position below which its history is
    reclaimable; {!collect} trims the shared log below the minimum
    forget offset across all declared objects. *)

type t

(** The directory's own OID. *)
val oid : int

(** [attach runtime] registers the directory view on [runtime]. *)
val attach : Runtime.t -> t

(** [declare t name] returns the OID for [name], allocating one if
    needed. Linearizable; safe against concurrent declarations. *)
val declare : t -> string -> int

(** [lookup t name] returns the OID bound to [name], if any
    (linearizable). *)
val lookup : t -> string -> int option

(** [names t] lists (name, oid) bindings in the current view. *)
val names : t -> (string * int) list

(** [forget t ~oid ~below] records that [oid]'s history below global
    position [below] may be reclaimed (the object must have a
    checkpoint covering it). *)
val forget : t -> oid:int -> below:int -> unit

(** [collect t] trims the log below the minimum forget offset across
    all declared objects and returns that offset. Objects that never
    called [forget] pin the log (returns 0). *)
val collect : t -> Corfu.Types.offset
