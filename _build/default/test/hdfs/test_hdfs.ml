(* The §6.3 fidelity test: the mini HDFS namenode over TangoZK and
   TangoBK must survive a reboot and fail over to a backup. *)

module Nn = Tango_hdfs.Namenode

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let zk_oid = 1
let bk_oid = 2

let with_cluster ?(seed = 21) body =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers:4 () in
      body cluster)

let nn cluster host_name =
  Nn.start
    (Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:host_name))
    ~name:host_name ~zk_oid ~bk_oid

let ok = function Ok v -> v | Error _ -> Alcotest.fail "unexpected namenode error"

let populate namenode =
  ok (Nn.mkdir namenode "/user");
  ok (Nn.mkdir namenode "/user/alice");
  ok (Nn.create_file namenode "/user/alice/data.txt");
  let b0 = ok (Nn.add_block namenode "/user/alice/data.txt") in
  let b1 = ok (Nn.add_block namenode "/user/alice/data.txt") in
  (b0, b1)

let test_basic_namespace () =
  with_cluster (fun cluster ->
      let namenode = nn cluster "nn-1" in
      check_bool "active" true (Nn.is_active namenode);
      let b0, b1 = populate namenode in
      Alcotest.(check (option (list string)))
        "ls /user" (Some [ "alice" ]) (Nn.ls namenode "/user");
      Alcotest.(check (option (list int)))
        "blocks" (Some [ b0; b1 ])
        (Nn.file_blocks namenode "/user/alice/data.txt");
      check_bool "errors: duplicate mkdir" true (Nn.mkdir namenode "/user" = Error Nn.Exists);
      check_bool "errors: missing parent" true
        (Nn.mkdir namenode "/no/where" = Error Nn.Missing);
      ok (Nn.delete namenode "/user/alice/data.txt");
      check_bool "deleted" false (Nn.exists namenode "/user/alice/data.txt"))

let test_reboot_recovery () =
  with_cluster (fun cluster ->
      let nn1 = nn cluster "nn-1" in
      let b0, b1 = populate nn1 in
      let applied = Nn.edits_applied nn1 in
      Nn.crash nn1;
      (* A rebooted namenode replays the edit ledgers from the shared
         log and recovers the namespace exactly. *)
      let nn1' = nn cluster "nn-1-rebooted" in
      check_bool "reboot becomes active" true (Nn.is_active nn1');
      check_int "replayed the same edits" applied (Nn.edits_applied nn1');
      Alcotest.(check (option (list int)))
        "blocks recovered" (Some [ b0; b1 ])
        (Nn.file_blocks nn1' "/user/alice/data.txt");
      (* Block allocation resumes without reuse. *)
      let b2 = ok (Nn.add_block nn1' "/user/alice/data.txt") in
      check_bool "no block id reuse" true (b2 > b1))

let test_failover_to_backup () =
  with_cluster (fun cluster ->
      let nn1 = nn cluster "nn-primary" in
      let nn2 = nn cluster "nn-backup" in
      check_bool "primary active" true (Nn.is_active nn1);
      check_bool "backup standby" false (Nn.is_active nn2);
      let _ = populate nn1 in
      (* Standby operations are refused. *)
      check_bool "standby refuses writes" true (Nn.mkdir nn2 "/tmp" = Error Nn.Not_active);
      (* Primary dies; its ephemeral leader lock vanishes. *)
      Nn.crash nn1;
      check_bool "backup wins the election" true (Nn.campaign nn2);
      (* The backup has the full namespace and continues the history. *)
      check_bool "namespace present" true (Nn.exists nn2 "/user/alice/data.txt");
      ok (Nn.mkdir nn2 "/user/bob");
      let b = ok (Nn.add_block nn2 "/user/alice/data.txt") in
      check_bool "block ids continue" true (b >= 2);
      (* A later observer replays both terms' ledgers. *)
      let nn3 = nn cluster "nn-observer" in
      check_bool "observer is standby" false (Nn.is_active nn3);
      check_bool "observer sees both terms" true (Nn.exists nn3 "/user/bob"))

let test_deposed_writer_rejected () =
  with_cluster (fun cluster ->
      let nn1 = nn cluster "nn-1" in
      let _ = populate nn1 in
      (* Fence the active by sealing its edit ledger (BookKeeper
         recovery semantics): its next write must demote it. *)
      let bk = Tango_objects.Tango_bk.attach (Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"fencer")) ~oid:bk_oid in
      List.iter (fun ledger -> ignore (Tango_objects.Tango_bk.close_ledger bk ~ledger)) (Tango_objects.Tango_bk.ledgers bk);
      check_bool "deposed write fails" true (Nn.mkdir nn1 "/late" = Error Nn.Not_active);
      check_bool "demoted" false (Nn.is_active nn1))

let () =
  Alcotest.run "hdfs"
    [
      ( "namenode",
        [
          Alcotest.test_case "basic namespace" `Quick test_basic_namespace;
          Alcotest.test_case "reboot recovery" `Quick test_reboot_recovery;
          Alcotest.test_case "failover to backup" `Quick test_failover_to_backup;
          Alcotest.test_case "deposed writer rejected" `Quick test_deposed_writer_rejected;
        ] );
    ]
