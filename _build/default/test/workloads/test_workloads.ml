(* Tests for the workload generators. *)

open Tango_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let histogram sampler rng ~n ~draws =
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let i = sampler rng in
    counts.(i) <- counts.(i) + 1
  done;
  counts

let test_zipf_in_range () =
  let z = Zipf.create ~n:100 () in
  let rng = Sim.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Zipf.sample z rng in
    if v < 0 || v >= 100 then Alcotest.fail "out of range"
  done

let test_zipf_skew () =
  let n = 1000 in
  let z = Zipf.create ~n () in
  let rng = Sim.Rng.create 7 in
  let counts = histogram (Zipf.sample z) rng ~n ~draws:100_000 in
  (* Rank 0 must be the hottest; top-10 ranks take a large share. *)
  let hottest = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!hottest) then hottest := i) counts;
  check_int "rank 0 hottest" 0 !hottest;
  let top10 = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  check_bool "top-10 share above 30%" true (float_of_int top10 /. 100_000. > 0.3)

let test_uniform_flat () =
  let n = 100 in
  let d = Key_dist.uniform ~n in
  let rng = Sim.Rng.create 11 in
  let counts = histogram (Key_dist.sample d) rng ~n ~draws:100_000 in
  Array.iter
    (fun c ->
      (* expected 1000 each; allow generous slack *)
      if c < 700 || c > 1300 then Alcotest.failf "uniform bucket off: %d" c)
    counts

let test_key_names () =
  Alcotest.(check string) "padded" "k00000042" (Key_dist.key_name 42)

let test_distinct_keys () =
  let d = Key_dist.zipf ~n:50 () in
  let rng = Sim.Rng.create 5 in
  for _ = 1 to 100 do
    let keys = Key_dist.distinct_keys d rng 6 in
    check_int "six keys" 6 (List.length keys);
    check_int "distinct" 6 (List.length (List.sort_uniq compare keys))
  done;
  match Key_dist.distinct_keys d rng 51 with
  | _ -> Alcotest.fail "over-population draw must be rejected"
  | exception Invalid_argument _ -> ()

let prop_zipf_bounds =
  QCheck.Test.make ~name:"zipf samples stay in range" ~count:100
    QCheck.(pair (int_range 1 10_000) small_int)
    (fun (n, seed) ->
      let z = Zipf.create ~n () in
      let rng = Sim.Rng.create seed in
      List.for_all
        (fun _ ->
          let v = Zipf.sample z rng in
          v >= 0 && v < n)
        (List.init 50 Fun.id))

let () =
  Alcotest.run "workloads"
    [
      ( "zipf",
        [
          Alcotest.test_case "in range" `Quick test_zipf_in_range;
          Alcotest.test_case "skewed" `Quick test_zipf_skew;
        ] );
      ( "key-dist",
        [
          Alcotest.test_case "uniform flat" `Quick test_uniform_flat;
          Alcotest.test_case "key names" `Quick test_key_names;
          Alcotest.test_case "distinct keys" `Quick test_distinct_keys;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_zipf_bounds ]);
    ]
