(* Tests for the Tango object library. *)

open Tango_objects

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str_opt = Alcotest.(check (option string))
let check_str_list = Alcotest.(check (list string))

let with_cluster ?(seed = 9) ?(servers = 4) body =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers () in
      body cluster)

let runtime cluster name = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name)

let zk_ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "unexpected zk error"

let bk_ok = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "unexpected bk error"

(* ------------------------------------------------------------------ *)
(* Register                                                           *)
(* ------------------------------------------------------------------ *)

let test_register () =
  with_cluster (fun cluster ->
      let rt1 = runtime cluster "app-1" in
      let rt2 = runtime cluster "app-2" in
      let r1 = Tango_register.attach rt1 ~oid:1 in
      let r2 = Tango_register.attach rt2 ~oid:1 in
      check_int "initial" 0 (Tango_register.read r1);
      Tango_register.write r1 11;
      check_int "other view" 11 (Tango_register.read r2);
      check_bool "position recorded" true (Tango_register.last_update_pos r2 >= 0))

let test_register_history () =
  with_cluster (fun cluster ->
      let rt1 = Tango.Runtime.create ~batch_size:1 (Corfu.Cluster.new_client cluster ~name:"w") in
      let r1 = Tango_register.attach rt1 ~oid:1 in
      for i = 1 to 8 do
        Tango_register.write r1 i
      done;
      let rt2 = Tango.Runtime.create ~batch_size:1 (Corfu.Cluster.new_client cluster ~name:"h") in
      let r2 = Tango_register.attach rt2 ~oid:1 in
      check_int "as of offset 3" 3 (Tango_register.read_at r2 ~upto:3);
      check_int "full" 8 (Tango_register.read r2))

(* ------------------------------------------------------------------ *)
(* Counter                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_blind_adds () =
  with_cluster (fun cluster ->
      let rts = List.init 3 (fun i -> runtime cluster (Printf.sprintf "app-%d" i)) in
      let counters = List.map (fun rt -> Tango_counter.attach rt ~oid:1) rts in
      List.iter
        (fun c ->
          Sim.Engine.spawn (fun () ->
              for _ = 1 to 10 do
                Tango_counter.incr c
              done))
        counters;
      Sim.Engine.sleep 1_000_000.;
      List.iter (fun c -> check_int "all increments survive" 30 (Tango_counter.get c)) counters)

let test_counter_next_id_unique () =
  with_cluster (fun cluster ->
      let c1 = Tango_counter.attach (runtime cluster "a") ~oid:1 in
      let c2 = Tango_counter.attach (runtime cluster "b") ~oid:1 in
      let ids = ref [] in
      let grab c n =
        Sim.Engine.spawn (fun () ->
            for _ = 1 to n do
              let id = Tango_counter.next_id c in
              ids := id :: !ids
            done)
      in
      grab c1 5;
      grab c2 5;
      Sim.Engine.sleep 3_000_000.;
      let sorted = List.sort compare !ids in
      Alcotest.(check (list int)) "dense and unique" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] sorted)

(* ------------------------------------------------------------------ *)
(* Map                                                                *)
(* ------------------------------------------------------------------ *)

let test_map_basics () =
  with_cluster (fun cluster ->
      let m = Tango_map.attach (runtime cluster "app") ~oid:1 in
      check_str_opt "missing" None (Tango_map.get m "k");
      Tango_map.put m "k" "v1";
      check_str_opt "present" (Some "v1") (Tango_map.get m "k");
      Tango_map.put m "k" "v2";
      check_str_opt "updated" (Some "v2") (Tango_map.get m "k");
      Tango_map.put m "j" "w";
      check_int "size" 2 (Tango_map.size m);
      Alcotest.(check (list (pair string string)))
        "bindings" [ ("j", "w"); ("k", "v2") ] (Tango_map.bindings m);
      Tango_map.remove m "k";
      check_bool "removed" false (Tango_map.mem m "k"))

let test_map_indexed_mode () =
  (* The indexed map stores log positions and fetches values with
     random reads; results must be identical to the inline map. *)
  with_cluster (fun cluster ->
      let writer = Tango_map.attach (runtime cluster "writer") ~oid:1 in
      for i = 0 to 19 do
        Tango_map.put writer (Printf.sprintf "key%d" i) (Printf.sprintf "value%d" i)
      done;
      Tango_map.remove writer "key7";
      let reader = Tango_map.attach ~mode:`Indexed (runtime cluster "reader") ~oid:1 in
      check_str_opt "fetched from log" (Some "value3") (Tango_map.get reader "key3");
      check_str_opt "deleted" None (Tango_map.get reader "key7");
      check_int "size" 19 (Tango_map.size reader);
      check_bool "bindings agree" true (Tango_map.bindings reader = Tango_map.bindings writer))

let test_map_transfer () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      let src = Tango_map.attach rt ~oid:1 in
      let dst = Tango_map.attach rt ~oid:2 in
      Tango_map.put src "x" "42";
      check_bool "moves" true (Tango_map.transfer ~from_map:src ~to_map_oid:2 "x");
      check_str_opt "gone" None (Tango_map.get src "x");
      check_str_opt "arrived" (Some "42") (Tango_map.get dst "x");
      check_bool "missing key" false (Tango_map.transfer ~from_map:src ~to_map_oid:2 "nope"))

let test_map_transfer_remote () =
  with_cluster (fun cluster ->
      let rt_src = runtime cluster "src-host" in
      let rt_dst = runtime cluster "dst-host" in
      let src = Tango_map.attach rt_src ~oid:1 in
      let dst = Tango_map.attach rt_dst ~oid:2 in
      Tango_map.put src "x" "payload";
      (* destination map is NOT hosted on rt_src *)
      check_bool "remote move" true (Tango_map.transfer ~from_map:src ~to_map_oid:2 "x");
      check_str_opt "arrived remotely" (Some "payload") (Tango_map.get dst "x"))

(* ------------------------------------------------------------------ *)
(* List                                                               *)
(* ------------------------------------------------------------------ *)

let test_list_order () =
  with_cluster (fun cluster ->
      let l1 = Tango_list.attach (runtime cluster "a") ~oid:1 in
      let l2 = Tango_list.attach (runtime cluster "b") ~oid:1 in
      List.iter (Tango_list.add l1) [ "x"; "y"; "z" ];
      check_str_list "order preserved" [ "x"; "y"; "z" ] (Tango_list.to_list l2);
      Tango_list.remove l2 "y";
      check_str_list "removal replicated" [ "x"; "z" ] (Tango_list.to_list l1);
      check_bool "mem" true (Tango_list.mem l1 "z");
      check_int "length" 2 (Tango_list.length l1))

let test_list_pop_exactly_once () =
  with_cluster (fun cluster ->
      let l0 = Tango_list.attach (runtime cluster "seed") ~oid:1 in
      for i = 0 to 9 do
        Tango_list.add l0 (Printf.sprintf "item%d" i)
      done;
      let popped = ref [] in
      for w = 1 to 2 do
        let l = Tango_list.attach (runtime cluster (Printf.sprintf "worker%d" w)) ~oid:1 in
        Sim.Engine.spawn (fun () ->
            let rec go () =
              match Tango_list.pop l with
              | Some item ->
                  popped := item :: !popped;
                  go ()
              | None -> ()
            in
            go ())
      done;
      Sim.Engine.sleep 5_000_000.;
      check_int "all popped exactly once" 10 (List.length (List.sort_uniq compare !popped));
      check_int "no duplicates" 10 (List.length !popped);
      check_int "list empty" 0 (Tango_list.length l0))

(* ------------------------------------------------------------------ *)
(* Queue                                                              *)
(* ------------------------------------------------------------------ *)

let test_queue_fifo () =
  with_cluster (fun cluster ->
      let q = Tango_queue.attach (runtime cluster "app") ~oid:1 in
      Tango_queue.enqueue q "a";
      Tango_queue.enqueue q "b";
      Tango_queue.enqueue q "c";
      check_str_opt "peek" (Some "a") (Tango_queue.peek q);
      check_int "length" 3 (Tango_queue.length q);
      check_str_opt "1st" (Some "a") (Tango_queue.dequeue q);
      check_str_opt "2nd" (Some "b") (Tango_queue.dequeue q);
      check_str_opt "3rd" (Some "c") (Tango_queue.dequeue q);
      check_str_opt "empty" None (Tango_queue.dequeue q))

let test_queue_remote_producer () =
  (* The producer never hosts the queue (§4.1 case B). *)
  with_cluster (fun cluster ->
      let producer_rt = runtime cluster "producer" in
      let consumer = Tango_queue.attach (runtime cluster "consumer") ~oid:7 in
      Tango_queue.enqueue_remote producer_rt ~oid:7 "job-1";
      Tango_queue.enqueue_remote producer_rt ~oid:7 "job-2";
      check_str_opt "first" (Some "job-1") (Tango_queue.dequeue consumer);
      check_str_opt "second" (Some "job-2") (Tango_queue.dequeue consumer))

let test_queue_competing_consumers () =
  with_cluster (fun cluster ->
      let q0 = Tango_queue.attach (runtime cluster "seed") ~oid:1 in
      for i = 0 to 11 do
        Tango_queue.enqueue q0 (Printf.sprintf "m%02d" i)
      done;
      let got = ref [] in
      for w = 1 to 3 do
        let q = Tango_queue.attach (runtime cluster (Printf.sprintf "c%d" w)) ~oid:1 in
        Sim.Engine.spawn (fun () ->
            let rec go () =
              match Tango_queue.dequeue q with
              | Some item ->
                  got := item :: !got;
                  go ()
              | None -> ()
            in
            go ())
      done;
      Sim.Engine.sleep 5_000_000.;
      check_int "delivered exactly once" 12 (List.length (List.sort_uniq compare !got));
      check_int "no duplicates" 12 (List.length !got))

(* ------------------------------------------------------------------ *)
(* Set                                                                *)
(* ------------------------------------------------------------------ *)

let test_set_ordered_queries () =
  with_cluster (fun cluster ->
      let s = Tango_set.attach (runtime cluster "app") ~oid:1 in
      List.iter (Tango_set.add s) [ "delta"; "alpha"; "charlie"; "bravo" ];
      check_str_opt "min" (Some "alpha") (Tango_set.min_elt s);
      check_str_opt "max" (Some "delta") (Tango_set.max_elt s);
      check_str_list "range" [ "bravo"; "charlie" ] (Tango_set.range s ~lo:"b" ~hi:"d");
      Tango_set.remove s "alpha";
      check_bool "removed" false (Tango_set.mem s "alpha");
      check_int "cardinal" 3 (Tango_set.cardinal s);
      check_str_list "elements sorted" [ "bravo"; "charlie"; "delta" ] (Tango_set.elements s))

(* ------------------------------------------------------------------ *)
(* Map index: an alternate view sharing the map's stream (§3.1)       *)
(* ------------------------------------------------------------------ *)

let test_map_index_alongside () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      let m = Tango_map.attach rt ~oid:1 in
      let idx = Tango_map_index.attach rt ~oid:1 in
      Tango_map.put m "/etc/hosts" "cfg";
      Tango_map.put m "/etc/passwd" "cfg";
      Tango_map.put m "/var/log" "data";
      check_str_list "prefix query" [ "/etc/hosts"; "/etc/passwd" ]
        (Tango_map_index.keys_with_prefix idx "/etc");
      check_str_list "inverted index" [ "/etc/hosts"; "/etc/passwd" ]
        (Tango_map_index.keys_with_value idx "cfg");
      Tango_map.remove m "/etc/passwd";
      check_str_list "stays consistent with the map" [ "/etc/hosts" ]
        (Tango_map_index.keys_with_value idx "cfg");
      Tango_map.put m "/etc/hosts" "data";
      check_str_list "rebinding moves the inverted entry" [ "/etc/hosts"; "/var/log" ]
        (Tango_map_index.keys_with_value idx "data");
      check_int "sizes agree" (Tango_map.size m) (Tango_map_index.size idx))

let test_map_index_standalone_client () =
  (* A different client hosts only the index view over the same
     stream: two data structures, one history. *)
  with_cluster (fun cluster ->
      let writer = Tango_map.attach (runtime cluster "writer") ~oid:1 in
      for i = 0 to 9 do
        Tango_map.put writer (Printf.sprintf "user%d" i) (if i mod 2 = 0 then "admin" else "guest")
      done;
      let idx = Tango_map_index.attach (runtime cluster "indexer") ~oid:1 in
      check_int "replayed" 10 (Tango_map_index.size idx);
      check_str_list "admins" [ "user0"; "user2"; "user4"; "user6"; "user8" ]
        (Tango_map_index.keys_with_value idx "admin");
      check_str_list "range" [ "user3"; "user4" ]
        (Tango_map_index.key_range idx ~lo:"user3" ~hi:"user5"))

let test_map_index_in_transactions () =
  with_cluster (fun cluster ->
      let rt = runtime cluster "app" in
      let m = Tango_map.attach rt ~oid:1 in
      let idx = Tango_map_index.attach rt ~oid:1 in
      Tango.Runtime.begin_tx rt;
      Tango_map.put m "a" "x";
      Tango_map.put m "b" "x";
      (match Tango.Runtime.end_tx rt with
      | Tango.Runtime.Committed -> ()
      | Tango.Runtime.Aborted -> Alcotest.fail "tx");
      check_str_list "both views saw the tx atomically" [ "a"; "b" ]
        (Tango_map_index.keys_with_value idx "x"))

(* ------------------------------------------------------------------ *)
(* TangoZK                                                            *)
(* ------------------------------------------------------------------ *)

let zk_pair cluster =
  let z1 = Tango_zk.attach (runtime cluster "zk-1") ~oid:1 in
  let z2 = Tango_zk.attach (runtime cluster "zk-2") ~oid:1 in
  (z1, z2)

let test_zk_create_get_set_delete () =
  with_cluster (fun cluster ->
      let z1, z2 = zk_pair cluster in
      Alcotest.(check string) "created" "/a" (zk_ok (Tango_zk.create z1 "/a" "data0"));
      check_bool "exists on other view" true (Tango_zk.exists z2 "/a");
      (match Tango_zk.get_data z2 "/a" with
      | Some (d, v) ->
          Alcotest.(check string) "data" "data0" d;
          check_int "version 0" 0 v
      | None -> Alcotest.fail "node missing");
      zk_ok (Tango_zk.set_data z2 "/a" "data1");
      (match Tango_zk.get_data z1 "/a" with
      | Some (d, v) ->
          Alcotest.(check string) "new data" "data1" d;
          check_int "version bumped" 1 v
      | None -> Alcotest.fail "node missing");
      zk_ok (Tango_zk.delete z1 "/a");
      check_bool "deleted" false (Tango_zk.exists z2 "/a"))

let test_zk_errors () =
  with_cluster (fun cluster ->
      let z, _ = zk_pair cluster in
      ignore (zk_ok (Tango_zk.create z "/a" ""));
      check_bool "node exists" true (Tango_zk.create z "/a" "" = Error Tango_zk.Node_exists);
      check_bool "no parent" true (Tango_zk.create z "/miss/child" "" = Error Tango_zk.No_node);
      check_bool "no node on set" true (Tango_zk.set_data z "/nope" "" = Error Tango_zk.No_node);
      check_bool "bad version" true
        (Tango_zk.set_data z ~version:7 "/a" "" = Error Tango_zk.Bad_version);
      ignore (zk_ok (Tango_zk.create z "/a/b" ""));
      check_bool "not empty" true (Tango_zk.delete z "/a" = Error Tango_zk.Not_empty);
      check_bool "delete bad version" true
        (Tango_zk.delete z ~version:3 "/a/b" = Error Tango_zk.Bad_version))

let test_zk_children () =
  with_cluster (fun cluster ->
      let z1, z2 = zk_pair cluster in
      ignore (zk_ok (Tango_zk.create z1 "/dir" ""));
      ignore (zk_ok (Tango_zk.create z1 "/dir/one" ""));
      ignore (zk_ok (Tango_zk.create z1 "/dir/two" ""));
      check_str_list "children" [ "one"; "two" ] (zk_ok (Tango_zk.get_children z2 "/dir"));
      check_bool "missing dir" true (Tango_zk.get_children z2 "/none" = Error Tango_zk.No_node);
      check_int "node count includes root" 4 (Tango_zk.node_count z2))

let test_zk_sequential () =
  with_cluster (fun cluster ->
      let z1, z2 = zk_pair cluster in
      ignore (zk_ok (Tango_zk.create z1 "/q" ""));
      let p1 = zk_ok (Tango_zk.create z1 ~sequential:true "/q/job-" "a") in
      let p2 = zk_ok (Tango_zk.create z2 ~sequential:true "/q/job-" "b") in
      let p3 = zk_ok (Tango_zk.create z1 ~sequential:true "/q/job-" "c") in
      Alcotest.(check string) "first" "/q/job-0000000000" p1;
      Alcotest.(check string) "second" "/q/job-0000000001" p2;
      Alcotest.(check string) "third" "/q/job-0000000002" p3)

let test_zk_sequential_concurrent_unique () =
  with_cluster (fun cluster ->
      let z1, z2 = zk_pair cluster in
      ignore (zk_ok (Tango_zk.create z1 "/q" ""));
      let created = ref [] in
      let worker z n =
        Sim.Engine.spawn (fun () ->
            for _ = 1 to n do
              let p = zk_ok (Tango_zk.create z ~sequential:true "/q/n-" "") in
              created := p :: !created
            done)
      in
      worker z1 5;
      worker z2 5;
      Sim.Engine.sleep 5_000_000.;
      check_int "ten distinct names" 10 (List.length (List.sort_uniq compare !created)))

let test_zk_ephemeral_session () =
  with_cluster (fun cluster ->
      let z1, z2 = zk_pair cluster in
      let s = Tango_zk.create_session z1 in
      ignore (zk_ok (Tango_zk.create z1 "/services" ""));
      ignore (zk_ok (Tango_zk.create z1 ~ephemeral:s "/services/me" "alive"));
      ignore (zk_ok (Tango_zk.create z1 "/services/permanent" ""));
      check_bool "ephemeral visible" true (Tango_zk.exists z2 "/services/me");
      Tango_zk.close_session z1 s;
      check_bool "ephemeral gone" false (Tango_zk.exists z2 "/services/me");
      check_bool "permanent stays" true (Tango_zk.exists z2 "/services/permanent");
      check_str_list "children updated" [ "permanent" ]
        (zk_ok (Tango_zk.get_children z2 "/services")))

let test_zk_multi_atomic () =
  with_cluster (fun cluster ->
      let z1, z2 = zk_pair cluster in
      ignore (zk_ok (Tango_zk.create z1 "/cfg" "v"));
      zk_ok
        (Tango_zk.multi z1
           [
             Tango_zk.Check ("/cfg", 0);
             Tango_zk.Create_op ("/cfg/a", "1");
             Tango_zk.Create_op ("/cfg/b", "2");
             Tango_zk.Set_op ("/cfg", "touched");
           ]);
      check_bool "a created" true (Tango_zk.exists z2 "/cfg/a");
      (* Failing batch must change nothing. *)
      check_bool "bad check fails" true
        (Tango_zk.multi z1
           [ Tango_zk.Check ("/cfg", 0); Tango_zk.Create_op ("/cfg/c", "3") ]
        = Error Tango_zk.Bad_version);
      check_bool "c not created" false (Tango_zk.exists z2 "/cfg/c"))

let test_zk_watches () =
  with_cluster (fun cluster ->
      let z1, z2 = zk_pair cluster in
      ignore (zk_ok (Tango_zk.create z1 "/w" "0"));
      check_bool "sync z2" true (Tango_zk.exists z2 "/w");
      let events = ref [] in
      Tango_zk.watch_data z2 "/w" (fun e -> events := e :: !events);
      Tango_zk.watch_children z2 "/w" (fun e -> events := e :: !events);
      zk_ok (Tango_zk.set_data z1 "/w" "1");
      ignore (zk_ok (Tango_zk.create z1 "/w/kid" ""));
      (* watches fire when z2 plays the log *)
      ignore (Tango_zk.exists z2 "/w");
      check_int "both watches fired" 2 (List.length !events);
      (* one-shot: further changes don't re-fire *)
      zk_ok (Tango_zk.set_data z1 "/w" "2");
      ignore (Tango_zk.exists z2 "/w");
      check_int "one-shot" 2 (List.length !events))

let test_zk_ephemeral_sequential_combo () =
  with_cluster (fun cluster ->
      let z, _ = zk_pair cluster in
      let s = Tango_zk.create_session z in
      ignore (zk_ok (Tango_zk.create z "/election" ""));
      let p1 = zk_ok (Tango_zk.create z ~ephemeral:s ~sequential:true "/election/n-" "me") in
      let p2 = zk_ok (Tango_zk.create z ~ephemeral:s ~sequential:true "/election/n-" "me") in
      check_bool "ordered names" true (p1 < p2);
      check_int "two candidates" 2 (List.length (zk_ok (Tango_zk.get_children z "/election")));
      Tango_zk.close_session z s;
      check_int "all ephemeral candidates gone" 0
        (List.length (zk_ok (Tango_zk.get_children z "/election"))))

let test_zk_sessions_are_distinct () =
  with_cluster (fun cluster ->
      let z1, z2 = zk_pair cluster in
      let s1 = Tango_zk.create_session z1 in
      let s2 = Tango_zk.create_session z2 in
      check_bool "distinct ids" true (Tango_zk.session_id s1 <> Tango_zk.session_id s2);
      ignore (zk_ok (Tango_zk.create z1 "/locks" ""));
      ignore (zk_ok (Tango_zk.create z1 ~ephemeral:s1 "/locks/a" ""));
      ignore (zk_ok (Tango_zk.create z2 ~ephemeral:s2 "/locks/b" ""));
      (* closing one session must not kill the other's ephemerals *)
      Tango_zk.close_session z1 s1;
      check_bool "a gone" false (Tango_zk.exists z2 "/locks/a");
      check_bool "b survives" true (Tango_zk.exists z1 "/locks/b"))

let test_zk_path_validation () =
  with_cluster (fun cluster ->
      let z, _ = zk_pair cluster in
      let rejects path =
        match Tango_zk.create z path "" with
        | _ -> Alcotest.failf "path %S must be rejected" path
        | exception Invalid_argument _ -> ()
      in
      rejects "noslash";
      rejects "/trailing/";
      rejects "//double")

let test_zk_move_across_namespaces () =
  (* The §6.3 experiment: two namespace instances; move a subtree
     atomically, destination unhosted at the source. *)
  with_cluster (fun cluster ->
      let ns1 = Tango_zk.attach (runtime cluster "ns1-host") ~oid:1 in
      let ns2 = Tango_zk.attach (runtime cluster "ns2-host") ~oid:2 in
      ignore (zk_ok (Tango_zk.create ns1 "/tree" "root-data"));
      ignore (zk_ok (Tango_zk.create ns1 "/tree/leaf1" "d1"));
      ignore (zk_ok (Tango_zk.create ns1 "/tree/leaf2" "d2"));
      check_bool "move succeeds" true (Tango_zk.move ns1 ~dst_oid:2 "/tree");
      check_bool "gone from ns1" false (Tango_zk.exists ns1 "/tree");
      check_bool "arrived in ns2" true (Tango_zk.exists ns2 "/tree");
      (match Tango_zk.get_data ns2 "/tree/leaf1" with
      | Some (d, _) -> Alcotest.(check string) "leaf data" "d1" d
      | None -> Alcotest.fail "leaf1 missing");
      check_str_list "children intact" [ "leaf1"; "leaf2" ]
        (zk_ok (Tango_zk.get_children ns2 "/tree"));
      check_bool "move of missing path" false (Tango_zk.move ns1 ~dst_oid:2 "/tree"))

(* ------------------------------------------------------------------ *)
(* Graph (provenance)                                                 *)
(* ------------------------------------------------------------------ *)

let test_graph_basics () =
  with_cluster (fun cluster ->
      let g1 = Tango_graph.attach (runtime cluster "a") ~oid:1 in
      let g2 = Tango_graph.attach (runtime cluster "b") ~oid:1 in
      Tango_graph.add_node g1 "raw" "dataset";
      Tango_graph.add_node g1 "clean" "dataset";
      Tango_graph.add_node g1 "model" "artifact";
      check_bool "edge raw->clean" true (Tango_graph.add_edge g1 ~src:"raw" ~dst:"clean");
      check_bool "edge clean->model" true (Tango_graph.add_edge g1 ~src:"clean" ~dst:"model");
      check_bool "missing endpoint" false (Tango_graph.add_edge g1 ~src:"ghost" ~dst:"model");
      (* provenance queries on the other replica *)
      check_str_list "ancestors of model" [ "clean"; "raw" ] (Tango_graph.ancestors g2 "model");
      check_str_list "descendants of raw" [ "clean"; "model" ] (Tango_graph.descendants g2 "raw");
      check_str_list "direct parents" [ "clean" ] (Tango_graph.predecessors g2 "model");
      check_str_opt "label" (Some "artifact") (Tango_graph.label g2 "model");
      check_int "nodes" 3 (Tango_graph.node_count g2);
      check_int "edges" 2 (Tango_graph.edge_count g2))

let test_graph_remove_node_cleans_edges () =
  with_cluster (fun cluster ->
      let g = Tango_graph.attach (runtime cluster "a") ~oid:1 in
      List.iter (fun n -> Tango_graph.add_node g n "") [ "a"; "b"; "c" ];
      ignore (Tango_graph.add_edge g ~src:"a" ~dst:"b");
      ignore (Tango_graph.add_edge g ~src:"b" ~dst:"c");
      check_bool "remove b" true (Tango_graph.remove_node g "b");
      check_bool "remove again" false (Tango_graph.remove_node g "b");
      check_str_list "a's edges gone" [] (Tango_graph.successors g "a");
      check_str_list "c's in-edges gone" [] (Tango_graph.predecessors g "c");
      check_int "edges" 0 (Tango_graph.edge_count g))

let test_graph_cycle_safe_closure () =
  with_cluster (fun cluster ->
      let g = Tango_graph.attach (runtime cluster "a") ~oid:1 in
      List.iter (fun n -> Tango_graph.add_node g n "") [ "x"; "y"; "z" ];
      ignore (Tango_graph.add_edge g ~src:"x" ~dst:"y");
      ignore (Tango_graph.add_edge g ~src:"y" ~dst:"z");
      ignore (Tango_graph.add_edge g ~src:"z" ~dst:"x");
      check_str_list "cycle terminates" [ "x"; "y" ] (Tango_graph.ancestors g "z"))

(* ------------------------------------------------------------------ *)
(* Dedup index                                                        *)
(* ------------------------------------------------------------------ *)

let test_dedup_store_and_hit () =
  with_cluster (fun cluster ->
      let d1 = Tango_dedup.attach (runtime cluster "a") ~oid:1 in
      let d2 = Tango_dedup.attach (runtime cluster "b") ~oid:1 in
      let loc0, kind0 = Tango_dedup.store d1 ~hash:"h-aaa" ~bytes:4096 in
      check_bool "fresh" true (kind0 = `Fresh);
      (* the other client stores the same content: dedup hit *)
      let loc1, kind1 = Tango_dedup.store d2 ~hash:"h-aaa" ~bytes:4096 in
      check_bool "duplicate" true (kind1 = `Duplicate);
      check_int "same location" loc0 loc1;
      let _, kind2 = Tango_dedup.store d2 ~hash:"h-bbb" ~bytes:1024 in
      check_bool "different content is fresh" true (kind2 = `Fresh);
      check_int "chunks" 2 (Tango_dedup.chunk_count d1);
      let logical, physical = Tango_dedup.bytes_stored d1 in
      check_int "logical" (4096 + 4096 + 1024) logical;
      check_int "physical" (4096 + 1024) physical)

let test_dedup_release_refcounts () =
  with_cluster (fun cluster ->
      let d = Tango_dedup.attach (runtime cluster "a") ~oid:1 in
      let loc, _ = Tango_dedup.store d ~hash:"h" ~bytes:100 in
      ignore (Tango_dedup.store d ~hash:"h" ~bytes:100);
      Alcotest.(check (option (pair int int))) "two refs" (Some (loc, 2))
        (Tango_dedup.lookup d ~hash:"h");
      Alcotest.(check (option int)) "still referenced" None (Tango_dedup.release d ~hash:"h");
      Alcotest.(check (option int)) "last ref frees" (Some loc) (Tango_dedup.release d ~hash:"h");
      check_int "gone" 0 (Tango_dedup.chunk_count d);
      match Tango_dedup.release d ~hash:"h" with
      | _ -> Alcotest.fail "releasing unknown hash must raise"
      | exception Not_found -> ())

let test_dedup_concurrent_same_hash () =
  with_cluster (fun cluster ->
      let results = ref [] in
      for i = 1 to 3 do
        let d = Tango_dedup.attach (runtime cluster (Printf.sprintf "c%d" i)) ~oid:1 in
        Sim.Engine.spawn (fun () ->
            let loc, kind = Tango_dedup.store d ~hash:"hot" ~bytes:512 in
            results := (loc, kind) :: !results)
      done;
      Sim.Engine.sleep 2_000_000.;
      check_int "all stored" 3 (List.length !results);
      let locations = List.sort_uniq compare (List.map fst !results) in
      check_int "one physical location" 1 (List.length locations);
      check_int "exactly one fresh" 1
        (List.length (List.filter (fun (_, k) -> k = `Fresh) !results));
      let d = Tango_dedup.attach (runtime cluster "reader") ~oid:1 in
      Alcotest.(check (option (pair int int))) "three refs"
        (Some (List.hd locations, 3))
        (Tango_dedup.lookup d ~hash:"hot"))

(* ------------------------------------------------------------------ *)
(* TangoBK                                                            *)
(* ------------------------------------------------------------------ *)

let test_bk_ledger_lifecycle () =
  with_cluster (fun cluster ->
      let bk = Tango_bk.attach (runtime cluster "writer") ~oid:1 in
      let ledger = Tango_bk.create_ledger bk in
      check_int "first ledger" 0 ledger;
      check_int "entry 0" 0 (bk_ok (Tango_bk.add_entry bk ~ledger (Bytes.of_string "alpha")));
      check_int "entry 1" 1 (bk_ok (Tango_bk.add_entry bk ~ledger (Bytes.of_string "beta")));
      check_int "last id" 1 (bk_ok (Tango_bk.last_entry_id bk ~ledger));
      (match Tango_bk.read_entry bk ~ledger 0 with
      | Some b -> Alcotest.(check string) "entry body from log" "alpha" (Bytes.to_string b)
      | None -> Alcotest.fail "entry 0 missing");
      check_str_list "range read" [ "alpha"; "beta" ]
        (List.map Bytes.to_string (Tango_bk.read_entries bk ~ledger ~lo:0 ~hi:5));
      check_int "close returns last" 1 (bk_ok (Tango_bk.close_ledger bk ~ledger));
      check_bool "closed" true (bk_ok (Tango_bk.is_closed bk ~ledger));
      check_bool "add after close" true
        (Tango_bk.add_entry bk ~ledger (Bytes.of_string "late") = Error Tango_bk.Ledger_closed))

let test_bk_single_writer () =
  with_cluster (fun cluster ->
      let owner = Tango_bk.attach (runtime cluster "owner") ~oid:1 in
      let intruder = Tango_bk.attach (runtime cluster "intruder") ~oid:1 in
      let ledger = Tango_bk.create_ledger owner in
      ignore (bk_ok (Tango_bk.add_entry owner ~ledger (Bytes.of_string "mine")));
      check_bool "intruder rejected" true
        (Tango_bk.add_entry intruder ~ledger (Bytes.of_string "evil") = Error Tango_bk.Not_owner);
      Alcotest.(check string) "owner recorded" "owner" (bk_ok (Tango_bk.writer_of intruder ~ledger));
      check_int "only owner's entry" 0 (bk_ok (Tango_bk.last_entry_id intruder ~ledger)))

let test_bk_reader_replays () =
  with_cluster (fun cluster ->
      let w = Tango_bk.attach (runtime cluster "writer") ~oid:1 in
      let ledger = Tango_bk.create_ledger w in
      for i = 0 to 9 do
        ignore (bk_ok (Tango_bk.add_entry w ~ledger (Bytes.of_string (string_of_int i))))
      done;
      ignore (bk_ok (Tango_bk.close_ledger w ~ledger));
      (* A reader attaching later reconstructs everything, bodies
         fetched from the shared log. *)
      let r = Tango_bk.attach (runtime cluster "reader") ~oid:1 in
      Alcotest.(check (list int)) "ledgers" [ 0 ] (Tango_bk.ledgers r);
      check_str_list "all entries"
        (List.init 10 string_of_int)
        (List.map Bytes.to_string (Tango_bk.read_entries r ~ledger ~lo:0 ~hi:9)))

let test_bk_concurrent_creation () =
  with_cluster (fun cluster ->
      let a = Tango_bk.attach (runtime cluster "a") ~oid:1 in
      let b = Tango_bk.attach (runtime cluster "b") ~oid:1 in
      let la = ref (-1) and lb = ref (-1) in
      Sim.Engine.spawn (fun () -> la := Tango_bk.create_ledger a);
      Sim.Engine.spawn (fun () -> lb := Tango_bk.create_ledger b);
      Sim.Engine.sleep 1_000_000.;
      check_bool "distinct ids" true (!la <> !lb && !la >= 0 && !lb >= 0);
      Alcotest.(check (list int)) "both registered" [ 0; 1 ] (Tango_bk.ledgers a))


(* ------------------------------------------------------------------ *)
(* Model-based testing: TangoZK vs a pure reference model             *)
(* ------------------------------------------------------------------ *)

(* A sequential, in-memory model of the znode semantics we implement:
   random operation sequences must produce identical results and final
   trees on the replicated implementation. *)
module Zk_model = struct
  module M = Map.Make (String)

  type t = { mutable nodes : (string * int) M.t (* path -> data, version *) }

  let create () = { nodes = M.add "/" ("", 0) M.empty }

  let parent p = match String.rindex p '/' with 0 -> "/" | i -> String.sub p 0 i

  let has_children t p =
    let prefix = if p = "/" then "/" else p ^ "/" in
    M.exists
      (fun q _ ->
        q <> p && String.starts_with ~prefix q
        && not (String.contains_from q (String.length prefix) '/'))
      t.nodes
    ||
    (* deeper descendants also count as children of intermediate dirs *)
    M.exists (fun q _ -> q <> p && String.starts_with ~prefix q) t.nodes

  let create_node t path data =
    if M.mem path t.nodes then Error Tango_zk.Node_exists
    else if not (M.mem (parent path) t.nodes) then Error Tango_zk.No_node
    else begin
      t.nodes <- M.add path (data, 0) t.nodes;
      Ok path
    end

  let set_data t path data =
    match M.find_opt path t.nodes with
    | None -> Error Tango_zk.No_node
    | Some (_, v) ->
        t.nodes <- M.add path (data, v + 1) t.nodes;
        Ok ()

  let delete t path =
    match M.find_opt path t.nodes with
    | None -> Error Tango_zk.No_node
    | Some _ when has_children t path -> Error Tango_zk.Not_empty
    | Some _ ->
        t.nodes <- M.remove path t.nodes;
        Ok ()

  let get_data t path = M.find_opt path t.nodes
end

let prop_zk_matches_model =
  QCheck.Test.make ~name:"TangoZK matches the sequential model" ~count:20
    QCheck.(
      pair small_int
        (list_of_size Gen.(5 -- 40)
           (triple (int_range 0 2) (int_range 0 5) (string_of_size Gen.(1 -- 3)))))
    (fun (seed, ops) ->
      Sim.Engine.run ~seed:(seed + 3) (fun () ->
          let cluster = Corfu.Cluster.create ~servers:4 () in
          let zk = Tango_zk.attach (runtime cluster "impl") ~oid:1 in
          let model = Zk_model.create () in
          let paths = [| "/a"; "/b"; "/a/x"; "/a/y"; "/b/z"; "/c" |] in
          List.for_all
            (fun (kind, pidx, data) ->
              let path = paths.(pidx) in
              match kind with
              | 0 ->
                  let got = Tango_zk.create zk path data in
                  let want = Zk_model.create_node model path data in
                  got = want
              | 1 ->
                  let got = Tango_zk.set_data zk path data in
                  let want = Zk_model.set_data model path data in
                  got = want
              | _ ->
                  let got = Tango_zk.delete zk path in
                  let want = Zk_model.delete model path in
                  got = want)
            ops
          &&
          (* final states agree, observed through a fresh replica *)
          let fresh = Tango_zk.attach (runtime cluster "fresh") ~oid:1 in
          Array.for_all
            (fun path -> Tango_zk.get_data fresh path = Zk_model.get_data model path)
            paths))

let () =
  Alcotest.run "tango-objects"
    [
      ( "register",
        [
          Alcotest.test_case "basics" `Quick test_register;
          Alcotest.test_case "history" `Quick test_register_history;
        ] );
      ( "counter",
        [
          Alcotest.test_case "blind adds don't conflict" `Quick test_counter_blind_adds;
          Alcotest.test_case "next_id unique" `Quick test_counter_next_id_unique;
        ] );
      ( "map",
        [
          Alcotest.test_case "basics" `Quick test_map_basics;
          Alcotest.test_case "indexed mode" `Quick test_map_indexed_mode;
          Alcotest.test_case "transfer" `Quick test_map_transfer;
          Alcotest.test_case "remote transfer" `Quick test_map_transfer_remote;
        ] );
      ( "list",
        [
          Alcotest.test_case "ordering" `Quick test_list_order;
          Alcotest.test_case "pop exactly once" `Quick test_list_pop_exactly_once;
        ] );
      ( "queue",
        [
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "remote producer" `Quick test_queue_remote_producer;
          Alcotest.test_case "competing consumers" `Quick test_queue_competing_consumers;
        ] );
      ("set", [ Alcotest.test_case "ordered queries" `Quick test_set_ordered_queries ]);
      ( "map-index",
        [
          Alcotest.test_case "alongside the map" `Quick test_map_index_alongside;
          Alcotest.test_case "standalone client" `Quick test_map_index_standalone_client;
          Alcotest.test_case "inside transactions" `Quick test_map_index_in_transactions;
        ] );
      ( "zookeeper",
        [
          Alcotest.test_case "create/get/set/delete" `Quick test_zk_create_get_set_delete;
          Alcotest.test_case "errors" `Quick test_zk_errors;
          Alcotest.test_case "children" `Quick test_zk_children;
          Alcotest.test_case "sequential" `Quick test_zk_sequential;
          Alcotest.test_case "sequential concurrent unique" `Quick
            test_zk_sequential_concurrent_unique;
          Alcotest.test_case "ephemeral sessions" `Quick test_zk_ephemeral_session;
          Alcotest.test_case "multi atomic" `Quick test_zk_multi_atomic;
          Alcotest.test_case "watches" `Quick test_zk_watches;
          Alcotest.test_case "cross-namespace move" `Quick test_zk_move_across_namespaces;
          Alcotest.test_case "ephemeral+sequential" `Quick test_zk_ephemeral_sequential_combo;
          Alcotest.test_case "sessions are distinct" `Quick test_zk_sessions_are_distinct;
          Alcotest.test_case "path validation" `Quick test_zk_path_validation;
        ] );
      ( "graph",
        [
          Alcotest.test_case "provenance queries" `Quick test_graph_basics;
          Alcotest.test_case "remove cleans edges" `Quick test_graph_remove_node_cleans_edges;
          Alcotest.test_case "cycle-safe closure" `Quick test_graph_cycle_safe_closure;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "store and hit" `Quick test_dedup_store_and_hit;
          Alcotest.test_case "release refcounts" `Quick test_dedup_release_refcounts;
          Alcotest.test_case "concurrent same hash" `Quick test_dedup_concurrent_same_hash;
        ] );
      ("model-based", List.map QCheck_alcotest.to_alcotest [ prop_zk_matches_model ]);
      ( "bookkeeper",
        [
          Alcotest.test_case "ledger lifecycle" `Quick test_bk_ledger_lifecycle;
          Alcotest.test_case "single writer" `Quick test_bk_single_writer;
          Alcotest.test_case "reader replays" `Quick test_bk_reader_replays;
          Alcotest.test_case "concurrent creation" `Quick test_bk_concurrent_creation;
        ] );
    ]
