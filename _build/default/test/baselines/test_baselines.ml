(* Tests for the 2PL comparison baseline. *)

module Tpl = Tango_baselines.Two_phase_locking

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_fabric body =
  Sim.Engine.run ~seed:3 (fun () ->
      let net = Sim.Net.create ~latency:50. ~bandwidth:125. ~jitter:0. () in
      let t = Tpl.create ~net in
      body t)

let test_local_commit () =
  with_fabric (fun t ->
      let a = Tpl.add_node t ~name:"a" in
      let _, v = Tpl.read ~from:a a "x" in
      check_int "fresh version" (-1) v;
      check_bool "commit" true (Tpl.execute t ~from:a ~reads:[ (a, "x", v) ] ~writes:[ (a, "x", "1") ]);
      let value, v' = Tpl.read ~from:a a "x" in
      Alcotest.(check string) "written" "1" value;
      check_bool "version advanced" true (v' > v))

let test_cross_node_commit () =
  with_fabric (fun t ->
      let a = Tpl.add_node t ~name:"a" in
      let b = Tpl.add_node t ~name:"b" in
      let _, va = Tpl.read ~from:a a "x" in
      check_bool "remote write commits" true
        (Tpl.execute t ~from:a ~reads:[ (a, "x", va) ] ~writes:[ (a, "x", "1"); (b, "y", "2") ]);
      Alcotest.(check (option string)) "landed remotely" (Some "2") (Tpl.peek b "y"))

let test_stale_read_aborts () =
  with_fabric (fun t ->
      let a = Tpl.add_node t ~name:"a" in
      let _, v = Tpl.read ~from:a a "x" in
      check_bool "w1" true (Tpl.execute t ~from:a ~reads:[] ~writes:[ (a, "x", "1") ]);
      (* v is now stale *)
      check_bool "stale read aborts" false
        (Tpl.execute t ~from:a ~reads:[ (a, "x", v) ] ~writes:[ (a, "x", "2") ]);
      (* locks were released: a fresh attempt succeeds *)
      let _, v' = Tpl.read ~from:a a "x" in
      check_bool "fresh attempt commits" true
        (Tpl.execute t ~from:a ~reads:[ (a, "x", v') ] ~writes:[ (a, "x", "2") ]))

let test_lock_contention () =
  with_fabric (fun t ->
      let a = Tpl.add_node t ~name:"a" in
      let b = Tpl.add_node t ~name:"b" in
      let outcomes = ref [] in
      let attempt from tag =
        Sim.Engine.spawn (fun () ->
            let _, v = Tpl.read ~from a "hot" in
            let ok = Tpl.execute t ~from ~reads:[ (a, "hot", v) ] ~writes:[ (a, "hot", tag) ] in
            outcomes := ok :: !outcomes)
      in
      attempt a "from-a";
      attempt b "from-b";
      Sim.Engine.sleep 1_000_000.;
      check_int "both finished" 2 (List.length !outcomes);
      check_int "exactly one winner" 1 (List.length (List.filter Fun.id !outcomes));
      (* and the item is unlocked: a follow-up commits *)
      let _, v = Tpl.read ~from:a a "hot" in
      check_bool "unlocked afterwards" true
        (Tpl.execute t ~from:a ~reads:[ (a, "hot", v) ] ~writes:[ (a, "hot", "final") ]))

let test_throughput_sanity () =
  (* Local-only transactions should sustain thousands/sec per node. *)
  with_fabric (fun t ->
      let nodes = List.init 4 (fun i -> Tpl.add_node t ~name:(Printf.sprintf "n%d" i)) in
      let committed = ref 0 in
      List.iter
        (fun n ->
          Sim.Engine.spawn (fun () ->
              for i = 0 to 99 do
                let key = Printf.sprintf "k%d" (i mod 10) in
                let _, v = Tpl.read ~from:n n key in
                if Tpl.execute t ~from:n ~reads:[ (n, key, v) ] ~writes:[ (n, key, "v") ] then
                  incr committed
              done))
        nodes;
      Sim.Engine.sleep 1_000_000.;
      check_int "all local txes commit" 400 !committed)

let () =
  Alcotest.run "baselines"
    [
      ( "two-phase-locking",
        [
          Alcotest.test_case "local commit" `Quick test_local_commit;
          Alcotest.test_case "cross-node commit" `Quick test_cross_node_commit;
          Alcotest.test_case "stale read aborts" `Quick test_stale_read_aborts;
          Alcotest.test_case "lock contention" `Quick test_lock_contention;
          Alcotest.test_case "throughput sanity" `Quick test_throughput_sanity;
        ] );
    ]
