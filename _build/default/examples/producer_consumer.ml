(* Producer/consumer over a TangoQueue (paper §4.1, remote-write
   transactions): producers enqueue into a queue they do not host —
   they never see its updates — while competing consumers dequeue
   transactionally, each item delivered exactly once.

     dune exec examples/producer_consumer.exe *)

open Tango_objects

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")

let queue_oid = 7

let () =
  Sim.Engine.run ~seed:3 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in

      step "Two producers (no queue view) and two competing consumers";
      let producer name = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name) in
      let p1 = producer "producer-1" in
      let p2 = producer "producer-2" in
      let consumer name =
        let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name) in
        Tango_queue.attach rt ~oid:queue_oid
      in
      let c1 = consumer "consumer-1" in
      let c2 = consumer "consumer-2" in

      step "Producers enqueue remotely (their runtimes never play the queue's stream)";
      let produced = ref 0 in
      let produce rt tag n =
        Sim.Engine.spawn (fun () ->
            for i = 1 to n do
              Tango_queue.enqueue_remote rt ~oid:queue_oid (Printf.sprintf "%s-item-%d" tag i);
              incr produced
            done)
      in
      produce p1 "p1" 5;
      produce p2 "p2" 5;

      step "Consumers race to dequeue; transactions make delivery exactly-once";
      let delivered = ref [] in
      let consume q tag =
        Sim.Engine.spawn (fun () ->
            let rec go idle =
              if idle < 30 then
                match Tango_queue.dequeue q with
                | Some item ->
                    delivered := (item, tag) :: !delivered;
                    go 0
                | None ->
                    Sim.Engine.sleep 1_000.;
                    go (idle + 1)
            in
            go 0)
      in
      consume c1 "consumer-1";
      consume c2 "consumer-2";
      Sim.Engine.sleep 500_000.;

      say "produced %d items" !produced;
      List.iter (fun (item, who) -> say "%-12s -> %s" item who) (List.sort compare !delivered);
      let items = List.map fst !delivered in
      say "delivered %d distinct items (duplicates: %d)"
        (List.length (List.sort_uniq compare items))
        (List.length items - List.length (List.sort_uniq compare items));
      say "queue length now: %d" (Tango_queue.length c1);
      say "(simulated time: %.1f ms)" (Sim.Engine.now () /. 1e3))
