(* Quickstart: bring up a CORFU log, host Tango objects on two
   application servers, and run a cross-object transaction.

     dune exec examples/quickstart.exe *)

open Tango_objects

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")

let () =
  Sim.Engine.run ~seed:7 (fun () ->
      step "Deploy an 18-node CORFU log (9 replica sets of 2) + sequencer";
      let cluster = Corfu.Cluster.create ~servers:18 () in

      step "Two application servers, each with a Tango runtime";
      let rt1 = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"app-server-1") in
      let rt2 = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"app-server-2") in

      step "Name objects through the directory (OID 0)";
      let dir1 = Tango.Directory.attach rt1 in
      let dir2 = Tango.Directory.attach rt2 in
      let reg_oid = Tango.Directory.declare dir1 "config-epoch" in
      let map_oid = Tango.Directory.declare dir1 "user-table" in
      say "declared: config-epoch -> OID %d, user-table -> OID %d" reg_oid map_oid;
      say "server 2 resolves the same ids: %d, %d"
        (Option.get (Tango.Directory.lookup dir2 "config-epoch"))
        (Option.get (Tango.Directory.lookup dir2 "user-table"));

      step "Host views on both servers";
      let reg1 = Tango_register.attach rt1 ~oid:reg_oid in
      let map1 = Tango_map.attach rt1 ~oid:map_oid in
      let reg2 = Tango_register.attach rt2 ~oid:reg_oid in
      let map2 = Tango_map.attach rt2 ~oid:map_oid in

      step "Writes on server 1 are linearizable reads on server 2";
      Tango_register.write reg1 42;
      Tango_map.put map1 "alice" "admin";
      say "server 2 reads register = %d, alice = %s" (Tango_register.read reg2)
        (Option.value (Tango_map.get map2 "alice") ~default:"?");

      step "A transaction across both objects (atomic on every view)";
      Tango.Runtime.begin_tx rt2;
      let epoch = Tango_register.read reg2 in
      Tango_register.write reg2 (epoch + 1);
      Tango_map.put map2 "alice" (Printf.sprintf "admin@epoch%d" (epoch + 1));
      (match Tango.Runtime.end_tx rt2 with
      | Tango.Runtime.Committed -> say "committed"
      | Tango.Runtime.Aborted -> say "aborted");
      say "server 1 sees register = %d, alice = %s" (Tango_register.read reg1)
        (Option.value (Tango_map.get map1 "alice") ~default:"?");

      step "Persistence: a brand-new server reconstructs state from the log";
      let rt3 = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"late-joiner") in
      let map3 = Tango_map.attach rt3 ~oid:map_oid in
      say "late joiner sees alice = %s" (Option.value (Tango_map.get map3 "alice") ~default:"?");
      say "(simulated time elapsed: %.1f ms)" (Sim.Engine.now () /. 1e3))
