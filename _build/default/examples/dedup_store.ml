(* A deduplicating chunk store (one of the paper's §1 motivating
   metadata services, à la ChunkStash): several ingest servers share a
   TangoDedup index, so identical content uploaded anywhere is stored
   once, with transactional reference counting.

     dune exec examples/dedup_store.exe *)

open Tango_objects

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")

(* A toy content hash, standing in for SHA-256. *)
let hash_of content = Printf.sprintf "h%08x" (Hashtbl.hash content)

let index_oid = 1

let () =
  Sim.Engine.run ~seed:41 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let ingest name =
        Tango_dedup.attach (Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name)) ~oid:index_oid
      in
      step "Three ingest servers share one dedup index over the log";
      let s1 = ingest "ingest-1" in
      let s2 = ingest "ingest-2" in
      let s3 = ingest "ingest-3" in

      step "Users upload files; common chunks dedup across servers";
      let upload server server_name file chunks =
        List.iter
          (fun chunk ->
            let bytes = String.length chunk * 64 in
            let location, kind = Tango_dedup.store server ~hash:(hash_of chunk) ~bytes in
            say "%-9s %-12s chunk %-22s -> location %2d (%s)" server_name file
              ("\"" ^ chunk ^ "\"")
              location
              (match kind with `Fresh -> "stored" | `Duplicate -> "dedup hit"))
          chunks
      in
      upload s1 "ingest-1" "report.doc" [ "header"; "quarterly numbers"; "footer" ];
      upload s2 "ingest-2" "report2.doc" [ "header"; "annual numbers"; "footer" ];
      upload s3 "ingest-3" "copy.doc" [ "header"; "quarterly numbers"; "footer" ];

      step "Savings, visible identically from every server";
      let logical, physical = Tango_dedup.bytes_stored s1 in
      say "logical bytes ingested : %d" logical;
      say "physical bytes resident: %d (%.0f%% saved)" physical
        (100. *. (1. -. (float_of_int physical /. float_of_int logical)));
      say "distinct chunks        : %d" (Tango_dedup.chunk_count s2);

      step "Deleting a file releases references; last reference frees the chunk";
      List.iter
        (fun chunk ->
          match Tango_dedup.release s3 ~hash:(hash_of chunk) with
          | Some location -> say "chunk \"%s\": location %d reclaimed" chunk location
          | None -> say "chunk \"%s\": still referenced elsewhere" chunk)
        [ "header"; "quarterly numbers"; "footer" ];
      let _, physical' = Tango_dedup.bytes_stored s1 in
      say "physical bytes after delete: %d" physical';
      say "(simulated time: %.1f ms)" (Sim.Engine.now () /. 1e3))
