examples/namespace_shard.ml: Corfu List Printf Sim Tango Tango_objects Tango_zk
