examples/quickstart.ml: Corfu Option Printf Sim Tango Tango_map Tango_objects Tango_register
