examples/producer_consumer.ml: Corfu List Printf Sim Tango Tango_objects Tango_queue
