examples/job_scheduler.ml: Corfu List Printf Sim String Tango Tango_counter Tango_list Tango_map Tango_objects
