examples/dedup_store.ml: Corfu Hashtbl List Printf Sim String Tango Tango_dedup Tango_objects
