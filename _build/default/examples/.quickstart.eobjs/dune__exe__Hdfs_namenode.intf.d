examples/hdfs_namenode.mli:
