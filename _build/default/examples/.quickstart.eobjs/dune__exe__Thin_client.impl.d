examples/thin_client.ml: Corfu List Option Printf Sim Tango Tango_map Tango_objects
