examples/membership_service.mli:
