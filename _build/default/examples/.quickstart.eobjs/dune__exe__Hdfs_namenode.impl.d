examples/hdfs_namenode.ml: Corfu List Option Printf Sim String Tango Tango_hdfs
