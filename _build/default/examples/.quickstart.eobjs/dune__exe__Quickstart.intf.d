examples/quickstart.mli:
