examples/thin_client.mli:
