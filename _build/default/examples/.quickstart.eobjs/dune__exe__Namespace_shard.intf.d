examples/namespace_shard.mli:
