examples/time_travel.ml: Corfu List Option Printf Sim String Tango Tango_list Tango_map Tango_objects
