examples/dedup_store.mli:
