examples/membership_service.ml: Bytes Corfu List Option Printf Sim String Tango Tango_bk Tango_map Tango_objects Tango_set
