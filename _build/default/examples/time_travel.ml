(* History, consistent snapshots, rollback, and remote mirroring
   (paper §3.1 "History" and §3.2): because the shared log *is* the
   object, any prefix of it is a legal, consistent state of the whole
   system.

     dune exec examples/time_travel.exe *)

open Tango_objects

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")

let accounts_oid = 1
let audit_oid = 2

let () =
  Sim.Engine.run ~seed:17 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      (* batch size 1 keeps one record per log offset, so prefixes are
         easy to narrate *)
      let rt = Tango.Runtime.create ~batch_size:1 (Corfu.Cluster.new_client cluster ~name:"bank") in
      let accounts = Tango_map.attach rt ~oid:accounts_oid in
      let audit = Tango_list.attach rt ~oid:audit_oid in

      step "A day of banking, every mutation a log entry";
      let transfer day from_acct to_acct amount =
        Tango.Runtime.begin_tx rt;
        let balance acct =
          int_of_string (Option.value (Tango_map.get accounts acct) ~default:"0")
        in
        Tango_map.put accounts from_acct (string_of_int (balance from_acct - amount));
        Tango_map.put accounts to_acct (string_of_int (balance to_acct + amount));
        Tango_list.add audit (Printf.sprintf "day%d: %s -> %s: %d" day from_acct to_acct amount);
        match Tango.Runtime.end_tx rt with
        | Tango.Runtime.Committed -> ()
        | Tango.Runtime.Aborted -> say "transfer aborted!?"
      in
      Tango_map.put accounts "alice" "100";
      Tango_map.put accounts "bob" "100";
      transfer 1 "alice" "bob" 30;
      transfer 2 "bob" "alice" 10;
      transfer 3 "alice" "bob" 50;
      say "today: %s"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) (Tango_map.bindings accounts)));
      let tail = Corfu.Client.check (Tango.Runtime.client rt) in
      say "log tail is at offset %d" tail;

      step "Time travel: instantiate fresh views at historical prefixes";
      let snapshot_at upto =
        let rt' =
          Tango.Runtime.create ~batch_size:1
            (Corfu.Cluster.new_client cluster ~name:(Printf.sprintf "historian-%d" upto))
        in
        let acc = Tango_map.attach rt' ~oid:accounts_oid in
        let au = Tango_list.attach rt' ~oid:audit_oid in
        (acc, au)
      in
      for upto = 2 to tail do
        let acc, au = snapshot_at upto in
        let balance who = Option.value (Tango_map.get_at acc ~upto who) ~default:"0" in
        let alice = balance "alice" and bob = balance "bob" in
        let total = int_of_string alice + int_of_string bob in
        say "prefix %2d: alice=%-4s bob=%-4s (conserved total %d, audit entries %d)" upto alice
          bob total
          (List.length (Tango_list.to_list_at au ~upto))
      done;
      say "every prefix is transactionally consistent: money is conserved";

      step "Coordinated rollback after a corruption event (§3.2)";
      say "suppose day 3's transfer was fraudulent: rebuild both objects";
      say "from the prefix just before it and carry on from there.";
      let rollback_point = tail - 1 in
      let acc', au' = snapshot_at rollback_point in
      say "restored state: alice=%s bob=%s, audit entries %d"
        (Option.value (Tango_map.get_at acc' ~upto:rollback_point "alice") ~default:"-")
        (Option.value (Tango_map.get_at acc' ~upto:rollback_point "bob") ~default:"-")
        (List.length (Tango_list.to_list_at au' ~upto:rollback_point));

      step "Remote mirroring (§3.2)";
      say "a mirror site just plays the log; log order makes the mirror";
      say "a consistent snapshot of the primary at some point in the past.";
      let mirror_rt =
        Tango.Runtime.create ~batch_size:1 (Corfu.Cluster.new_client cluster ~name:"mirror-site")
      in
      let mirror = Tango_map.attach mirror_rt ~oid:accounts_oid in
      say "mirror sees: %s"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) (Tango_map.bindings mirror)));
      say "(simulated time: %.1f ms)" (Sim.Engine.now () /. 1e3))
