(* A thin client using collaborative remote-read transactions — the
   paper's §4.1-D future work, implemented here: it hosts no views at
   all, reads through peers, writes remotely, and the read-set hosts
   validate its transaction by sharing partial decisions over the log.

     dune exec examples/thin_client.exe *)

open Tango_objects

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")

let inventory_oid = 1
let orders_oid = 2

let () =
  Sim.Engine.run ~seed:47 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in

      step "An inventory service and an order service, on separate machines";
      let rt_inv = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"inventory-svc") in
      let rt_ord = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"order-svc") in
      let inventory = Tango_map.attach rt_inv ~oid:inventory_oid in
      let orders = Tango_map.attach rt_ord ~oid:orders_oid ~needs_decision:true in
      Tango_map.serve_reads inventory;
      Tango_map.put inventory "widget" "in-stock";
      ignore (Tango_map.get inventory "widget");

      step "A thin client hosts nothing — it just talks to the log and a peer";
      let rt_thin = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"thin-client") in
      Tango.Runtime.connect_peer rt_thin ~oid:inventory_oid
        (Tango.Runtime.remote_read_service rt_inv);
      say "hosted objects on the thin client: %d"
        (List.length (Tango.Runtime.hosted_oids rt_thin));

      step "Place an order iff the widget is in stock (remote read + remote write)";
      Tango.Runtime.begin_tx rt_thin;
      (match Tango_map.get_remote rt_thin ~oid:inventory_oid "widget" with
      | Some "in-stock" ->
          Tango_map.remote_put rt_thin ~oid:orders_oid "order-1" "widget";
          say "stock confirmed via peer read; writing the order remotely"
      | Some other -> say "unexpected stock state %S" other
      | None -> say "widget unknown");
      (match Tango.Runtime.end_tx rt_thin with
      | Tango.Runtime.Committed ->
          say "committed: the inventory host validated our read at the";
          say "commit position and published its verdict through the log"
      | Tango.Runtime.Aborted -> say "aborted");
      say "order service sees: order-1 = %s"
        (Option.value (Tango_map.get orders "order-1") ~default:"<none>");

      step "A concurrent stock change makes the same transaction abort";
      Tango.Runtime.begin_tx rt_thin;
      ignore (Tango_map.get_remote rt_thin ~oid:inventory_oid "widget");
      (* inventory flips while the thin client's transaction is open *)
      Tango_map.put inventory "widget" "sold-out";
      Tango_map.remote_put rt_thin ~oid:orders_oid "order-2" "widget";
      (match Tango.Runtime.end_tx rt_thin with
      | Tango.Runtime.Aborted -> say "aborted, as it must: the read was stale"
      | Tango.Runtime.Committed -> say "BUG: committed on a stale read");
      say "order-2 placed? %s"
        (match Tango_map.get orders "order-2" with Some _ -> "yes (bug!)" | None -> "no");
      say "(simulated time: %.1f ms)" (Sim.Engine.now () /. 1e3))
