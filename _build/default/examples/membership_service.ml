(* The paper's §2 motivating example, verbatim: "a membership service
   that stores server names in ZooKeeper would find it inefficient to
   implement common functionality such as searching the namespace on
   some index (e.g., CPU load), extracting the oldest/newest inserted
   name, or storing multi-MB logs per name."

   With Tango the service picks the right structures instead: a map of
   server records, an ordered set keyed by load for index search, an
   ordered set keyed by enrollment time for oldest/newest, and a
   BookKeeper-style ledger per server for bulky logs — all kept
   consistent by transactions over one shared log.

     dune exec examples/membership_service.exe *)

open Tango_objects

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")

let records_oid = 1
let by_load_oid = 2
let by_age_oid = 3
let logs_oid = 4

type service = {
  rt : Tango.Runtime.t;
  records : Tango_map.t;  (* name -> "load,enrolled" *)
  by_load : Tango_set.t;  (* "load|name" *)
  by_age : Tango_set.t;  (* "enrolled|name" *)
  logs : Tango_bk.t;
}

let attach cluster host =
  let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:host) in
  {
    rt;
    records = Tango_map.attach rt ~oid:records_oid;
    by_load = Tango_set.attach rt ~oid:by_load_oid;
    by_age = Tango_set.attach rt ~oid:by_age_oid;
    logs = Tango_bk.attach rt ~oid:logs_oid;
  }

let load_key load name = Printf.sprintf "%03d|%s" load name
let age_key enrolled name = Printf.sprintf "%06d|%s" enrolled name
let name_of key = List.nth (String.split_on_char '|' key) 1

(* Enroll / update / retire keep all three structures consistent in
   one transaction. *)
let rec enroll t name ~load ~enrolled =
  Tango.Runtime.begin_tx t.rt;
  (match Tango_map.get t.records name with
  | Some record ->
      (* re-enrollment with a new load: drop the old index entry *)
      let old_load = int_of_string (List.hd (String.split_on_char ',' record)) in
      Tango_set.remove t.by_load (load_key old_load name)
  | None -> Tango_set.add t.by_age (age_key enrolled name));
  Tango_map.put t.records name (Printf.sprintf "%d,%d" load enrolled);
  Tango_set.add t.by_load (load_key load name);
  match Tango.Runtime.end_tx t.rt with
  | Tango.Runtime.Committed -> ()
  | Tango.Runtime.Aborted -> enroll t name ~load ~enrolled

let () =
  Sim.Engine.run ~seed:59 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      step "Two replicas of the membership service";
      let svc1 = attach cluster "membership-1" in
      let svc2 = attach cluster "membership-2" in

      step "Servers enroll (name, CPU load, enrollment time)";
      List.iter
        (fun (name, load, at) -> enroll svc1 name ~load ~enrolled:at)
        [
          ("web-01", 85, 1000);
          ("web-02", 15, 1005);
          ("db-01", 60, 900);
          ("cache-01", 5, 1200);
          ("batch-01", 97, 800);
        ];

      step "Index search: who is underloaded (load < 50)? — on the other replica";
      List.iter
        (fun key -> say "%-9s (key %s)" (name_of key) key)
        (Tango_set.range svc2.by_load ~lo:"000" ~hi:"050");

      step "Oldest and newest members";
      say "oldest: %s" (name_of (Option.get (Tango_set.min_elt svc2.by_age)));
      say "newest: %s" (name_of (Option.get (Tango_set.max_elt svc2.by_age)));

      step "Load changes are transactional: the index never shows ghosts";
      enroll svc1 "web-01" ~load:10 ~enrolled:1000;
      let underloaded = Tango_set.range svc2.by_load ~lo:"000" ~hi:"050" in
      say "underloaded now: %s" (String.concat ", " (List.map name_of underloaded));
      say "entries for web-01 in the load index: %d"
        (List.length
           (List.filter (fun k -> name_of k = "web-01") (Tango_set.elements svc2.by_load)));

      step "Multi-MB logs per name: a ledger per server (TangoBK)";
      let ledger = Tango_bk.create_ledger svc1.logs in
      List.iter
        (fun line -> ignore (Tango_bk.add_entry svc1.logs ~ledger (Bytes.of_string line)))
        [ "boot"; "probe ok"; "load spike"; "rebalanced" ];
      say "web-01's log (read back from the shared log on replica 2):";
      List.iter
        (fun b -> say "  | %s" (Bytes.to_string b))
        (Tango_bk.read_entries svc2.logs ~ledger ~lo:0 ~hi:10);
      say "(simulated time: %.1f ms)" (Sim.Engine.now () /. 1e3))
