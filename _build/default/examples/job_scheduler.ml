(* A highly available job scheduler (the paper's running example,
   Fig. 5a and 5c): a TangoMap of job assignments, a TangoList of free
   compute nodes, and a TangoCounter for fresh job ids, fully
   replicated on several scheduler servers. A separate backup service
   shares only the free list (Fig. 5c) and takes nodes offline through
   the same shared log.

     dune exec examples/job_scheduler.exe *)

open Tango_objects

let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")
let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let jobs_oid = 1
let free_oid = 2
let ids_oid = 3

type scheduler = {
  rt : Tango.Runtime.t;
  jobs : Tango_map.t;  (* job id -> compute node *)
  free : Tango_list.t;  (* idle compute nodes *)
  ids : Tango_counter.t;
}

let scheduler cluster name =
  let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name) in
  {
    rt;
    jobs = Tango_map.attach rt ~oid:jobs_oid;
    free = Tango_list.attach rt ~oid:free_oid;
    ids = Tango_counter.attach rt ~oid:ids_oid;
  }

(* Atomically: take a node off the free list, mint a job id, record
   the assignment. The transaction spans three different objects. *)
let rec schedule_job s =
  Tango.Runtime.begin_tx s.rt;
  match Tango_list.to_list s.free with
  | [] ->
      Tango.Runtime.abort_tx s.rt;
      None
  | node :: _ -> (
      Tango_list.remove s.free node;
      let id = Tango_counter.get s.ids in
      Tango_counter.add s.ids 1;
      Tango_map.put s.jobs (Printf.sprintf "job-%d" id) node;
      match Tango.Runtime.end_tx s.rt with
      | Tango.Runtime.Committed -> Some (id, node)
      | Tango.Runtime.Aborted -> schedule_job s)

let rec finish_job s job =
  Tango.Runtime.begin_tx s.rt;
  match Tango_map.get s.jobs job with
  | None ->
      Tango.Runtime.abort_tx s.rt;
      false
  | Some node -> (
      Tango_map.remove s.jobs job;
      Tango_list.add s.free node;
      match Tango.Runtime.end_tx s.rt with
      | Tango.Runtime.Committed -> true
      | Tango.Runtime.Aborted -> finish_job s job)

(* The backup service (different servers, different objects) shares
   only the free list: it pulls a node out for backup and returns it
   later — exactly Fig. 5(c). *)
let rec backup_take rt free =
  Tango.Runtime.begin_tx rt;
  match Tango_list.to_list free with
  | [] ->
      Tango.Runtime.abort_tx rt;
      None
  | node :: _ -> (
      Tango_list.remove free node;
      match Tango.Runtime.end_tx rt with
      | Tango.Runtime.Committed -> Some node
      | Tango.Runtime.Aborted -> backup_take rt free)

let () =
  Sim.Engine.run ~seed:13 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in

      step "Two scheduler replicas (full state) + one backup service (free list only)";
      let s1 = scheduler cluster "scheduler-1" in
      let s2 = scheduler cluster "scheduler-2" in
      let backup_rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"backup") in
      let backup_free = Tango_list.attach backup_rt ~oid:free_oid in

      step "Register the compute fleet";
      List.iter (Tango_list.add s1.free) [ "node-a"; "node-b"; "node-c"; "node-d" ];
      say "free list: %s" (String.concat ", " (Tango_list.to_list s2.free));

      step "Schedule jobs from both replicas concurrently";
      let placed = ref [] in
      Sim.Engine.spawn (fun () ->
          for _ = 1 to 2 do
            match schedule_job s1 with
            | Some (id, node) -> placed := (id, node, "via s1") :: !placed
            | None -> ()
          done);
      Sim.Engine.spawn (fun () ->
          match schedule_job s2 with
          | Some (id, node) -> placed := (id, node, "via s2") :: !placed
          | None -> ());
      Sim.Engine.sleep 1_000_000.;
      List.iter (fun (id, node, via) -> say "job-%d -> %s (%s)" id node via)
        (List.sort compare !placed);
      say "job ids are unique and nodes never double-booked:";
      say "assignments: %s"
        (String.concat ", "
           (List.map (fun (j, n) -> j ^ "->" ^ n) (Tango_map.bindings s1.jobs)));
      say "free list: %s" (String.concat ", " (Tango_list.to_list s1.free));

      step "The backup service takes a node offline through the shared free list";
      (match backup_take backup_rt backup_free with
      | Some node ->
          say "backing up %s ..." node;
          Tango_list.add backup_free node;
          say "%s returned to the pool" node
      | None -> say "no free node to back up");

      step "Finish a job; the node returns to the pool";
      (match List.sort compare !placed with
      | (id, _, _) :: _ ->
          let job = Printf.sprintf "job-%d" id in
          ignore (finish_job s2 job);
          say "finished %s; free list now: %s" job
            (String.concat ", " (Tango_list.to_list s1.free))
      | [] -> ());
      say "(simulated time: %.1f ms)" (Sim.Engine.now () /. 1e3))
