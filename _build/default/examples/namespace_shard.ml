(* Sharding a filesystem namespace across TangoZK instances (paper
   §6.3 and Fig. 5d): each application server hosts one namespace
   partition, yet files move between partitions atomically via
   remote-write transactions — a capability ZooKeeper itself lacks.

     dune exec examples/namespace_shard.exe *)

open Tango_objects

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")

let show_tree zk root =
  let rec walk path indent =
    (match Tango_zk.get_data zk path with
    | Some (data, _) when data <> "" -> say "%s%s  (%s)" indent path data
    | Some _ -> say "%s%s" indent path
    | None -> ());
    match Tango_zk.get_children zk path with
    | Ok kids ->
        List.iter
          (fun kid -> walk (if path = "/" then "/" ^ kid else path ^ "/" ^ kid) (indent ^ "  "))
          kids
    | Error _ -> ()
  in
  walk root ""

let must = function Ok v -> v | Error _ -> failwith "zk error"

let () =
  Sim.Engine.run ~seed:23 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in

      step "Two namespace shards on different application servers";
      let rt_a = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"shard-a-host") in
      let rt_b = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"shard-b-host") in
      let ns_a = Tango_zk.attach rt_a ~oid:1 in
      let ns_b = Tango_zk.attach rt_b ~oid:2 in

      step "Populate shard A with a project tree";
      ignore (must (Tango_zk.create ns_a "/projects" ""));
      ignore (must (Tango_zk.create ns_a "/projects/tango" "owner=sys"));
      ignore (must (Tango_zk.create ns_a "/projects/tango/design.md" "v1"));
      ignore (must (Tango_zk.create ns_a "/projects/tango/eval.md" "v2"));
      say "shard A:";
      show_tree ns_a "/projects";

      step "Sequential znodes for a work queue on shard B";
      ignore (must (Tango_zk.create ns_b "/queue" ""));
      List.iter
        (fun payload ->
          let p = must (Tango_zk.create ns_b ~sequential:true "/queue/task-" payload) in
          say "enqueued %s" p)
        [ "build"; "test"; "ship" ];

      step "Watches fire when the log delivers a change";
      Tango_zk.watch_children ns_b "/queue" (fun _ -> say "<watch> /queue children changed");
      ignore (must (Tango_zk.create ns_b ~sequential:true "/queue/task-" "profile"));
      ignore (Tango_zk.exists ns_b "/queue");

      step "Atomic multi-op (ZooKeeper's own transaction, one shard)";
      (match
         Tango_zk.multi ns_a
           [
             Tango_zk.Check ("/projects/tango", 0);
             Tango_zk.Create_op ("/projects/tango/NOTICE", "relocating");
             Tango_zk.Set_op ("/projects/tango", "owner=infra");
           ]
       with
      | Ok () -> say "multi committed"
      | Error _ -> say "multi failed");

      step "Move the whole subtree to shard B — atomic across shards";
      say "shard B does not host shard A's objects, and vice versa;";
      say "the move rides on a remote-write transaction (§4.1).";
      let moved = Tango_zk.move ns_a ~dst_oid:2 "/projects/tango" in
      say "move committed: %b" moved;
      say "shard A after:";
      show_tree ns_a "/projects";
      say "shard B after:";
      show_tree ns_b "/projects";

      step "No intermediate state was ever visible";
      say "(the commit record occupies a single log position; every";
      say " observer sees the subtree wholly in A or wholly in B)";
      say "(simulated time: %.1f ms)" (Sim.Engine.now () /. 1e3))
