(* The §6.3 fidelity demonstration: a miniature HDFS namenode whose
   namespace coordination lives in TangoZK and whose edit log lives in
   TangoBK — surviving a reboot and failing over to a backup, exactly
   the test the paper ran against its implementations.

     dune exec examples/hdfs_namenode.exe *)

module Nn = Tango_hdfs.Namenode

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let say fmt = Printf.printf ("   " ^^ fmt ^^ "\n%!")

let zk_oid = 1
let bk_oid = 2

let must = function Ok v -> v | Error _ -> failwith "namenode error"

let () =
  Sim.Engine.run ~seed:29 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let boot name =
        Nn.start
          (Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name))
          ~name ~zk_oid ~bk_oid
      in

      step "Boot a primary and a standby namenode";
      let primary = boot "namenode-1" in
      let standby = boot "namenode-2" in
      say "%s active: %b; %s active: %b" (Nn.name primary) (Nn.is_active primary)
        (Nn.name standby) (Nn.is_active standby);

      step "Build a namespace; every mutation is an edit in a TangoBK ledger";
      must (Nn.mkdir primary "/user");
      must (Nn.mkdir primary "/user/alice");
      must (Nn.create_file primary "/user/alice/dataset.csv");
      let b0 = must (Nn.add_block primary "/user/alice/dataset.csv") in
      let b1 = must (Nn.add_block primary "/user/alice/dataset.csv") in
      say "created /user/alice/dataset.csv with blocks [%d; %d]" b0 b1;
      say "edits applied so far: %d" (Nn.edits_applied primary);

      step "Reboot recovery: a fresh namenode replays the shared log";
      Nn.crash primary;
      say "primary crashed (leader lock released, RAM state gone)";
      let rebooted = boot "namenode-1-rebooted" in
      say "rebooted instance active: %b (raced the standby for the lock)"
        (Nn.is_active rebooted);
      (* Whoever won, failover must leave a working active with full
         state. Let the standby campaign too. *)
      ignore (Nn.campaign standby);
      let active = if Nn.is_active rebooted then rebooted else standby in
      say "active namenode is now %s" (Nn.name active);
      (match Nn.file_blocks active "/user/alice/dataset.csv" with
      | Some blocks ->
          say "namespace recovered: dataset.csv blocks = [%s]"
            (String.concat "; " (List.map string_of_int blocks))
      | None -> say "LOST THE FILE (bug!)");

      step "The history continues: new blocks never reuse old ids";
      let b2 = must (Nn.add_block active "/user/alice/dataset.csv") in
      say "new block id %d (> %d)" b2 b1;
      must (Nn.mkdir active "/user/bob");

      step "A cold observer replays every term's ledger";
      let observer = boot "namenode-observer" in
      say "observer standby: %b" (not (Nn.is_active observer));
      Nn.refresh observer;
      say "observer ls /user -> [%s]"
        (String.concat "; " (Option.value (Nn.ls observer "/user") ~default:[]));
      say "(simulated time: %.1f ms)" (Sim.Engine.now () /. 1e3))
