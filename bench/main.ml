(* The evaluation harness: regenerates every figure and table of the
   paper's §6 on the simulated testbed, plus the ablations listed in
   DESIGN.md §4 and a set of Bechamel micro-benchmarks.

     dune exec bench/main.exe              # all experiments
     dune exec bench/main.exe fig9 fig10-mid
     dune exec bench/main.exe micro        # bechamel micro-benches

   Set TANGO_BENCH_QUICK=1 for shorter measurement windows. *)

open Tango_objects
module Tpl = Tango_baselines.Two_phase_locking
module Key_dist = Tango_workloads.Key_dist

let quick = Sys.getenv_opt "TANGO_BENCH_QUICK" = Some "1"
let scale v = if quick then v /. 4. else v
let warmup_us = scale 100_000.
let measure_us = scale 300_000.

(* ------------------------------------------------------------------ *)
(* Output helpers                                                     *)
(* ------------------------------------------------------------------ *)

let section title = Printf.printf "\n=== %s ===\n%!" title
let row fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Measurement scaffolding for hand-rolled windows                    *)
(* ------------------------------------------------------------------ *)

module M = struct
  type t = {
    mutable on : bool;
    mutable ops : int;
    mutable good : int;
    lat : Sim.Stats.Series.t;
  }

  let create () = { on = false; ops = 0; good = 0; lat = Sim.Stats.Series.create () }

  let note t ~started ok =
    if t.on then begin
      t.ops <- t.ops + 1;
      if ok then t.good <- t.good + 1;
      Sim.Stats.Series.add t.lat (Sim.Engine.now () -. started)
    end

  (* Spawn a closed-loop worker. *)
  let worker t op =
    Sim.Engine.spawn (fun () ->
        let rec loop () =
          let started = Sim.Engine.now () in
          let ok = op () in
          note t ~started ok;
          loop ()
        in
        loop ())

  (* Spawn an open-loop generator at [rate]/s with an outstanding cap. *)
  let generator ?(max_outstanding = 256) t ~rate op =
    Sim.Engine.spawn (fun () ->
        let rng = Sim.Rng.split (Sim.Engine.rng ()) in
        let outstanding = ref 0 in
        let rec gen () =
          Sim.Engine.sleep (Sim.Rng.exponential rng ~mean:(1e6 /. rate));
          if !outstanding < max_outstanding then begin
            incr outstanding;
            Sim.Engine.spawn (fun () ->
                let started = Sim.Engine.now () in
                let ok = op () in
                decr outstanding;
                note t ~started ok)
          end;
          gen ()
        in
        gen ())

  (* Run the measurement window from the main fiber. *)
  let window ?(warmup = warmup_us) ?(measure = measure_us) t =
    Sim.Engine.sleep warmup;
    t.on <- true;
    Sim.Engine.sleep measure;
    t.on <- false

  let tput ?(measure = measure_us) t = float_of_int t.ops /. (measure /. 1e6)
  let goodput ?(measure = measure_us) t = float_of_int t.good /. (measure /. 1e6)

  let mean_ms t =
    if Sim.Stats.Series.count t.lat = 0 then 0. else Sim.Stats.Series.mean t.lat /. 1e3

  let p99_ms t =
    if Sim.Stats.Series.count t.lat = 0 then 0. else Sim.Stats.Series.percentile t.lat 99. /. 1e3
end

let new_runtime ?batch_size cluster name =
  Tango.Runtime.create ?batch_size (Corfu.Cluster.new_client cluster ~name)

(* ------------------------------------------------------------------ *)
(* Figure 2: sequencer throughput vs number of clients                *)
(* ------------------------------------------------------------------ *)

let sequencer_rate ~clients ~batch =
  Sim.Engine.run ~seed:(100 + clients + batch) (fun () ->
      let cluster = Corfu.Cluster.create ~servers:2 () in
      let seq = Corfu.Cluster.sequencer cluster in
      let m = M.create () in
      for i = 1 to clients do
        let client = Corfu.Cluster.new_client cluster ~name:(Printf.sprintf "c%d" i) in
        let host = Corfu.Client.host client in
        (* a window of 2 outstanding requests per client, as a
           pipelined sequencer client would run *)
        for _ = 1 to 2 do
          M.worker m (fun () ->
              match
                Sim.Net.call ~from:host
                  (Corfu.Sequencer.increment_service seq)
                  { Corfu.Sequencer.iepoch = 0; istreams = []; icount = batch }
              with
              | Corfu.Sequencer.Seq_ok _ -> true
              | Corfu.Sequencer.Seq_sealed _ -> false)
        done
      done;
      M.window m;
      M.tput m *. float_of_int batch)

let fig2 () =
  section "Figure 2: sequencer throughput (Ks of requests/sec vs clients)";
  row "%8s %14s" "clients" "Kreq/s";
  List.iter
    (fun clients -> row "%8d %14.0f" clients (sequencer_rate ~clients ~batch:1 /. 1e3))
    [ 1; 2; 5; 10; 15; 20; 25; 30; 35; 40 ]

(* ------------------------------------------------------------------ *)
(* Figure 8 Left: single view latency/throughput                      *)
(* ------------------------------------------------------------------ *)

let fig8_left_point ~ratio ~window_size =
  Sim.Engine.run ~seed:(int_of_float (ratio *. 100.) + window_size) (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let rt = new_runtime cluster "app" in
      let reg = Tango_register.attach rt ~oid:1 in
      let rng = Sim.Rng.split (Sim.Engine.rng ()) in
      let m = M.create () in
      for _ = 1 to window_size do
        M.worker m (fun () ->
            if Sim.Rng.bool rng ratio then Tango_register.write reg 1
            else ignore (Tango_register.read reg);
            true)
      done;
      M.window m;
      (M.tput m, M.mean_ms m, M.p99_ms m))

let fig8_left () =
  section "Figure 8 (Left): single view — latency vs throughput per write ratio";
  row "%12s %8s %10s %10s %10s" "write-ratio" "window" "Kops/s" "mean-ms" "p99-ms";
  List.iter
    (fun ratio ->
      List.iter
        (fun window_size ->
          let tput, mean, p99 = fig8_left_point ~ratio ~window_size in
          row "%12.1f %8d %10.1f %10.2f %10.2f" ratio window_size (tput /. 1e3) mean p99)
        [ 8; 16; 32; 64; 128; 256 ])
    [ 1.0; 0.9; 0.5; 0.1; 0.0 ]

(* ------------------------------------------------------------------ *)
(* Figure 8 Middle: primary/backup                                    *)
(* ------------------------------------------------------------------ *)

let fig8_mid_point ~write_rate =
  Sim.Engine.run ~seed:(int_of_float write_rate + 7) (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let rt_w = new_runtime cluster "primary" in
      let rt_r = new_runtime cluster "backup" in
      let reg_w = Tango_register.attach rt_w ~oid:1 in
      let reg_r = Tango_register.attach rt_r ~oid:1 in
      let writes = M.create () in
      let reads = M.create () in
      if write_rate > 0. then
        M.generator writes ~rate:write_rate (fun () ->
            Tango_register.write reg_w 1;
            true);
      for _ = 1 to 64 do
        M.worker reads (fun () ->
            ignore (Tango_register.read reg_r);
            true)
      done;
      Sim.Engine.sleep warmup_us;
      reads.M.on <- true;
      writes.M.on <- true;
      Sim.Engine.sleep measure_us;
      reads.M.on <- false;
      writes.M.on <- false;
      (M.tput reads, M.tput writes, M.mean_ms reads))

let fig8_mid () =
  section "Figure 8 (Middle): primary/backup — reads on one view, writes on the other";
  row "%16s %12s %12s %14s" "target-writes/s" "Kreads/s" "Kwrites/s" "read-mean-ms";
  List.iter
    (fun rate ->
      let reads, writes, lat = fig8_mid_point ~write_rate:rate in
      row "%16.0f %12.1f %12.1f %14.2f" rate (reads /. 1e3) (writes /. 1e3) lat)
    [ 0.; 5_000.; 10_000.; 20_000.; 30_000.; 40_000. ]

(* ------------------------------------------------------------------ *)
(* Figure 8 Right: elastic reads                                      *)
(* ------------------------------------------------------------------ *)

let fig8_right_point ~servers ~readers =
  Sim.Engine.run ~seed:(servers + readers) (fun () ->
      let cluster = Corfu.Cluster.create ~servers () in
      let rt_w = new_runtime cluster "writer" in
      let reg_w = Tango_register.attach rt_w ~oid:1 in
      let writes = M.create () in
      M.generator writes ~rate:10_000. (fun () ->
          Tango_register.write reg_w 1;
          true);
      let reads = M.create () in
      for i = 1 to readers do
        let rt = new_runtime cluster (Printf.sprintf "reader-%d" i) in
        let reg = Tango_register.attach rt ~oid:1 in
        M.generator ~max_outstanding:64 reads ~rate:10_000. (fun () ->
            ignore (Tango_register.read reg);
            true)
      done;
      M.window reads;
      M.tput reads)

let fig8_right () =
  section "Figure 8 (Right): read elasticity — N readers at 10K reads/s, 10K writes/s";
  row "%8s %16s %16s" "readers" "18-srv Kreads/s" "2-srv Kreads/s";
  List.iter
    (fun readers ->
      let big = fig8_right_point ~servers:18 ~readers in
      let small = fig8_right_point ~servers:2 ~readers in
      row "%8d %16.1f %16.1f" readers (big /. 1e3) (small /. 1e3))
    [ 2; 4; 6; 8; 10; 12; 14; 16; 18 ]

(* ------------------------------------------------------------------ *)
(* Figure 8 window sweep: write throughput vs append window           *)
(* ------------------------------------------------------------------ *)

let fig8_window_point ~append_window =
  Sim.Engine.run ~seed:(900 + append_window) (fun () ->
      let params = { Sim.Params.default with Sim.Params.append_window } in
      let cluster = Corfu.Cluster.create ~params ~servers:18 () in
      let rt = new_runtime cluster "writer" in
      let reg = Tango_register.attach rt ~oid:1 in
      let m = M.create () in
      for _ = 1 to 64 do
        M.worker m (fun () ->
            Tango_register.write reg 1;
            true)
      done;
      M.window m;
      (M.tput m, Tango.Runtime.append_stats rt))

let fig8_window () =
  section "Figure 8 (window sweep): 64 closed-loop writers vs append window";
  row "%8s %10s %9s %8s %11s %11s %10s %11s" "window" "Kwrites/s" "entries" "grants" "grant-occ"
    "peak-depth" "cache-hit" "cache-miss";
  List.iter
    (fun append_window ->
      let tput, s = fig8_window_point ~append_window in
      let occ =
        if s.Tango.Runtime.as_grants = 0 then 0.
        else float_of_int s.Tango.Runtime.as_granted_entries /. float_of_int s.Tango.Runtime.as_grants
      in
      row "%8d %10.1f %9d %8d %11.2f %11d %10d %11d" append_window (tput /. 1e3)
        s.Tango.Runtime.as_entries s.Tango.Runtime.as_grants occ s.Tango.Runtime.as_inflight_peak
        s.Tango.Runtime.as_cache_hits s.Tango.Runtime.as_cache_misses)
    [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* Figure 5: latency decomposition of appends and reads               *)
(* ------------------------------------------------------------------ *)

module Report = Tango_harness.Report

(* The observability showcase: one view under mixed load, with the
   metrics sampler on. The registry is read post-mortem — the text
   table and the JSON report both come from the same snapshot, so per-
   component histograms (sequencer grant, chain write, playback) and
   resource-utilization series land in [bench --json] output. The
   windowed telemetry plane rides along: the timeseries ticker tracks
   every metric plus the lag watermarks, and two default SLO monitors
   (append p99, playback lag) watch it — a fault-free run must end
   with an empty alert stream. *)
let fig5_monitors () =
  ignore
    (Sim.Slo.monitor ~name:"append-p99" ~series:"hist:app.append.e2e_us" ~col:"p99"
       ~threshold:1_500. ~objective:0.9 ());
  ignore
    (Sim.Slo.monitor ~name:"playback-lag" ~series:"probe:app.lag.playback" ~col:"max"
       ~threshold:2_000. ~objective:0.9 ())

let fig5 () =
  section "Figure 5: latency decomposition — appends and reads on one view";
  let seed = 42 in
  let servers = 6 and writers = 16 and readers = 16 in
  let appends_s, reads_s, end_us =
    Sim.Engine.run ~seed (fun () ->
        let cluster = Corfu.Cluster.create ~servers () in
        let rt = new_runtime cluster "app" in
        let reg = Tango_register.attach rt ~oid:1 in
        Sim.Metrics.start_sampler ();
        Sim.Timeseries.start ();
        fig5_monitors ();
        let w = M.create () in
        let r = M.create () in
        for _ = 1 to writers do
          M.worker w (fun () ->
              Tango_register.write reg 1;
              true)
        done;
        for _ = 1 to readers do
          M.worker r (fun () ->
              ignore (Tango_register.read reg);
              true)
        done;
        Sim.Engine.sleep warmup_us;
        w.M.on <- true;
        r.M.on <- true;
        Sim.Engine.sleep measure_us;
        w.M.on <- false;
        r.M.on <- false;
        (M.tput w, M.tput r, Sim.Engine.now ()))
  in
  let snap = Sim.Metrics.snapshot () in
  row "%10.1f Kappends/s  %10.1f Kreads/s" (appends_s /. 1e3) (reads_s /. 1e3);
  row "%-22s %-10s %8s %10s %10s %10s" "histogram" "host" "count" "p50-us" "p90-us" "p99-us";
  List.iter
    (fun (h : Sim.Metrics.hist_view) ->
      if h.Sim.Metrics.h_count > 0 then
        row "%-22s %-10s %8d %10.1f %10.1f %10.1f" h.Sim.Metrics.h_name
          (Option.value h.Sim.Metrics.h_host ~default:"-")
          h.Sim.Metrics.h_count h.Sim.Metrics.h_p50 h.Sim.Metrics.h_p90 h.Sim.Metrics.h_p99)
    snap.Sim.Metrics.histograms;
  row "%d resource/gauge series sampled" (List.length snap.Sim.Metrics.series);
  row "%d telemetry windows sealed, %d series, %d SLO alert transitions"
    (Sim.Timeseries.windows ())
    (List.length (Sim.Timeseries.series_names ()))
    (List.length (Sim.Slo.alerts ()));
  Report.add_scenario ~name:"fig5" ~seed
    ~params:
      [
        ("servers", string_of_int servers);
        ("writers", string_of_int writers);
        ("readers", string_of_int readers);
        ("measure_us", Printf.sprintf "%.0f" measure_us);
      ]
    ~summary:
      [
        ("appends_per_s", appends_s);
        ("reads_per_s", reads_s);
        ("telemetry_windows", float_of_int (Sim.Timeseries.windows ()));
        ("slo_alerts", float_of_int (List.length (Sim.Slo.alerts ())));
      ]
    ~timeseries_json:(Sim.Timeseries.to_json ()) ~alerts_json:(Sim.Slo.alerts_json ())
    ~virtual_end_us:end_us ~metrics_json:(Sim.Metrics.to_json ()) ()

(* ------------------------------------------------------------------ *)
(* Figure 9: transactions on a fully replicated TangoMap              *)
(* ------------------------------------------------------------------ *)

let map_tx rt map dist rng =
  Tango.Runtime.begin_tx rt;
  List.iter (fun k -> ignore (Tango_map.get map k)) (Key_dist.distinct_keys dist rng 3);
  List.iter (fun k -> Tango_map.put map k "v") (Key_dist.distinct_keys dist rng 3);
  match Tango.Runtime.end_tx rt with
  | Tango.Runtime.Committed -> true
  | Tango.Runtime.Aborted -> false

let fig9_point ~nodes ~keys ~zipfian =
  Sim.Engine.run ~seed:(nodes + keys + if zipfian then 1 else 0) (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let dist = if zipfian then Key_dist.zipf ~n:keys () else Key_dist.uniform ~n:keys in
      let m = M.create () in
      for i = 1 to nodes do
        let rt = new_runtime cluster (Printf.sprintf "node-%d" i) in
        let map = Tango_map.attach rt ~oid:1 in
        let rng = Sim.Rng.split (Sim.Engine.rng ()) in
        for _ = 1 to 32 do
          M.worker m (fun () -> map_tx rt map dist rng)
        done
      done;
      M.window m;
      (M.tput m, M.goodput m))

let fig9 () =
  section "Figure 9: fully replicated TangoMap — 3R+3W transactions";
  row "%8s %10s %10s %12s %12s" "dist" "keys" "nodes" "Ktx/s" "Kgoodput/s";
  List.iter
    (fun zipfian ->
      List.iter
        (fun keys ->
          List.iter
            (fun nodes ->
              let tput, goodput = fig9_point ~nodes ~keys ~zipfian in
              row "%8s %10d %10d %12.1f %12.1f"
                (if zipfian then "zipf" else "uniform")
                keys nodes (tput /. 1e3) (goodput /. 1e3))
            [ 2; 3; 4; 6; 8 ])
        [ 100; 10_000; 1_000_000 ])
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* Figure 10 Left: layered partitions scale                           *)
(* ------------------------------------------------------------------ *)

let fig10_left_point ~servers ~clients =
  Sim.Engine.run ~seed:(servers + clients) (fun () ->
      let cluster = Corfu.Cluster.create ~servers () in
      let dist = Key_dist.uniform ~n:100_000 in
      let m = M.create () in
      for i = 1 to clients do
        let rt = new_runtime cluster (Printf.sprintf "node-%d" i) in
        let map = Tango_map.attach rt ~oid:i in
        let rng = Sim.Rng.split (Sim.Engine.rng ()) in
        for _ = 1 to 24 do
          M.worker m (fun () -> map_tx rt map dist rng)
        done
      done;
      M.window m;
      M.tput m)

let fig10_left () =
  section "Figure 10 (Left): one TangoMap per client — single-partition transactions";
  row "%8s %16s %16s" "clients" "18-srv Ktx/s" "6-srv Ktx/s";
  List.iter
    (fun clients ->
      let big = fig10_left_point ~servers:18 ~clients in
      let small = fig10_left_point ~servers:6 ~clients in
      row "%8d %16.1f %16.1f" clients (big /. 1e3) (small /. 1e3))
    [ 2; 4; 6; 8; 10; 12; 14; 16; 18 ]

(* ------------------------------------------------------------------ *)
(* Figure 10 Middle: cross-partition transactions, Tango vs 2PL       *)
(* ------------------------------------------------------------------ *)

let fig10_mid_tango ~clients ~cross_pct =
  Sim.Engine.run ~seed:(clients + cross_pct) (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let dist = Key_dist.uniform ~n:100_000 in
      let m = M.create () in
      let runtimes = Array.init clients (fun i -> new_runtime cluster (Printf.sprintf "n%d" i)) in
      let maps = Array.mapi (fun i rt -> Tango_map.attach rt ~oid:(i + 1)) runtimes in
      Array.iteri
        (fun i rt ->
          let map = maps.(i) in
          let rng = Sim.Rng.split (Sim.Engine.rng ()) in
          M.generator ~max_outstanding:64 m ~rate:12_000. (fun () ->
              let cross = Sim.Rng.int rng 100 < cross_pct && clients > 1 in
              Tango.Runtime.begin_tx rt;
              List.iter (fun k -> ignore (Tango_map.get map k)) (Key_dist.distinct_keys dist rng 3);
              List.iter
                (fun k -> Tango_map.put map k "v")
                (Key_dist.distinct_keys dist rng (if cross then 2 else 3));
              if cross then begin
                (* move a key to a remote partition: a remote write *)
                let other = (i + 1 + Sim.Rng.int rng (clients - 1)) mod clients in
                let other = if other = i then (i + 1) mod clients else other in
                Tango_map.remote_put rt ~oid:(other + 1) (Key_dist.sample_key dist rng) "v"
              end;
              match Tango.Runtime.end_tx rt with
              | Tango.Runtime.Committed -> true
              | Tango.Runtime.Aborted -> false))
        runtimes;
      M.window m;
      M.goodput m)

let fig10_mid_2pl ~clients ~cross_pct =
  Sim.Engine.run ~seed:(1000 + clients + cross_pct) (fun () ->
      let net =
        Sim.Net.create ~latency:Sim.Params.default.Sim.Params.net_latency_us ~bandwidth:125. ()
      in
      let t = Tpl.create ~net in
      let nodes = Array.init clients (fun i -> Tpl.add_node t ~name:(Printf.sprintf "n%d" i)) in
      let dist = Key_dist.uniform ~n:100_000 in
      let m = M.create () in
      Array.iteri
        (fun i me ->
          let rng = Sim.Rng.split (Sim.Engine.rng ()) in
          M.generator ~max_outstanding:64 m ~rate:12_000. (fun () ->
              let cross = Sim.Rng.int rng 100 < cross_pct && clients > 1 in
              let reads =
                List.map
                  (fun k ->
                    let _, v = Tpl.read ~from:me me k in
                    (me, k, v))
                  (Key_dist.distinct_keys dist rng 3)
              in
              let local_writes =
                List.map
                  (fun k -> (me, k, "v"))
                  (Key_dist.distinct_keys dist rng (if cross then 2 else 3))
              in
              let writes =
                if cross then begin
                  let other = (i + 1 + Sim.Rng.int rng (clients - 1)) mod clients in
                  let other = if other = i then (i + 1) mod clients else other in
                  (nodes.(other), Key_dist.sample_key dist rng, "v") :: local_writes
                end
                else local_writes
              in
              Tpl.execute t ~from:me ~reads ~writes))
        nodes;
      M.window m;
      M.goodput m)

let fig10_mid () =
  section "Figure 10 (Middle): % cross-partition transactions — Tango vs 2PL";
  row "%8s %14s %14s" "cross-%" "Tango Ktx/s" "2PL Ktx/s";
  List.iter
    (fun pct ->
      let tango = fig10_mid_tango ~clients:18 ~cross_pct:pct in
      let tpl = fig10_mid_2pl ~clients:18 ~cross_pct:pct in
      row "%8d %14.1f %14.1f" pct (tango /. 1e3) (tpl /. 1e3))
    [ 0; 1; 2; 4; 8; 16; 32; 64; 100 ]

(* ------------------------------------------------------------------ *)
(* Figure 10 Right: transactions on a shared object                   *)
(* ------------------------------------------------------------------ *)

let fig10_right_point ~common_pct =
  Sim.Engine.run ~seed:(2000 + common_pct) (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let clients = 4 in
      let dist = Key_dist.uniform ~n:100_000 in
      let common_oid = 100 in
      let m = M.create () in
      for i = 1 to clients do
        let rt = new_runtime cluster (Printf.sprintf "n%d" i) in
        let priv = Tango_map.attach rt ~oid:i in
        (* the shared object is marked: its commit records need
           decision records for clients lacking the private read sets *)
        let common = Tango_map.attach rt ~oid:common_oid ~needs_decision:true in
        let rng = Sim.Rng.split (Sim.Engine.rng ()) in
        for _ = 1 to 12 do
          M.worker m (fun () ->
              let shared = Sim.Rng.int rng 100 < common_pct in
              Tango.Runtime.begin_tx rt;
              List.iter (fun k -> ignore (Tango_map.get priv k)) (Key_dist.distinct_keys dist rng 2);
              List.iter (fun k -> Tango_map.put priv k "v") (Key_dist.distinct_keys dist rng 2);
              if shared then begin
                ignore (Tango_map.get common (Key_dist.sample_key dist rng));
                Tango_map.put common (Key_dist.sample_key dist rng) "v"
              end;
              match Tango.Runtime.end_tx rt with
              | Tango.Runtime.Committed -> true
              | Tango.Runtime.Aborted -> false)
        done
      done;
      M.window m;
      (M.tput m, M.goodput m))

let fig10_right () =
  section "Figure 10 (Right): 4 clients, private + shared TangoMap";
  row "%9s %12s %14s" "common-%" "Ktx/s" "Kgoodput/s";
  List.iter
    (fun pct ->
      let tput, goodput = fig10_right_point ~common_pct:pct in
      row "%9d %12.1f %14.1f" pct (tput /. 1e3) (goodput /. 1e3))
    [ 0; 1; 2; 4; 8; 16; 32; 64; 100 ]

(* ------------------------------------------------------------------ *)
(* §6.3 tables: TangoZK and TangoBK                                   *)
(* ------------------------------------------------------------------ *)

let tbl_zk_independent ~clients =
  Sim.Engine.run ~seed:31 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let m = M.create () in
      for i = 1 to clients do
        let rt = new_runtime cluster (Printf.sprintf "zk-%d" i) in
        let zk = Tango_zk.attach rt ~oid:i in
        (match Tango_zk.create zk "/data" "" with Ok _ | Error _ -> ());
        for f = 0 to 9 do
          match Tango_zk.create zk (Printf.sprintf "/data/f%d" f) "x" with
          | Ok _ | Error _ -> ()
        done;
        for w = 0 to 11 do
          (* each worker owns one file: independent-namespace traffic
             should be conflict-free, as in the paper *)
          let f = Printf.sprintf "/data/f%d" (w mod 10) in
          ignore f;
          let f = Printf.sprintf "/data/w%d" w in
          (match Tango_zk.create zk f "x" with Ok _ | Error _ -> ());
          M.worker m (fun () ->
              match Tango_zk.set_data zk f "y" with Ok () -> true | Error _ -> false)
        done
      done;
      M.window m;
      M.goodput m)

let tbl_zk_moves ~clients =
  Sim.Engine.run ~seed:32 (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let m = M.create () in
      let zks =
        Array.init clients (fun i ->
            let rt = new_runtime cluster (Printf.sprintf "zk-%d" i) in
            Tango_zk.attach rt ~oid:(i + 1))
      in
      Array.iteri
        (fun i zk ->
          let rng = Sim.Rng.split (Sim.Engine.rng ()) in
          let dst_oid = ((i + 1) mod clients) + 1 in
          let counter = ref 0 in
          for _ = 1 to 4 do
            M.worker m (fun () ->
                (* create a fresh file locally, then move it atomically
                   to the neighbouring namespace *)
                incr counter;
                let path = Printf.sprintf "/m%d-%d-%d" i !counter (Sim.Rng.int rng 1_000_000) in
                match Tango_zk.create zk path "payload" with
                | Error _ -> false
                | Ok p -> Tango_zk.move zk ~dst_oid p)
          done)
        zks;
      M.window m;
      M.goodput m)

let tbl_zk () =
  section "Section 6.3: TangoZK (ops within namespaces; moves across namespaces)";
  let independent = tbl_zk_independent ~clients:18 in
  row "%-44s %10.1f Ktx/s" "18 clients, independent namespaces:" (independent /. 1e3);
  let moves = tbl_zk_moves ~clients:18 in
  row "%-44s %10.1f Ktx/s" "18 clients, cross-namespace atomic moves:" (moves /. 1e3)

let tbl_bk () =
  section "Section 6.3: TangoBK ledger append throughput (4KB entries)";
  let rate =
    Sim.Engine.run ~seed:33 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:18 () in
        let m = M.create () in
        let payload = Bytes.make 3000 'x' in
        for i = 1 to 18 do
          let rt = new_runtime ~batch_size:1 cluster (Printf.sprintf "bk-%d" i) in
          let bk = Tango_bk.attach rt ~oid:i in
          let ledger = Tango_bk.create_ledger bk in
          for _ = 1 to 12 do
            M.worker m (fun () ->
                match Tango_bk.add_entry bk ~ledger payload with Ok _ -> true | Error _ -> false)
          done
        done;
        M.window m;
        M.goodput m)
  in
  row "18 clients, one ledger each: %.1f Kwrites/s" (rate /. 1e3)

(* ------------------------------------------------------------------ *)
(* Ablations                                                          *)
(* ------------------------------------------------------------------ *)

let ablation_k () =
  section "Ablation: backpointer redundancy K vs stream rebuild cost";
  row "%4s %10s %14s %16s" "K" "entries" "sync reads" "reads/entry";
  List.iter
    (fun k ->
      let n = 512 in
      let reads =
        Sim.Engine.run ~seed:(40 + k) (fun () ->
            let params = { Sim.Params.default with Sim.Params.backpointer_k = k } in
            let cluster = Corfu.Cluster.create ~params ~servers:4 () in
            let w = Corfu.Cluster.new_client cluster ~name:"writer" in
            for i = 0 to n - 1 do
              ignore (Corfu.Client.append w ~streams:[ 1 ] (Bytes.of_string (string_of_int i)))
            done;
            let r = Corfu.Cluster.new_client cluster ~name:"reader" in
            let s = Corfu.Stream.attach r 1 in
            ignore (Corfu.Stream.sync s);
            Corfu.Stream.sync_reads s)
      in
      row "%4d %10d %14d %16.3f" k n reads (float_of_int reads /. float_of_int n))
    [ 4; 8; 16 ]

let ablation_decision () =
  section "Ablation: decision records — remote-write vs local-write transaction latency";
  let latency remote =
    Sim.Engine.run ~seed:51 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:18 () in
        let rt = new_runtime cluster "producer" in
        let src = Tango_map.attach rt ~oid:1 in
        let _local_dst = Tango_map.attach rt ~oid:2 in
        let rt2 = new_runtime cluster "consumer" in
        let _remote_dst = Tango_map.attach rt2 ~oid:3 in
        Tango_map.put src "k" "v";
        let m = M.create () in
        for _ = 1 to 4 do
          M.worker m (fun () ->
              Tango.Runtime.begin_tx rt;
              ignore (Tango_map.get src "k");
              let dst_oid = if remote then 3 else 2 in
              Tango_map.remote_put rt ~oid:dst_oid "k" "v";
              match Tango.Runtime.end_tx rt with
              | Tango.Runtime.Committed -> true
              | Tango.Runtime.Aborted -> false)
        done;
        M.window m;
        M.mean_ms m)
  in
  row "local-write transaction:  %.2f ms" (latency false);
  row "remote-write transaction: %.2f ms (adds the decision-record phase)" (latency true);
  (* collaborative remote-read transactions (§4.1 D, future work) *)
  let collab_latency =
    Sim.Engine.run ~seed:52 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:18 () in
        let rt_a = new_runtime cluster "reader-host" in
        let rt_b = new_runtime cluster "value-host" in
        let src = Tango_map.attach rt_a ~oid:1 in
        let m2 = Tango_map.attach rt_b ~oid:2 in
        Tango_map.serve_reads m2;
        Tango.Runtime.connect_peer rt_a ~oid:2 (Tango.Runtime.remote_read_service rt_b);
        Tango_map.put m2 "k" "v";
        Tango_map.put src "local" "x";
        (* keep the value host playing, as a live replica would *)
        Sim.Engine.spawn (fun () ->
            let rec live () =
              ignore (Tango_map.get m2 "k");
              Sim.Engine.sleep 200.;
              live ()
            in
            live ());
        let m = M.create () in
        for _ = 1 to 4 do
          M.worker m (fun () ->
              Tango.Runtime.begin_tx rt_a;
              ignore (Tango_map.get src "local");
              ignore (Tango_map.get_remote rt_a ~oid:2 "k");
              Tango_map.put src "out" "y";
              match Tango.Runtime.end_tx rt_a with
              | Tango.Runtime.Committed -> true
              | Tango.Runtime.Aborted -> false)
        done;
        M.window m;
        M.mean_ms m)
  in
  row "collaborative remote-read transaction: %.2f ms (partial + final decision records)"
    collab_latency

let ablation_versioning () =
  section "Ablation: fine-grained (per-key) vs coarse (per-object) versioning — abort rate";
  let abort_rate fine =
    Sim.Engine.run ~seed:61 (fun () ->
        let cluster = Corfu.Cluster.create ~servers:18 () in
        let dist = Key_dist.uniform ~n:10_000 in
        let m = M.create () in
        for i = 1 to 4 do
          let rt = new_runtime cluster (Printf.sprintf "n%d" i) in
          let map = Tango_map.attach rt ~oid:1 in
          let rng = Sim.Rng.split (Sim.Engine.rng ()) in
          for _ = 1 to 8 do
            M.worker m (fun () ->
                Tango.Runtime.begin_tx rt;
                if fine then begin
                  List.iter
                    (fun k -> ignore (Tango_map.get map k))
                    (Key_dist.distinct_keys dist rng 3);
                  List.iter (fun k -> Tango_map.put map k "v") (Key_dist.distinct_keys dist rng 3)
                end
                else begin
                  (* coarse: read/write the whole object's version *)
                  Tango.Runtime.query_helper rt ~oid:1 ();
                  List.iter
                    (fun k -> Tango_map.coarse_put map k "v")
                    (Key_dist.distinct_keys dist rng 3)
                end;
                match Tango.Runtime.end_tx rt with
                | Tango.Runtime.Committed -> true
                | Tango.Runtime.Aborted -> false)
          done
        done;
        M.window m;
        let total = float_of_int m.M.ops in
        if total = 0. then 0. else 100. *. float_of_int (m.M.ops - m.M.good) /. total)
  in
  row "per-key versioning abort rate:    %5.1f %%" (abort_rate true);
  row "per-object versioning abort rate: %5.1f %%" (abort_rate false)

let ablation_seqbatch () =
  section "Ablation: sequencer batching (Fig. 2 with batch 1 vs 4)";
  row "%8s %14s %14s" "clients" "batch-1 Kreq/s" "batch-4 Kreq/s";
  List.iter
    (fun clients ->
      let b1 = sequencer_rate ~clients ~batch:1 in
      let b4 = sequencer_rate ~clients ~batch:4 in
      row "%8d %14.0f %14.0f" clients (b1 /. 1e3) (b4 /. 1e3))
    [ 10; 20; 40 ]

let ablation_seqckpt () =
  section "Ablation: sequencer checkpoints — failover rebuild scan length";
  row "%10s %14s %18s" "log size" "full scan" "with checkpoints";
  List.iter
    (fun n ->
      let scan scribe =
        Sim.Engine.run ~seed:(70 + n + if scribe then 1 else 0) (fun () ->
            let cluster = Corfu.Cluster.create ~servers:4 () in
            if scribe then Corfu.Cluster.start_checkpoint_scribe cluster ~interval_us:30_000.;
            let c = Corfu.Cluster.new_client cluster ~name:"writer" in
            for i = 0 to n - 1 do
              ignore (Corfu.Client.append c ~streams:[ 1 + (i mod 4) ] (Bytes.of_string "x"));
              Sim.Engine.sleep 400.
            done;
            ignore (Corfu.Cluster.replace_sequencer cluster);
            Corfu.Cluster.last_rebuild_scan cluster)
      in
      row "%10d %14d %18d" n (scan false) (scan true))
    [ 200; 500; 1000 ]

(* ------------------------------------------------------------------ *)
(* Chaos: storage-node crash under append load                        *)
(* ------------------------------------------------------------------ *)

module Chaos = Tango_harness.Chaos

let chaos_crash_point ~workers =
  Sim.Engine.run ~seed:(3000 + workers) (fun () ->
      let cluster = Corfu.Cluster.create ~servers:6 () in
      let victim = (Corfu.Cluster.storage_nodes cluster).(0) in
      let crash_at = warmup_us +. (measure_us /. 4.) in
      let fault =
        Chaos.install ~seed:7
          ~plan:[ (crash_at, Sim.Fault.Crash (Corfu.Storage_node.name victim)) ]
          cluster
      in
      Corfu.Cluster.start_failure_monitor cluster;
      let rec_ = Chaos.recorder () in
      let m = M.create () in
      let clients =
        Array.init workers (fun i -> Corfu.Cluster.new_client cluster ~name:(Printf.sprintf "w%d" i))
      in
      Array.iter
        (fun c ->
          M.worker m (fun () ->
              ignore (Corfu.Client.append c ~streams:[ 1 ] (Bytes.of_string "x"));
              Chaos.note rec_;
              true))
        clients;
      M.window m;
      (* let the recovery finish before collecting incidents; the
         measurement window is already closed, so this only affects the
         audit, not the numbers *)
      Sim.Engine.sleep 300_000.;
      let failures = Array.fold_left (fun a c -> a + Corfu.Client.rpc_failures c) 0 clients in
      (M.tput m, failures, Chaos.max_gap_us rec_, Chaos.incidents fault cluster))

let chaos_crash () =
  section "Chaos: crash a chain head mid-window, monitor-driven recovery (6 servers)";
  row "%8s %10s %10s %11s %12s %11s %13s" "workers" "Kapp/s" "failed-rpc" "stall-ms" "window-ms"
    "rebuilt" "rebuilt-bytes";
  List.iter
    (fun workers ->
      let tput, failures, stall, incs = chaos_crash_point ~workers in
      match incs with
      | [ i ] ->
          row "%8d %10.1f %10d %11.1f %12.1f %11d %13d" workers (tput /. 1e3) failures
            (stall /. 1e3)
            (i.Chaos.inc_unavailable_us /. 1e3)
            i.Chaos.inc_rebuild_entries i.Chaos.inc_rebuild_bytes
      | incs ->
          row "%8d %10.1f %10d %11.1f %12s %11s %13s" workers (tput /. 1e3) failures
            (stall /. 1e3)
            (Printf.sprintf "(%d recoveries)" (List.length incs))
            "-" "-")
    [ 4; 8; 16; 32 ]

(* The CI smoke scenario: a fixed fault plan (crash + a lossy, slow
   client uplink) under a paced append load, checked for recovery,
   durability of every acknowledged append, and byte-identical traces
   across two runs. Exits nonzero on any violation. *)
let chaos_scenario () =
  Sim.Trace.capture (fun () ->
      Sim.Engine.run ~seed:42 (fun () ->
          let cluster = Corfu.Cluster.create ~servers:4 () in
          let victim = (Corfu.Cluster.storage_nodes cluster).(0) in
          let fault =
            Chaos.install ~seed:9
              ~plan:
                [
                  (30_000., Sim.Fault.Crash (Corfu.Storage_node.name victim));
                  ( 55_000.,
                    Sim.Fault.Degrade
                      {
                        d_src = "smoke";
                        d_dst = "*";
                        d_drop = 0.05;
                        d_delay_us = 150.;
                        d_jitter_us = 100.;
                      } );
                  (80_000., Sim.Fault.Clear_edge ("smoke", "*"));
                ]
              cluster
          in
          Corfu.Cluster.start_failure_monitor cluster;
          let c = Corfu.Cluster.new_client cluster ~name:"smoke" in
          (* Any completion gap past 20ms (the crash recovery window)
             freezes the flight rings — the incident artifact CI
             uploads when the smoke fails. *)
          let stalls = Chaos.recorder ~stall_threshold_us:20_000. () in
          let offs = ref [] in
          for i = 0 to 199 do
            offs :=
              Corfu.Client.append c ~streams:[ 1 ] (Bytes.of_string (string_of_int i)) :: !offs;
            Chaos.note stalls;
            Sim.Engine.sleep 500.
          done;
          Sim.Engine.sleep 200_000.;
          let readable =
            List.for_all
              (fun off ->
                match Corfu.Client.read_resolved c off with
                | Corfu.Client.Data _ -> true
                | _ -> false)
              !offs
          in
          let incs = Chaos.incidents fault cluster in
          (readable, List.length incs, Corfu.Client.rpc_failures c, Sim.Engine.now ())))

let chaos_smoke () =
  section "Chaos smoke: crash + degraded uplink, determinism and durability check";
  let flight_was = Sim.Flight.enabled () in
  Sim.Flight.set_enabled true;
  let (readable1, recoveries1, failures1, end1), trace1 = chaos_scenario () in
  let flight1 = Sim.Flight.dump_json () in
  let r2, trace2 = chaos_scenario () in
  let flight2 = Sim.Flight.dump_json () in
  Sim.Flight.set_enabled flight_was;
  row "200 appends: all readable=%b recoveries=%d failed-rpc=%d end=%.0fus" readable1 recoveries1
    failures1 end1;
  let same_result = (readable1, recoveries1, failures1, end1) = r2 in
  let same_trace = String.equal trace1 trace2 in
  let same_flight = String.equal flight1 flight2 in
  row "replay: same result=%b, byte-identical trace=%b (%d trace bytes)" same_result same_trace
    (String.length trace1);
  row "flight: %d snapshot(s), byte-identical across runs=%b" (Sim.Flight.snapshot_count ())
    same_flight;
  if not (readable1 && recoveries1 >= 1 && same_result && same_trace && same_flight) then begin
    (* Ship the black box with the failure: CI uploads this file. *)
    let oc = open_out "chaos-flight.json" in
    output_string oc flight2;
    output_char oc '\n';
    close_out oc;
    prerr_endline "chaos-smoke FAILED (flight snapshots in chaos-flight.json)";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fuzz sweep: randomized fault plans against the invariant oracles   *)
(* ------------------------------------------------------------------ *)

(* A small always-on fuzz campaign (DESIGN.md §9): each seed draws a
   fresh make-whole fault plan and a randomized workload, then judges
   the settled system against every global oracle. A clean build
   produces zero violations on every seed; any violation fails the
   bench run, and the campaign's per-seed numbers land in the JSON
   report for trending. *)
let fuzz_sweep () =
  let module Fuzz = Tango_harness.Fuzz in
  let module Spec = Tango_harness.Spec in
  section "Fuzz sweep: randomized fault plans vs. global invariant oracles + spec machines";
  let seeds = if quick then 3 else 8 in
  let config = Fuzz.default_config in
  (* Half the seeds run with every online spec machine armed — the
     monitors themselves must stay silent on a correct build, and
     their probe traffic must not perturb the oracles. *)
  row "%6s %6s %8s %8s %10s %10s %10s %9s %11s" "seed" "specs" "events" "acked" "committed"
    "aborted" "end-ms" "firings" "violations";
  let bad = ref 0 in
  for seed = 1 to seeds do
    let specs = if seed mod 2 = 0 then Spec.all else [] in
    let plan = Fuzz.gen_plan ~seed config in
    let oc = Fuzz.run ~specs ~seed config ~plan in
    let nv = List.length oc.Fuzz.oc_violations in
    let nf = List.length oc.Fuzz.oc_spec_firings in
    bad := !bad + nv;
    row "%6d %6s %8d %8d %10d %10d %10.1f %9d %11d" seed
      (if specs = [] then "off" else "all")
      oc.Fuzz.oc_fault_events oc.Fuzz.oc_acked oc.Fuzz.oc_committed oc.Fuzz.oc_aborted
      (oc.Fuzz.oc_end_us /. 1e3) nf nv;
    List.iter
      (fun v -> row "    %s" (Format.asprintf "%a" Tango_harness.Verifier.pp_violation v))
      oc.Fuzz.oc_violations;
    Report.add_scenario ~name:(Printf.sprintf "fuzz-%d" seed) ~seed
      ~params:
        [
          ("servers", string_of_int config.Fuzz.f_servers);
          ("clients", string_of_int config.Fuzz.f_clients);
          ("events", string_of_int config.Fuzz.f_events);
          ("specs", if specs = [] then "off" else "all");
        ]
      ~summary:
        [
          ("violations", float_of_int nv);
          ("spec_firings", float_of_int nf);
          ("acked_appends", float_of_int oc.Fuzz.oc_acked);
          ("committed_txs", float_of_int oc.Fuzz.oc_committed);
          ("fault_events", float_of_int oc.Fuzz.oc_fault_events);
        ]
      ~virtual_end_us:oc.Fuzz.oc_end_us ~metrics_json:oc.Fuzz.oc_metrics_json ()
  done;
  if !bad > 0 then begin
    Printf.eprintf "fuzz-sweep FAILED: %d violation(s)\n" !bad;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Scenario sweep: the config-driven driver's built-in matrix         *)
(* ------------------------------------------------------------------ *)

(* Every built-in scenario (DESIGN.md §12) runs with its spec machines
   armed; a correct build sails through all of them. *)
let scenario_sweep () =
  let module Fuzz = Tango_harness.Fuzz in
  let module Scenario = Tango_harness.Scenario in
  section "Scenario sweep: built-in scenarios with spec machines armed";
  row "%-38s %6s %8s %10s %9s %11s" "scenario" "seed" "acked" "committed" "firings" "violations";
  let bad = ref 0 in
  List.iter
    (fun sc ->
      let oc = Scenario.run sc in
      let nv = List.length oc.Fuzz.oc_violations in
      bad := !bad + nv;
      row "%-38s %6d %8d %10d %9d %11d" sc.Scenario.sc_name sc.Scenario.sc_seed oc.Fuzz.oc_acked
        oc.Fuzz.oc_committed
        (List.length oc.Fuzz.oc_spec_firings)
        nv;
      Report.add_scenario
        ~name:("scenario-" ^ sc.Scenario.sc_name)
        ~seed:sc.Scenario.sc_seed
        ~params:[ ("specs", string_of_int (List.length sc.Scenario.sc_specs)) ]
        ~summary:
          [
            ("violations", float_of_int nv);
            ("spec_firings", float_of_int (List.length oc.Fuzz.oc_spec_firings));
            ("acked_appends", float_of_int oc.Fuzz.oc_acked);
          ]
        ~virtual_end_us:oc.Fuzz.oc_end_us ~metrics_json:oc.Fuzz.oc_metrics_json ())
    Scenario.builtins;
  if !bad > 0 then begin
    Printf.eprintf "scenario-sweep FAILED: %d violation(s)\n" !bad;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Scale-out: live segment reconfiguration under constant load        *)
(* ------------------------------------------------------------------ *)

(* 16 hosts offer ~80K appends/s against a 6-server log that sustains
   ~37.5K/s (3 chains × 12.5K writes/s per chain); mid-run the cluster
   scales to 18 servers (9 chains, ~112.5K/s) with Cluster.scale_out —
   no data copied, the tail segment just reopens over the wider
   stripe. Throughput steps up live; pre-reconfiguration offsets stay
   readable through their original segment. *)
let scale_out_bench () =
  section "Scale-out: online segment reconfiguration under constant offered load";
  let seed = 77 in
  let servers = 6 and add_servers = 12 and hosts = 16 in
  let rate = 5_000. in
  let phase_us = scale 300_000. in
  let settle_us = scale 100_000. in
  let bucket_us = scale 50_000. in
  let ( before_s,
        after_s,
        ratio,
        boundary,
        epoch,
        install_us,
        old_ok,
        old_total,
        copied,
        series,
        end_us ) =
    Sim.Engine.run ~seed (fun () ->
        let cluster = Corfu.Cluster.create ~servers () in
        (* Watermark telemetry only (probes — log tail, grant backlog):
           the raw-append load carries no Tango records, so there is no
           runtime to play back and the playback-lag series lives in
           fig5 instead. *)
        Sim.Timeseries.start ~track_metrics:false ();
        let total = ref 0 in
        let buckets : (int, int) Hashtbl.t = Hashtbl.create 64 in
        let note_append () =
          incr total;
          let b = int_of_float (Sim.Engine.now () /. bucket_us) in
          Hashtbl.replace buckets b (1 + Option.value (Hashtbl.find_opt buckets b) ~default:0)
        in
        for i = 1 to hosts do
          let c = Corfu.Cluster.new_client cluster ~name:(Printf.sprintf "load-%d" i) in
          Sim.Engine.spawn (fun () ->
              let rng = Sim.Rng.split (Sim.Engine.rng ()) in
              let outstanding = ref 0 in
              let rec gen () =
                Sim.Engine.sleep (Sim.Rng.exponential rng ~mean:(1e6 /. rate));
                if !outstanding < 64 then begin
                  incr outstanding;
                  Sim.Engine.spawn (fun () ->
                      ignore
                        (Corfu.Client.append c
                           ~streams:[ 1 + (i mod 4) ]
                           (Bytes.make 64 'x'));
                      decr outstanding;
                      note_append ())
                end;
                gen ()
              in
              gen ())
        done;
        Sim.Engine.sleep warmup_us;
        let c0 = !total in
        Sim.Engine.sleep phase_us;
        let before_count = !total - c0 in
        let t_scale = Sim.Engine.now () in
        let epoch = Corfu.Cluster.scale_out cluster ~add_servers in
        let install_us = Sim.Engine.now () -. t_scale in
        Sim.Engine.sleep settle_us;
        let c1 = !total in
        Sim.Engine.sleep phase_us;
        let after_count = !total - c1 in
        let boundary =
          match Corfu.Cluster.scale_events cluster with
          | [ e ] -> e.Corfu.Cluster.sc_boundary
          | _ -> -1
        in
        (* the acceptance check: offsets granted before the
           reconfiguration resolve through the old (bounded) segment,
           from a client that never saw the old epoch *)
        let r = Corfu.Cluster.new_client cluster ~name:"post-reader" in
        let samples =
          List.filter (fun o -> o >= 0 && o < boundary)
            [ 0; 1; boundary / 4; boundary / 2; (3 * boundary / 4); boundary - 2; boundary - 1 ]
        in
        let old_ok =
          List.length
            (List.filter
               (fun off ->
                 match Corfu.Client.read_resolved r off with
                 | Corfu.Client.Data _ | Corfu.Client.Junk -> true
                 | _ -> false)
               samples)
        in
        let copied =
          List.fold_left
            (fun a rc -> a + rc.Corfu.Cluster.rec_copied_entries)
            0
            (Corfu.Cluster.recoveries cluster)
        in
        let series =
          List.sort compare (Hashtbl.fold (fun b n acc -> (b, n) :: acc) buckets [])
        in
        let before_s = float_of_int before_count /. (phase_us /. 1e6) in
        let after_s = float_of_int after_count /. (phase_us /. 1e6) in
        ( before_s,
          after_s,
          (if before_s > 0. then after_s /. before_s else 0.),
          boundary,
          epoch,
          install_us,
          old_ok,
          List.length samples,
          copied,
          series,
          Sim.Engine.now () ))
  in
  row "offered %.0fK appends/s from %d hosts; %d -> %d servers at epoch %d"
    (rate *. float_of_int hosts /. 1e3) hosts servers (servers + add_servers) epoch;
  row "sealed tail segment at offset %d; reconfiguration installed in %.0f us" boundary install_us;
  row "throughput: %.1fK/s before -> %.1fK/s after (x%.2f), %d entries copied" (before_s /. 1e3)
    (after_s /. 1e3) ratio copied;
  row "pre-reconfiguration offsets readable after: %d/%d" old_ok old_total;
  row "%10s %12s" "bucket-ms" "Kappends/s";
  List.iter
    (fun (b, n) ->
      row "%10.0f %12.1f"
        (float_of_int b *. bucket_us /. 1e3)
        (float_of_int n /. (bucket_us /. 1e6) /. 1e3))
    series;
  (* Watermark table (EXPERIMENTS.md §scale-out): log tail vs. the
     sequencer grant backlog per telemetry window, subsampled so the
     full sweep fits a dozen rows. *)
  (match
     ( Sim.Timeseries.find ~series:"probe:log.tail" ~col:"last",
       Sim.Timeseries.find ~series:"probe:sequencer-0.seq.grant_backlog" ~col:"max" )
   with
  | Some tail_sel, Some backlog_sel ->
      let n = Sim.Timeseries.windows () in
      let step = max 1 (n / 12) in
      row "%10s %12s %14s" "window-ms" "log-tail" "grant-backlog";
      let j = ref 0 in
      while !j < n do
        let tail = Sim.Timeseries.window_value tail_sel !j in
        let backlog = Sim.Timeseries.window_value backlog_sel !j in
        if Float.is_nan tail |> not then
          row "%10.0f %12.0f %14.0f"
            (Sim.Timeseries.window_start !j /. 1e3)
            tail
            (if Float.is_nan backlog then 0. else backlog);
        j := !j + step
      done
  | _ -> row "watermark series missing");
  Report.add_scenario ~name:"scale-out" ~seed
    ~params:
      [
        ("servers_before", string_of_int servers);
        ("servers_after", string_of_int (servers + add_servers));
        ("hosts", string_of_int hosts);
        ("offered_per_s", Printf.sprintf "%.0f" (rate *. float_of_int hosts));
        ("phase_us", Printf.sprintf "%.0f" phase_us);
      ]
    ~summary:
      [
        ("appends_per_s_before", before_s);
        ("appends_per_s_after", after_s);
        ("speedup", ratio);
        ("sealed_at", float_of_int boundary);
        ("epoch", float_of_int epoch);
        ("install_us", install_us);
        ("copied_entries", float_of_int copied);
        ("old_reads_ok", float_of_int old_ok);
        ("old_reads_total", float_of_int old_total);
        ("telemetry_windows", float_of_int (Sim.Timeseries.windows ()));
      ]
    ~timeseries_json:(Sim.Timeseries.to_json ())
    ~virtual_end_us:end_us ~metrics_json:(Sim.Metrics.to_json ()) ()

(* ------------------------------------------------------------------ *)
(* Hot-path kernels: ns/op and minor-words/op per kernel              *)
(* ------------------------------------------------------------------ *)

(* Hand-rolled rather than bechamel because the regression gate needs
   {e allocation counts}, and [Gc.minor_words] deltas over a fixed op
   count are exactly reproducible — bechamel's adaptive sampling is
   not. Each kernel is the data path of one hot layer with the I/O
   boundary cut off; ops are sized so a run takes milliseconds. *)

let hot_measure ~ops f =
  for _ = 1 to max 1 (ops / 10) do
    f ()
  done;
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to ops do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () in
  ((t1 -. t0) *. 1e9 /. float_of_int ops, (w1 -. w0) /. float_of_int ops)

let hot_report ~name ns words =
  row "%-24s %12.1f ns/op %12.3f minor-words/op" name ns words;
  Report.add_scenario ~name:("micro/" ^ name) ~seed:0
    ~summary:[ ("ns_per_op", ns); ("minor_words_per_op", words) ]
    ~virtual_end_us:0. ~metrics_json:"{}" ()

(* Shared sample data: the paper's 4-commit entry shape. *)
let hot_sample_records =
  List.init 4 (fun i ->
      Tango.Record.Commit
        {
          Tango.Record.c_reads =
            [ (1, Some "k00000001", 40 + i); (2, Some "k00000002", 41 + i); (3, None, 42 + i) ];
          c_writes =
            [
              { Tango.Record.u_oid = 1; u_key = Some "k00000003"; u_data = Bytes.make 32 'x' };
              { Tango.Record.u_oid = 2; u_key = Some "k00000004"; u_data = Bytes.make 32 'y' };
              { Tango.Record.u_oid = 3; u_key = None; u_data = Bytes.make 32 'z' };
            ];
          c_needs_decision = false;
        })

let micro_hotpath () =
  section "Hot-path kernels (ns/op, minor-words/op)";
  let module Wire = Corfu.Wire in
  (* corfu.wire encode: a mixed fixed-width frame through a reused
     arena writer; the [contents] copy is the ownership boundary and
     the kernel's only allocation. *)
  let w = Wire.writer ~size:256 () in
  let encode_frame b =
    for i = 1 to 4 do
      Wire.put_u8 b (i land 0xFF)
    done;
    for i = 1 to 8 do
      Wire.put_u32 b (i * 1000)
    done;
    for i = 1 to 16 do
      Wire.put_u64 b (i * 1_000_000)
    done;
    Wire.put_string b "k1234567"
  in
  let ns, words =
    hot_measure ~ops:200_000 (fun () ->
        Wire.reset w;
        encode_frame w;
        ignore (Wire.contents w))
  in
  hot_report ~name:"wire-encode" ns words;
  (* corfu.wire decode: the fixed-width fields back through a reused
     cursor — value-materialising reads (strings, bytes) are ownership
     boundaries measured by record-decode instead. *)
  let frame = Wire.to_bytes encode_frame in
  let cur = Wire.reader frame in
  let ns, words =
    hot_measure ~ops:200_000 (fun () ->
        Wire.reset_reader cur frame;
        let acc = ref 0 in
        for _ = 1 to 4 do
          acc := !acc + Wire.get_u8 cur
        done;
        for _ = 1 to 8 do
          acc := !acc + Wire.get_u32 cur
        done;
        for _ = 1 to 16 do
          acc := !acc + Wire.get_u64 cur
        done;
        ignore !acc)
  in
  hot_report ~name:"wire-decode" ns words;
  (* record encode/decode: whole-entry payloads; decode owns its
     output records, so its floor is the decoded structure itself. *)
  let sample_payload = Tango.Record.encode_payload hot_sample_records in
  let ns, words =
    hot_measure ~ops:100_000 (fun () -> ignore (Tango.Record.encode_payload hot_sample_records))
  in
  hot_report ~name:"record-encode" ns words;
  let ns, words =
    hot_measure ~ops:100_000 (fun () -> ignore (Tango.Record.decode_payload sample_payload))
  in
  hot_report ~name:"record-decode" ns words;
  (* batcher drain bookkeeping: submit 4 records, seal, group, pop,
     encode, recycle — the whole Batch_core cycle minus the RPCs.
     Reported per record. *)
  let core = Tango.Batch_core.create ~cap:4 ~dummy:(Sim.Ivar.create ()) in
  let recs = Array.of_list hot_sample_records in
  let ns, words =
    hot_measure ~ops:50_000 (fun () ->
        for i = 0 to 3 do
          ignore (Tango.Batch_core.submit core recs.(i) [ 7 ] (Sim.Ivar.create ()))
        done;
        Tango.Batch_core.seal core;
        let count = Tango.Batch_core.group core ~max_run:8 in
        ignore (Tango.Batch_core.front_streams core);
        for _ = 1 to count do
          let b = Tango.Batch_core.pop core in
          ignore (Tango.Batch_core.encode core b);
          for slot = 0 to Tango.Batch_core.length b - 1 do
            ignore (Tango.Batch_core.data b slot)
          done;
          Tango.Batch_core.recycle core b
        done)
  in
  hot_report ~name:"batcher-drain" (ns /. 4.) (words /. 4.);
  (* sequencer grant: a 2-stream count-4 range grant against the ring
     core at K=16; the response lists are the boundary. *)
  let seq_core = Corfu.Sequencer.Core.create ~k:16 () in
  let ns, words =
    hot_measure ~ops:200_000 (fun () ->
        ignore (Corfu.Sequencer.Core.grant seq_core ~streams:[ 7; 9 ] ~count:4))
  in
  hot_report ~name:"seq-grant" ns words;
  (* engine dispatch: drain-only over a prefilled queue, the exact
     peek/pop sequence of the run loop — [next_time] refills the wheel
     band, then the lane/heap split pop. Must report 0.000 (the
     capacity covers the first cycle's wheel-bucket dump, so the heap
     never grows inside the measured region). *)
  let noop () = () in
  let q = Sim.Eventq.create ~capacity:4096 () in
  let cycles = 100 and n = 4096 in
  let words = ref 0. and time = ref 0. in
  (* Float-array sink, like the engine's own peek scratch: a returned
     float would arrive boxed across the module boundary. *)
  let sink = Array.make 1 0. in
  for _ = 1 to cycles do
    for i = 1 to n do
      Sim.Eventq.push q (float_of_int (i land 63)) i noop
    done;
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    while not (Sim.Eventq.is_empty q) do
      Sim.Eventq.next_time_into q sink;
      let thunk =
        if Sim.Eventq.next_is_lane q then Sim.Eventq.pop_lane q else Sim.Eventq.pop_heap q
      in
      thunk ()
    done;
    time := !time +. (Unix.gettimeofday () -. t0);
    words := !words +. (Gc.minor_words () -. w0)
  done;
  hot_report ~name:"engine-dispatch"
    (!time *. 1e9 /. float_of_int (cycles * n))
    (!words /. float_of_int (cycles * n));
  (* engine scheduling: push+pop steady state at 1024 pending. *)
  let q = Sim.Eventq.create () in
  for i = 1 to 1024 do
    Sim.Eventq.push q (float_of_int i) i noop
  done;
  let seq = ref 1024 in
  let ns, words =
    hot_measure ~ops:200_000 (fun () ->
        (Sim.Eventq.pop q) ();
        incr seq;
        Sim.Eventq.push q (float_of_int (!seq land 2047)) !seq noop)
  in
  hot_report ~name:"engine-sched" ns words;
  (* telemetry-plane kernels: every recording path must hold the
     steady-state allocation discipline. They need the virtual clock
     (flight events and window seals are virtually timestamped), so
     they run inside one engine run; the clock is frozen, which the
     aggregation treats as a zero-length window (rate 0). *)
  let (fl_ns, fl_words), (ts_ns, ts_words), (slo_ns, slo_words), (sp_ns, sp_words) =
    Sim.Engine.run ~seed:0 (fun () ->
        let flight_was = Sim.Flight.enabled () in
        Sim.Flight.set_enabled true;
        (* flight.record: one ring store per event once the host ring
           exists. *)
        let fl =
          hot_measure ~ops:200_000 (fun () ->
              Sim.Flight.record ~host:"bench" Sim.Flight.Metric ~name:"kernel" ~value:1.)
        in
        Sim.Flight.set_enabled flight_was;
        (* timeseries.tick: one sub-sample of a representative source
           mix (counter, gauge, histogram, probe), sealing a window
           every [subticks] calls into preallocated rings. *)
        let c = Sim.Metrics.counter ~host:"bench" "kernel.ctr" in
        let g = Sim.Metrics.gauge ~host:"bench" "kernel.gauge" in
        let h = Sim.Metrics.histogram ~host:"bench" "kernel.hist" in
        Sim.Metrics.incr c;
        Sim.Metrics.set_gauge g 1.;
        Sim.Metrics.observe h 50.;
        Sim.Timeseries.track_counter c;
        Sim.Timeseries.track_gauge g;
        Sim.Timeseries.track_histogram h;
        Sim.Timeseries.probe ~host:"bench" "kernel.probe" (fun () -> 1.);
        let ts = hot_measure ~ops:200_000 (fun () -> Sim.Timeseries.tick ()) in
        (* slo.eval: one window classification through the burn-rate
           bit ring — the steady no-transition path. *)
        let m =
          Sim.Slo.monitor ~name:"kernel" ~series:"probe:bench.kernel.probe" ~col:"last"
            ~threshold:10. ~objective:0.99 ()
        in
        let slo = hot_measure ~ops:200_000 (fun () -> Sim.Slo.feed m 1.) in
        (* span-off: the guarded call-site pattern (net/client/stream)
           with tracing disabled — the branch must be the whole cost,
           0.000 minor-words/op. *)
        assert (not (Sim.Span.enabled ()));
        let work = Sim.Metrics.counter ~host:"bench" "kernel.work" in
        let sp =
          hot_measure ~ops:200_000 (fun () ->
              if Sim.Span.enabled () then
                Sim.Span.with_span ~host:"bench"
                  ~args:[ ("k", "v") ]
                  "bench.op"
                  (fun () -> Sim.Metrics.incr work)
              else Sim.Metrics.incr work)
        in
        (fl, ts, slo, sp))
  in
  hot_report ~name:"flight.record" fl_ns fl_words;
  hot_report ~name:"timeseries.tick" ts_ns ts_words;
  hot_report ~name:"slo.eval" slo_ns slo_words;
  hot_report ~name:"span-off" sp_ns sp_words

(* Whole-run wall-clock throughput: a fixed fig5-style closed loop,
   reported as simulation events (and appends) per second of real
   time — the end-to-end number the CI gate protects. *)
let micro_events_wall () =
  section "Whole-run wall clock (events/s of real time)";
  let seed = 11 in
  let virtual_us = scale 4_000_000. in
  let (appends, events), perf =
    Report.with_perf (fun () ->
        Sim.Engine.run ~seed (fun () ->
            let cluster = Corfu.Cluster.create ~servers:4 () in
            let rt = new_runtime cluster "app" in
            let reg = Tango_register.attach rt ~oid:1 in
            let ops = ref 0 in
            for _ = 1 to 8 do
              Sim.Engine.spawn (fun () ->
                  let rec loop () =
                    Tango_register.write reg 1;
                    incr ops;
                    loop ()
                  in
                  loop ())
            done;
            Sim.Engine.sleep virtual_us;
            (!ops, Sim.Engine.events_dispatched ())))
  in
  let events_rate = float_of_int events /. perf.Report.wall_s in
  let appends_rate = float_of_int appends /. perf.Report.wall_s in
  row "%-24s %12.3f wall-s %10d events %12.0f events/wall-s %10.0f appends/wall-s" "events-wall"
    perf.Report.wall_s events events_rate appends_rate;
  Report.add_scenario ~name:"micro/events-wall" ~seed
    ~params:[ ("servers", "4"); ("writers", "8"); ("virtual_us", string_of_float virtual_us) ]
    ~summary:
      [
        ("events", float_of_int events);
        ("appends", float_of_int appends);
        ("events_per_wall_s", events_rate);
        ("appends_per_wall_s", appends_rate);
      ]
    ~perf ~virtual_end_us:virtual_us ~metrics_json:(Sim.Metrics.to_json ()) ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the hot code path of each experiment    *)
(* ------------------------------------------------------------------ *)

let micro_bechamel () =
  let open Bechamel in
  let payload =
    Tango.Record.encode_payload
      [
        Tango.Record.Commit
          {
            Tango.Record.c_reads = [ (1, Some "k00000001", 42); (1, Some "k00000002", 43) ];
            c_writes =
              [ { Tango.Record.u_oid = 1; u_key = Some "k00000003"; u_data = Bytes.make 64 'x' } ];
            c_needs_decision = false;
          };
      ]
  in
  let headers =
    Corfu.Stream_header.encode_block ~k:4 ~current:100_000
      [ { Corfu.Stream_header.stream = 7; backptrs = [ 99_999; 99_990; 99_900; 99_000 ] } ]
  in
  let zipf = Tango_workloads.Zipf.create ~n:1_000_000 () in
  let zipf_rng = Sim.Rng.create 1 in
  let tests =
    [
      (* fig2: the sequencer's per-request work, end to end *)
      Test.make ~name:"fig2/sequencer-rpc-sim"
        (Staged.stage (fun () ->
             Sim.Engine.run (fun () ->
                 let cluster = Corfu.Cluster.create ~servers:2 () in
                 let c = Corfu.Cluster.new_client cluster ~name:"c" in
                 ignore (Corfu.Client.check c))));
      (* fig8: one append + one linearizable read, end to end *)
      Test.make ~name:"fig8/register-write-read-sim"
        (Staged.stage (fun () ->
             Sim.Engine.run (fun () ->
                 let cluster = Corfu.Cluster.create ~servers:2 () in
                 let rt = new_runtime cluster "app" in
                 let reg = Tango_register.attach rt ~oid:1 in
                 Tango_register.write reg 1;
                 ignore (Tango_register.read reg))));
      (* fig9/fig10: commit-record decode, the per-tx byte work *)
      Test.make ~name:"fig9/record-roundtrip"
        (Staged.stage (fun () -> ignore (Tango.Record.decode_payload payload)));
      (* §5 streams: header decode *)
      Test.make ~name:"fig10/stream-header-roundtrip"
        (Staged.stage (fun () ->
             ignore (Corfu.Stream_header.decode_block ~k:4 ~current:100_000 headers)));
      (* fig9 workload generation *)
      Test.make ~name:"fig9/zipf-sample"
        (Staged.stage (fun () -> ignore (Tango_workloads.Zipf.sample zipf zipf_rng)));
      (* tbl-zk: one full zk create transaction in a mini-cluster *)
      Test.make ~name:"tbl-zk/create-tx-sim"
        (Staged.stage (fun () ->
             Sim.Engine.run (fun () ->
                 let cluster = Corfu.Cluster.create ~servers:2 () in
                 let zk = Tango_zk.attach (new_runtime cluster "z") ~oid:1 in
                 ignore (Tango_zk.create zk "/a" "x"))));
    ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let quota = Time.second 0.25 in
    Benchmark.all (Benchmark.cfg ~limit:500 ~quota ()) [ clock ] test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      clock results
  in
  section "Bechamel micro-benchmarks (ns per run)";
  List.iter
    (fun test ->
      let results = benchmark test in
      let a = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> row "%-36s %12.0f ns/run" name est
          | Some _ | None -> row "%-36s %12s" name "n/a")
        a)
    tests

let micro () =
  micro_hotpath ();
  micro_events_wall ();
  micro_bechamel ()

(* ------------------------------------------------------------------ *)
(* Scale-up: sharded engine + aggregate client population             *)
(* ------------------------------------------------------------------ *)

module Population = Tango_harness.Load.Population

(* Everything a same-seed rerun must reproduce exactly: the population
   accounting, the latency distribution, the per-shard event/message
   counts, and the window count. Full [%.17g] precision so a single
   ulp of divergence fails the comparison. *)
let pop_digest (r : Population.result) ~stats ~windows =
  let b = Buffer.create 256 in
  let rep = r.Population.pop_report in
  Printf.bprintf b "issued=%d completed=%d dropped=%d inflight=%d samples=%d" r.Population.pop_issued
    r.Population.pop_completed r.Population.pop_dropped r.Population.pop_inflight
    rep.Tango_harness.Load.samples;
  Printf.bprintf b " thr=%.17g mean=%.17g p50=%.17g p99=%.17g" rep.Tango_harness.Load.throughput
    rep.Tango_harness.Load.latency_mean_us rep.Tango_harness.Load.latency_p50_us
    rep.Tango_harness.Load.latency_p99_us;
  Printf.bprintf b " windows=%d" windows;
  Array.iter
    (fun s ->
      Printf.bprintf b " s%d:%d/%d/%d" s.Sim.Engine.sh_shard s.Sim.Engine.sh_events
        s.Sim.Engine.sh_msgs_out s.Sim.Engine.sh_msgs_in)
    stats;
  Buffer.contents b

(* [mode] `Plain uses [Engine.run] (the legacy entry point); `Sharded
   uses [run_sharded] — with [shards = 1] the two must be
   byte-identical, the single-shard determinism gate. *)
let run_population ~mode ~shards ~seed cfg =
  let pop = Population.create ~shards cfg in
  let body () =
    Population.shard_init pop ~shard:0;
    let r = Population.await pop in
    (r, Sim.Engine.now ())
  in
  let (r, vend), perf =
    Report.with_perf (fun () ->
        match mode with
        | `Plain -> Sim.Engine.run ~seed body
        | `Sharded ->
            Sim.Engine.run_sharded ~seed ~shards ~lookahead:cfg.Population.link_us
              ~init:(fun ~shard -> Population.shard_init pop ~shard)
              body)
  in
  (r, vend, Sim.Engine.last_shard_stats (), Sim.Engine.last_windows (), perf)

(* The baseline the population model replaces: one fiber per client,
   same open-loop arrival statistics, the same pure-delay op (link out,
   exponential service, link back) — no station queueing, so give the
   population variant saturated-free stations for parity. *)
let run_fiber_clients ~seed cfg =
  let clients = cfg.Population.clients in
  let gen_end = cfg.Population.warmup_us +. cfg.Population.measure_us in
  let deadline = gen_end +. cfg.Population.drain_us in
  let m_start = cfg.Population.warmup_us in
  Report.with_perf (fun () ->
      Sim.Engine.run ~seed (fun () ->
          let completed = ref 0 and windowed = ref 0 in
          for c = 0 to clients - 1 do
            Sim.Engine.spawn (fun () ->
                let rng = Sim.Rng.create_stream cfg.Population.seed ~stream:(500_000 + c) in
                let rec loop () =
                  Sim.Engine.sleep
                    (Sim.Rng.exponential rng ~mean:(1e6 /. cfg.Population.rate_per_client));
                  if Sim.Engine.now () < gen_end then begin
                    Sim.Engine.sleep
                      ((2. *. cfg.Population.link_us)
                      +. Sim.Rng.exponential rng ~mean:cfg.Population.service_us);
                    incr completed;
                    let now = Sim.Engine.now () in
                    if now >= m_start && now < gen_end then incr windowed;
                    loop ()
                  end
                in
                loop ())
          done;
          Sim.Engine.sleep deadline;
          (!completed, !windowed, Sim.Engine.events_dispatched ())))

let scale_up () =
  section "Scale-up: sharded engine, aggregate client population";
  let seed = 17 in
  let base =
    {
      Population.default_cfg with
      rate_per_client = 5.;
      link_us = 200.;
      service_us = 50.;
      stations = 64;
      station_slots = 4;
      max_outstanding = 8;
      warmup_us = scale 50_000.;
      measure_us = scale 250_000.;
      drain_us = 10_000.;
      seed;
    }
  in
  (* Determinism gates, in-process: plain [run] vs single-shard
     [run_sharded] must match byte for byte, and a multi-domain run
     must reproduce itself under a same-seed rerun. *)
  let det_cfg = { base with clients = 20_000; stations = 16 } in
  let digest_of mode shards =
    let r, _, stats, windows, _ = run_population ~mode ~shards ~seed det_cfg in
    pop_digest r ~stats ~windows
  in
  let d_plain = digest_of `Plain 1 in
  let d_s1 = digest_of `Sharded 1 in
  let d_s4a = digest_of `Sharded 4 in
  let d_s4b = digest_of `Sharded 4 in
  let single_ok = d_plain = d_s1 and multi_ok = d_s4a = d_s4b in
  row "%-24s single-shard=%b multi-domain=%b" "determinism" single_ok multi_ok;
  if not (single_ok && multi_ok) then begin
    if not single_ok then
      Printf.eprintf "single-shard mismatch:\n  plain: %s\n  s1:    %s\n" d_plain d_s1;
    if not multi_ok then
      Printf.eprintf "multi-domain mismatch:\n  run1: %s\n  run2: %s\n" d_s4a d_s4b;
    exit 1
  end;
  (* Aggregate population vs fiber-per-client at 5·10^4 clients: same
     arrival statistics, same op; the wall-clock ratio is the win of
     array-state clients over one resumable continuation each. Station
     capacity (64 × 16 slots vs ~25 mean in-flight) makes queueing
     negligible, matching the fiber variant's pure-delay op. *)
  let cmp_cfg = { base with clients = 50_000; station_slots = 16 } in
  let (f_done, f_win, f_events), f_perf = run_fiber_clients ~seed cmp_cfg in
  let p_r, _, p_stats, _, p_perf = run_population ~mode:`Plain ~shards:1 ~seed cmp_cfg in
  let p_events = Array.fold_left (fun a s -> a + s.Sim.Engine.sh_events) 0 p_stats in
  let speedup = f_perf.Report.wall_s /. p_perf.Report.wall_s in
  row "%-24s %8.3f wall-s %9d events %8d ops  (fibers)" "population-vs-fibers" f_perf.Report.wall_s
    f_events f_done;
  row "%-24s %8.3f wall-s %9d events %8d ops  (population)  speedup %.2fx" ""
    p_perf.Report.wall_s p_events p_r.Population.pop_completed speedup;
  ignore f_win;
  (* Domain-count sweep at 10^5 modeled clients. *)
  let sweep_clients = 100_000 in
  let sweep_cfg = { base with clients = sweep_clients } in
  let sweep = [ 1; 2; 4; 8 ] in
  let results =
    List.map
      (fun shards ->
        let r, vend, stats, windows, perf =
          run_population ~mode:`Sharded ~shards ~seed sweep_cfg
        in
        let events = Array.fold_left (fun a s -> a + s.Sim.Engine.sh_events) 0 stats in
        let msgs = Array.fold_left (fun a s -> a + s.Sim.Engine.sh_msgs_in) 0 stats in
        let stall = Array.fold_left (fun a s -> a +. s.Sim.Engine.sh_stall_s) 0. stats in
        let rate = float_of_int events /. perf.Report.wall_s in
        row "%-24s %8.3f wall-s %9d events %10.0f events/wall-s %6d windows stall %.3fs"
          (Printf.sprintf "domains=%d" shards)
          perf.Report.wall_s events rate windows stall;
        Report.add_scenario
          ~name:(Printf.sprintf "scale-up/domains-%d" shards)
          ~seed
          ~params:
            [
              ("clients", string_of_int sweep_clients);
              ("shards", string_of_int shards);
              ("lookahead_us", string_of_float sweep_cfg.Population.link_us);
              ( "per_shard_events",
                String.concat ","
                  (Array.to_list
                     (Array.map (fun s -> string_of_int s.Sim.Engine.sh_events) stats)) );
            ]
          ~summary:
            [
              ("shards", float_of_int shards);
              ("clients", float_of_int sweep_clients);
              ("events", float_of_int events);
              ("events_per_wall_s", rate);
              ("throughput", r.Population.pop_report.Tango_harness.Load.throughput);
              ("p99_us", r.Population.pop_report.Tango_harness.Load.latency_p99_us);
              ("completed", float_of_int r.Population.pop_completed);
              ("dropped", float_of_int r.Population.pop_dropped);
              ("windows", float_of_int windows);
              ("merge_stall_s", stall);
              ("msgs_delivered", float_of_int msgs);
            ]
          ~perf ~virtual_end_us:vend ~metrics_json:(Sim.Metrics.to_json ()) ();
        (shards, rate))
      sweep
  in
  let base_rate = List.assoc 1 results in
  let best_rate = List.fold_left (fun a (_, r) -> Float.max a r) 0. results in
  Report.add_scenario ~name:"scale-up" ~seed
    ~params:[ ("sweep", String.concat "," (List.map string_of_int sweep)) ]
    ~summary:
      [
        ("clients", float_of_int sweep_clients);
        ("determinism_ok", 1.);
        ("pop_speedup", speedup);
        ("cores", float_of_int (Domain.recommended_domain_count ()));
        ("events_per_wall_s_1d", base_rate);
        ("events_per_wall_s_best", best_rate);
        ("parallel_gain", best_rate /. base_rate);
      ]
    ~virtual_end_us:(base.Population.warmup_us +. base.Population.measure_us +. base.Population.drain_us)
    ~metrics_json:(Sim.Metrics.to_json ()) ()

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig2", fig2);
    ("fig5", fig5);
    ("fig8-left", fig8_left);
    ("fig8-mid", fig8_mid);
    ("fig8-right", fig8_right);
    ("fig8-window", fig8_window);
    ("fig9", fig9);
    ("fig10-left", fig10_left);
    ("fig10-mid", fig10_mid);
    ("fig10-right", fig10_right);
    ("tbl-zk", tbl_zk);
    ("tbl-bk", tbl_bk);
    ("ablation-k", ablation_k);
    ("ablation-decision", ablation_decision);
    ("ablation-versioning", ablation_versioning);
    ("ablation-seqbatch", ablation_seqbatch);
    ("ablation-seqckpt", ablation_seqckpt);
    ("chaos-crash", chaos_crash);
    ("chaos-smoke", chaos_smoke);
    ("fuzz-sweep", fuzz_sweep);
    ("scenario-sweep", scenario_sweep);
    ("scale-out", scale_out_bench);
    ("scale-up", scale_up);
  ]

let () =
  let rec split names json = function
    | [] -> (List.rev names, json)
    | [ "--json" ] ->
        prerr_endline "--json requires a file argument";
        exit 1
    | "--json" :: path :: rest -> split names (Some path) rest
    | x :: rest -> split (x :: names) json rest
  in
  let names, json = split [] None (List.tl (Array.to_list Sys.argv)) in
  if json <> None then Report.enable ();
  (match names with
  | [] ->
      Printf.printf "Tango evaluation harness (quick=%b)\n%!" quick;
      List.iter (fun (_, f) -> f ()) experiments
  | [ "micro" ] -> micro ()
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None when name = "micro" -> micro ()
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s micro\n" name
                (String.concat " " (List.map fst experiments));
              exit 1)
        names);
  match json with
  | None -> ()
  | Some path ->
      Report.write path;
      Printf.printf "\nwrote JSON report to %s\n%!" path
