(* tangoctl: operational demos against a simulated Tango deployment.

     dune exec bin/tangoctl.exe -- cluster-info --servers 18
     dune exec bin/tangoctl.exe -- failover
     dune exec bin/tangoctl.exe -- gc
     dune exec bin/tangoctl.exe -- soak --clients 4 --ops 200
     dune exec bin/tangoctl.exe -- projection --servers 6 --add-servers 12 *)

open Cmdliner
open Tango_objects

let say fmt = Printf.printf (fmt ^^ "\n%!")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* cluster-info                                                       *)
(* ------------------------------------------------------------------ *)

let cluster_info servers shards =
  Sim.Engine.run (fun () ->
      let cluster = Corfu.Cluster.create ~servers ~shards () in
      let proj = Corfu.Auxiliary.latest (Corfu.Cluster.auxiliary cluster) in
      say "CORFU deployment:";
      say "  storage servers : %d" (Corfu.Projection.num_servers proj);
      say "  replica sets    : %d (chain length %d)" (Corfu.Projection.num_sets proj)
        (Corfu.Projection.num_servers proj / Corfu.Projection.num_sets proj);
      say "  epoch           : %d" proj.Corfu.Projection.epoch;
      say "  sequencer       : %s" (Corfu.Sequencer.name proj.Corfu.Projection.sequencer);
      say "";
      say "offset -> (segment, replica set, local offset) mapping samples:";
      List.iter
        (fun off ->
          match Corfu.Projection.resolve proj off with
          | Some (seg, set, local) -> say "  global %6d -> seg %d, set %d, local %d" off seg set local
          | None -> say "  global %6d -> retired (prefix-trimmed)" off)
        [ 0; 1; 17; 1_000_000 ];
      say "";
      let p = Corfu.Cluster.params cluster in
      say "calibration (see DESIGN.md §1):";
      say "  entry size          : %d B" p.Sim.Params.entry_bytes;
      say "  sequencer service   : %.2f µs  (cap ~%.0fK req/s)" p.Sim.Params.sequencer_service_us
        (1e3 /. p.Sim.Params.sequencer_service_us);
      say "  storage 4KB write   : %.1f µs  (~%.1fK appends/s/set)" p.Sim.Params.storage_write_us
        (1e3 /. p.Sim.Params.storage_write_us);
      say "  storage 4KB read    : %.1f µs" p.Sim.Params.storage_read_us;
      say "  commit batch        : %d records/entry" p.Sim.Params.commit_batch;
      say "  backpointers (K)    : %d" p.Sim.Params.backpointer_k;
      say "";
      (* A short probe workload so the live counters below are real. *)
      let probe = Corfu.Cluster.new_client cluster ~name:"probe" in
      for i = 1 to 20 do
        let off = Corfu.Client.append probe ~streams:[ 1 ] (Bytes.of_string (string_of_int i)) in
        ignore (Corfu.Client.read_resolved probe off)
      done;
      let snap = Sim.Metrics.snapshot () in
      let total name =
        List.fold_left
          (fun acc (c : Sim.Metrics.counter_view) ->
            if String.equal c.Sim.Metrics.c_name name then acc + c.Sim.Metrics.c_value else acc)
          0 snap.Sim.Metrics.counters
      in
      say "live counters (after a 20-append probe):";
      say "  sequencer grants    : %d" (total "seq.increments");
      say "  ssd writes          : %d" (total "ssd.writes");
      say "  ssd reads           : %d" (total "ssd.reads");
      say "  rpc failures        : %d" (total "client.rpc_failures");
      say "  rpc retries         : %d" (total "client.retries");
      say "  recoveries          : %d" (total "cluster.recoveries");
      say "";
      say "engine shard placement (%d shard%s):" (Corfu.Cluster.shards cluster)
        (if Corfu.Cluster.shards cluster = 1 then "" else "s");
      let per_shard = Array.make (Corfu.Cluster.shards cluster) 0 in
      Array.iter
        (fun node ->
          let name = Corfu.Storage_node.name node in
          let sh = Corfu.Cluster.shard_of_host cluster name in
          per_shard.(sh) <- per_shard.(sh) + 1)
        (Corfu.Cluster.storage_nodes cluster);
      Array.iteri (fun sh n -> say "  shard %d : %d storage node%s%s" sh n
          (if n = 1 then "" else "s")
          (if sh = 0 then " + sequencer, auxiliary, clients (control plane)" else "")) per_shard);
  let stats = Sim.Engine.last_shard_stats () in
  if Array.length stats > 0 then begin
    say "";
    say "engine run stats (%d shard%s, %d sync windows):" (Array.length stats)
      (if Array.length stats = 1 then "" else "s")
      (Sim.Engine.last_windows ());
    Array.iter
      (fun (s : Sim.Engine.shard_stat) ->
        say "  shard %d : %8d events dispatched, %d msgs out, %d msgs in, %.3f s barrier stall"
          s.Sim.Engine.sh_shard s.Sim.Engine.sh_events s.Sim.Engine.sh_msgs_out
          s.Sim.Engine.sh_msgs_in s.Sim.Engine.sh_stall_s)
      stats
  end;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* failover                                                           *)
(* ------------------------------------------------------------------ *)

let failover () =
  Sim.Engine.run (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"app") in
      let reg = Tango_register.attach rt ~oid:1 in
      say "writing under load while the sequencer fails over...";
      let completed = ref 0 in
      Sim.Engine.spawn (fun () ->
          for i = 1 to 200 do
            Tango_register.write reg i;
            incr completed
          done);
      Sim.Engine.sleep 10_000.;
      let before = Sim.Engine.now () in
      let epoch = Corfu.Cluster.replace_sequencer cluster in
      let took = Sim.Engine.now () -. before in
      say "sequencer replaced: epoch %d, reconfiguration took %.2f ms (paper: ~10 ms)" epoch
        (took /. 1e3);
      Sim.Engine.sleep 3_000_000.;
      say "writes completed through the failover: %d/200" !completed;
      let observer = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"observer") in
      let reg2 = Tango_register.attach observer ~oid:1 in
      say "replayed final value on a fresh view: %d (expected 200)" (Tango_register.read reg2));
  `Ok ()

(* ------------------------------------------------------------------ *)
(* gc                                                                 *)
(* ------------------------------------------------------------------ *)

let gc () =
  Sim.Engine.run (fun () ->
      let cluster = Corfu.Cluster.create ~servers:4 () in
      let rt = Tango.Runtime.create ~batch_size:1 (Corfu.Cluster.new_client cluster ~name:"app") in
      let dir = Tango.Directory.attach rt in
      let oid = Tango.Directory.declare dir "big-map" in
      let map = Tango_map.attach rt ~oid in
      say "writing 200 updates...";
      for i = 1 to 200 do
        Tango_map.put map (Printf.sprintf "k%d" (i mod 20)) (string_of_int i)
      done;
      ignore (Tango_map.size map);
      let tail = Corfu.Client.check (Tango.Runtime.client rt) in
      say "log tail: %d entries" tail;
      say "checkpointing the map and forgetting its history...";
      let info = Tango.Runtime.checkpoint rt ~oid in
      Tango.Directory.forget dir ~oid ~below:(info.Tango.Runtime.ckpt_base + 1);
      ignore (Tango.Runtime.checkpoint rt ~oid:Tango.Directory.oid);
      Tango.Directory.forget dir ~oid:Tango.Directory.oid
        ~below:(Tango.Record.pos ~offset:(tail - 1) ~slot:0);
      let trimmed = Tango.Directory.collect dir in
      say "trimmed the shared log below offset %d" trimmed;
      let survivors =
        Array.fold_left
          (fun acc node -> acc + Corfu.Storage_node.written_count node)
          0 (Corfu.Cluster.storage_nodes cluster)
      in
      say "entries still resident on storage nodes: %d" survivors;
      say "a cold client must still recover full state from the checkpoint:";
      let rt2 = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"cold") in
      let map2 = Tango_map.attach rt2 ~oid in
      say "  recovered %d keys" (Tango_map.size map2));
  `Ok ()

(* ------------------------------------------------------------------ *)
(* soak                                                               *)
(* ------------------------------------------------------------------ *)

let soak clients ops seed =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers:18 () in
      let dist = Tango_workloads.Key_dist.zipf ~n:1_000 () in
      let commits = ref 0 and aborts = ref 0 in
      for i = 1 to clients do
        let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:(Printf.sprintf "c%d" i)) in
        let map = Tango_map.attach rt ~oid:1 in
        let set = Tango_set.attach rt ~oid:2 in
        let rng = Sim.Rng.split (Sim.Engine.rng ()) in
        Sim.Engine.spawn (fun () ->
            for _ = 1 to ops do
              Tango.Runtime.begin_tx rt;
              let k = Tango_workloads.Key_dist.sample_key dist rng in
              (match Tango_map.get map k with
              | Some v ->
                  Tango_map.put map k (v ^ "+");
                  Tango_set.add set k
              | None -> Tango_map.put map k "1");
              match Tango.Runtime.end_tx rt with
              | Tango.Runtime.Committed -> incr commits
              | Tango.Runtime.Aborted -> incr aborts
            done)
      done;
      Sim.Engine.sleep 60_000_000.;
      say "soak: %d clients x %d ops -> %d commits, %d aborts (%.1f%% aborted)" clients ops
        !commits !aborts
        (100. *. float_of_int !aborts /. float_of_int (max 1 (!commits + !aborts)));
      say "simulated time: %.1f s" (Sim.Engine.now () /. 1e6));
  `Ok ()

(* ------------------------------------------------------------------ *)
(* metrics                                                            *)
(* ------------------------------------------------------------------ *)

(* Run a small mixed workload with the sampler on, then show the
   registry: counters, gauges and latency histograms per component.
   [--json] dumps the raw canonical registry JSON instead. *)
let metrics json seed =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers:6 () in
      let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"app") in
      let reg = Tango_register.attach rt ~oid:1 in
      Sim.Metrics.start_sampler ();
      for i = 1 to 100 do
        Tango_register.write reg i;
        ignore (Tango_register.read reg)
      done);
  if json then print_endline (Sim.Metrics.to_json ())
  else begin
    let snap = Sim.Metrics.snapshot () in
    let host h = Option.value h ~default:"-" in
    say "counters:";
    List.iter
      (fun (c : Sim.Metrics.counter_view) ->
        if c.Sim.Metrics.c_value > 0 then
          say "  %-26s %-12s %10d" c.Sim.Metrics.c_name (host c.Sim.Metrics.c_host)
            c.Sim.Metrics.c_value)
      snap.Sim.Metrics.counters;
    say "";
    say "histograms:";
    say "  %-26s %-12s %8s %10s %10s %10s" "name" "host" "count" "p50-us" "p90-us" "p99-us";
    List.iter
      (fun (h : Sim.Metrics.hist_view) ->
        if h.Sim.Metrics.h_count > 0 then
          say "  %-26s %-12s %8d %10.1f %10.1f %10.1f" h.Sim.Metrics.h_name
            (host h.Sim.Metrics.h_host) h.Sim.Metrics.h_count h.Sim.Metrics.h_p50
            h.Sim.Metrics.h_p90 h.Sim.Metrics.h_p99)
      snap.Sim.Metrics.histograms;
    say "";
    say "%d resource/gauge time series sampled (see --json for the points)"
      (List.length snap.Sim.Metrics.series)
  end;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* top                                                                *)
(* ------------------------------------------------------------------ *)

(* Run a short mixed workload with the windowed-telemetry ticker on,
   then render the most recent windows per series — the closest thing
   a simulation has to watching `top` on a live deployment. *)
let top seed last_n =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers:6 () in
      let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"app") in
      let reg = Tango_register.attach rt ~oid:1 in
      Sim.Timeseries.start ();
      for _ = 1 to 4 do
        Sim.Engine.spawn (fun () ->
            let rec loop () =
              Tango_register.write reg 1;
              loop ()
            in
            loop ());
        Sim.Engine.spawn (fun () ->
            let rec loop () =
              ignore (Tango_register.read reg);
              loop ()
            in
            loop ())
      done;
      Sim.Engine.sleep 300_000.);
  let n = Sim.Timeseries.windows () in
  let first = max 0 (n - last_n) in
  say "%d windows of %.0f ms sealed; showing the last %d per series" n
    (Sim.Timeseries.window_us () /. 1e3)
    (n - first);
  let primary_col name =
    if String.length name >= 5 && String.sub name 0 5 = "hist:" then "p99"
    else if String.length name >= 8 && String.sub name 0 8 = "counter:" then "rate"
    else "last"
  in
  say "%-44s %-6s %s" "series" "col" "recent windows (oldest first)";
  List.iter
    (fun name ->
      let col = primary_col name in
      match Sim.Timeseries.find ~series:name ~col with
      | None -> ()
      | Some sel ->
          let cells = Buffer.create 64 in
          let interesting = ref false in
          for j = first to n - 1 do
            let v = Sim.Timeseries.window_value sel j in
            if Float.is_nan v then Buffer.add_string cells "        -"
            else begin
              if v <> 0. then interesting := true;
              Buffer.add_string cells (Printf.sprintf " %8.1f" v)
            end
          done;
          if !interesting then say "%-44s %-6s%s" name col (Buffer.contents cells))
    (Sim.Timeseries.series_names ());
  `Ok ()

(* ------------------------------------------------------------------ *)
(* slo                                                                *)
(* ------------------------------------------------------------------ *)

(* The burn-rate monitors against a register workload. A clean run
   must end with an empty alert stream; [--degrade] injects a slow
   lossy client uplink mid-run and must trip the append-p99 monitor —
   the pair of runs is the CI sensitivity check, and running the same
   command twice must produce byte-identical [--report] files. *)
let slo degrade report flight_out seed =
  let flight_was = Sim.Flight.enabled () in
  Sim.Flight.set_enabled true;
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers:6 () in
      let rt = Tango.Runtime.create (Corfu.Cluster.new_client cluster ~name:"app") in
      let reg = Tango_register.attach rt ~oid:1 in
      Sim.Timeseries.start ();
      ignore
        (Sim.Slo.monitor ~name:"append-p99" ~series:"hist:app.append.e2e_us" ~col:"p99"
           ~threshold:1_500. ~objective:0.9 ());
      ignore
        (Sim.Slo.monitor ~name:"playback-lag" ~series:"probe:app.lag.playback" ~col:"max"
           ~threshold:2_000. ~objective:0.9 ());
      if degrade then begin
        let f = Sim.Fault.create ~seed:1 () in
        Sim.Net.install_fault (Corfu.Cluster.net cluster) f;
        Sim.Fault.plan f
          [
            ( 150_000.,
              Sim.Fault.Degrade
                { d_src = "app"; d_dst = "*"; d_drop = 0.; d_delay_us = 2_500.; d_jitter_us = 0. }
            );
            (350_000., Sim.Fault.Clear_edge ("app", "*"));
          ]
      end;
      for _ = 1 to 8 do
        Sim.Engine.spawn (fun () ->
            let rec loop () =
              Tango_register.write reg 1;
              loop ()
            in
            loop ())
      done;
      Sim.Engine.sleep 500_000.);
  let alerts = Sim.Slo.alerts () in
  let fired = List.length (List.filter (fun a -> a.Sim.Slo.al_firing) alerts) in
  say "%d windows sealed, %d alert transition(s), %d fired%s" (Sim.Timeseries.windows ())
    (List.length alerts) fired
    (if degrade then " (degraded uplink 150-350ms)" else " (fault-free)");
  List.iter
    (fun (a : Sim.Slo.alert) ->
      say "  %8.0fus  %-14s %-8s burn fast %.2f / slow %.2f (value %.1f)" a.Sim.Slo.al_time
        a.Sim.Slo.al_monitor
        (if a.Sim.Slo.al_firing then "FIRING" else "resolved")
        a.Sim.Slo.al_burn_fast a.Sim.Slo.al_burn_slow a.Sim.Slo.al_value)
    alerts;
  Option.iter
    (fun path ->
      write_file path
        (Printf.sprintf
           "{\"schema\": \"tangoctl-slo/1\", \"degraded\": %b, \"alert_transitions\": %d, \
            \"fired\": %d, \"alerts\": %s}"
           degrade (List.length alerts) fired (Sim.Slo.alerts_json ()));
      say "alert report -> %s" path)
    report;
  Option.iter
    (fun path ->
      write_file path (Sim.Flight.dump_json ());
      say "%d flight snapshot(s) -> %s" (Sim.Flight.snapshot_count ()) path)
    flight_out;
  Sim.Flight.set_enabled flight_was;
  if degrade && fired = 0 then begin
    say "expected the degraded run to fire at least one alert";
    exit 1
  end;
  if (not degrade) && alerts <> [] then begin
    say "expected the fault-free run to stay alert-free";
    exit 1
  end;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* flight                                                             *)
(* ------------------------------------------------------------------ *)

(* Arm the flight recorder, run the chaos-smoke shape (a crash under
   paced appends), and dump the incident snapshots the stall trigger
   captured: a JSON document plus a Chrome trace_event timeline of the
   last snapshot. *)
let flight out trace_out seed =
  let flight_was = Sim.Flight.enabled () in
  Sim.Flight.set_enabled true;
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers:4 () in
      let victim = (Corfu.Cluster.storage_nodes cluster).(0) in
      let f = Sim.Fault.create ~seed:9 () in
      Sim.Net.install_fault (Corfu.Cluster.net cluster) f;
      Sim.Fault.plan f [ (30_000., Sim.Fault.Crash (Corfu.Storage_node.name victim)) ];
      Corfu.Cluster.start_failure_monitor cluster;
      let c = Corfu.Cluster.new_client cluster ~name:"app" in
      let stalls = Tango_harness.Chaos.recorder ~stall_threshold_us:20_000. () in
      for i = 0 to 99 do
        ignore (Corfu.Client.append c ~streams:[ 1 ] (Bytes.of_string (string_of_int i)));
        Tango_harness.Chaos.note stalls;
        Sim.Engine.sleep 500.
      done;
      Sim.Engine.sleep 100_000.;
      say "100 appends through a crash: max completion stall %.1f ms, %d events recorded"
        (Tango_harness.Chaos.max_gap_us stalls /. 1e3)
        (Sim.Flight.events_recorded ()));
  let snaps = Sim.Flight.snapshots () in
  say "%d flight snapshot(s) captured" (List.length snaps);
  List.iter
    (fun (s : Sim.Flight.snap) -> say "  %-14s at %.0fus" s.Sim.Flight.sn_reason s.Sim.Flight.sn_time)
    snaps;
  write_file out (Sim.Flight.dump_json ());
  say "incident document -> %s" out;
  (match List.rev snaps with
  | last :: _ ->
      write_file trace_out last.Sim.Flight.sn_trace;
      say "trace timeline -> %s (load in chrome://tracing or Perfetto)" trace_out
  | [] -> say "no snapshot fired; %s carries an empty document" out);
  Sim.Flight.set_enabled flight_was;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* trace                                                              *)
(* ------------------------------------------------------------------ *)

(* One client appends and reads back a handful of entries with span
   tracing on; the timeline goes to [--out] in Chrome trace_event
   format and the first append's decomposition is printed. *)
let trace out seed =
  let (), dump =
    Sim.Span.capture (fun () ->
        Sim.Engine.run ~seed (fun () ->
            let cluster = Corfu.Cluster.create ~servers:6 () in
            let c = Corfu.Cluster.new_client cluster ~name:"app" in
            let offs = ref [] in
            for i = 1 to 5 do
              offs := Corfu.Client.append c ~streams:[ 1 ] (Bytes.of_string (string_of_int i)) :: !offs
            done;
            let s = Corfu.Stream.attach c 1 in
            ignore (Corfu.Stream.sync s);
            let rec play () = match Corfu.Stream.readnext s with Some _ -> play () | None -> () in
            play ()))
  in
  let oc = open_out out in
  output_string oc dump;
  output_char oc '\n';
  close_out oc;
  let spans = Sim.Span.spans () in
  say "recorded %d spans -> %s (load in chrome://tracing or Perfetto)" (List.length spans) out;
  let dur (v : Sim.Span.view) =
    match v.Sim.Span.v_end with Some e -> e -. v.Sim.Span.v_start | None -> 0.
  in
  let rec print_tree indent (v : Sim.Span.view) =
    say "  %s%-20s @%.1fus  %.1fus" indent v.Sim.Span.v_name v.Sim.Span.v_start (dur v);
    List.iter
      (fun (c : Sim.Span.view) ->
        if c.Sim.Span.v_parent = Some v.Sim.Span.v_id then print_tree (indent ^ "  ") c)
      spans
  in
  (match
     List.find_opt (fun (v : Sim.Span.view) -> String.equal v.Sim.Span.v_name "append") spans
   with
  | Some root ->
      say "first append decomposes into:";
      print_tree "" root
  | None -> say "no append span recorded");
  `Ok ()

(* ------------------------------------------------------------------ *)
(* projection                                                         *)
(* ------------------------------------------------------------------ *)

(* Show the segmented layout map evolving through a live scale-out:
   append, scale, append again, then print the epoch-versioned layout
   and how offsets on either side of the seal boundary resolve. *)
let projection servers add_servers seed =
  Sim.Engine.run ~seed (fun () ->
      let cluster = Corfu.Cluster.create ~servers () in
      let c = Corfu.Cluster.new_client cluster ~name:"app" in
      for i = 1 to 20 do
        ignore (Corfu.Client.append c ~streams:[ 1 ] (Bytes.of_string (string_of_int i)))
      done;
      let aux = Corfu.Cluster.auxiliary cluster in
      say "layout before scale-out:";
      say "%s"
        (Format.asprintf "%a" Corfu.Projection.pp_layout
           (Corfu.Projection.layout (Corfu.Auxiliary.latest aux)));
      let epoch = Corfu.Cluster.scale_out cluster ~add_servers in
      for i = 21 to 30 do
        ignore (Corfu.Client.append c ~streams:[ 1 ] (Bytes.of_string (string_of_int i)))
      done;
      let proj = Corfu.Auxiliary.latest aux in
      say "";
      say "layout after scale-out to epoch %d (+%d servers, no data copied):" epoch add_servers;
      say "%s" (Format.asprintf "%a" Corfu.Projection.pp_layout (Corfu.Projection.layout proj));
      (match Corfu.Cluster.scale_events cluster with
      | [ e ] ->
          say "sealed the old tail segment at offset %d; installed in %.0f us"
            e.Corfu.Cluster.sc_boundary
            (e.Corfu.Cluster.sc_installed_us -. e.Corfu.Cluster.sc_started_us)
      | _ -> ());
      say "";
      say "offsets resolve through the segment that wrote them:";
      List.iter
        (fun off ->
          match Corfu.Projection.resolve proj off with
          | Some (seg, set, local) ->
              let r =
                match Corfu.Client.read_resolved c off with
                | Corfu.Client.Data _ -> "data"
                | Corfu.Client.Junk -> "junk"
                | _ -> "?"
              in
              say "  global %4d -> seg %d, set %d, local %d  (%s)" off seg set local r
          | None -> say "  global %4d -> retired (prefix-trimmed)" off)
        [ 0; 7; 19; 20; 29 ]);
  `Ok ()

(* ------------------------------------------------------------------ *)
(* fuzz                                                               *)
(* ------------------------------------------------------------------ *)

module Fuzz = Tango_harness.Fuzz
module Verifier = Tango_harness.Verifier
module Spec = Tango_harness.Spec
module Scenario = Tango_harness.Scenario

(* Exit contract shared by fuzz and scenario subcommands: 0 = clean,
   1 = an oracle (or spec machine) fired, 2 = the harness itself
   failed — unreadable artifact, unknown spec name, I/O error. CI
   gates on the distinction: a 1 is a finding, a 2 is a broken test. *)
let harness_errors f =
  try f () with
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | e ->
      say "harness error: %s" (Printexc.to_string e);
      exit 2

let parse_specs = function
  | None -> []
  | Some "all" -> Spec.all
  | Some s ->
      String.split_on_char ',' s
      |> List.filter (fun x -> String.trim x <> "")
      |> List.map (fun x -> Spec.of_name (String.trim x))

let fuzz_config servers clients events appends txs =
  {
    Fuzz.default_config with
    f_servers = servers;
    f_clients = clients;
    f_events = events;
    f_appends = appends;
    f_txs = txs;
  }

let print_violations violations =
  List.iter (fun v -> say "  %s" (Format.asprintf "%a" Verifier.pp_violation v)) violations

let dump_outcome ~metrics_out ~spans_out ~flight_out (oc : Fuzz.outcome) =
  Option.iter (fun path -> write_file path oc.Fuzz.oc_metrics_json) metrics_out;
  (match (flight_out, oc.Fuzz.oc_flight_json) with
  | Some path, Some flight ->
      write_file path flight;
      say "flight snapshots -> %s" path
  | Some _, None -> () (* clean case: no snapshot fired, nothing to ship *)
  | None, _ -> ());
  match (spans_out, oc.Fuzz.oc_spans_json) with
  | Some path, Some spans -> write_file path spans
  | Some path, None -> say "warning: no span dump captured for %s" path
  | None, _ -> ()

(* Explore [seeds] consecutive cases from [seed]. The first violating
   case is shrunk to a minimal reproducer and written to [plan_out] as
   a replayable artifact; the campaign report (schema_version 1) goes
   to [report]. Metrics/span dumps of the first case support the CI
   determinism gate: a replay of the same artifact must reproduce them
   byte for byte. *)
let say_outcome ~label (oc : Fuzz.outcome) =
  say "%s: %d fault events, %d acked appends, %d/%d txs committed, %d spec firings, %d violations"
    label oc.Fuzz.oc_fault_events oc.Fuzz.oc_acked oc.Fuzz.oc_committed
    (oc.Fuzz.oc_committed + oc.Fuzz.oc_aborted)
    (List.length oc.Fuzz.oc_spec_firings)
    (List.length oc.Fuzz.oc_violations);
  List.iter
    (fun (f : Spec.firing) -> say "  spec %s fired at %.0fus: %s" f.sp_spec f.sp_time_us f.sp_detail)
    oc.Fuzz.oc_spec_firings;
  print_violations oc.Fuzz.oc_violations

let fuzz_run seed seeds servers clients events appends txs plan_out metrics_out spans_out
    flight_out report failpoint specs_str =
  harness_errors @@ fun () ->
  let specs = parse_specs specs_str in
  let config = fuzz_config servers clients events appends txs in
  let capture = Option.is_some spans_out in
  let runs = ref [] in
  let failed = ref None in
  let s = ref seed in
  while Option.is_none !failed && !s < seed + seeds do
    let plan = Fuzz.gen_plan ~seed:!s config in
    let oc =
      Fuzz.run ?failpoint ~capture_spans:(capture && !s = seed) ~specs ~seed:!s config ~plan
    in
    runs := (!s, oc) :: !runs;
    if !s = seed then dump_outcome ~metrics_out ~spans_out ~flight_out:None oc;
    (* the flight artifact belongs to the violating case, not the first *)
    if !failed = None && oc.Fuzz.oc_violations <> [] then
      dump_outcome ~metrics_out:None ~spans_out:None ~flight_out oc;
    say_outcome ~label:(Printf.sprintf "seed %d" !s) oc;
    (match oc.Fuzz.oc_violations with
    | [] -> ()
    | v :: _ -> failed := Some (!s, plan, v.Verifier.v_oracle));
    incr s
  done;
  Option.iter (fun path -> write_file path (Fuzz.report_json ~runs:(List.rev !runs))) report;
  match !failed with
  | None ->
      say "%d seed(s) explored, no violations" seeds;
      `Ok ()
  | Some (seed, plan, oracle) ->
      say "shrinking the seed-%d reproducer (oracle: %s)..." seed oracle;
      let sh = Fuzz.shrink ?failpoint ~specs ~seed config plan ~oracle in
      say "minimal plan after %d re-runs (%d -> %d events):" sh.Fuzz.sh_runs (List.length plan)
        (List.length sh.Fuzz.sh_plan);
      say "%s" (Format.asprintf "%a" Sim.Fault.pp_plan sh.Fuzz.sh_plan);
      Option.iter
        (fun path ->
          write_file path (Fuzz.encode_artifact ~seed config sh.Fuzz.sh_plan);
          say "replayable artifact -> %s" path)
        plan_out;
      exit 1

let fuzz_replay plan_file metrics_out spans_out flight_out failpoint specs_str =
  harness_errors @@ fun () ->
  let specs = parse_specs specs_str in
  let seed, config, plan = Fuzz.decode_artifact (read_file plan_file) in
  let oc =
    Fuzz.run ?failpoint ~capture_spans:(Option.is_some spans_out) ~specs ~seed config ~plan
  in
  dump_outcome ~metrics_out ~spans_out ~flight_out oc;
  say_outcome ~label:(Printf.sprintf "replayed seed %d" seed) oc;
  if oc.Fuzz.oc_violations = [] then `Ok () else exit 1

let fuzz_shrink plan_file out oracle failpoint specs_str =
  harness_errors @@ fun () ->
  let specs = parse_specs specs_str in
  let seed, config, plan = Fuzz.decode_artifact (read_file plan_file) in
  let oracle =
    match oracle with
    | Some o -> o
    | None -> (
        (* no oracle named: re-run the artifact and minimize against
           whatever fires first *)
        let oc = Fuzz.run ?failpoint ~specs ~seed config ~plan in
        match oc.Fuzz.oc_violations with
        | [] ->
            say "artifact no longer reproduces any violation; nothing to shrink";
            exit 1
        | v :: _ -> v.Verifier.v_oracle)
  in
  let sh = Fuzz.shrink ?failpoint ~specs ~seed config plan ~oracle in
  say "minimal plan after %d re-runs (%d -> %d events), oracle %s:" sh.Fuzz.sh_runs
    (List.length plan) (List.length sh.Fuzz.sh_plan) sh.Fuzz.sh_oracle;
  say "%s" (Format.asprintf "%a" Sim.Fault.pp_plan sh.Fuzz.sh_plan);
  write_file out (Fuzz.encode_artifact ~seed config sh.Fuzz.sh_plan);
  say "shrunk artifact -> %s" out;
  `Ok ()

(* ------------------------------------------------------------------ *)
(* spec / scenario                                                    *)
(* ------------------------------------------------------------------ *)

let spec_doc = function
  | Spec.Commit_liveness ->
      "every acked append becomes stream-readable within the repair-then-deadline window"
  | Spec.Read_committed ->
      "playback never applies a transaction whose commit decision is still unrecorded"
  | Spec.Reconfig_termination ->
      "every seal/scale/replace that starts installs a new projection epoch"

let spec_list json =
  if json then
    say "%s"
      (Sim.Jout.arr
         (List.map
            (fun s ->
              Sim.Jout.obj
                [ ("name", Sim.Jout.str (Spec.name s)); ("doc", Sim.Jout.str (spec_doc s)) ])
            Spec.all))
  else begin
    say "online spec machines (arm with --specs NAME[,NAME..] or --specs all):";
    List.iter (fun s -> say "  %-22s %s" (Spec.name s) (spec_doc s)) Spec.all
  end;
  `Ok ()

let load_scenario name file =
  match (name, file) with
  | Some n, None -> (
      match Scenario.find n with
      | Some sc -> sc
      | None ->
          say "unknown built-in scenario %S; available:" n;
          List.iter (fun sc -> say "  %s" sc.Scenario.sc_name) Scenario.builtins;
          exit 2)
  | None, Some f -> Scenario.decode (read_file f)
  | _ ->
      say "scenario: pass exactly one of --name or --file";
      exit 2

let scenario_list json =
  if json then
    say "%s"
      (Sim.Jout.arr
         (List.map (fun sc -> Sim.Jout.str sc.Scenario.sc_name) Scenario.builtins))
  else begin
    say "built-in scenarios:";
    List.iter
      (fun sc ->
        say "  %-36s seed %d, %d fault events, %d specs" sc.Scenario.sc_name sc.Scenario.sc_seed
          (List.length sc.Scenario.sc_plan)
          (List.length sc.Scenario.sc_specs))
      Scenario.builtins
  end;
  `Ok ()

let scenario_show name file =
  harness_errors @@ fun () ->
  say "%s" (Scenario.encode (load_scenario name file));
  `Ok ()

let scenario_run name file report flight_out =
  harness_errors @@ fun () ->
  let sc = load_scenario name file in
  let oc = Scenario.run sc in
  dump_outcome ~metrics_out:None ~spans_out:None ~flight_out oc;
  say_outcome ~label:(Printf.sprintf "scenario %s (seed %d)" sc.Scenario.sc_name sc.Scenario.sc_seed)
    oc;
  Option.iter
    (fun path ->
      write_file path (Fuzz.report_json ~runs:[ (sc.Scenario.sc_seed, oc) ]);
      say "report -> %s" path)
    report;
  if oc.Fuzz.oc_violations = [] then `Ok () else exit 1

(* ------------------------------------------------------------------ *)
(* command line                                                       *)
(* ------------------------------------------------------------------ *)

let servers_arg =
  Arg.(value & opt int 18 & info [ "servers" ] ~docv:"N" ~doc:"Number of storage servers.")

let clients_arg =
  Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N" ~doc:"Number of client machines.")

let ops_arg = Arg.(value & opt int 100 & info [ "ops" ] ~docv:"N" ~doc:"Transactions per client.")
let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N" ~doc:"Engine shards to place the deployment across.")

let cluster_info_cmd =
  Cmd.v
    (Cmd.info "cluster-info" ~doc:"Describe a simulated CORFU deployment and its calibration.")
    Term.(ret (const cluster_info $ servers_arg $ shards_arg))

let failover_cmd =
  Cmd.v
    (Cmd.info "failover" ~doc:"Replace the sequencer under write load (§5 reconfiguration).")
    Term.(ret (const failover $ const ()))

let gc_cmd =
  Cmd.v
    (Cmd.info "gc" ~doc:"Checkpoint, forget and trim the shared log (§3.2 garbage collection).")
    Term.(ret (const gc $ const ()))

let soak_cmd =
  Cmd.v
    (Cmd.info "soak" ~doc:"Run a mixed transactional workload and report commit/abort counts.")
    Term.(ret (const soak $ clients_arg $ ops_arg $ seed_arg))

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Dump the raw metrics registry JSON instead of tables.")

let out_arg =
  Arg.(
    value
    & opt string "spans.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the Chrome trace_event span timeline.")

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics" ~doc:"Run a small workload and show the metrics registry.")
    Term.(ret (const metrics $ json_arg $ seed_arg))

let top_last_arg =
  Arg.(value & opt int 8 & info [ "windows" ] ~docv:"N" ~doc:"Recent windows to show per series.")

let top_cmd =
  Cmd.v
    (Cmd.info "top" ~doc:"Watch the windowed telemetry plane of a live mixed workload.")
    Term.(ret (const top $ seed_arg $ top_last_arg))

let degrade_arg =
  Arg.(
    value & flag
    & info [ "degrade" ]
        ~doc:"Inject a slow client uplink mid-run; the append-p99 monitor must fire.")

let slo_report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:"Write the alert stream as JSON (byte-identical across same-seed runs).")

let slo_flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-out" ] ~docv:"FILE" ~doc:"Write the flight snapshots alert firing captured.")

let slo_cmd =
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Evaluate burn-rate SLO monitors over a register workload; exits nonzero when the alert \
          stream contradicts the scenario.")
    Term.(ret (const slo $ degrade_arg $ slo_report_arg $ slo_flight_arg $ seed_arg))

let flight_json_arg =
  Arg.(
    value
    & opt string "flight.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the incident snapshot document.")

let flight_trace_arg =
  Arg.(
    value
    & opt string "flight-trace.json"
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Where to write the last snapshot's Chrome trace_event timeline.")

let flight_cmd =
  Cmd.v
    (Cmd.info "flight"
       ~doc:"Crash a storage node under load and dump the flight recorder's incident snapshots.")
    Term.(ret (const flight $ flight_json_arg $ flight_trace_arg $ seed_arg))

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Record a causal span timeline of appends and reads.")
    Term.(ret (const trace $ out_arg $ seed_arg))

let proj_servers_arg =
  Arg.(value & opt int 6 & info [ "servers" ] ~docv:"N" ~doc:"Storage servers before the scale-out.")

let add_servers_arg =
  Arg.(value & opt int 12 & info [ "add-servers" ] ~docv:"N" ~doc:"Servers added by the scale-out.")

let projection_cmd =
  Cmd.v
    (Cmd.info "projection"
       ~doc:"Print the segmented layout map through a live scale-out (§2.2 reconfiguration).")
    Term.(ret (const projection $ proj_servers_arg $ add_servers_arg $ seed_arg))

let fuzz_seeds_arg =
  Arg.(value & opt int 1 & info [ "seeds" ] ~docv:"N" ~doc:"Consecutive seeds to explore.")

let fuzz_servers_arg =
  Arg.(value & opt int 6 & info [ "servers" ] ~docv:"N" ~doc:"Storage servers at boot.")

let fuzz_clients_arg =
  Arg.(value & opt int 3 & info [ "clients" ] ~docv:"N" ~doc:"Workload clients.")

let fuzz_events_arg =
  Arg.(value & opt int 6 & info [ "events" ] ~docv:"N" ~doc:"Primary fault events per plan.")

let fuzz_appends_arg =
  Arg.(value & opt int 18 & info [ "appends" ] ~docv:"N" ~doc:"Raw appends per client.")

let fuzz_txs_arg =
  Arg.(value & opt int 8 & info [ "txs" ] ~docv:"N" ~doc:"Transactions per client.")

let plan_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-out" ] ~docv:"FILE" ~doc:"Write the shrunk reproducer artifact here.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the first case's canonical metrics JSON (determinism gate).")

let spans_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans-out" ] ~docv:"FILE"
        ~doc:"Capture and write the first case's span timeline (determinism gate).")

let flight_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-out" ] ~docv:"FILE"
        ~doc:"Write the flight-recorder snapshots of the violating case (incident artifact).")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE" ~doc:"Write the machine-readable campaign report here.")

let failpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "failpoint" ] ~docv:"NAME"
        ~doc:
          "Enable a cluster failpoint for every run (sensitivity testing): skip-rebuild-scan, \
           forget-seal-tail, skip-storage-seal, blind-commit-apply or stall-reconfig.")

let specs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "specs" ] ~docv:"NAMES"
        ~doc:
          "Arm online spec machines for every run: a comma-separated list of names (see \
           $(b,tangoctl spec)) or $(b,all).")

let plan_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "plan" ] ~docv:"FILE" ~doc:"Replayable fuzz artifact to load.")

let shrink_out_arg =
  Arg.(
    value
    & opt string "shrunk-plan.json"
    & info [ "out" ] ~docv:"FILE" ~doc:"Where to write the shrunk artifact.")

let oracle_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "oracle" ] ~docv:"NAME"
        ~doc:"Oracle to preserve while shrinking (default: whatever fires first on a re-run).")

let fuzz_run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Explore random fault plans; shrink and save the first violation.")
    Term.(
      ret
        (const fuzz_run $ seed_arg $ fuzz_seeds_arg $ fuzz_servers_arg $ fuzz_clients_arg
       $ fuzz_events_arg $ fuzz_appends_arg $ fuzz_txs_arg $ plan_out_arg $ metrics_out_arg
       $ spans_out_arg $ flight_out_arg $ report_arg $ failpoint_arg $ specs_arg))

let fuzz_replay_cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-run a saved fuzz artifact; deterministic down to the span dump.")
    Term.(
      ret
        (const fuzz_replay $ plan_arg $ metrics_out_arg $ spans_out_arg $ flight_out_arg
       $ failpoint_arg $ specs_arg))

let fuzz_shrink_cmd =
  Cmd.v
    (Cmd.info "shrink" ~doc:"Minimize a saved fuzz artifact while its oracle keeps firing.")
    Term.(
      ret (const fuzz_shrink $ plan_arg $ shrink_out_arg $ oracle_arg $ failpoint_arg $ specs_arg))

let fuzz_cmd =
  Cmd.group
    (Cmd.info "fuzz"
       ~doc:
         "Simulation fuzzer: randomized fault plans, global invariant oracles, automatic plan \
          shrinking (DESIGN.md §9).")
    [ fuzz_run_cmd; fuzz_replay_cmd; fuzz_shrink_cmd ]

let spec_cmd =
  Cmd.v
    (Cmd.info "spec"
       ~doc:"List the online temporal spec machines the fuzzer can arm (DESIGN.md §12).")
    Term.(ret (const spec_list $ json_arg))

let scenario_name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"NAME" ~doc:"Built-in scenario to load (see $(b,scenario list)).")

let scenario_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file" ] ~docv:"FILE" ~doc:"Scenario JSON file to load instead of a built-in.")

let scenario_list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List the built-in scenarios.")
    Term.(ret (const scenario_list $ json_arg))

let scenario_show_cmd =
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print a scenario as its versioned JSON document (edit it, then run with --file).")
    Term.(ret (const scenario_show $ scenario_name_arg $ scenario_file_arg))

let scenario_run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute one scenario with its spec machines armed. Exits 0 when clean, 1 when an oracle \
          or spec fired, 2 on a harness error.")
    Term.(
      ret (const scenario_run $ scenario_name_arg $ scenario_file_arg $ report_arg $ flight_out_arg))

let scenario_cmd =
  Cmd.group
    (Cmd.info "scenario"
       ~doc:
         "Config-driven scenario driver: named, versioned fuzz cases with spec machines armed \
          (DESIGN.md §12).")
    [ scenario_list_cmd; scenario_show_cmd; scenario_run_cmd ]

let () =
  let info = Cmd.info "tangoctl" ~doc:"Operational demos for the Tango reproduction." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            cluster_info_cmd;
            failover_cmd;
            gc_cmd;
            soak_cmd;
            metrics_cmd;
            top_cmd;
            slo_cmd;
            flight_cmd;
            trace_cmd;
            projection_cmd;
            fuzz_cmd;
            spec_cmd;
            scenario_cmd;
          ]))
